"""Per-subsystem microbenchmarks for the packet-kernel hot path.

The end-to-end figure benches (``bench_scale.py``) tell you *whether*
the engine got slower; these tell you *where*.  Each bench isolates one
subsystem the speed campaign optimised (see ``docs/PERFORMANCE.md``):

* event-queue churn — push/cancel/pop through both queue
  implementations, so the calendar queue's O(1) claim is continuously
  measured against the binary-heap fallback;
* wireless-channel arbitration — the shared-medium FIFO-by-arrival
  scheduler under saturating bidirectional traffic;
* the TCP segment pump — a bulk transfer between two wired hosts,
  exercising output, ACK clocking, and reassembly;
* observability-off overhead — tracing and metrics calls with no sink
  attached must cost (close to) nothing.

Every bench attaches ``events`` extra-info so
``scripts/run_benchmarks.py`` folds an events-per-second trajectory
into ``BENCH_scale.json``.
"""

from __future__ import annotations

import pytest

from repro.sim import Simulator
from repro.sim.events import make_event_queue
from repro.net import AddressAllocator, Host, Internet, attach_wireless_host
from repro.tcp import TCPStack


# ----------------------------------------------------------------------
# Event queue churn
# ----------------------------------------------------------------------
QUEUE_OPS = 200_000


def _queue_churn(kind: str) -> int:
    """Steady-state simulator-like load: every pop schedules ahead, a
    third of entries are cancelled before they fire."""
    queue = make_event_queue(kind)
    sink = 0

    def noop() -> None:
        pass

    # Deterministic pseudo-random delays without module-level RNG state.
    t, step, ops = 0.0, 0, 0
    pending = []
    for i in range(512):  # warm population
        pending.append(queue.push(t + (i % 97) * 0.003 + 0.001, noop))
    while ops < QUEUE_OPS:
        event = queue.pop_due(None)
        if event is None:
            break
        t = event.time
        step = (step * 1103515245 + 12345) & 0x7FFFFFFF
        delay = (step % 9973) * 1e-5 + 1e-6
        handle = queue.push(t + delay, noop)
        if step & 3 == 0:  # cancel ~25% and replace them
            queue.cancel(handle)
            queue.push(t + delay * 0.5, noop)
        ops += 1
        sink += 1
    return ops


@pytest.mark.parametrize("kind", ["calendar", "heap"])
def test_queue_churn(benchmark, kind):
    """push/cancel/pop throughput of one queue implementation."""
    ops = benchmark.pedantic(lambda: _queue_churn(kind), rounds=1, iterations=1)
    assert ops == QUEUE_OPS
    benchmark.extra_info["events"] = ops
    benchmark.extra_info["subsystem"] = "event_queue"


# ----------------------------------------------------------------------
# Wireless arbitration
# ----------------------------------------------------------------------
def _wireless_saturation() -> int:
    """Saturate one cell in both directions and count frames served."""
    from repro.net.packet import Packet

    class _Payload:
        wire_size = 1000

    sim = Simulator(seed=7)
    internet = Internet(sim, core_delay=0.0)
    host = Host(sim, "m0")
    # Swallow frames at the transport layer so delivery is pure overhead.
    class _Sink:
        def receive(self, packet):
            pass

    host.transport = _Sink()
    channel = attach_wireless_host(
        sim, host, internet, "10.0.0.1", rate=2_000_000.0,
        ap_queue_packets=128, station_queue_packets=128,
    )

    def offer() -> None:
        # Top both queues up so every frame completion arbitrates between
        # non-empty directions (the case the scheduler exists for).
        while channel.uplink_queue.depth_packets < 32:
            channel.send_from_host(Packet("10.0.0.1", "10.0.0.2", _Payload()))
        while channel.downlink_queue.depth_packets < 32:
            channel.deliver_from_core(Packet("10.0.0.2", "10.0.0.1", _Payload()))
        if sim.now < 9.5:
            sim.schedule(0.01, offer)

    sim.schedule(0.0, offer)
    sim.run(until=10.0)
    return channel.frames_up + channel.frames_down


def test_wireless_arbitration(benchmark):
    """FIFO-by-arrival arbitration under sustained two-way load."""
    frames = benchmark.pedantic(_wireless_saturation, rounds=1, iterations=1)
    assert frames > 10_000
    benchmark.extra_info["events"] = frames
    benchmark.extra_info["subsystem"] = "wireless"


# ----------------------------------------------------------------------
# TCP segment pump
# ----------------------------------------------------------------------
def _tcp_bulk_transfer() -> int:
    """One bulk transfer a -> b over symmetric wired links; returns the
    number of kernel events processed."""
    from repro.net import attach_wired_host

    class _Message:
        def __init__(self, wire_length: int) -> None:
            self.wire_length = wire_length

    sim = Simulator(seed=3)
    internet = Internet(sim, core_delay=0.01)
    alloc = AddressAllocator()
    a, b = Host(sim, "a"), Host(sim, "b")
    stack_a, stack_b = TCPStack(sim, a), TCPStack(sim, b)
    attach_wired_host(sim, a, internet, alloc.allocate(),
                      down_rate=2_000_000, up_rate=2_000_000)
    attach_wired_host(sim, b, internet, alloc.allocate(),
                      down_rate=2_000_000, up_rate=2_000_000)
    received = []
    stack_b.listen(6881, lambda conn: setattr(conn, "on_message", received.append))
    client = stack_a.connect(b.ip, 6881)
    for _ in range(2_000):
        client.send_message(_Message(1400))
    sim.run(until=60.0)
    assert len(received) == 2_000
    return sim.events_processed


def test_tcp_segment_pump(benchmark):
    """Bulk-transfer throughput of the TCP output/ACK path."""
    events = benchmark.pedantic(_tcp_bulk_transfer, rounds=1, iterations=1)
    benchmark.extra_info["events"] = events
    benchmark.extra_info["subsystem"] = "tcp"


# ----------------------------------------------------------------------
# Observability-off overhead
# ----------------------------------------------------------------------
OBS_CALLS = 500_000


def _obs_off_calls() -> int:
    """Trace + metrics hot-path calls with no sink installed."""
    sim = Simulator(seed=1)
    assert not sim.trace.enabled
    event = sim.trace.event
    counter = sim.metrics.counter("bench.counter")
    for i in range(OBS_CALLS):
        event("bench", "tick", i=i)
        counter.add(1.0)
    return OBS_CALLS


def test_obs_off_overhead(benchmark):
    """Emitting observability with no sink must stay near-free (the
    no-op fast path rebinds ``TraceBus.event`` — see repro.obs.tracing)."""
    calls = benchmark.pedantic(_obs_off_calls, rounds=1, iterations=1)
    benchmark.extra_info["events"] = calls
    benchmark.extra_info["subsystem"] = "obs"
