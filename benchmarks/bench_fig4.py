"""Figure 4 benchmarks: server mobility and rarest-first playability (§3.5–3.6)."""

from __future__ import annotations

from conftest import run_figure


def test_fig4a_server_mobility(benchmark):
    """Figure 4(a): faster server mobility lowers fixed-peer throughput;
    all-mobile is worse than one-mobile."""
    result = run_figure(benchmark, "fig4a", runs=1, duration=240.0)
    one = result.get("One peer is mobile")
    all_m = result.get("All peers are mobile")
    # no-mobility (x=0) beats the fastest mobility (last x) in both series
    assert one.y[0] > one.y[-1]
    assert all_m.y[0] > all_m.y[-1]
    # the degradation is amplified when all peers are mobile
    assert all_m.y[-1] < one.y[-1]


def test_fig4b_playability_20_pieces(benchmark):
    """Figure 4(b): rarest-first leaves a 5 MB file mostly unplayable."""
    result = run_figure(benchmark, "fig4bc", num_pieces=20, runs=10)
    series = result.series[0]
    # paper: at 60% downloaded, <10-15% playable
    assert series.y_at(60.0) <= 25.0
    # completing the download always reaches 100%
    assert series.y_at(100.0) == 100.0


def test_fig4c_playability_400_pieces(benchmark):
    """Figure 4(c): for 400 pieces the playable prefix is ~zero until the
    download is nearly complete."""
    result = run_figure(benchmark, "fig4bc", num_pieces=400, runs=5)
    series = result.series[0]
    assert series.y_at(60.0) <= 5.0
    assert series.y_at(90.0) <= 30.0
    assert series.y_at(100.0) == 100.0
