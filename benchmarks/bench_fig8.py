"""Figure 8 benchmarks: wP2P's AM, identity retention, and LIHD (§5.2.1–5.2.2)."""

from __future__ import annotations

from repro.sim import mean

from conftest import run_figure


def test_fig8a_age_based_manipulation(benchmark):
    """Figure 8(a): AM recovers download throughput under random losses.

    Our stack both piggybacks less exclusively (RFC 1122 delayed ACKs) and
    recovers losses more robustly (fast retransmit restarts the RTO timer)
    than the paper's era stacks, so AM's gain is within noise over the
    paper's 1e-6..1.5e-5 range and concentrates at the appended 3e-5 point
    where ACK losses genuinely bind; see EXPERIMENTS.md.
    """
    result = run_figure(benchmark, "fig8a", runs=6, duration=60.0)
    default = result.get("Default P2P")
    wp2p = result.get("wP2P")
    # at the highest swept BER (3e-5, where ACK losses bind), clearly ahead
    assert wp2p.y[-1] > default.y[-1] * 1.15
    # wP2P never materially worse anywhere
    for x in default.x:
        assert wp2p.y_at(x) > default.y_at(x) * 0.9
    # both decline with BER
    assert default.y[-1] < default.y[0]
    assert wp2p.y[-1] < wp2p.y[0]


def test_fig8b_identity_retention(benchmark):
    """Figure 8(b): identity retention keeps the mobile peer's credit
    across handoffs; the default client restarts as a stranger."""
    result = run_figure(benchmark, "fig8b", runs=2, duration=240.0)
    default = result.get("Default P2P")
    wp2p = result.get("wP2P")
    assert wp2p.y[-1] > default.y[-1]
    # the advantage holds over the back half of the run, not just at the end
    back_half = len(wp2p.y) // 2
    wins = sum(
        1 for d, w in zip(default.y[back_half:], wp2p.y[back_half:]) if w >= d
    )
    assert wins >= (len(wp2p.y) - back_half) * 0.7


def test_fig8c_lihd(benchmark):
    """Figure 8(c): LIHD finds the upload rate that maximises downloads;
    the uncapped default loses throughput to self-contention."""
    result = run_figure(benchmark, "fig8c", runs=3, duration=50.0)
    default = result.get("Default P2P")
    wp2p = result.get("wP2P")
    # wP2P at least matches the default at every bandwidth...
    for x in default.x:
        assert wp2p.y_at(x) >= default.y_at(x) * 0.9
    # ...and clearly wins where contention binds
    gains = [wp2p.y_at(x) / max(default.y_at(x), 1e-9) for x in default.x]
    assert max(gains) > 1.3
    # both series rise with bandwidth overall
    assert wp2p.y[-1] > wp2p.y[0]
    assert default.y[-1] > default.y[0]
