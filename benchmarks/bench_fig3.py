"""Figure 3 benchmarks: incentives, wireless contention, mobility (§3.3–3.4)."""

from __future__ import annotations

from repro.sim import mean

from conftest import run_figure


def test_fig3a_upload_cap_wired(benchmark):
    """Figure 3(a): on a wired link, more upload buys more download."""
    result = run_figure(benchmark, "fig3a", runs=3, duration=40.0)
    series = result.get("Wired")
    low = mean(y for x, y in zip(series.x, series.y) if x <= 30)
    high = mean(y for x, y in zip(series.x, series.y) if x >= 50)
    print(f"low-cap mean {low:.1f} KB/s, high-cap mean {high:.1f} KB/s")
    assert high > low


def test_fig3b_upload_cap_wireless(benchmark):
    """Figure 3(b): on a shared wireless channel the curve peaks early and
    then falls — uploads contend with downloads for airtime."""
    result = run_figure(benchmark, "fig3b", runs=3, duration=40.0)
    series = result.get("Wireless")
    peak_x = series.peak_x
    peak_y = max(series.y)
    print(f"peak at {peak_x:.0f}% cap")
    assert peak_x <= 60  # peak well below the wired case's 80-90%
    assert series.y_at(10.0) < peak_y  # rising edge exists
    assert series.y_at(90.0) < peak_y  # falling edge exists


def test_fig3c_incentives_and_mobility(benchmark):
    """Figure 3(c): uploading pays without mobility; with periodic IP
    changes the incentive mechanism is neutralised."""
    result = run_figure(benchmark, "fig3c", runs=1, duration=360.0)
    nm_up = result.get("No mobility, uploading").y[-1]
    nm_noup = result.get("No mobility, no uploading").y[-1]
    m_up = result.get("Mobility, uploading").y[-1]
    m_noup = result.get("Mobility, no uploading").y[-1]
    # incentives work when static
    assert nm_up > nm_noup
    # mobility erases the upload advantage (marginal difference)
    assert abs(m_up - m_noup) < (nm_up - nm_noup)
    # both mobility curves end below the best static curve
    assert m_up < nm_up
    assert m_noup < nm_up
