"""Ablation benchmarks for wP2P's design choices (DESIGN.md §5).

Each ablation varies one knob the paper fixes, to show where the chosen
value sits:

* AM γ threshold (ACK-decoupling cutoff) and DUPACK drop fraction;
* mobility-aware fetching's pr schedule (constant / linear / exponential);
* LIHD α/β aggressiveness;
* role reversal vs relying on shorter tracker refresh intervals.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis import ExperimentResult, Series
from repro.bittorrent import ClientConfig, RarestFirstSelector
from repro.bittorrent.swarm import SwarmScenario
from repro.experiments import playability_run
from repro.experiments.fig8_wp2p import _fig8a_run, _fig8c_run
from repro.experiments.fig9_wp2p import _fig9c_run, mf_only_config
from repro.media import average_curves
from repro.wp2p import (
    WP2PClient,
    WP2PConfig,
    exponential_progress_schedule,
    linear_progress_schedule,
)

from conftest import run_figure


# ----------------------------------------------------------------------
# AM gamma threshold
# ----------------------------------------------------------------------

def _am_gamma_throughput(gamma_bytes: int, runs: int = 4, ber: float = 1.5e-5) -> float:
    """wP2P throughput (KB/s) in the Figure 8(a) setup at one γ."""
    from repro.experiments.fig8_wp2p import am_only_config
    from repro.bittorrent.swarm import SwarmScenario

    totals = []
    for r in range(runs):
        sc = SwarmScenario(seed=4000 + r, file_size=6 * 1024 * 1024, piece_length=65_536)
        n = sc.torrent.num_pieces
        even = [i for i in range(n) if i % 2 == 0]
        odd = [i for i in range(n) if i % 2 == 1]
        sc.add_wireless_peer("default", rate=100_000, ber=ber, initial_pieces=even)
        cfg = am_only_config(am_gamma_bytes=gamma_bytes)
        wp2p = sc.add_wireless_peer(
            "wp2p", rate=100_000, ber=ber, initial_pieces=odd,
            client_factory=WP2PClient, config=cfg,
        )
        sc.start_all()
        sc.run(until=5.0)
        base = wp2p.client.downloaded.total
        sc.run(until=50.0)
        totals.append((wp2p.client.downloaded.total - base) / 45.0 / 1000.0)
    return sum(totals) / len(totals)


def ablate_am_gamma(gammas=(2920, 8760, 17_520), runs: int = 4) -> ExperimentResult:
    ys = [_am_gamma_throughput(g, runs=runs) for g in gammas]
    return ExperimentResult(
        figure="Ablation: AM γ",
        title="ACK-decoupling threshold sensitivity (BER 1.5e-5)",
        x_label="γ (bytes; 2/6/12 MSS)",
        y_label="wP2P throughput (KB/s)",
        series=[Series("wP2P", list(gammas), ys)],
        paper_expectation="the paper picks γ=6 MSS (~9 KB) per [10]",
    )


def test_ablation_am_gamma(benchmark):
    result = run_figure(benchmark, ablate_am_gamma, runs=4)
    assert all(y > 0 for y in result.series[0].y)


# ----------------------------------------------------------------------
# MF pr schedule
# ----------------------------------------------------------------------

def ablate_mf_schedule(runs: int = 6, num_pieces: int = 40) -> ExperimentResult:
    schedules = [
        ("constant 0.2", lambda ctx: 0.2),
        ("linear (paper eval)", linear_progress_schedule),
        ("exponential p0=0.2", exponential_progress_schedule(0.2)),
        ("rarest-only (default)", lambda ctx: 1.0),
    ]
    grid = [0.0, 25.0, 50.0, 75.0, 100.0]
    series: List[Series] = []
    for label, schedule in schedules:
        def factory(sim, host, torrent, _schedule=schedule, **kwargs):
            kwargs.setdefault("config", mf_only_config())
            kwargs.setdefault("pr_schedule", _schedule)
            return WP2PClient(sim, host, torrent, **kwargs)

        curves = [
            playability_run(4100 + r, num_pieces, client_factory=factory)
            for r in range(runs)
        ]
        avg = average_curves(curves, grid)
        series.append(Series(label, [g for g, _ in avg], [p for _, p in avg]))
    return ExperimentResult(
        figure="Ablation: MF pr schedule",
        title="Playability under different altruism schedules",
        x_label="Downloaded percentage (%)",
        y_label="Playable percentage (%)",
        series=series,
        paper_expectation=(
            "more sequential bias -> more playable mid-download; the linear "
            "schedule is what the paper evaluates"
        ),
    )


def test_ablation_mf_schedule(benchmark):
    result = run_figure(benchmark, ablate_mf_schedule, runs=5)
    constant = result.get("constant 0.2")
    rarest = result.get("rarest-only (default)")
    # stronger sequential bias must not be less playable mid-download
    assert constant.y_at(50.0) >= rarest.y_at(50.0)


# ----------------------------------------------------------------------
# LIHD aggressiveness
# ----------------------------------------------------------------------

def ablate_lihd_alpha_beta(runs: int = 2, bandwidth: float = 100_000.0) -> ExperimentResult:
    """Download rate for several (α, β) pairs in the Figure 8(c) setup."""
    from repro.experiments.base import random_piece_subset
    import random as _random

    pairs = [(5_120.0, 5_120.0), (10_240.0, 10_240.0), (20_480.0, 20_480.0), (10_240.0, 30_720.0)]
    labels = ["a=b=5K", "a=b=10K (paper)", "a=b=20K", "a=10K b=30K"]
    ys: List[float] = []
    for alpha, beta in pairs:
        vals = []
        for r in range(runs):
            seed = 4200 + r
            sc = SwarmScenario(seed=seed, file_size=8 * 1024 * 1024, piece_length=65_536)
            n = sc.torrent.num_pieces
            rng = _random.Random(seed * 31 + 7)
            ccfg = ClientConfig(unchoke_slots=1, optimistic_every=3, choke_interval=5.0)
            sc.add_wired_peer("s0", complete=True, up_rate=150_000, config=ccfg)
            for i in range(8):
                sc.add_wired_peer(
                    f"c{i}", initial_pieces=random_piece_subset(rng, n, 0.5),
                    up_rate=40_000.0 + 15_000.0 * i, config=ccfg,
                )
            cfg = WP2PConfig(
                am_enabled=False, mobility_aware_fetching=False,
                identity_retention=False, role_reversal=False,
                lihd_u_max=bandwidth, lihd_alpha=alpha, lihd_beta=beta,
                lihd_interval=5.0, unchoke_slots=6, choke_interval=5.0,
            )
            x = sc.add_wireless_peer(
                "x", rate=bandwidth, initial_pieces=random_piece_subset(rng, n, 0.4),
                config=cfg, client_factory=WP2PClient, ap_queue_packets=20,
            )
            sc.start_all()
            sc.run(until=10.0)
            base = x.client.downloaded.total
            sc.run(until=60.0)
            vals.append((x.client.downloaded.total - base) / 50.0 / 1000.0)
        ys.append(sum(vals) / len(vals))
    return ExperimentResult(
        figure="Ablation: LIHD α/β",
        title="LIHD aggressiveness at 100 KB/s channel",
        x_label="(α, β) setting",
        y_label="Download throughput (KB/s)",
        series=[Series("wP2P", list(range(len(pairs))), ys)],
        notes="x axis: " + ", ".join(labels),
        paper_expectation="α = β = 10 KB/s is the paper's Figure 8(c) setting",
    )


def test_ablation_lihd(benchmark):
    result = run_figure(benchmark, ablate_lihd_alpha_beta, runs=2)
    assert all(y > 0 for y in result.series[0].y)


# ----------------------------------------------------------------------
# Role reversal vs faster tracker refresh
# ----------------------------------------------------------------------

def ablate_role_reversal_vs_tracker(runs: int = 1, duration: float = 240.0) -> ExperimentResult:
    """Can a default client approximate role reversal by announcing more
    often?  Sweep the tracker interval for the default client and compare
    against wP2P's role reversal at the paper's 2-minute mobility rate."""
    interval = 60.0  # scaled "every 2 min" mobility
    xs = [30.0, 60.0, 120.0]
    default_ys: List[float] = []
    for tracker_interval in xs:
        vals = []
        for r in range(runs):
            vals.append(
                _fig9c_run_custom(4300 + r, interval, duration, tracker_interval)
            )
        default_ys.append(sum(vals) / len(vals) / 1000.0)
    wp2p_vals = [_fig9c_run(4300 + r, interval, wp2p=True, duration=duration) for r in range(runs)]
    wp2p_y = sum(wp2p_vals) / len(wp2p_vals) / 1000.0
    return ExperimentResult(
        figure="Ablation: RR vs tracker refresh",
        title="Role reversal vs shorter tracker intervals (default client)",
        x_label="Tracker interval (s)",
        y_label="Mobile-seed upload throughput (KB/s)",
        series=[
            Series("Default P2P", xs, default_ys),
            Series("wP2P role reversal", xs, [wp2p_y] * len(xs)),
        ],
        paper_expectation=(
            "faster tracker refresh helps the default client but cannot match "
            "immediate client-side re-initiation"
        ),
    )


def _fig9c_run_custom(seed: int, interval: float, duration: float, tracker_interval: float) -> float:
    sc = SwarmScenario(
        seed=seed, file_size=256 * 1024 * 1024, piece_length=131_072,
        tracker_interval=tracker_interval,
    )
    leech_cfg = ClientConfig(unchoke_slots=3, choke_interval=5.0)
    for i in range(4):
        sc.add_wired_peer(f"f{i}", down_rate=500_000, up_rate=48_000, config=leech_cfg)
    seeds = []
    for i in range(2):
        cfg = ClientConfig(unchoke_slots=3, choke_interval=5.0, task_restart_delay=15.0)
        handle = sc.add_wireless_peer(f"m{i}", complete=True, rate=150_000, config=cfg)
        seeds.append(handle)
        sc.add_mobility(handle, interval=interval, downtime=2.0, jitter=interval * 0.2)
    sc.start_all()
    sc.run(until=duration)
    return sum(h.client.uploaded.total for h in seeds) / duration / 2.0


def test_ablation_role_reversal_vs_tracker(benchmark):
    result = run_figure(benchmark, ablate_role_reversal_vs_tracker, runs=1)
    wp2p = result.get("wP2P role reversal").y[0]
    default_best = max(result.get("Default P2P").y)
    assert wp2p > default_best * 0.9  # RR at least competitive with any refresh
