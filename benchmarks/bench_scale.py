"""Scale-tier benchmarks: fluid swarms plus the packet-engine hot path.

The whole point of :mod:`repro.scale` is that a 10^6-peer swarm costs
the same as a 10^2-peer one — per class and per time step, never per
peer.  These benches pin that property (and the ``figx_scale``
acceptance budget: the full sweep, including the 100k-peer 20%-mobile
cell, in well under a minute) and attach ``events`` / ``peak_swarm``
extra-info so ``scripts/run_benchmarks.py`` can consolidate
events-per-second and swarm-size numbers into ``BENCH_scale.json``.

The packet-engine benches run one mid-size packet-backend cell end to
end under both event-queue implementations, giving ``BENCH_scale.json``
a simulated-events-per-second trajectory for the discrete-event kernel
(see ``docs/PERFORMANCE.md``) and letting ``--check-regression`` verify
the default calendar queue never falls behind the heap fallback.
"""

from __future__ import annotations

import os

import pytest

from conftest import run_figure

from repro.scale import FluidParams, FluidSwarm, PeerClass


def _params(scale: float) -> FluidParams:
    return FluidParams(
        file_size=4 << 20,
        piece_length=1 << 16,
        classes=(
            PeerClass("seeds", 5 * scale, 96_000.0, 1_000_000.0, seed=True),
            PeerClass("wired", 75 * scale, 48_000.0, 500_000.0),
            PeerClass("mobile", 20 * scale, 24_000.0, 100_000.0,
                      mobile=True, wireless_shared=True,
                      handoff_interval=90.0),
        ),
    )


def _bench_engine(benchmark, scale: float) -> None:
    swarms = []

    def run():
        swarm = FluidSwarm(_params(scale))
        result = swarm.run()
        swarms.append((swarm, result))
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    swarm, _ = swarms[-1]
    assert result.leecher_completion_time() is not None
    assert swarm.wall_seconds < 60.0
    benchmark.extra_info["events"] = result.steps
    benchmark.extra_info["peak_swarm"] = result.peak_population
    benchmark.extra_info["horizon"] = result.horizon


def test_fluid_engine_100_peers(benchmark):
    """Baseline: a small fluid swarm (100 peers, 3 classes)."""
    _bench_engine(benchmark, 1.0)


def test_fluid_engine_100k_peers(benchmark):
    """100k peers must integrate as fast as 100 (same classes, same steps)."""
    _bench_engine(benchmark, 1_000.0)


def test_fluid_engine_1m_peers(benchmark):
    """10^6 peers: the ROADMAP north star, still milliseconds."""
    _bench_engine(benchmark, 10_000.0)


@pytest.mark.parametrize("queue", ["calendar", "heap"])
def test_packet_engine_e2e(benchmark, queue):
    """One packet-backend cell (12 peers, 25% mobile) end to end.

    Both parametrisations must produce bit-identical results (pinned by
    tests/test_scale.py and tests/test_event_queue_property.py); here we
    only measure speed.  ``events`` is the kernel event count, so the
    consolidated events-per-second is directly comparable across PRs.
    """
    from repro.experiments.figx_scale import FigXScale, packet_cell

    def run():
        old = os.environ.get("REPRO_EVENT_QUEUE")
        os.environ["REPRO_EVENT_QUEUE"] = queue
        try:
            return packet_cell(1, 12, 0.25, False, dict(FigXScale.defaults))
        finally:
            if old is None:
                del os.environ["REPRO_EVENT_QUEUE"]
            else:
                os.environ["REPRO_EVENT_QUEUE"] = old

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["events"] = result["steps"]
    benchmark.extra_info["subsystem"] = "packet_engine"


def test_hybrid_engine_e2e(benchmark):
    """One hybrid-backend cell end to end: 2 packet focal mobiles coupled
    to a 10^4-peer fluid background.

    ``events`` counts both resolutions (kernel events + fluid steps), so
    the consolidated events-per-second tracks the co-simulation as one
    engine across PRs.
    """
    from repro.experiments.figx_hybrid import FigXHybrid, hybrid_cell

    def run():
        return hybrid_cell(1, 10_000, 1.0, False, dict(FigXHybrid.defaults))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result["completion"] is not None
    assert result["couplings"] > 0
    benchmark.extra_info["events"] = result["steps"]
    benchmark.extra_info["peak_swarm"] = result["peak_swarm"]
    benchmark.extra_info["subsystem"] = "hybrid_engine"


def test_cdn_engine_e2e(benchmark):
    """One packet-backend CDN cell end to end: the default figx_cdn
    geometry (4-asset catalog, 10 shared-uplink peers, 40% mobile) as a
    full multi-swarm run.

    ``events`` is the kernel event count across every concurrent
    per-asset swarm, so the consolidated events-per-second tracks the
    multi-swarm scheduler (shared token buckets, per-asset ports, origin
    activation) as one engine across PRs.
    """
    from repro.experiments.figx_cdn import FigXCdn, cdn_run

    def run():
        return cdn_run(1, "default", 0.4, dict(FigXCdn.defaults))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result["requests"] > 0
    benchmark.extra_info["events"] = result["steps"]
    benchmark.extra_info["subsystem"] = "cdn_engine"


def test_cdn_fluid_10k_assets(benchmark):
    """A 10^4-asset catalog through the band surrogate.

    Cost must stay O(log assets): geometric rank bands collapse the
    catalog into ~14 class solves, so this is milliseconds regardless of
    catalog size — the property that makes the fluid backend the right
    tool for CDN-scale sweeps.
    """
    from repro.cdn import cdn_fluid_cell

    def run():
        return cdn_fluid_cell(
            catalog={"assets": 10_000, "size_kib": 256, "piece_kib": 16},
            demand="zipf:0.9@50.0",
            origin={"policy": "pin_top_k", "k": 100, "capacity": 10_000},
            peers=100_000,
            mobile_fraction=0.2,
            wp2p=False,
            horizon=600.0,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result["steps"] <= 16
    benchmark.extra_info["events"] = result["steps"]
    benchmark.extra_info["subsystem"] = "cdn_fluid"


def test_figx_scale_fluid_sweep(benchmark):
    """The full figx_scale sweep (up to 100k peers, 20% and 50% mobile)
    on the fluid backend — the acceptance budget is < 60 s."""
    result = run_figure(benchmark, "figx_scale")
    benchmark.extra_info["events"] = result.parameters["engine_steps"]
    benchmark.extra_info["peak_swarm"] = result.parameters["peak_swarm_size"]
    assert result.parameters["peak_swarm_size"] >= 100_000
    # wP2P stays ahead of the default client at the headline fraction.
    default = result.get("Default P2P (20% mobile)")
    wp2p = result.get("wP2P (20% mobile)")
    assert all(w < d for w, d in zip(wp2p.y, default.y))
