"""Figure 2 benchmarks: bi-directional TCP on the wireless leg (§3.2)."""

from __future__ import annotations

from repro.experiments import drop_response_ratio, post_congestion_starvation

from conftest import run_figure


def test_fig2a_bitcp_vs_unitcp(benchmark):
    """Figure 2(a): uni-TCP beats bi-TCP at every BER; both fall with BER."""
    result = run_figure(benchmark, "fig2a", runs=3, duration=30.0)
    bi = result.get("Bi-TCP")
    uni = result.get("Uni-TCP")
    # shape: uni above bi everywhere
    for x in uni.x:
        assert uni.y_at(x) >= bi.y_at(x)
    # shape: both decline from BER=0 to the highest BER
    assert uni.y[-1] < uni.y[0]
    assert bi.y[-1] < bi.y[0]


def test_fig2bc_packets_after_congestion(benchmark):
    """Figure 2(b, c): the wireless leg starves after congestion for uni-TCP
    but stays loaded for bi-TCP (pure DUPACKs replace suppressed data)."""
    result = run_figure(benchmark, "fig2bc", duration=30.0)
    uni = result.get("Uni-directional")
    bi = result.get("Bi-directional")
    uni_starved = post_congestion_starvation(uni, result.parameters["uni_drop_times"])
    bi_starved = post_congestion_starvation(bi, result.parameters["bi_drop_times"])
    print(f"starvation fraction: uni={uni_starved}, bi={bi_starved}")
    assert uni_starved is not None and bi_starved is not None
    assert uni_starved > bi_starved
    assert bi_starved <= 0.25
    bi_ratio = drop_response_ratio(bi, result.parameters["bi_drop_times"])
    print(f"bi post/pre load ratio: {bi_ratio:.2f}")
    assert 0.8 <= bi_ratio <= 1.2  # bi load unchanged through congestion
