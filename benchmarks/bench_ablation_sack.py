"""Ablation: NewReno vs SACK-lite loss recovery on the wireless leg.

Not a paper figure — the paper's stacks predate universal SACK deployment —
but a natural question for anyone reading Figure 2: how much of the
bi-directional-TCP pain would selective acknowledgments absorb?
"""

from __future__ import annotations

from typing import List

from repro.analysis import ExperimentResult, Series
from repro.tcp import TCPConfig
from repro.experiments.base import run_transfer

from conftest import run_figure


def _transfer_with(sack: bool, ber: float, seed: int, duration: float) -> float:
    """Raw-TCP download rate (KB/s) with the given recovery flavour."""
    from repro.experiments.base import WirelessPairTopology, BulkSender

    topo = WirelessPairTopology(
        seed=seed, rate=60_000.0, ber=ber,
        tcp_config=TCPConfig(sack=sack),
    )
    conns: list = []
    topo.mobile_stack.listen(6881, conns.append)
    conn = topo.fixed_stack.connect(topo.mobile.ip, 6881)
    BulkSender(topo.sim, conn).start()
    topo.sim.run(until=2.0)
    base = conns[0].stats.payload_bytes_delivered if conns else 0
    topo.sim.run(until=2.0 + duration)
    delivered = conns[0].stats.payload_bytes_delivered - base if conns else 0
    return delivered / duration / 1000.0


def ablate_sack(
    bers=(1e-6, 5e-6, 1e-5, 1.5e-5),
    runs: int = 4,
    duration: float = 40.0,
    base_seed: int = 4400,
) -> ExperimentResult:
    reno: List[float] = []
    sack: List[float] = []
    for ber in bers:
        reno.append(sum(
            _transfer_with(False, ber, base_seed + r, duration) for r in range(runs)
        ) / runs)
        sack.append(sum(
            _transfer_with(True, ber, base_seed + r, duration) for r in range(runs)
        ) / runs)
    return ExperimentResult(
        figure="Ablation: SACK",
        title="NewReno vs SACK-lite under random wireless losses",
        x_label="BER",
        y_label="Download throughput (KB/s)",
        series=[
            Series("NewReno", list(bers), reno),
            Series("SACK-lite", list(bers), sack),
        ],
        paper_expectation=(
            "not in the paper; selective acknowledgments recover multi-loss "
            "windows without go-back-N, helping most at high BER"
        ),
        parameters={"runs": runs, "duration_s": duration},
    )


def test_ablation_sack(benchmark):
    result = run_figure(benchmark, ablate_sack, runs=4)
    reno = result.get("NewReno")
    sack = result.get("SACK-lite")
    # SACK must be at least competitive at the highest BER
    assert sack.y[-1] >= reno.y[-1] * 0.85
    # both decline as BER rises
    assert reno.y[-1] < reno.y[0]
    assert sack.y[-1] < sack.y[0]
