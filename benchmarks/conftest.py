"""Benchmark harness helpers.

Each benchmark regenerates one figure of the paper.  Figures are full
simulation campaigns, not microbenchmarks, so every bench runs exactly one
round (``benchmark.pedantic``), prints the measured series next to the
paper's expectation, and attaches the series to the benchmark record via
``extra_info`` so ``--benchmark-json`` output carries the data.

Figures are named scenarios executed through :func:`repro.runner.
run_scenario` — uncached (a benchmark must actually simulate) and serial
by default so the measured wall time stays comparable across machines.
Set ``REPRO_BENCH_JOBS=N`` to fan cells out over ``N`` worker processes
when you only care about the figures, not the timings.  Ablation benches
that assemble custom results still pass a plain callable.
"""

from __future__ import annotations

import os
from typing import Callable, Union

import repro.experiments  # noqa: F401  — registers the figure scenarios
from repro.analysis import ExperimentResult
from repro.runner import run_scenario


def run_figure(
    benchmark,
    figure: Union[str, Callable[..., ExperimentResult]],
    **params,
) -> ExperimentResult:
    """Execute one figure reproduction under pytest-benchmark.

    ``figure`` is a registered scenario name (the normal case) or a
    callable returning an :class:`ExperimentResult` (custom ablations).
    """
    if callable(figure):
        fn = lambda: figure(**params)  # noqa: E731
    else:
        jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
        fn = lambda: run_scenario(figure, params or None, jobs=jobs)  # noqa: E731
    result = benchmark.pedantic(fn, rounds=1, iterations=1)
    print()
    print(result.table())
    benchmark.extra_info["figure"] = result.figure
    benchmark.extra_info["series"] = {
        s.label: {"x": list(s.x), "y": list(s.y)} for s in result.series
    }
    benchmark.extra_info["paper_expectation"] = result.paper_expectation
    return result
