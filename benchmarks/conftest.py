"""Benchmark harness helpers.

Each benchmark regenerates one figure of the paper.  Figures are full
simulation campaigns, not microbenchmarks, so every bench runs exactly one
round (``benchmark.pedantic``), prints the measured series next to the
paper's expectation, and attaches the series to the benchmark record via
``extra_info`` so ``--benchmark-json`` output carries the data.
"""

from __future__ import annotations

from typing import Callable

import pytest

from repro.analysis import ExperimentResult


def run_figure(benchmark, fn: Callable[..., ExperimentResult], **params) -> ExperimentResult:
    """Execute one figure reproduction under pytest-benchmark."""
    result = benchmark.pedantic(lambda: fn(**params), rounds=1, iterations=1)
    print()
    print(result.table())
    benchmark.extra_info["figure"] = result.figure
    benchmark.extra_info["series"] = {
        s.label: {"x": list(s.x), "y": list(s.y)} for s in result.series
    }
    benchmark.extra_info["paper_expectation"] = result.paper_expectation
    return result
