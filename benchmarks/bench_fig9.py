"""Figure 9 benchmarks: mobility-aware fetching and role reversal (§5.2.3–5.2.4)."""

from __future__ import annotations

from conftest import run_figure


def test_fig9a_mobility_aware_fetching_small(benchmark):
    """Figure 9(a): MF keeps the 5 MB file largely playable mid-download."""
    result = run_figure(benchmark, "fig9ab", num_pieces=20, runs=10)
    default = result.get("Default P2P")
    wp2p = result.get("wP2P")
    # wP2P several times more playable at 50% downloaded
    assert wp2p.y_at(50.0) >= default.y_at(50.0) + 10.0
    # and at least as good across the whole sweep
    for x in range(10, 100, 10):
        assert wp2p.y_at(float(x)) >= default.y_at(float(x)) - 5.0


def test_fig9b_mobility_aware_fetching_large(benchmark):
    """Figure 9(b): the gap is even starker for the 400-piece file."""
    result = run_figure(benchmark, "fig9ab", num_pieces=400, runs=5)
    default = result.get("Default P2P")
    wp2p = result.get("wP2P")
    assert wp2p.y_at(50.0) >= default.y_at(50.0) + 10.0
    assert default.y_at(50.0) <= 10.0  # rarest-first ~unplayable at 50%


def test_fig9c_role_reversal(benchmark):
    """Figure 9(c): role reversal preserves mobile seeds' upload throughput,
    increasingly so at faster mobility."""
    result = run_figure(benchmark, "fig9c", runs=1, duration=300.0)
    default = result.get("Default P2P")
    wp2p = result.get("wP2P")
    # wP2P ahead at every mobility rate
    for x in default.x:
        assert wp2p.y_at(x) >= default.y_at(x)
    # the advantage grows with mobility rate
    gain_slow = wp2p.y[0] / max(default.y[0], 1e-9)
    gain_fast = wp2p.y[-1] / max(default.y[-1], 1e-9)
    print(f"gain slow={gain_slow:.2f}, fast={gain_fast:.2f}")
    assert gain_fast > gain_slow
    # default degrades with mobility
    assert default.y[-1] < default.y[0]
