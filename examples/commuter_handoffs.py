#!/usr/bin/env python3
"""A commuting peer hopping between access points: deployed-client task
restarts vs wP2P identity retention + role reversal (paper §4.2–4.3,
Figures 8(b) and 9(c)).

The commuter's laptop changes IP address every minute.  The default client
reacts the way 2008-era clients actually did: tear the task down, restart
it under a fresh peer ID, wait for the tracker — forfeiting every bit of
tit-for-tat credit it had earned.  The wP2P client keeps its peer ID
(credit survives) and immediately re-initiates connections to the peers it
remembers (role reversal).

Run:  python examples/commuter_handoffs.py
"""

from __future__ import annotations

from repro.bittorrent import ClientConfig
from repro.bittorrent.swarm import SwarmScenario
from repro.wp2p import WP2PClient, WP2PConfig


def build_swarm(seed: int):
    scenario = SwarmScenario(
        seed=seed, file_size=48 * 1024 * 1024, piece_length=131_072,
        tracker_interval=60.0, torrent_name="distro-image",
    )
    fixed_cfg = ClientConfig(unchoke_slots=2, optimistic_every=5, choke_interval=5.0)
    for i in range(2):
        scenario.add_wired_peer(f"seed-{i}", complete=True, up_rate=80_000, config=fixed_cfg)
    for i in range(6):
        scenario.add_wired_peer(f"peer-{i}", up_rate=60_000, config=fixed_cfg)
    return scenario


def run_commute(use_wp2p: bool, seed: int = 17, duration: float = 300.0):
    scenario = build_swarm(seed)
    if use_wp2p:
        cfg = WP2PConfig(
            am_enabled=False, mobility_aware_fetching=False,
            unchoke_slots=2, choke_interval=5.0,
        )
        commuter = scenario.add_wireless_peer(
            "commuter", rate=400_000, client_factory=WP2PClient, config=cfg
        )
    else:
        cfg = ClientConfig(unchoke_slots=2, choke_interval=5.0, task_restart_delay=15.0)
        commuter = scenario.add_wireless_peer("commuter", rate=400_000, config=cfg)
    scenario.add_mobility(commuter, interval=60.0, downtime=1.0, jitter=5.0)
    scenario.start_all()

    checkpoints = []
    while scenario.sim.now < duration:
        scenario.run(until=scenario.sim.now + 60.0)
        checkpoints.append(commuter.client.downloaded.total / 1e6)
    ids_used = 1 + commuter.client.task_restarts if not use_wp2p else 1
    return checkpoints, commuter.client, ids_used


def main() -> None:
    print("IP address changes every 60 s; download runs for 5 minutes.\n")
    results = {}
    for label, wp2p in (("default client", False), ("wP2P client", True)):
        checkpoints, client, ids = run_commute(wp2p)
        results[label] = checkpoints
        timeline = "  ".join(f"{mb:5.1f}" for mb in checkpoints)
        print(f"{label:>15}:  {timeline}  MB  (peer IDs used: "
              f"{1 if wp2p else 1 + client.task_restarts})")
    default_final = results["default client"][-1]
    wp2p_final = results["wP2P client"][-1]
    print(f"\nwP2P downloaded {wp2p_final - default_final:+.1f} MB more "
          f"({100 * (wp2p_final / default_final - 1):+.0f}%) in the same commute.")


if __name__ == "__main__":
    main()
