#!/usr/bin/env python3
"""Downloading over a lossy Wi-Fi link: default client vs wP2P's
Age-based Manipulation (paper §4.1 / Figure 8(a)).

Two laptops on flaky coffee-shop Wi-Fi hold complementary halves of a file
and trade them over one bi-directional TCP connection.  The wP2P laptop
runs the AM Netfilter module: while the remote sender's window is small it
sends its ACKs as separate 40-byte packets that survive the bit errors that
kill 1.5 KB data frames, and during loss recovery it thins the pure-DUPACK
flood.

Run:  python examples/lossy_wifi_download.py
"""

from __future__ import annotations

from repro.bittorrent.swarm import SwarmScenario
from repro.wp2p import WP2PClient, WP2PConfig


def trade_halves(ber: float, seed: int = 11, duration: float = 60.0):
    """Run the two-laptop exchange; returns (default KB/s, wP2P KB/s, am)."""
    scenario = SwarmScenario(
        seed=seed, file_size=6 * 1024 * 1024, piece_length=65_536,
        torrent_name="conference-slides",
    )
    pieces = scenario.torrent.num_pieces
    evens = [i for i in range(pieces) if i % 2 == 0]
    odds = [i for i in range(pieces) if i % 2 == 1]

    default = scenario.add_wireless_peer(
        "laptop-default", rate=100_000, ber=ber, initial_pieces=evens
    )
    am_config = WP2PConfig(
        mobility_aware_fetching=False, identity_retention=False, role_reversal=False
    )
    wp2p = scenario.add_wireless_peer(
        "laptop-wp2p", rate=100_000, ber=ber, initial_pieces=odds,
        client_factory=WP2PClient, config=am_config,
    )
    scenario.start_all()
    scenario.run(until=5.0)
    base_default = default.client.downloaded.total
    base_wp2p = wp2p.client.downloaded.total
    scenario.run(until=5.0 + duration)
    return (
        (default.client.downloaded.total - base_default) / duration / 1000,
        (wp2p.client.downloaded.total - base_wp2p) / duration / 1000,
        wp2p.client.am,
    )


def main() -> None:
    print(f"{'BER':>10}  {'default':>10}  {'wP2P':>10}  {'AM actions'}")
    for ber in (1e-6, 5e-6, 1e-5, 1.5e-5, 3e-5):
        default_kbps, wp2p_kbps, am = trade_halves(ber)
        actions = (
            f"{am.acks_decoupled} ACKs decoupled, "
            f"{am.dupacks_dropped}/{am.dupacks_seen} DUPACKs dropped"
        )
        print(f"{ber:>10.1e}  {default_kbps:8.1f}KB  {wp2p_kbps:8.1f}KB  {actions}")
    print("\nSame file, same radio, same losses — the wP2P laptop just")
    print("manipulates *when* its ACK information rides alone.")


if __name__ == "__main__":
    main()
