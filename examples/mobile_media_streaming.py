#!/usr/bin/env python3
"""Streaming media on a mobile host: rarest-first vs wP2P's mobility-aware
fetching when the network disappears mid-download.

A commuter starts downloading a video and loses connectivity for good at
60% downloaded (train enters a tunnel, paper §3.6).  How much of the video
can they watch offline?

* Default BitTorrent (rarest-first): pieces are scattered — almost nothing
  from the head of the file is in sequence.
* wP2P mobility-aware fetching: early pieces were fetched mostly in order
  (pr, the rarest-first probability, grows with progress), so a large
  prefix plays back.

Run:  python examples/mobile_media_streaming.py
"""

from __future__ import annotations

from repro.bittorrent import RarestFirstSelector
from repro.bittorrent.swarm import SwarmScenario
from repro.media import playable_fraction
from repro.wp2p import WP2PClient, WP2PConfig


def download_until(fraction: float, use_wp2p: bool, seed: int = 7):
    """Download a 20-piece video until ``fraction`` complete, then cut the
    network.  Returns (downloaded %, playable %)."""
    scenario = SwarmScenario(
        seed=seed,
        file_size=20 * 262_144,  # 5 MB-class video, 20 pieces (paper Fig 4b/9a)
        piece_length=262_144,
        torrent_name="holiday-video",
    )
    for i in range(3):
        scenario.add_wired_peer(f"seed-{i}", complete=True, up_rate=80_000)

    if use_wp2p:
        config = WP2PConfig(am_enabled=False, identity_retention=False, role_reversal=False)
        mobile = scenario.add_wireless_peer(
            "commuter", rate=200_000, client_factory=WP2PClient, config=config
        )
    else:
        mobile = scenario.add_wireless_peer(
            "commuter", rate=200_000, selector=RarestFirstSelector()
        )

    scenario.start_all()
    while mobile.client.progress < fraction and scenario.sim.now < 600:
        scenario.run(until=scenario.sim.now + 1.0)

    # The tunnel: interface down, and it stays down.
    from repro.net.mobility import disconnect_host

    disconnect_host(mobile.host, scenario.internet, scenario.alloc)

    downloaded = 100 * mobile.client.progress
    playable = 100 * playable_fraction(scenario.torrent, mobile.client.manager.bitfield)
    return downloaded, playable


def main() -> None:
    cutoff = 0.6
    print(f"Scenario: connectivity lost for good at ~{cutoff:.0%} downloaded\n")
    for label, use_wp2p in (("Default BitTorrent (rarest-first)", False),
                            ("wP2P (mobility-aware fetching)", True)):
        downloaded, playable = download_until(cutoff, use_wp2p)
        bar = "#" * int(playable / 2)
        print(f"{label}:")
        print(f"  downloaded {downloaded:5.1f}% of the video")
        print(f"  playable   {playable:5.1f}%  |{bar:<50}|")
        print()
    print("The same bytes were spent; only the fetch ORDER differs.")


if __name__ == "__main__":
    main()
