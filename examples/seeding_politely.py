#!/usr/bin/env python3
"""Seeding politely: LIHD for a mobile seed (the paper's §4.2 future work).

After finishing a download, a laptop stays in the swarm as a seed — good
citizenship, but its uploads share the wireless channel with everything
else the user is doing.  Here the user starts a large HTTP download while
the laptop seeds a popular file to three leeches.

* Without control, the seed's uploads contend for airtime and the user's
  download crawls.
* With seed-LIHD, the upload cap adapts (linear increase, history-based
  decrease) against the *foreground* download rate: the swarm still gets
  served, the user barely notices.

Run:  python examples/seeding_politely.py
"""

from __future__ import annotations

from repro.apps import BulkServer, ForegroundDownload
from repro.bittorrent.swarm import SwarmScenario
from repro.net import Host, attach_wired_host
from repro.tcp import TCPStack
from repro.wp2p import seed_lihd


def run(with_lihd: bool, seed: int = 5, duration: float = 90.0):
    scenario = SwarmScenario(
        seed=seed, file_size=8 * 1024 * 1024, piece_length=65_536,
        torrent_name="popular-album",
    )
    for i in range(3):
        scenario.add_wired_peer(f"leech-{i}", down_rate=500_000, up_rate=48_000)
    laptop = scenario.add_wireless_peer("laptop", complete=True, rate=120_000)

    # The web server hosting the user's own download.
    web = Host(scenario.sim, "webserver")
    TCPStack(scenario.sim, web)
    attach_wired_host(scenario.sim, web, scenario.internet,
                      scenario.alloc.allocate(),
                      down_rate=1_000_000, up_rate=1_000_000)
    server = BulkServer(scenario.sim, web, port=8080)
    foreground = ForegroundDownload(scenario.sim, laptop.host, web.ip, 8080)

    controller = None
    if with_lihd:
        controller = seed_lihd(
            laptop.client, foreground.rate, u_max=100_000.0, interval=3.0
        )
        controller.start()

    scenario.start_all()
    scenario.run(until=duration)
    return foreground, laptop, controller


def main() -> None:
    duration = 90.0
    print("Laptop seeds an album to 3 leeches while the user downloads a file.\n")
    rows = []
    for label, lihd in (("uncapped seeding", False), ("seed-LIHD", True)):
        foreground, laptop, controller = run(lihd, duration=duration)
        rows.append((label,
                     foreground.bytes_received / duration / 1000,
                     laptop.client.uploaded.total / duration / 1000))
    print(f"{'mode':>18}  {'user download':>14}  {'swarm upload':>13}")
    for label, down, up in rows:
        print(f"{label:>18}  {down:11.1f} KB/s  {up:10.1f} KB/s")
    improvement = 100 * (rows[1][1] / rows[0][1] - 1)
    print(f"\nseed-LIHD gave the user {improvement:+.0f}% download throughput "
          f"while the laptop kept seeding.")


if __name__ == "__main__":
    main()
