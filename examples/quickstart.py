#!/usr/bin/env python3
"""Quickstart: build a BitTorrent swarm in the simulator and download a file.

Creates a tracker, one seed, two fixed leeches, and a wireless mobile leech,
then runs the swarm until everyone has the file, printing progress as the
simulation advances.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.bittorrent.swarm import SwarmScenario


def main() -> None:
    # A 2 MiB file in 64 KiB pieces, tracked by a simulated tracker.
    scenario = SwarmScenario(
        seed=42,
        file_size=2 * 1024 * 1024,
        piece_length=65_536,
        torrent_name="quickstart-demo",
    )

    # One seed on a fast wired link; two fixed leeches on cable-style links;
    # one mobile leech behind a 100 KB/s wireless cell with mild bit errors.
    scenario.add_wired_peer("seed", complete=True, up_rate=200_000)
    scenario.add_wired_peer("leech-1")
    scenario.add_wired_peer("leech-2")
    mobile = scenario.add_wireless_peer("mobile", rate=100_000, ber=1e-6)

    scenario.start_all()

    print(f"torrent: {scenario.torrent.name}  "
          f"({scenario.torrent.total_size} bytes, "
          f"{scenario.torrent.num_pieces} pieces)")
    print(f"{'time':>6}  {'leech-1':>8}  {'leech-2':>8}  {'mobile':>8}")

    leeches = ["leech-1", "leech-2", "mobile"]
    while not all(scenario[n].client.complete for n in leeches):
        scenario.run(until=scenario.sim.now + 5.0)
        row = "  ".join(
            f"{100 * scenario[n].client.progress:7.1f}%" for n in leeches
        )
        print(f"{scenario.sim.now:5.0f}s  {row}")
        if scenario.sim.now > 600:
            break

    print()
    for name in leeches:
        client = scenario[name].client
        status = "complete" if client.complete else f"{100 * client.progress:.0f}%"
        print(
            f"{name}: {status} at t={client.completion_time or scenario.sim.now:.1f}s, "
            f"downloaded {client.downloaded.total / 1e6:.2f} MB, "
            f"uploaded {client.uploaded.total / 1e6:.2f} MB"
        )
    print(f"\nwireless stats: {mobile.channel.frames_lost} frames lost to bit errors, "
          f"{len(mobile.channel.buffer_drops)} buffer drops")


if __name__ == "__main__":
    main()
