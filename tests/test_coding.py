"""repro.coding: codecs, digest pinning, coded swarms, and sampling.

Covers the ISSUE acceptance contract for the erasure-coded content
tier: default-content cell digests stay byte-identical to the
pre-codec era while non-default content caches disjointly; the
GroupCodec decoding law (any ``required`` in-group pieces reconstruct,
fewer never do); coded swarms that complete with partial bitfields
under a clean audit; the availability sampler's ``coding.*`` metrics;
and the fluid tier's coded-availability surrogate.
"""

from __future__ import annotations

import hashlib
import random

import pytest

from repro import audit, coding
from repro.bittorrent.bitfield import Bitfield
from repro.bittorrent.selection import make_selector
from repro.bittorrent.swarm import SwarmScenario
from repro.coding import (
    DEFAULT_K,
    DEFAULT_N,
    GroupCodec,
    ReplicationCodec,
    coded_file_size,
    content_is_default,
    content_label,
    custody_column,
    make_codec,
    normalize_content,
)
from repro.runner import Runner, ScenarioSpec
from repro.runner.spec import canonical_json, cell_digest
from repro.scale import coded_fetchability, content_rate_factor

KIB = 1024


class FakeTorrent:
    """Duck-typed torrent for codec unit tests (no protocol layer)."""

    def __init__(self, num_pieces: int, piece_length: int = 16_384,
                 last_piece: int | None = None) -> None:
        self.num_pieces = num_pieces
        self.piece_length = piece_length
        self._last = piece_length if last_piece is None else last_piece
        self.total_size = piece_length * (num_pieces - 1) + self._last

    def piece_size(self, index: int) -> int:
        return self._last if index == self.num_pieces - 1 else self.piece_length


# ----------------------------------------------------------------------
# Content specs
# ----------------------------------------------------------------------
class TestContentSpec:
    def test_parse_forms(self):
        assert normalize_content("replication") == {"mode": "replication"}
        assert normalize_content("group") == {
            "mode": "group", "k": DEFAULT_K, "n": DEFAULT_N,
        }
        assert normalize_content("group:2/3") == {"mode": "group", "k": 2, "n": 3}
        assert normalize_content({"mode": "group", "k": 3, "n": 5}) == {
            "mode": "group", "k": 3, "n": 5,
        }
        assert normalize_content('{"mode": "group", "k": 2, "n": 4}') == {
            "mode": "group", "k": 2, "n": 4,
        }

    @pytest.mark.parametrize("bad", [
        "erasure", "group:0/6", "group:7/6", "group:4", "group:4-6",
        {"mode": "group", "k": 4, "n": 6, "parity": 2},
        {"mode": "replication", "k": 4},
        42,
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises((ValueError, TypeError)):
            normalize_content(bad)

    def test_default_detection_and_label(self):
        assert content_is_default(None)
        assert content_is_default({"mode": "replication"})
        assert not content_is_default(normalize_content("group:4/6"))
        assert content_label(None) == "replication"
        assert content_label(normalize_content("group:4/6")) == "group:4/6"

    def test_coded_file_size_expansion(self):
        assert coded_file_size(1000, 4, 6) == 1500
        assert coded_file_size(1000, 1, 1) == 1000
        # ceiling, never truncation
        assert coded_file_size(1001, 4, 6) == -(-1001 * 6 // 4)
        with pytest.raises(ValueError):
            coded_file_size(1000, 6, 4)

    def test_custody_columns_partition_piece_space(self):
        columns = [custody_column(17, j, 3) for j in range(3)]
        merged = sorted(i for column in columns for i in column)
        assert merged == list(range(17))
        with pytest.raises(ValueError):
            custody_column(17, 3, 3)

    def test_make_codec_dispatch(self):
        torrent = FakeTorrent(12)
        assert isinstance(make_codec(None, torrent), ReplicationCodec)
        assert isinstance(make_codec("replication", torrent), ReplicationCodec)
        grouped = make_codec("group:4/6", torrent)
        assert isinstance(grouped, GroupCodec)
        assert (grouped.k, grouped.n) == (4, 6)


# ----------------------------------------------------------------------
# Digest pinning: the only-when-non-default contract
# ----------------------------------------------------------------------
class TestContentDigests:
    def test_default_content_digest_is_byte_identical_to_pre_codec_era(self):
        spec = ScenarioSpec.create("figx", {"runs": 2})
        got = cell_digest(spec, ("k", 10), 7, code="pinned")
        # The exact body the pre-codec cell_digest hashed: no "content"
        # key.  Any change here silently invalidates (or worse, aliases)
        # every cached default-content result — keep it frozen.
        legacy_body = canonical_json({
            "scenario": "figx",
            "params": {"runs": 2},
            "key": ["k", 10],
            "seed": 7,
            "code": "pinned",
        })
        expected = hashlib.sha256(legacy_body.encode("utf-8")).hexdigest()
        assert got == expected

    def test_content_modes_cache_disjointly(self):
        specs = [
            ScenarioSpec.create("figx", {"runs": 2}, content=content)
            for content in (
                None,
                normalize_content("group:4/6"),
                normalize_content("group:2/3"),
            )
        ]
        assert len({s.spec_hash() for s in specs}) == 3
        assert len({
            cell_digest(s, ("k",), 1, code="c") for s in specs
        }) == 3

    def test_runner_normalizes_default_content_away(self):
        # Asking for plain replication explicitly must land at exactly
        # the default addresses — the runner drops it before the spec.
        assert Runner(content="replication").content is None
        assert Runner(content=None).content is None
        assert Runner(content="group:4/6").content == {
            "mode": "group", "k": 4, "n": 6,
        }
        with pytest.raises(ValueError):
            Runner(content="group:9/6")


# ----------------------------------------------------------------------
# The decoding law
# ----------------------------------------------------------------------
class TestGroupCodecProperties:
    def test_any_k_subset_reconstructs_and_k_minus_one_never_does(self):
        rng = random.Random(20260809)
        for _ in range(40):
            n = rng.randrange(2, 9)
            k = rng.randrange(1, n + 1)
            num_pieces = rng.randrange(n + 1, 6 * n)
            codec = GroupCodec(FakeTorrent(num_pieces), k=k, n=n)
            for group in range(codec.num_groups):
                members = list(codec.group_indices(group))
                required = codec.required(group)
                assert required == min(k, len(members))
                for _ in range(4):
                    enough = rng.sample(members, required)
                    assert codec.reconstructs(group, enough)
                    if required > 0:
                        assert not codec.reconstructs(group, enough[:-1])
                # out-of-group pieces never help
                outsiders = [i for i in range(num_pieces) if i not in members]
                short = rng.sample(members, max(required - 1, 0))
                assert not codec.reconstructs(group, short + outsiders)

    def test_tail_group_geometry(self):
        codec = GroupCodec(FakeTorrent(16), k=4, n=6)  # groups 6 / 6 / 4
        assert codec.num_groups == 3
        assert [codec.required(g) for g in range(3)] == [4, 4, 4]
        codec = GroupCodec(FakeTorrent(14), k=4, n=6)  # tail of 2
        assert codec.required(2) == 2

    def test_complete_from_any_required_subset_only(self):
        rng = random.Random(7)
        codec = GroupCodec(FakeTorrent(16), k=4, n=6)
        held = [
            index
            for group in range(codec.num_groups)
            for index in rng.sample(
                list(codec.group_indices(group)), codec.required(group)
            )
        ]
        bitfield = Bitfield(16, held)
        assert codec.is_complete(bitfield)
        assert not bitfield.complete
        assert codec.decoded_bytes(bitfield) == codec.source_size
        # dropping any single held piece breaks exactly one group
        broken = Bitfield(16, held[1:])
        assert not codec.is_complete(broken)
        assert sum(codec.decodable_groups(broken)) == codec.num_groups - 1

    def test_source_size_is_the_decoded_payload(self):
        torrent = FakeTorrent(16, piece_length=16_384, last_piece=1_000)
        codec = GroupCodec(torrent, k=4, n=6)
        # groups decode 4 + 4 + 4 pieces worth; the short last piece sits
        # in the tail group's required prefix only if selected there.
        assert codec.source_size == sum(
            codec.group_source_bytes(g) for g in range(codec.num_groups)
        )
        assert codec.source_size < torrent.total_size


# ----------------------------------------------------------------------
# Coded swarms end-to-end
# ----------------------------------------------------------------------
def coded_swarm(seed: int = 90, content: str = "group:4/6") -> SwarmScenario:
    sc = SwarmScenario(
        seed=seed, file_size=384 * KIB, piece_length=16 * KIB,
        content=content,
    )
    sc.add_wired_peer("seed", complete=True)
    sc.add_wired_peer("leech")
    return sc


class TestCodedSwarm:
    def test_completes_with_partial_bitfield_audit_clean(self):
        with audit.audited() as auditors:
            sc = coded_swarm()
            sc.start_all()
            assert sc.run_until_complete(["leech"], timeout=600)
        manager = sc["leech"].client.manager
        assert manager.complete
        assert not manager.bitfield.complete  # decoded, not exhaustive
        assert manager.content_progress == 1.0
        # 24 pieces in 4 groups of 6: completion needs 4 per group, and
        # the piece picker never *starts* redundant pieces, so at most a
        # few in-flight extras land beyond the 16 required.
        have = len(list(manager.bitfield.indices()))
        assert 16 <= have < 24
        assert sc["leech"].client.completion_time is not None
        assert all(a.ok for a in auditors)

    def test_custody_seeded_swarm_completes(self):
        with audit.audited() as auditors:
            sc = SwarmScenario(
                seed=91, file_size=384 * KIB, piece_length=16 * KIB,
                content="group:4/6",
            )
            for j in range(3):
                sc.add_wired_peer(
                    f"cust{j}",
                    initial_pieces=sc.custody_pieces(j, 3),
                    selector=make_selector("hold"),
                )
            sc.add_wired_peer("leech")
            sc.start_all()
            assert sc.run_until_complete(["leech"], timeout=600)
        # custodians held their columns and nothing else
        for j in range(3):
            manager = sc[f"cust{j}"].client.manager
            assert list(manager.bitfield.indices()) == sc.custody_pieces(j, 3)
        assert sc["leech"].client.manager.complete
        assert all(a.ok for a in auditors)

    def test_coded_runs_are_deterministic(self):
        def completion(seed: int) -> float:
            sc = coded_swarm(seed=seed)
            sc.start_all()
            assert sc.run_until_complete(["leech"], timeout=600)
            return sc["leech"].client.completion_time

        assert completion(92) == completion(92)

    def test_default_content_keeps_trivial_fast_path(self):
        sc = SwarmScenario(seed=93, file_size=128 * KIB, piece_length=16 * KIB)
        handle = sc.add_wired_peer("p0")
        manager = handle.client.manager
        assert isinstance(manager.codec, ReplicationCodec)
        assert manager._grouped is None

    def test_ambient_install_reaches_internally_built_swarms(self):
        coding.install("group:2/3")
        try:
            sc = SwarmScenario(seed=94, file_size=128 * KIB,
                               piece_length=16 * KIB)
            handle = sc.add_wired_peer("p0")
            codec = handle.client.manager.codec
            assert isinstance(codec, GroupCodec)
            assert (codec.k, codec.n) == (2, 3)
        finally:
            coding.uninstall()
        sc = SwarmScenario(seed=95, file_size=128 * KIB, piece_length=16 * KIB)
        assert sc.add_wired_peer("p0").client.manager.codec.trivial


# ----------------------------------------------------------------------
# Availability sampling
# ----------------------------------------------------------------------
class TestAvailabilitySampling:
    def test_sampler_attaches_and_publishes_metrics(self):
        sc = coded_swarm(seed=96)
        sc.start_all()
        sc.run(until=60.0)
        snapshot = sc.sim.metrics.snapshot()
        assert snapshot["coding.samples"]["total"] > 0
        assert 0.0 <= snapshot["coding.availability_min"]["value"] <= 1.0
        assert 0.0 <= snapshot["coding.availability_mean"]["value"] <= 1.0
        sampler = sc["leech"].client._availability_sampler
        assert sampler is not None and sampler.sweeps > 0
        assert all(0.0 <= e <= 1.0 for e in sampler.group_estimates.values())

    def test_trivial_codec_attaches_no_sampler(self):
        sc = SwarmScenario(seed=97, file_size=128 * KIB, piece_length=16 * KIB)
        handle = sc.add_wired_peer("p0")
        assert handle.client._availability_sampler is None


# ----------------------------------------------------------------------
# The fluid tier's coded-availability surrogate
# ----------------------------------------------------------------------
class TestCodedSurrogate:
    def test_replication_is_the_degenerate_geometry(self):
        for a in (0.0, 0.3, 0.7, 1.0):
            assert coded_fetchability(a, 1, 1) == pytest.approx(a)
            assert content_rate_factor("replication", a) == pytest.approx(a)

    def test_redundancy_only_helps(self):
        for a in (0.1, 0.5, 0.9):
            f = coded_fetchability(a, 4, 6)
            assert f >= a
            # more spare pieces, more fetchability
            assert coded_fetchability(a, 2, 6) >= f
            # k == n has no alternates: back to replication
            assert coded_fetchability(a, 6, 6) == pytest.approx(a)

    def test_default_mode_models_nothing(self):
        assert content_rate_factor("", 0.123) == 1.0
        with pytest.raises(ValueError):
            content_rate_factor("parity", 0.5)
        with pytest.raises(ValueError):
            coded_fetchability(0.5, 6, 4)
