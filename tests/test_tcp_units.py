"""Unit tests for TCP building blocks: RTT estimation, congestion control,
segments."""

from __future__ import annotations

import pytest

from repro.tcp import (
    ACK,
    FIN,
    RST,
    SYN,
    NewRenoCongestionControl,
    RTTEstimator,
    TCPSegment,
    pure_ack,
)
from repro.tcp.congestion import CONGESTION_AVOIDANCE, FAST_RECOVERY, SLOW_START


class TestRTTEstimator:
    def test_first_sample_initialises(self):
        est = RTTEstimator()
        est.sample(0.1)
        assert est.srtt == pytest.approx(0.1)
        assert est.rttvar == pytest.approx(0.05)
        assert est.rto >= est.min_rto

    def test_smoothing_converges(self):
        est = RTTEstimator()
        for _ in range(100):
            est.sample(0.2)
        assert est.srtt == pytest.approx(0.2, rel=0.01)
        assert est.rto == pytest.approx(max(est.min_rto, 0.2 + est.granularity), rel=0.2)

    def test_variance_reacts_to_jitter(self):
        est = RTTEstimator()
        est.sample(0.1)
        rto_stable = est.rto
        est.sample(0.5)
        assert est.rto > rto_stable

    def test_backoff_doubles_and_caps(self):
        est = RTTEstimator(initial_rto=1.0, max_rto=4.0)
        est.backoff()
        assert est.rto == pytest.approx(2.0)
        est.backoff()
        assert est.rto == pytest.approx(4.0)
        est.backoff()
        assert est.rto == pytest.approx(4.0)  # capped

    def test_sample_clears_backoff(self):
        est = RTTEstimator(initial_rto=1.0)
        est.backoff()
        est.sample(0.1)
        assert est.rto < 2.0

    def test_min_rto_floor(self):
        est = RTTEstimator(min_rto=0.3)
        for _ in range(20):
            est.sample(0.01)
        assert est.rto >= 0.3

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RTTEstimator(initial_rto=0.1, min_rto=0.2)
        est = RTTEstimator()
        with pytest.raises(ValueError):
            est.sample(-1.0)


class TestNewReno:
    def make(self, mss=1000):
        return NewRenoCongestionControl(mss=mss, initial_cwnd_segments=2,
                                        initial_ssthresh=16_000)

    def test_slow_start_doubles_per_rtt(self):
        cc = self.make()
        start = cc.cwnd
        # one window of acks in slow start: +1 MSS per ack
        for _ in range(2):
            cc.on_new_ack(1000, snd_nxt=10_000, ack=5_000)
        assert cc.cwnd == start + 2000
        assert cc.state == SLOW_START

    def test_congestion_avoidance_linear(self):
        cc = self.make()
        cc.cwnd = cc.ssthresh = 10_000
        before = cc.cwnd
        cc.on_new_ack(1000, snd_nxt=50_000, ack=20_000)
        assert cc.state == CONGESTION_AVOIDANCE
        assert before < cc.cwnd <= before + 1000

    def test_triple_dupack_enters_fast_recovery(self):
        cc = self.make()
        cc.cwnd = 10_000
        assert not cc.on_dupack(1, flight_size=10_000, snd_nxt=30_000)
        assert not cc.on_dupack(2, flight_size=10_000, snd_nxt=30_000)
        assert cc.on_dupack(3, flight_size=10_000, snd_nxt=30_000)
        assert cc.state == FAST_RECOVERY
        assert cc.ssthresh == 5_000
        assert cc.cwnd == 5_000 + 3_000
        assert cc.recover == 30_000

    def test_window_inflation_on_further_dupacks(self):
        cc = self.make()
        cc.on_dupack(3, flight_size=10_000, snd_nxt=30_000)
        cwnd = cc.cwnd
        cc.on_dupack(4, flight_size=10_000, snd_nxt=30_000)
        assert cc.cwnd == cwnd + 1000

    def test_partial_ack_stays_in_recovery(self):
        cc = self.make()
        cc.on_dupack(3, flight_size=10_000, snd_nxt=30_000)
        retransmit = cc.on_new_ack(2_000, snd_nxt=30_000, ack=25_000)
        assert retransmit is True
        assert cc.state == FAST_RECOVERY

    def test_full_ack_exits_recovery(self):
        cc = self.make()
        cc.on_dupack(3, flight_size=10_000, snd_nxt=30_000)
        retransmit = cc.on_new_ack(10_000, snd_nxt=30_000, ack=30_000)
        assert retransmit is False
        assert cc.state != FAST_RECOVERY
        assert cc.cwnd == cc.ssthresh

    def test_timeout_collapses_window(self):
        cc = self.make()
        cc.cwnd = 20_000
        cc.on_timeout(flight_size=20_000)
        assert cc.cwnd == cc.min_cwnd
        assert cc.ssthresh == 10_000
        assert cc.state == SLOW_START
        assert cc.timeouts == 1

    def test_ssthresh_floor_two_mss(self):
        cc = self.make()
        cc.on_timeout(flight_size=1_000)
        assert cc.ssthresh == 2_000

    def test_idle_restart(self):
        cc = self.make()
        cc.cwnd = 30_000
        cc.on_idle_restart()
        assert cc.cwnd == 2_000
        assert cc.state == SLOW_START


class TestSegments:
    def test_wire_size(self):
        seg = TCPSegment(1, 2, 0, 0, ACK, payload_len=1460)
        assert seg.wire_size == 1480
        assert pure_ack(1, 2, 0, 0).wire_size == 20  # +20B IP header on wire

    def test_seq_span_includes_syn_fin(self):
        assert TCPSegment(1, 2, 0, None, SYN).seq_span == 1
        assert TCPSegment(1, 2, 5, 0, FIN | ACK).seq_span == 1
        assert TCPSegment(1, 2, 5, 0, ACK, payload_len=10).seq_span == 10
        assert TCPSegment(1, 2, 0, 0, SYN | ACK).end_seq == 1

    def test_pure_ack_detection(self):
        assert pure_ack(1, 2, 0, 9).is_pure_ack
        assert not TCPSegment(1, 2, 0, 9, ACK, payload_len=5).is_pure_ack
        assert not TCPSegment(1, 2, 0, 9, FIN | ACK).is_pure_ack
        assert not TCPSegment(1, 2, 0, 9, RST | ACK).is_pure_ack

    def test_ack_flag_requires_ack_number(self):
        with pytest.raises(ValueError):
            TCPSegment(1, 2, 0, None, ACK)

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            TCPSegment(1, 2, 0, 0, ACK, payload_len=-1)

    def test_flag_names(self):
        assert TCPSegment(1, 2, 0, 0, SYN | ACK).flag_names() == "SYN|ACK"
        assert TCPSegment(1, 2, 0, None, 0).flag_names() == "-"
