"""Unit/integration tests for Age-based Manipulation (AM)."""

from __future__ import annotations

import pytest

from repro.net import Packet
from repro.tcp import ACK, TCPSegment, pure_ack
from repro.wp2p import MATURE, YOUNG, AgeBasedManipulation

from tests.helpers import Message, TwoHostNet


def data_packet(src, dst, sport, dport, seq, ack, length=1460):
    seg = TCPSegment(sport, dport, seq, ack, ACK, length)
    return Packet(src, dst, seg, created_at=0.0)


def ack_packet(src, dst, sport, dport, seq, ack):
    return Packet(src, dst, pure_ack(sport, dport, seq, ack), created_at=0.0)


class TestAMUnit:
    def make_am(self, **kwargs):
        net = TwoHostNet(wireless=True)
        am = AgeBasedManipulation(net.sim, net.b, **kwargs)
        am.install()
        return net, am

    def test_install_uninstall(self):
        net, am = self.make_am()
        assert am.installed
        am.uninstall()
        assert not am.installed
        am.uninstall()  # idempotent

    def test_young_connection_decouples_piggybacked_ack(self):
        net, am = self.make_am()
        # no ingress traffic seen: flow defaults to YOUNG
        pkt = data_packet(net.b.ip, net.a.ip, 6881, 50000, seq=1, ack=500)
        out = net.b.netfilter.egress.apply(pkt)
        assert len(out) == 2
        injected, original = out
        assert injected.payload.is_pure_ack
        assert injected.payload.ack == 500
        assert original is pkt
        assert am.acks_decoupled == 1

    def test_duplicate_ack_value_not_decoupled_twice(self):
        net, am = self.make_am()
        pkt1 = data_packet(net.b.ip, net.a.ip, 6881, 50000, seq=1, ack=500)
        pkt2 = data_packet(net.b.ip, net.a.ip, 6881, 50000, seq=1461, ack=500)
        assert len(net.b.netfilter.egress.apply(pkt1)) == 2
        # same cumulative ack: no new information, no decoupling
        assert len(net.b.netfilter.egress.apply(pkt2)) == 1

    def test_mature_connection_passes_piggyback_through(self):
        net, am = self.make_am(rtt_estimate=0.1, gamma_bytes=9000)
        # feed ingress data fast enough to look like a big remote cwnd
        for i in range(20):
            seg = TCPSegment(50000, 6881, i * 1460, 1, ACK, 1460)
            net.b.netfilter.ingress.apply(Packet(net.a.ip, net.b.ip, seg))
            net.sim.schedule(0.011, lambda: None)
            net.sim.run()
        key = (6881, net.a.ip, 50000)
        assert am.flow_status(key) == MATURE
        pkt = data_packet(net.b.ip, net.a.ip, 6881, 50000, seq=1, ack=999)
        assert len(net.b.netfilter.egress.apply(pkt)) == 1

    def test_mature_drops_every_fourth_dupack(self):
        net, am = self.make_am(rtt_estimate=0.1)
        # make the flow MATURE
        for i in range(20):
            seg = TCPSegment(50000, 6881, i * 1460, 1, ACK, 1460)
            net.b.netfilter.ingress.apply(Packet(net.a.ip, net.b.ip, seg))
            net.sim.schedule(0.011, lambda: None)
            net.sim.run()
        survived = 0
        # first ACK of this value, then 12 duplicates
        out = net.b.netfilter.egress.apply(
            ack_packet(net.b.ip, net.a.ip, 6881, 50000, seq=1, ack=1000)
        )
        survived += len(out)
        for _ in range(12):
            out = net.b.netfilter.egress.apply(
                ack_packet(net.b.ip, net.a.ip, 6881, 50000, seq=1, ack=1000)
            )
            survived += len(out)
        assert am.dupacks_seen == 12
        assert am.dupacks_dropped == 3  # dupacks 4, 8, 12
        assert survived == 13 - 3

    def test_young_dupacks_not_dropped(self):
        net, am = self.make_am()
        for _ in range(8):
            out = net.b.netfilter.egress.apply(
                ack_packet(net.b.ip, net.a.ip, 6881, 50000, seq=1, ack=1000)
            )
            assert len(out) == 1
        assert am.dupacks_dropped == 0

    def test_first_three_dupacks_always_survive(self):
        """Fast retransmit needs 3 dupacks; AM must never starve it."""
        net, am = self.make_am(rtt_estimate=0.1)
        for i in range(20):
            seg = TCPSegment(50000, 6881, i * 1460, 1, ACK, 1460)
            net.b.netfilter.ingress.apply(Packet(net.a.ip, net.b.ip, seg))
            net.sim.schedule(0.011, lambda: None)
            net.sim.run()
        outs = []
        for _ in range(4):  # original + 3 dupacks
            outs.append(
                net.b.netfilter.egress.apply(
                    ack_packet(net.b.ip, net.a.ip, 6881, 50000, seq=1, ack=77)
                )
            )
        assert all(len(o) == 1 for o in outs)

    def test_parameter_validation(self):
        net = TwoHostNet(wireless=True)
        with pytest.raises(ValueError):
            AgeBasedManipulation(net.sim, net.b, gamma_bytes=0)
        with pytest.raises(ValueError):
            AgeBasedManipulation(net.sim, net.b, rtt_estimate=0)
        with pytest.raises(ValueError):
            AgeBasedManipulation(net.sim, net.b, dupack_modulus=1)


class TestAMEndToEnd:
    def test_transfer_still_correct_with_am(self):
        """AM must be transparent: same data, same order, no corruption."""
        net = TwoHostNet(seed=4, wireless=True, ber=1e-5)
        am = AgeBasedManipulation(net.sim, net.b)
        am.install()
        received = []

        def accept(conn):
            conn.on_message = lambda m: received.append(m.tag)

        net.stack_b.listen(6881, accept)
        client = net.stack_a.connect(net.b.ip, 6881)
        server_holder = []

        # bidirectional: also send from b so piggybacking happens
        def on_est():
            pass

        client.on_established = on_est
        back = []
        client.on_message = lambda m: back.append(m.tag)
        for i in range(100):
            client.send_message(Message(1460, i))
        net.sim.run(until=120.0)
        assert received == list(range(100))

    def test_am_decouples_in_bidirectional_transfer(self):
        net = TwoHostNet(seed=5, wireless=True, ber=5e-6)
        am = AgeBasedManipulation(net.sim, net.b)
        am.install()
        server_conns = []

        def accept(conn):
            conn.received = []
            conn.on_message = lambda m: conn.received.append(m.tag)
            server_conns.append(conn)

        net.stack_b.listen(6881, accept)
        client = net.stack_a.connect(net.b.ip, 6881)
        client.on_message = lambda m: None
        net.sim.run(until=1.0)
        server = server_conns[0]
        for i in range(150):
            client.send_message(Message(1460, i))
            server.send_message(Message(1460, i))
        net.sim.run(until=180.0)
        assert server.received == list(range(150))
        assert am.acks_decoupled > 0
