"""Tests for result rendering and analysis helpers."""

from __future__ import annotations

import pytest

from repro.analysis import (
    ExperimentResult,
    Series,
    ascii_chart,
    average_runs,
    campaign_report,
    compare_first_last,
)


def result_with(series):
    return ExperimentResult(
        figure="Fig T", title="Test", x_label="x", y_label="y", series=series
    )


class TestAsciiChart:
    def test_renders_all_series_markers(self):
        r = result_with([
            Series("alpha", [0, 1, 2], [0.0, 5.0, 10.0]),
            Series("beta", [0, 1, 2], [10.0, 5.0, 0.0]),
        ])
        chart = ascii_chart(r)
        assert "Fig T" in chart
        assert "* alpha" in chart
        assert "o beta" in chart
        body = "\n".join(chart.split("\n")[1:-3])  # grid rows only
        assert "*" in body and "o" in body

    def test_empty_result(self):
        r = result_with([])
        assert "(no data)" in ascii_chart(r)

    def test_single_point_series(self):
        r = result_with([Series("solo", [5.0], [7.0])])
        chart = ascii_chart(r)
        assert "solo" in chart

    def test_constant_series_no_div_by_zero(self):
        r = result_with([Series("flat", [0, 1, 2], [3.0, 3.0, 3.0])])
        chart = ascii_chart(r)
        assert "flat" in chart

    def test_overlapping_points_marked_ambiguous(self):
        r = result_with([
            Series("a", [0, 1], [1.0, 2.0]),
            Series("b", [0, 1], [1.0, 5.0]),
        ])
        chart = ascii_chart(r, width=10, height=5)
        assert "?" in chart


class TestCampaignReport:
    def test_concatenates_tables(self):
        r1 = result_with([Series("a", [1], [2.0])])
        r2 = ExperimentResult("Fig U", "Other", "x", "y",
                              series=[Series("b", [1], [3.0])])
        report = campaign_report([r1, r2])
        assert "Fig T" in report
        assert "Fig U" in report

    def test_with_charts(self):
        r1 = result_with([Series("a", [1, 2], [2.0, 4.0])])
        report = campaign_report([r1], charts=True)
        assert report.count("Fig T") == 2  # table header + chart header


class TestHelpers:
    def test_compare_first_last(self):
        assert compare_first_last(Series("s", [0, 1], [10.0, 15.0])) == pytest.approx(0.5)
        assert compare_first_last(Series("s", [0, 1], [10.0, 5.0])) == pytest.approx(-0.5)
        assert compare_first_last(Series("s", [], [])) == 0.0
        assert compare_first_last(Series("s", [0], [0.0])) == 0.0

    def test_average_runs(self):
        assert average_runs([[1.0, 2.0], [3.0, 4.0]]) == [2.0, 3.0]
        assert average_runs([]) == []
        with pytest.raises(ValueError):
            average_runs([[1.0], [1.0, 2.0]])
