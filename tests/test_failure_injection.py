"""Failure-injection tests: the stack must survive hostile conditions.

Corrupted pieces, tracker outages, peers vanishing mid-transfer, hosts that
never come back, zero-capacity links — none of these may wedge a client or
corrupt its state.

The fault scenarios are driven by :mod:`repro.chaos` schedules — the same
declarative events the ``--chaos`` presets use — rather than hand-rolled
``disconnect_host`` choreography, so these tests also pin the controller's
fault semantics (crash vs blackout vs storm).
"""

from __future__ import annotations

import pytest

from repro.bittorrent.swarm import SwarmScenario
from repro.chaos import (
    ChaosSchedule,
    CorruptionBurst,
    HandoffStorm,
    LinkBlackout,
    PeerCrash,
    TrackerOutage,
)
from repro.tcp import TCPConfig

from tests.helpers import Message, TwoHostNet


class TestPieceCorruption:
    def test_download_completes_despite_hash_failures(self):
        sc = SwarmScenario(seed=31, file_size=512 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True)
        leech = sc.add_wired_peer("leech")
        sc.add_chaos(ChaosSchedule((
            CorruptionBurst(start=0.5, duration=400.0, target="leech",
                            probability=0.2),
        )))
        sc.start_all()
        assert sc.run_until_complete(["leech"], timeout=600)
        assert leech.client.manager.hash_failures > 0
        # corrupted pieces were re-downloaded: more bytes than the file
        assert leech.client.downloaded.total > sc.torrent.total_size


class TestTrackerOutage:
    def test_client_retries_when_tracker_down(self):
        sc = SwarmScenario(seed=32, file_size=256 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True)
        leech = sc.add_wired_peer("leech")
        # tracker goes dark before anyone starts, back at its old address
        # (a blackout outage restores the metainfo's tracker IP) at t=30
        sc.add_chaos(ChaosSchedule((
            TrackerOutage(start=0.0, duration=30.0, mode="blackout"),
        )))
        sc.start_all()
        sc.run(until=29.0)
        assert not leech.client.complete
        assert leech.client.known_addresses == {}
        assert sc.run_until_complete(["leech"], timeout=600)
        assert sc.torrent.tracker_ip == sc.tracker_host.ip

    def test_client_survives_tracker_never_returning(self):
        sc = SwarmScenario(seed=33, file_size=256 * 1024, piece_length=65_536)
        leech = sc.add_wired_peer("leech")
        sc.add_chaos(ChaosSchedule((
            TrackerOutage(start=0.0, duration=500.0, mode="blackout"),
        )))
        sc.start_all()
        sc.run(until=120.0)  # must not raise or wedge
        assert not leech.client.complete
        assert leech.client.started

    def test_soft_outage_refuses_then_recovers(self):
        sc = SwarmScenario(seed=39, file_size=256 * 1024, piece_length=65_536,
                           tracker_interval=10.0)
        sc.add_wired_peer("seed", complete=True)
        leech = sc.add_wired_peer("leech")
        # host stays routable, announces get TrackerError for 40 seconds
        sc.add_chaos(ChaosSchedule((
            TrackerOutage(start=0.0, duration=40.0, mode="refuse"),
        )))
        sc.start_all()
        sc.run(until=35.0)
        assert sc.tracker.refused > 0
        assert not leech.client.complete
        assert sc.run_until_complete(["leech"], timeout=600)


class TestPeerChurn:
    def test_seed_vanishes_mid_download_other_seed_finishes(self):
        sc = SwarmScenario(seed=34, file_size=1024 * 1024, piece_length=65_536)
        sc.add_wired_peer("s1", complete=True, up_rate=60_000)
        sc.add_wired_peer("s2", complete=True, up_rate=60_000)
        leech = sc.add_wired_peer("leech")
        # s1 crashes at t=8 and never rejoins (downtime=None)
        sc.add_chaos(ChaosSchedule((
            PeerCrash(start=8.0, target="s1"),
        )))
        sc.start_all()
        sc.run(until=7.5)
        assert 0 < leech.client.progress < 1
        assert sc.run_until_complete(["leech"], timeout=600)
        assert sc.chaos.faults_injected == 1

    def test_all_peers_vanish_then_client_keeps_waiting(self):
        tcp_config = TCPConfig(max_consecutive_timeouts=4, max_rto=2.0)
        sc = SwarmScenario(seed=35, file_size=1024 * 1024, piece_length=65_536,
                           tcp_config=tcp_config)
        seed = sc.add_wired_peer("seed", complete=True)
        leech = sc.add_wired_peer("leech")
        sc.add_chaos(ChaosSchedule((
            PeerCrash(start=5.0, target="seed"),
        )))
        sc.start_all()
        sc.run(until=120.0)
        # stranded connection died; client still alive and announcing
        assert leech.client.started
        assert not leech.client.complete
        assert all(p.remote_ip != seed.host.ip for p in leech.client.connected_peers())

    def test_crash_with_downtime_rejoins_and_completes(self):
        sc = SwarmScenario(seed=40, file_size=512 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True)
        leech = sc.add_wired_peer("leech")
        # the *leech* dies mid-download and rejoins 10 s later
        sc.add_chaos(ChaosSchedule((
            PeerCrash(start=4.0, target="leech", downtime=10.0),
        )))
        sc.start_all()
        sc.run(until=13.0)
        assert not leech.client.started  # crashed, not yet rejoined
        assert sc.run_until_complete(["leech"], timeout=600)
        assert leech.client.started

    def test_leech_abort_releases_outstanding_requests(self):
        sc = SwarmScenario(seed=36, file_size=512 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True, up_rate=30_000)
        l1 = sc.add_wired_peer("l1")
        sc.start_all()
        sc.run(until=5.0)
        mgr = l1.client.manager
        assert mgr.outstanding_requests()
        l1.client.stop(announce=False)
        sc.run(until=8.0)
        # a stopped client's manager has no stuck requested blocks visible
        # to a restarted task: expiry would release them
        released = mgr.expire_requests(now=1e9, timeout=30.0)
        assert isinstance(released, list)


class TestMobileBlackouts:
    def test_long_disconnection_then_resume(self):
        sc = SwarmScenario(seed=37, file_size=1024 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True)
        mob = sc.add_wireless_peer("mob", rate=150_000)
        # radio dies at t=6 for 54 s; the client process keeps running
        sc.add_chaos(ChaosSchedule((
            LinkBlackout(start=6.0, duration=54.0, target="mob"),
        )))
        sc.start_all()
        sc.run(until=10.0)
        progress_before = mob.client.progress
        sc.run(until=59.0)
        assert mob.client.progress == pytest.approx(progress_before, abs=0.05)
        assert sc.run_until_complete(["mob"], timeout=600)

    def test_rapid_flapping_interface(self):
        """Handoffs every few seconds: pathological but must not crash."""
        sc = SwarmScenario(seed=38, file_size=512 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True)
        mob = sc.add_wireless_peer("mob", rate=200_000)
        # a storm of forced handoffs against a peer with no mobility
        # controller exercises the manual disconnect/reconnect path
        sc.add_chaos(ChaosSchedule((
            HandoffStorm(start=2.0, target="mob", count=17, spacing=5.0,
                         downtime=0.5),
        )))
        sc.start_all()
        sc.run(until=90.0)
        assert mob.client.task_restarts >= 10
        assert mob.client.downloaded.total > 0


class TestTransportAbuse:
    def test_send_to_unroutable_address_times_out_cleanly(self):
        net = TwoHostNet(tcp_config=TCPConfig(max_syn_retries=2, max_rto=2.0))
        conn = net.stack_a.connect("10.99.99.99", 6881)
        closed = []
        conn.on_close = lambda r: closed.append(r)
        net.sim.run(until=60.0)
        assert closed == ["timeout"]

    def test_listener_rejects_when_host_down(self):
        net = TwoHostNet()
        net.stack_b.listen(6881, lambda c: None)
        net.b.take_down()
        conn = net.stack_a.connect("10.0.0.2", 6881)
        net.sim.run(until=2.0)
        assert not conn.established

    def test_message_flood_does_not_reorder(self):
        net = TwoHostNet(seed=9, wireless=True, ber=8e-6)
        received = []

        def accept(conn):
            conn.on_message = lambda m: received.append(m.tag)

        net.stack_b.listen(6881, accept)
        client = net.stack_a.connect(net.b.ip, 6881)
        for i in range(500):
            client.send_message(Message(400, i))
        net.sim.run(until=120.0)
        assert received == list(range(500))
