"""Failure-injection tests: the stack must survive hostile conditions.

Corrupted pieces, tracker outages, peers vanishing mid-transfer, hosts that
never come back, zero-capacity links — none of these may wedge a client or
corrupt its state.
"""

from __future__ import annotations

import pytest

from repro.bittorrent import ClientConfig
from repro.bittorrent.swarm import SwarmScenario
from repro.net.mobility import disconnect_host, reconnect_host
from repro.tcp import TCPConfig

from tests.helpers import Message, TwoHostNet


class TestPieceCorruption:
    def test_download_completes_despite_hash_failures(self):
        config = ClientConfig(corrupt_probability=0.2)
        sc = SwarmScenario(seed=31, file_size=512 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True)
        leech = sc.add_wired_peer("leech", config=config)
        sc.start_all()
        assert sc.run_until_complete(["leech"], timeout=600)
        assert leech.client.manager.hash_failures > 0
        # corrupted pieces were re-downloaded: more bytes than the file
        assert leech.client.downloaded.total > sc.torrent.total_size


class TestTrackerOutage:
    def test_client_retries_when_tracker_down(self):
        sc = SwarmScenario(seed=32, file_size=256 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True)
        leech = sc.add_wired_peer("leech")
        # tracker goes dark before anyone starts
        disconnect_host(sc.tracker_host, sc.internet, sc.alloc)
        sc.start_all()
        sc.run(until=30.0)
        assert not leech.client.complete
        assert leech.client.known_addresses == {}
        # tracker comes back at its old address
        reconnect_host(sc.tracker_host, sc.internet, sc.alloc,
                       ip=sc.torrent.tracker_ip)
        assert sc.run_until_complete(["leech"], timeout=600)

    def test_client_survives_tracker_never_returning(self):
        sc = SwarmScenario(seed=33, file_size=256 * 1024, piece_length=65_536)
        leech = sc.add_wired_peer("leech")
        disconnect_host(sc.tracker_host, sc.internet, sc.alloc)
        sc.start_all()
        sc.run(until=120.0)  # must not raise or wedge
        assert not leech.client.complete
        assert leech.client.started


class TestPeerChurn:
    def test_seed_vanishes_mid_download_other_seed_finishes(self):
        sc = SwarmScenario(seed=34, file_size=1024 * 1024, piece_length=65_536)
        s1 = sc.add_wired_peer("s1", complete=True, up_rate=60_000)
        sc.add_wired_peer("s2", complete=True, up_rate=60_000)
        leech = sc.add_wired_peer("leech")
        sc.start_all()
        sc.run(until=8.0)
        assert 0 < leech.client.progress < 1
        s1.client.stop()
        disconnect_host(s1.host, sc.internet, sc.alloc)
        assert sc.run_until_complete(["leech"], timeout=600)

    def test_all_peers_vanish_then_client_keeps_waiting(self):
        config = ClientConfig()
        tcp_config = TCPConfig(max_consecutive_timeouts=4, max_rto=2.0)
        sc = SwarmScenario(seed=35, file_size=1024 * 1024, piece_length=65_536,
                           tcp_config=tcp_config)
        seed = sc.add_wired_peer("seed", complete=True)
        leech = sc.add_wired_peer("leech", config=config)
        sc.start_all()
        sc.run(until=5.0)
        disconnect_host(seed.host, sc.internet, sc.alloc)
        sc.run(until=120.0)
        # stranded connection died; client still alive and announcing
        assert leech.client.started
        assert not leech.client.complete
        assert all(p.remote_ip != seed.host.ip for p in leech.client.connected_peers())

    def test_leech_abort_releases_outstanding_requests(self):
        sc = SwarmScenario(seed=36, file_size=512 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True, up_rate=30_000)
        l1 = sc.add_wired_peer("l1")
        sc.start_all()
        sc.run(until=5.0)
        mgr = l1.client.manager
        assert mgr.outstanding_requests()
        l1.client.stop(announce=False)
        sc.run(until=8.0)
        # a stopped client's manager has no stuck requested blocks visible
        # to a restarted task: expiry would release them
        released = mgr.expire_requests(now=1e9, timeout=30.0)
        assert isinstance(released, list)


class TestMobileBlackouts:
    def test_long_disconnection_then_resume(self):
        sc = SwarmScenario(seed=37, file_size=1024 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True)
        mob = sc.add_wireless_peer("mob", rate=150_000)
        sc.start_all()
        sc.run(until=6.0)
        progress_before = mob.client.progress
        disconnect_host(mob.host, sc.internet, sc.alloc)
        sc.run(until=60.0)
        assert mob.client.progress == pytest.approx(progress_before, abs=0.05)
        reconnect_host(mob.host, sc.internet, sc.alloc)
        assert sc.run_until_complete(["mob"], timeout=600)

    def test_rapid_flapping_interface(self):
        """Handoffs every few seconds: pathological but must not crash."""
        sc = SwarmScenario(seed=38, file_size=512 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True)
        mob = sc.add_wireless_peer("mob", rate=200_000)
        sc.add_mobility(mob, interval=5.0, downtime=0.5)
        sc.start_all()
        sc.run(until=90.0)
        assert mob.client.task_restarts >= 10
        assert mob.client.downloaded.total > 0


class TestTransportAbuse:
    def test_send_to_unroutable_address_times_out_cleanly(self):
        net = TwoHostNet(tcp_config=TCPConfig(max_syn_retries=2, max_rto=2.0))
        conn = net.stack_a.connect("10.99.99.99", 6881)
        closed = []
        conn.on_close = lambda r: closed.append(r)
        net.sim.run(until=60.0)
        assert closed == ["timeout"]

    def test_listener_rejects_when_host_down(self):
        net = TwoHostNet()
        net.stack_b.listen(6881, lambda c: None)
        net.b.take_down()
        conn = net.stack_a.connect("10.0.0.2", 6881)
        net.sim.run(until=2.0)
        assert not conn.established

    def test_message_flood_does_not_reorder(self):
        net = TwoHostNet(seed=9, wireless=True, ber=8e-6)
        received = []

        def accept(conn):
            conn.on_message = lambda m: received.append(m.tag)

        net.stack_b.listen(6881, accept)
        client = net.stack_a.connect(net.b.ip, 6881)
        for i in range(500):
            client.send_message(Message(400, i))
        net.sim.run(until=120.0)
        assert received == list(range(500))
