"""Shared test helpers (topology builders, message stubs)."""

from __future__ import annotations

from typing import Optional

from repro.net import (
    AddressAllocator,
    Host,
    Internet,
    attach_wired_host,
    attach_wireless_host,
)
from repro.sim import Simulator
from repro.tcp import TCPConfig, TCPStack


class Message:
    """Minimal application message: a payload length and a tag."""

    def __init__(self, wire_length: int, tag: object = None) -> None:
        self.wire_length = wire_length
        self.tag = tag

    def __repr__(self) -> str:
        return f"Message({self.wire_length}, tag={self.tag!r})"


class TwoHostNet:
    """A ready-made two-host topology for transport tests.

    ``a`` is wired (symmetric 500 KB/s); ``b`` is either wired or behind a
    wireless cell depending on ``wireless``/``ber``/``rate``.
    """

    def __init__(
        self,
        seed: int = 1,
        wireless: bool = False,
        ber: float = 0.0,
        rate: float = 100_000.0,
        core_delay: float = 0.02,
        tcp_config: Optional[TCPConfig] = None,
        ap_queue_packets: int = 50,
    ) -> None:
        self.sim = Simulator(seed=seed)
        self.internet = Internet(self.sim, core_delay=core_delay)
        self.alloc = AddressAllocator()
        self.a = Host(self.sim, "a")
        self.b = Host(self.sim, "b")
        self.stack_a = TCPStack(self.sim, self.a, config=tcp_config)
        self.stack_b = TCPStack(self.sim, self.b, config=tcp_config)
        self.link_a = attach_wired_host(
            self.sim, self.a, self.internet, self.alloc.allocate(),
            down_rate=500_000, up_rate=500_000,
        )
        if wireless:
            self.channel = attach_wireless_host(
                self.sim, self.b, self.internet, self.alloc.allocate(),
                rate=rate, ber=ber, ap_queue_packets=ap_queue_packets,
            )
            self.link_b = self.channel
        else:
            self.channel = None
            self.link_b = attach_wired_host(
                self.sim, self.b, self.internet, self.alloc.allocate(),
                down_rate=500_000, up_rate=500_000,
            )


def collect_messages(sink: list):
    """Build an on_message callback appending tags to ``sink``."""

    def on_message(message) -> None:
        sink.append(message.tag)

    return on_message
