"""Unit tests for measurement probes."""

from __future__ import annotations

import pytest

from repro.sim import Counter, RateMeter, Simulator, TimeSeries, mean


class TestCounter:
    def test_accumulates(self, sim):
        c = Counter(sim, "bytes")
        c.add(10)
        c.add(5)
        assert c.total == 15

    def test_history_recording(self):
        sim = Simulator()
        c = Counter(sim, "dl", record_history=True)
        sim.schedule(1.0, lambda: c.add(100))
        sim.schedule(2.0, lambda: c.add(50))
        sim.run()
        assert c.history == [(1.0, 100), (2.0, 150)]
        assert c.value_at(0.5) == 0
        assert c.value_at(1.0) == 100
        assert c.value_at(5.0) == 150

    def test_value_at_requires_history(self, sim):
        c = Counter(sim, "x")
        with pytest.raises(ValueError):
            c.value_at(0)

    def test_reset(self, sim):
        c = Counter(sim, "x", record_history=True)
        c.add(1)
        c.reset()
        assert c.total == 0
        assert c.history == []


class TestTimeSeries:
    def test_records_and_iterates(self):
        ts = TimeSeries("x")
        ts.record(1.0, 10)
        ts.record(2.0, 20)
        assert list(ts) == [(1.0, 10), (2.0, 20)]
        assert ts.last() == (2.0, 20)
        assert len(ts) == 2

    def test_rejects_time_regression(self):
        ts = TimeSeries()
        ts.record(2.0, 1)
        with pytest.raises(ValueError):
            ts.record(1.0, 2)

    def test_window(self):
        ts = TimeSeries()
        for t in range(10):
            ts.record(float(t), t)
        w = ts.window(3.0, 6.0)
        assert w.times == [3.0, 4.0, 5.0]

    def test_bucketed_counts(self):
        ts = TimeSeries()
        for t in (0.1, 0.2, 1.5, 2.9):
            ts.record(t, 1)
        counts = ts.bucketed_counts(1.0, start=0.0, end=3.0)
        assert counts == [(0.0, 2), (1.0, 1), (2.0, 1)]

    def test_bucketed_counts_invalid_bucket(self):
        ts = TimeSeries()
        with pytest.raises(ValueError):
            ts.bucketed_counts(0)

    def test_empty_series_last_is_none(self):
        assert TimeSeries().last() is None


class TestRateMeter:
    def test_rate_over_window(self):
        sim = Simulator()
        meter = RateMeter(sim, window=10.0)
        sim.schedule(0.0, lambda: meter.add(1000))
        sim.schedule(5.0, lambda: meter.add(1000))
        sim.schedule(10.0, sim.stop)
        sim.run(until=10.0)
        # 2000 bytes over the 10 s window
        assert meter.rate() == pytest.approx(200.0, rel=0.05)

    def test_old_samples_expire(self):
        sim = Simulator()
        meter = RateMeter(sim, window=5.0)
        sim.schedule(0.0, lambda: meter.add(5000))
        sim.run(until=100.0)
        assert meter.rate() == 0.0
        assert meter.total_bytes == 5000

    def test_young_meter_uses_observed_span(self):
        sim = Simulator()
        meter = RateMeter(sim, window=20.0)
        sim.schedule(0.0, lambda: meter.add(100))
        sim.schedule(1.0, lambda: meter.add(100))
        sim.run(until=1.0)
        # 200 bytes over 1 observed second, not over the whole window
        assert meter.rate() == pytest.approx(200.0, rel=0.1)

    def test_invalid_window(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            RateMeter(sim, window=0)


def test_mean():
    assert mean([1, 2, 3]) == 2
    assert mean([]) == 0.0
