"""Tests for the hybrid multi-resolution backend (:mod:`repro.scale.hybrid`).

Covers the two warranty gates (`all-focal equivalence` against the pure
packet backend, `embedding agreement` against the pure-fluid class
prediction), the coupling facade's audit-cleanliness and chaos
exemption, and the ``figx_hybrid`` scenario through the runner.
"""

from __future__ import annotations

import json

import pytest

import repro.experiments  # noqa: F401  — registers figx_hybrid
from repro import audit
from repro.chaos.schedule import ChaosSchedule, PeerCrash
from repro.runner import Runner, get_scenario
from repro.scale import (
    EQUIVALENCE_TOLERANCE,
    FACADE_NAME,
    HYBRID_EMBEDDINGS,
    HybridSpec,
    HybridSwarm,
    MatchedScenario,
    hybrid_cross_validate,
    run_hybrid,
)

KIB = 1024

#: A deliberately small matched swarm so the equivalence tests stay fast;
#: the standing MATCHED_SCENARIOS set runs in scripts/validate_scale.py.
TINY = MatchedScenario(
    name="tiny",
    description="1 seed + 2 wired + 1 mobile leecher, 256 KiB file",
    seeds=1, wired=2, mobile=1, handoff_interval=40.0,
    file_size=256 * KIB,
)


def small_background_spec(**kw) -> HybridSpec:
    defaults = dict(
        focal_seeds=0, focal_wired=1, focal_mobile=1,
        background_seeds=200.0, background_wired=800.0,
        file_size=256 * KIB, handoff_interval=40.0, max_time=900.0,
    )
    defaults.update(kw)
    return HybridSpec(**defaults)


class TestHybridSpec:
    def test_rejects_empty_focal_set(self):
        with pytest.raises(ValueError, match="focal"):
            HybridSpec(focal_seeds=0)

    def test_rejects_negative_background(self):
        with pytest.raises(ValueError, match="background"):
            HybridSpec(background_wired=-1.0)

    def test_rejects_nonpositive_coupling_interval(self):
        with pytest.raises(ValueError, match="coupling_interval"):
            HybridSpec(coupling_interval=0.0)

    def test_no_background_means_no_fluid_params(self):
        spec = HybridSpec(focal_seeds=1, focal_wired=2)
        assert not spec.has_background
        assert spec.background_params() is None

    def test_background_classes_mirror_the_spec(self):
        spec = HybridSpec(
            background_seeds=10.0, background_wired=50.0,
            background_mobile=20.0, wp2p=True, handoff_interval=60.0,
        )
        params = spec.background_params()
        assert [c.name for c in params.classes] == [
            "bg_seeds", "bg_wired", "bg_mobile"]
        seeds, wired, mobile = params.classes
        assert seeds.seed and seeds.upload_rate == spec.seed_up_rate
        assert wired.download_rate == spec.wired_down_rate
        assert mobile.wp2p and mobile.wireless_shared
        assert mobile.selection == "inorder"


class TestAllFocalEquivalence:
    def test_zero_background_reproduces_the_packet_run_exactly(self):
        packet = TINY.packet_observation(11)
        hybrid = TINY.hybrid_observation(11)
        assert hybrid.completion_time == pytest.approx(
            packet.completion_time, abs=1e-9)
        assert hybrid.mean_goodput == pytest.approx(
            packet.mean_goodput, abs=1e-9)

    def test_equivalence_rows_gate_at_exactness(self):
        report = hybrid_cross_validate(
            seeds=(11,), equivalence=[TINY], embeddings=[])
        assert report.passed, "\n" + report.table(
            labels=("reference", "hybrid"))
        assert {r.scenario for r in report.rows} == {"focal:tiny"}
        assert all(r.tolerance == EQUIVALENCE_TOLERANCE for r in report.rows)


class TestEmbeddingGate:
    def test_focal_hosts_track_the_fluid_prediction(self):
        report = hybrid_cross_validate(
            seeds=(11,), equivalence=[], embeddings=[HYBRID_EMBEDDINGS[0]])
        assert report.passed, "\n" + report.table(
            labels=("reference", "hybrid"))

    def test_wp2p_focal_hosts_keep_their_edge_inside_the_background(self):
        default = HYBRID_EMBEDDINGS[0].hybrid_observation(11)
        wp2p = HYBRID_EMBEDDINGS[1].hybrid_observation(11)
        assert wp2p.completion_time < default.completion_time


class TestCouplingFacade:
    def test_facade_exists_only_with_a_background(self):
        pure = HybridSwarm(HybridSpec(focal_seeds=1, focal_wired=1))
        assert pure.facade is None and pure.fluid is None
        assert FACADE_NAME not in pure.scenario.peers

        coupled = HybridSwarm(small_background_spec(focal_seeds=1))
        assert coupled.facade is not None
        assert coupled.facade.name == FACADE_NAME
        assert coupled.facade.chaos_exempt

    def test_facade_is_exempt_from_wildcard_chaos_targets(self):
        swarm = HybridSwarm(small_background_spec(focal_seeds=1))
        controller = swarm.scenario.add_chaos(ChaosSchedule(events=(
            PeerCrash(start=5.0, target="*", downtime=10.0),
        )))
        for target in ("*", "wired"):
            names = {h.name for h in controller._resolve(target)}
            assert FACADE_NAME not in names
            assert "w0" in names
        # Exact-name targeting still reaches it.
        assert [h.name for h in controller._resolve(FACADE_NAME)] == [
            FACADE_NAME]

    def test_run_is_audit_clean_and_source_terms_flow(self):
        spec = small_background_spec()
        with audit.audited():
            result = run_hybrid(spec, seed=7)
        assert result.couplings > 0
        assert result.fluid_steps > 0
        # Focal leechers place demand on the background every coupling
        # step until they finish, so the mean must be positive.
        assert result.external_demand_mean > 0.0
        for fr in result.focal.values():
            assert fr.completion_time is not None
            assert fr.completion_time <= spec.max_time

    def test_background_is_a_real_piece_source(self):
        # No focal seed at all: every byte the focal leecher completes
        # must have come through the coupling facade, so a finite
        # completion time proves the boundary translation moves data,
        # not just bookkeeping.
        result = run_hybrid(small_background_spec(
            focal_wired=1, focal_mobile=0, handoff_interval=None,
        ), seed=11)
        completion = result.focal["w0"].completion_time
        assert completion is not None and completion < result.max_time
        assert result.utilization_mean > 0.0

    def test_result_is_json_serialisable(self):
        result = run_hybrid(small_background_spec(), seed=3)
        payload = json.dumps(result.to_jsonable())
        decoded = json.loads(payload)
        assert decoded["couplings"] == result.couplings
        assert set(decoded["focal"]) == {"w0", "m0"}
        assert decoded["background"] is not None


FAST_HYBRID = {
    "background_sizes": [500],
    "focal_mobile_fractions": [1.0],
    "focal_hosts": 2,
    "file_size_kib": 256,
    "max_time": 900.0,
}


class TestFigxHybridScenario:
    def test_runs_through_the_runner_on_the_hybrid_backend(self):
        run = Runner(jobs=1).run("figx_hybrid", FAST_HYBRID)
        assert run.spec.backend == "hybrid"
        assert run.stats.failed == 0
        for value in run.values.values():
            assert 0.0 < value["completion"] <= FAST_HYBRID["max_time"]
            assert value["couplings"] > 0

    def test_reruns_are_bit_identical(self):
        a = Runner(jobs=1).run("figx_hybrid", FAST_HYBRID)
        b = Runner(jobs=1).run("figx_hybrid", FAST_HYBRID)
        assert a.values == b.values

    def test_hybrid_cells_cache_and_replay(self, tmp_path):
        from repro.runner import ResultCache

        cache = ResultCache(tmp_path)
        first = Runner(jobs=1, cache=cache).run("figx_hybrid", FAST_HYBRID)
        again = Runner(jobs=1, cache=cache).run("figx_hybrid", FAST_HYBRID)
        assert again.stats.cache_hits == again.stats.total_cells
        assert again.values == first.values

    def test_packet_backend_is_refused(self):
        scn = get_scenario("figx_hybrid")
        assert scn.backends == ("hybrid",)
        assert scn.resolve_backend(None) == "hybrid"
        with pytest.raises(ValueError, match="hybrid"):
            scn.resolve_backend("packet")
