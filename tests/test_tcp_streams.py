"""Unit tests for TCP stream bookkeeping (send/receive byte streams)."""

from __future__ import annotations

import pytest

from repro.tcp.streams import ReceiveStream, SendStream


class Msg:
    def __init__(self, tag):
        self.tag = tag

    def __repr__(self):
        return f"Msg({self.tag})"


class TestSendStream:
    def test_write_assigns_contiguous_ranges(self):
        s = SendStream(1)
        assert s.write_message(Msg("a"), 100) == (1, 101)
        assert s.write_message(Msg("b"), 50) == (101, 151)
        assert s.end == 151
        assert s.unsent_bytes == 150

    def test_zero_length_rejected(self):
        s = SendStream(1)
        with pytest.raises(ValueError):
            s.write_message(Msg("a"), 0)

    def test_messages_in_range(self):
        s = SendStream(0)
        s.write_message(Msg("a"), 100)  # ends at 100
        s.write_message(Msg("b"), 100)  # ends at 200
        ends = [e for e, _ in s.messages_in(0, 100)]
        assert ends == [100]
        ends = [e for e, _ in s.messages_in(100, 200)]
        assert ends == [200]
        ends = [e for e, _ in s.messages_in(0, 200)]
        assert ends == [100, 200]
        assert s.messages_in(0, 99) == ()

    def test_message_boundary_exclusive_start(self):
        s = SendStream(0)
        s.write_message(Msg("a"), 100)
        # message ending at 100 belongs to a segment [50, 100), not [100, 150)
        assert [e for e, _ in s.messages_in(50, 100)] == [100]
        assert s.messages_in(100, 150) == ()

    def test_ack_advances_and_prunes(self):
        s = SendStream(1)
        s.write_message(Msg("a"), 100)
        s.nxt = 101
        assert s.ack_to(51) == 50
        assert s.una == 51
        assert s.ack_to(51) == 0  # duplicate
        assert s.ack_to(101) == 50
        assert s.messages_in(1, 101) == ()  # pruned once acked

    def test_ack_beyond_end_rejected(self):
        s = SendStream(1)
        s.write_message(Msg("a"), 10)
        with pytest.raises(ValueError):
            s.ack_to(100)

    def test_ack_above_rewound_nxt_snaps_pointers(self):
        # go-back-N rewinds nxt; a later cumulative ACK may still cover
        # bytes the receiver already held
        s = SendStream(0)
        s.write_message(Msg("a"), 1000)
        s.nxt = 1000
        s.nxt = 200  # rewind after RTO
        assert s.ack_to(800) == 800
        assert s.una == 800
        assert s.nxt == 800

    def test_flight_and_buffered(self):
        s = SendStream(0)
        s.write_message(Msg("a"), 300)
        s.nxt = 200
        assert s.flight_size == 200
        assert s.unsent_bytes == 100
        assert s.buffered_bytes == 300


class TestReceiveStream:
    def test_in_order_advances(self):
        r = ReceiveStream(0)
        assert r.add(0, 100)
        assert r.rcv_nxt == 100
        assert r.bytes_delivered == 100

    def test_out_of_order_held_then_merged(self):
        r = ReceiveStream(0)
        assert not r.add(100, 100)
        assert r.rcv_nxt == 0
        assert r.has_gap
        assert r.out_of_order_bytes == 100
        assert r.add(0, 100)
        assert r.rcv_nxt == 200
        assert not r.has_gap

    def test_duplicate_counted(self):
        r = ReceiveStream(0)
        r.add(0, 100)
        assert not r.add(0, 100)
        assert r.duplicate_bytes == 100

    def test_partial_overlap(self):
        r = ReceiveStream(0)
        r.add(50, 100)   # [50,150) held
        r.add(0, 100)    # [0,100): 50 new, 50 dup -> contiguous to 150
        assert r.rcv_nxt == 150
        assert r.duplicate_bytes == 50

    def test_overlapping_ooo_ranges_merge(self):
        r = ReceiveStream(0)
        r.add(100, 50)
        r.add(120, 80)
        assert r.out_of_order_bytes == 100  # [100, 200)
        r.add(0, 100)
        assert r.rcv_nxt == 200

    def test_message_delivery_in_order(self):
        r = ReceiveStream(0)
        m1, m2 = Msg(1), Msg(2)
        # second message's bytes arrive first
        r.add(100, 100, messages=((200, m2),))
        assert r.pop_deliverable() == []
        r.add(0, 100, messages=((100, m1),))
        assert [m.tag for m in r.pop_deliverable()] == [1, 2]

    def test_message_redelivery_is_idempotent(self):
        r = ReceiveStream(0)
        m = Msg(1)
        r.add(0, 100, messages=((100, m),))
        assert len(r.pop_deliverable()) == 1
        r.add(0, 100, messages=((100, m),))  # retransmission
        assert r.pop_deliverable() == []

    def test_old_message_attachment_ignored(self):
        r = ReceiveStream(0)
        r.add(0, 100)
        # retransmitted segment attaches a message already below rcv_nxt:
        # receiver must not deliver it again (it never had the object, but
        # attachments at or below rcv_nxt are dropped as already-delivered).
        r.add(0, 100, messages=((100, Msg(1)),))
        assert r.pop_deliverable() == []

    def test_non_advancing_data_returns_false(self):
        r = ReceiveStream(0)
        assert r.add(0, 0) is False
