"""Tests for the pluggable client-strategy layer (repro.strategy).

Covers the registry and mix machinery, the choker-policy seam
(seeding-vs-leeching rank flip, optimistic rotation gating, ledger
composition with identity retention), the built-in exploiter policies,
the ambient-mix plumbing through SwarmScenario/Runner/CLI, and the
cache-keying guarantee that default-strategy cells stay at their
pre-strategy-layer digests.
"""

from __future__ import annotations

import hashlib
import random

import pytest

from repro import strategy as strategy_mod
from repro.bittorrent import ClientConfig, make_selector, selector_names
from repro.bittorrent.swarm import SwarmScenario
from repro.runner.spec import ScenarioSpec, canonical_json, cell_digest
from repro.strategy import (
    ClientStrategy,
    FreeriderPolicy,
    MixAssigner,
    PropSharePolicy,
    ReferencePolicy,
    TyrantPolicy,
    UnknownStrategyError,
    allocate_counts,
    contribution_rate,
    get_strategy,
    mix_is_default,
    normalize_mix,
    resolve_strategy,
    strategic,
    strategy_names,
)
from repro.wp2p import WP2PClient, WP2PConfig


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtins_registered(self):
        assert strategy_names() == [
            "freerider", "propshare", "reference", "tyrant",
        ]

    def test_unknown_name_lists_known(self):
        with pytest.raises(UnknownStrategyError, match="propshare"):
            get_strategy("bitthief")

    def test_resolve_passthrough(self):
        assert resolve_strategy(None) is None
        tyrant = get_strategy("tyrant")
        assert resolve_strategy(tyrant) is tyrant
        assert resolve_strategy("tyrant") is tyrant

    def test_freerider_overrides_disable_uploads(self):
        freerider = get_strategy("freerider")
        assert freerider.config_overrides["unchoke_slots"] == 0
        assert freerider.config_overrides["keep_seeding"] is False

    def test_make_policy_returns_fresh_instances(self):
        tyrant = get_strategy("tyrant")
        assert tyrant.make_policy() is not tyrant.make_policy()

    def test_selector_registry(self):
        assert selector_names() == ["hold", "random", "rarest-first", "sequential"]
        assert make_selector("sequential") is not make_selector("sequential")


# ----------------------------------------------------------------------
# Mix normalisation and deterministic assignment
# ----------------------------------------------------------------------
class TestMix:
    def test_flat_form_implies_all(self):
        mix = normalize_mix({"freerider": 0.25})
        assert mix == {"all": {"freerider": 0.25}}

    def test_population_form(self):
        mix = normalize_mix({"mobile": {"tyrant": 0.5}})
        assert mix == {"mobile": {"tyrant": 0.5}}

    def test_mixed_forms_rejected(self):
        with pytest.raises(ValueError):
            normalize_mix({"freerider": 0.25, "mobile": {"tyrant": 0.5}})

    def test_unknown_strategy_rejected_eagerly(self):
        with pytest.raises(UnknownStrategyError):
            normalize_mix({"bitthief": 0.5})

    def test_overfull_population_rejected(self):
        with pytest.raises(ValueError):
            normalize_mix({"freerider": 0.7, "tyrant": 0.5})

    def test_zero_fractions_dropped(self):
        assert normalize_mix({"freerider": 0.0}) == {}

    def test_default_detection(self):
        assert mix_is_default(normalize_mix({"reference": 1.0}))
        assert mix_is_default({})
        assert not mix_is_default(normalize_mix({"freerider": 0.1}))

    def test_allocate_counts_proportions(self):
        counts = allocate_counts({"reference": 0.75, "freerider": 0.25}, 8)
        assert counts == {"reference": 6, "freerider": 2}

    def test_assignment_is_deterministic_and_rng_free(self):
        assigner_a = MixAssigner({"all": {"freerider": 0.34}})
        assigner_b = MixAssigner({"all": {"freerider": 0.34}})
        seq_a = [assigner_a.assign("all") for _ in range(50)]
        seq_b = [assigner_b.assign("all") for _ in range(50)]
        assert seq_a == seq_b
        assert seq_a.count("freerider") == 17  # 0.34 * 50

    def test_population_falls_back_to_all(self):
        assigner = MixAssigner({"all": {"tyrant": 1.0}})
        assert assigner.assign("mobile") == "tyrant"
        scoped = MixAssigner({"mobile": {"tyrant": 1.0}})
        assert scoped.assign("wired") == "reference"


# ----------------------------------------------------------------------
# Policies: ranking and allocation
# ----------------------------------------------------------------------
class _Stub:
    """Attribute bag that stays hashable (unlike SimpleNamespace)."""

    def __init__(self, **attrs):
        self.__dict__.update(attrs)


def _stub_client(complete=False, ledger_rates=None):
    rates = dict(ledger_rates or {})
    return _Stub(
        manager=_Stub(complete=complete),
        ledger=_Stub(rate=lambda pid: rates.get(pid, 0.0)),
    )


def _stub_peer(peer_id, down=0.0, up=0.0, choking=True):
    return _Stub(
        peer_id=peer_id,
        download_meter=_Stub(rate=lambda: down),
        upload_meter=_Stub(rate=lambda: up),
        peer_choking=choking,
    )


class TestContributionRate:
    def test_rank_flips_from_reciprocation_to_service_on_completion(self):
        # Leeching: rank by what the peer sends us (+ ledger credit).
        # Seeding: rank by how fast we can push to the peer.
        peer = _stub_peer("p1", down=100.0, up=999.0)
        leeching = _stub_client(complete=False)
        seeding = _stub_client(complete=True)
        assert contribution_rate(leeching, peer) == 100.0
        assert contribution_rate(seeding, peer) == 999.0

    def test_ledger_credit_folds_into_leeching_rank(self):
        peer = _stub_peer("p1", down=100.0)
        client = _stub_client(ledger_rates={"p1": 40.0})
        assert contribution_rate(client, peer) == 140.0

    def test_handshakeless_peer_gets_no_ledger_credit(self):
        peer = _stub_peer(None, down=100.0)
        client = _stub_client(ledger_rates={None: 1e9})
        assert contribution_rate(client, peer) == 100.0


class TestPolicies:
    def test_reference_allocates_top_ranked(self):
        policy = ReferencePolicy()
        client = _stub_client()
        peers = [_stub_peer(f"p{i}", down=float(i)) for i in range(5)]
        chosen = policy.allocate(client, peers, 2, random.Random(0))
        assert chosen == {peers[4], peers[3]}

    def test_freerider_allocates_nothing(self):
        policy = FreeriderPolicy()
        assert not policy.uses_optimistic
        peers = [_stub_peer("p0", down=50.0)]
        assert policy.allocate(_stub_client(), peers, 3, random.Random(0)) == set()

    def test_tyrant_cost_update_direction(self):
        policy = TyrantPolicy()
        client = _stub_client()
        generous = _stub_peer("gen", down=100.0, choking=False)
        stingy = _stub_peer("sti", down=100.0, choking=True)
        # Round 1 establishes who we unchoked; round 2 adapts the cost
        # estimates from whether they reciprocated.
        policy.allocate(client, [generous, stingy], 2, random.Random(0))
        assert policy.cost == {}
        policy.allocate(client, [generous, stingy], 2, random.Random(0))
        # Reciprocators get cheaper, non-reciprocators more expensive, so
        # the tyrant's value/cost ranking shifts toward the generous peer.
        assert policy.cost["gen"] == pytest.approx(
            policy.initial_cost * policy.decrease
        )
        assert policy.cost["sti"] == pytest.approx(
            policy.initial_cost * policy.increase
        )
        assert policy.rank(client, generous) > policy.rank(client, stingy)

    def test_propshare_excludes_zero_contributors_from_ranked_slots(self):
        policy = PropSharePolicy()
        client = _stub_client()
        contributor = _stub_peer("con", down=80.0)
        freeloader = _stub_peer("fre", down=0.0)
        for trial in range(20):
            chosen = policy.allocate(
                client, [freeloader, contributor], 2, random.Random(trial)
            )
            assert freeloader not in chosen
            assert contributor in chosen

    def test_propshare_samples_proportionally(self):
        policy = PropSharePolicy()
        client = _stub_client()
        big = _stub_peer("big", down=90.0)
        small = _stub_peer("small", down=10.0)
        rng = random.Random(7)
        wins = sum(
            1 for _ in range(500)
            if big in policy.allocate(client, [small, big], 1, rng)
        )
        assert 400 <= wins <= 490  # ~90% of draws, not a top-N cutoff


# ----------------------------------------------------------------------
# Choker driver integration
# ----------------------------------------------------------------------
class TestChokerIntegration:
    def test_freerider_choker_skips_optimistic_and_never_unchokes(self):
        sc = SwarmScenario(seed=61, file_size=512 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True)
        free = sc.add_wired_peer("free", strategy="freerider")
        sc.add_wired_peer("l0")
        sc.start_all()
        sc.run(until=40.0)
        assert free.client.choker.rounds_run > 0
        assert free.client.choker.optimistic_peer is None
        assert free.client.uploaded.total == 0
        assert all(p.am_choking for p in free.client.connected_peers())

    def test_reference_optimistic_rotation_cadence(self):
        # With optimistic_every=2 and 2 s rounds the optimistic pick must
        # change identity across a 40 s window (rotation cadence), while
        # optimistic_every=1000 pins the first pick for the whole run.
        def optimistic_ids(optimistic_every):
            cfg = ClientConfig(
                unchoke_slots=1,
                optimistic_every=optimistic_every,
                choke_interval=2.0,
            )
            sc = SwarmScenario(
                seed=62, file_size=4 * 1024 * 1024, piece_length=65_536
            )
            seed = sc.add_wired_peer(
                "seed", complete=True, up_rate=40_000, config=cfg
            )
            for i in range(5):
                sc.add_wired_peer(f"l{i}")
            sc.start_all()
            seen = set()
            for _ in range(20):
                sc.run(until=sc.sim.now + 2.0)
                peer = seed.client.choker.optimistic_peer
                if peer is not None and peer.peer_id:
                    seen.add(peer.peer_id)
            return seen

        assert len(optimistic_ids(2)) >= 2
        assert len(optimistic_ids(1000)) == 1

    def test_strategy_metrics_only_for_strategic_clients(self):
        sc = SwarmScenario(seed=63, file_size=512 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True)
        sc.add_wired_peer("plain")
        sc.add_wired_peer("tyrant0", strategy="tyrant")
        sc.start_all()
        sc.run(until=30.0)
        names = set(sc.sim.metrics.names())
        assert "strategy.tyrant.peers" in names
        assert "strategy.tyrant.choke_rounds" in names
        assert not any(n.startswith("strategy.reference") for n in names)

    def test_ledger_credit_survives_identity_retained_reconnect(self):
        # wP2P identity retention keeps the peer ID across handoffs, so
        # tit-for-tat credit recorded in fixed peers' ledgers keeps
        # ranking the mobile host after it reconnects — under any policy.
        sc = SwarmScenario(seed=64, file_size=2 * 1024 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True)
        fixed = sc.add_wired_peer("fixed", strategy="propshare")
        mob = sc.add_wireless_peer(
            "mob", rate=200_000, client_factory=WP2PClient,
            config=WP2PConfig(am_enabled=False, mobility_aware_fetching=False),
        )
        sc.add_mobility(mob, interval=12.0, downtime=1.0)
        sc.start_all()
        sc.run(until=11.0)
        mob_id = mob.client.peer_id
        credit_before = fixed.client.ledger.rate(mob_id)
        sc.run(until=40.0)
        assert mob.client.reconnections >= 1
        assert mob.client.peer_id == mob_id
        # The ledger still carries (and keeps accruing) credit under the
        # retained ID; a fresh-ID default client would rank from zero.
        assert fixed.client.ledger.raw_credit(mob_id) >= 0
        peer = next(
            (
                p for p in fixed.client.connected_peers()
                if p.peer_id == mob_id
            ),
            None,
        )
        if peer is not None and credit_before > 0:
            assert contribution_rate(fixed.client, peer) >= 0


# ----------------------------------------------------------------------
# Swarm construction: explicit, mix, ambient
# ----------------------------------------------------------------------
class TestSwarmAssignment:
    def test_explicit_strategy_beats_mix(self):
        sc = SwarmScenario(
            seed=65, file_size=256 * 1024,
            strategy_mix={"freerider": 1.0},
        )
        sc.add_wired_peer("seed", complete=True)
        pinned = sc.add_wired_peer("pinned", strategy="tyrant")
        drawn = sc.add_wired_peer("drawn")
        assert pinned.client.strategy_name == "tyrant"
        assert drawn.client.strategy_name == "freerider"

    def test_seeds_never_draw_from_mix(self):
        sc = SwarmScenario(
            seed=66, file_size=256 * 1024,
            strategy_mix={"freerider": 1.0},
        )
        seed = sc.add_wired_peer("seed", complete=True)
        assert seed.client.strategy_name == "reference"
        assert seed.client.strategy is None

    def test_population_scoped_mix(self):
        sc = SwarmScenario(
            seed=67, file_size=256 * 1024,
            strategy_mix={"mobile": {"freerider": 1.0}},
        )
        wired = sc.add_wired_peer("w0")
        wireless = sc.add_wireless_peer("m0")
        assert wired.client.strategy_name == "reference"
        assert wireless.client.strategy_name == "freerider"

    def test_ambient_mix_round_trip(self):
        assert not strategy_mod.mix_installed()
        with strategic({"freerider": 1.0}) as mix:
            assert strategy_mod.mix_installed()
            assert mix == {"all": {"freerider": 1.0}}
            sc = SwarmScenario(seed=68, file_size=256 * 1024)
            leech = sc.add_wired_peer("l0")
            assert leech.client.strategy_name == "freerider"
        assert not strategy_mod.mix_installed()
        sc = SwarmScenario(seed=68, file_size=256 * 1024)
        assert sc.add_wired_peer("l1").client.strategy_name == "reference"

    def test_default_mix_installs_nothing(self):
        with strategic({"reference": 1.0}):
            assert not strategy_mod.mix_installed()

    def test_config_overrides_copy_not_mutate(self):
        shared = ClientConfig(unchoke_slots=4)
        sc = SwarmScenario(seed=69, file_size=256 * 1024)
        free = sc.add_wired_peer("free", config=shared, strategy="freerider")
        assert free.client.config.unchoke_slots == 0
        assert shared.unchoke_slots == 4

    def test_strategy_selector_resolved_from_registry(self):
        streamer = ClientStrategy(
            name="streamer",
            policy_factory=ReferencePolicy,
            selector="sequential",
        )
        sc = SwarmScenario(seed=70, file_size=256 * 1024)
        peer = sc.add_wired_peer("s0", strategy=streamer)
        from repro.bittorrent import SequentialSelector

        assert isinstance(peer.client.selector, SequentialSelector)


# ----------------------------------------------------------------------
# Cache keying: default cells byte-identical, mixes disjoint
# ----------------------------------------------------------------------
class TestStrategyKeying:
    def test_default_digest_is_byte_identical_to_pre_strategy_era(self):
        spec = ScenarioSpec.create("figx", {"runs": 2})
        got = cell_digest(spec, ("k", 10), 7, code="pinned")
        # The exact body the pre-strategy cell_digest hashed: no
        # "strategies" key.  Any change here silently invalidates (or
        # worse, aliases) every cached default-strategy result.
        legacy_body = canonical_json({
            "scenario": "figx",
            "params": {"runs": 2},
            "key": ["k", 10],
            "seed": 7,
            "code": "pinned",
        })
        expected = hashlib.sha256(legacy_body.encode("utf-8")).hexdigest()
        assert got == expected

    def test_mix_digests_are_disjoint_from_default(self):
        default = ScenarioSpec.create("figx", {"runs": 2})
        mixed = ScenarioSpec.create(
            "figx", {"runs": 2},
            strategies={"all": {"freerider": 0.25, "reference": 0.75}},
        )
        assert default.spec_hash() != mixed.spec_hash()
        assert (cell_digest(default, ("k",), 1, code="c")
                != cell_digest(mixed, ("k",), 1, code="c"))

    def test_distinct_mixes_get_distinct_digests(self):
        a = ScenarioSpec.create(
            "figx", {}, strategies={"all": {"freerider": 0.25}}
        )
        b = ScenarioSpec.create(
            "figx", {}, strategies={"all": {"tyrant": 0.25}}
        )
        assert (cell_digest(a, (), 1, code="c")
                != cell_digest(b, (), 1, code="c"))


# ----------------------------------------------------------------------
# Runner / CLI plumbing
# ----------------------------------------------------------------------
class TestRunnerPlumbing:
    def test_runner_rejects_strategy_and_mix_together(self):
        from repro.runner import Runner

        with pytest.raises(ValueError):
            Runner(strategy="tyrant", strategy_mix={"tyrant": 0.5})

    def test_runner_normalizes_reference_to_default(self):
        from repro.runner import Runner

        assert Runner(strategy="reference").strategy_mix is None
        assert Runner(strategy_mix={"reference": 1.0}).strategy_mix is None

    def test_runner_single_strategy_becomes_all_mix(self):
        from repro.runner import Runner

        runner = Runner(strategy="freerider")
        assert runner.strategy_mix == {"all": {"freerider": 1.0}}

    def test_runner_rejects_unknown_strategy(self):
        from repro.runner import Runner

        with pytest.raises((ValueError, KeyError)):
            Runner(strategy="bitthief")

    def test_cli_mix_parser_forms(self):
        from repro.experiments.__main__ import _parse_strategy_mix

        assert _parse_strategy_mix(None) is None
        assert _parse_strategy_mix('{"freerider": 0.25}') == {"freerider": 0.25}
        assert _parse_strategy_mix("freerider=0.25,tyrant=0.25") == {
            "freerider": 0.25, "tyrant": 0.25,
        }
        assert _parse_strategy_mix("mobile:freerider=0.5") == {
            "mobile": {"freerider": 0.5},
        }
        with pytest.raises(SystemExit):
            _parse_strategy_mix("freerider")


# ----------------------------------------------------------------------
# End-to-end: exploiters in a small arena swarm
# ----------------------------------------------------------------------
class TestArenaBehaviour:
    def test_freerider_completes_slower_in_reciprocation_swarm(self):
        # Mini version of figx_arena's all-wired bracket: every leecher
        # starts with half the pieces, the seed only drips, leechers
        # leave when done.  The free-rider must finish strictly last —
        # the tit-for-tat penalty the strategy layer exists to measure.
        from repro.experiments.figx_arena import ARENA_MIXES, arena_run
        from repro.runner import get_scenario

        p = dict(get_scenario("figx_arena").defaults)
        # Half the default file keeps this under ~5 s; seed 1701 is a
        # representative draw (the headline figx_arena number averages
        # seeds, individual draws can invert on warmup luck).
        p.update(file_size_kib=16_384)
        out = arena_run(1701, dict(ARENA_MIXES["freeriders"]),
                        0.0, wp2p=False, p=p)
        by_strategy = {}
        for peer in out["peers"]:
            by_strategy.setdefault(peer["strategy"], []).append(
                peer["completion"]
            )
        assert set(by_strategy) == {"reference", "freerider"}
        freerider_mean = sum(by_strategy["freerider"]) / len(
            by_strategy["freerider"]
        )
        reference_mean = sum(by_strategy["reference"]) / len(
            by_strategy["reference"]
        )
        assert freerider_mean > reference_mean

    def test_mixed_swarm_diverges_from_default_but_stays_deterministic(self):
        def run(mix):
            sc = SwarmScenario(
                seed=71, file_size=512 * 1024, piece_length=65_536,
                strategy_mix=mix,
            )
            sc.add_wired_peer("seed", complete=True)
            for i in range(3):
                sc.add_wired_peer(f"l{i}")
            sc.start_all()
            sc.run(until=60.0)
            return (
                sc.sim.events_processed,
                [sc.peers[f"l{i}"].client.downloaded.total for i in range(3)],
            )

        default_a = run(None)
        default_b = run(None)
        mixed = run({"freerider": 0.34})
        assert default_a == default_b
        assert mixed != default_a
