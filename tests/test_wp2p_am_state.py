"""Tests for AM per-flow state lifecycle and edge cases."""

from __future__ import annotations

import pytest

from repro.net import Packet
from repro.tcp import ACK, FIN, RST, TCPSegment, pure_ack
from repro.wp2p import MATURE, YOUNG, AgeBasedManipulation

from tests.helpers import TwoHostNet


def make_am(**kwargs):
    net = TwoHostNet(wireless=True)
    am = AgeBasedManipulation(net.sim, net.b, **kwargs)
    am.install()
    return net, am


def ingress_data(net, nbytes=1460, seq=0, sport=50000, dport=6881):
    seg = TCPSegment(sport, dport, seq, 1, ACK, nbytes)
    net.b.netfilter.ingress.apply(Packet(net.a.ip, net.b.ip, seg))


class TestFlowLifecycle:
    def test_flow_created_on_ingress_data(self):
        net, am = make_am()
        assert len(am._flows) == 0
        ingress_data(net)
        assert len(am._flows) == 1

    def test_fin_removes_flow_state(self):
        net, am = make_am()
        ingress_data(net)
        fin = TCPSegment(50000, 6881, 1460, 1, FIN | ACK)
        net.b.netfilter.ingress.apply(Packet(net.a.ip, net.b.ip, fin))
        assert len(am._flows) == 0

    def test_rst_removes_flow_state(self):
        net, am = make_am()
        ingress_data(net)
        rst = TCPSegment(50000, 6881, 1460, 1, RST | ACK)
        net.b.netfilter.ingress.apply(Packet(net.a.ip, net.b.ip, rst))
        assert len(am._flows) == 0

    def test_status_transitions_young_to_mature_and_back(self):
        net, am = make_am(rtt_estimate=0.1, gamma_bytes=9000)
        key = (6881, net.a.ip, 50000)
        # heavy ingress: MATURE
        for i in range(20):
            ingress_data(net, seq=i * 1460)
            net.sim.schedule(0.011, lambda: None)
            net.sim.run()
        assert am.flow_status(key) == MATURE
        # silence, then a trickle: estimate decays to the trickle -> YOUNG
        net.sim.schedule(1.0, lambda: None)
        net.sim.run()
        ingress_data(net, seq=100_000)
        net.sim.schedule(0.2, lambda: None)
        net.sim.run()
        ingress_data(net, seq=101_460)
        assert am.flow_status(key) == YOUNG

    def test_unknown_flow_defaults_young(self):
        net, am = make_am()
        assert am.flow_status((1, "10.9.9.9", 2)) == YOUNG

    def test_flows_keyed_per_connection(self):
        net, am = make_am()
        ingress_data(net, sport=50000)
        ingress_data(net, sport=50001)
        assert len(am._flows) == 2


class TestEgressEdgeCases:
    def test_syn_packets_pass_untouched(self):
        from repro.tcp.segment import SYN

        net, am = make_am()
        syn = TCPSegment(6881, 50000, 0, None, SYN)
        out = net.b.netfilter.egress.apply(Packet(net.b.ip, net.a.ip, syn))
        assert len(out) == 1
        assert out[0].payload is syn

    def test_non_tcp_payload_ignored(self):
        class Blob:
            wire_size = 100

        net, am = make_am()
        out = net.b.netfilter.egress.apply(Packet(net.b.ip, net.a.ip, Blob()))
        assert len(out) == 1

    def test_ack_regression_not_decoupled(self):
        """An outgoing data packet whose ack is older than one already sent
        carries no new information — no pure-ACK injection."""
        net, am = make_am()
        p1 = Packet(net.b.ip, net.a.ip, TCPSegment(6881, 50000, 0, 5000, ACK, 1460))
        assert len(net.b.netfilter.egress.apply(p1)) == 2
        p2 = Packet(net.b.ip, net.a.ip, TCPSegment(6881, 50000, 1460, 4000, ACK, 1460))
        assert len(net.b.netfilter.egress.apply(p2)) == 1

    def test_injected_ack_preserves_addressing(self):
        net, am = make_am()
        pkt = Packet(net.b.ip, net.a.ip, TCPSegment(6881, 50000, 7, 999, ACK, 1460))
        injected, original = net.b.netfilter.egress.apply(pkt)
        seg = injected.payload
        assert injected.src == net.b.ip
        assert injected.dst == net.a.ip
        assert seg.src_port == 6881
        assert seg.dst_port == 50000
        assert seg.ack == 999
        assert seg.payload_len == 0

    def test_uninstall_stops_manipulation(self):
        net, am = make_am()
        am.uninstall()
        pkt = Packet(net.b.ip, net.a.ip, TCPSegment(6881, 50000, 0, 500, ACK, 1460))
        assert len(net.b.netfilter.egress.apply(pkt)) == 1
        assert am.acks_decoupled == 0
