"""The examples and scripts must at least always compile and import-check.

(Full example runs take tens of simulated-seconds each and are exercised in
development; these tests keep them from rotting silently.)
"""

from __future__ import annotations

import ast
import pathlib
import py_compile

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))
SCRIPTS = sorted((REPO_ROOT / "scripts").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES + SCRIPTS, ids=lambda p: p.name)
def test_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_has_main_guard_and_docstring(path):
    tree = ast.parse(path.read_text())
    assert ast.get_docstring(tree), f"{path.name} lacks a module docstring"
    guards = [
        node
        for node in tree.body
        if isinstance(node, ast.If)
        and isinstance(node.test, ast.Compare)
        and getattr(node.test.left, "id", "") == "__name__"
    ]
    assert guards, f"{path.name} lacks an if __name__ == '__main__' guard"


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_imports_only_public_api(path):
    """Examples must demonstrate the public API: imports come from repro.*"""
    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            root = node.module.split(".")[0]
            assert root in ("repro", "__future__"), (
                f"{path.name} imports from {node.module}"
            )


def test_expected_example_set():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3  # the deliverable floor; we ship five
