"""Tests for the experiment CLI (python -m repro.experiments).

Covers the new registry-backed subcommands (``list``, ``run``) and the
legacy spellings (``fig2a``, ``all``, ``--num-pieces``, ``--chart``,
``--trace``) that must keep working verbatim.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.__main__ import ALL_ORDER, main, run_one
from repro.runner import scenario_names

FIGURES = {
    "fig2a", "fig2bc", "fig3a", "fig3b", "fig3c", "fig4a",
    "fig4bc", "fig8a", "fig8b", "fig8c", "fig9ab", "fig9c",
    "figx_arena", "figx_cdn", "figx_chaos", "figx_erasure", "figx_hybrid",
    "figx_scale",
}


class TestListCommand:
    def test_list_prints_every_figure(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        for name in FIGURES:
            assert name in out

    def test_list_json(self, capsys):
        main(["list", "--json"])
        entries = json.loads(capsys.readouterr().out)
        by_name = {e["name"]: e for e in entries}
        assert FIGURES <= set(by_name)
        assert by_name["fig2a"]["defaults"]["runs"] == 5
        assert by_name["fig2a"]["description"]

    def test_all_order_covers_the_registry(self):
        assert set(ALL_ORDER) == FIGURES == set(n for n in scenario_names()
                                                if n.startswith("fig"))


class TestRunCommand:
    def test_run_prints_table_and_stats(self, capsys):
        main(["run", "fig2bc", "--no-cache", "--quiet"])
        out = capsys.readouterr().out
        assert "Figure 2(b, c)" in out
        assert "paper:" in out
        assert "2 executed" in out

    def test_run_json_output(self, capsys):
        main(["run", "fig2bc", "--no-cache", "--quiet", "--json",
              "--set", "duration=5.0"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == "fig2bc"
        assert payload["figure"] == "Figure 2(b, c)"
        assert payload["stats"]["executed"] == 2
        assert payload["failures"] == []
        assert len(payload["spec_hash"]) == 64
        assert {s["label"] for s in payload["series"]} == {
            "Uni-directional", "Bi-directional",
        }

    def test_run_uses_and_fills_the_cache(self, capsys, tmp_path):
        argv = ["run", "fig2bc", "--quiet", "--cache-dir", str(tmp_path),
                "--set", "duration=5.0"]
        main(argv)
        capsys.readouterr()
        main(argv)  # warm: zero simulations
        out = capsys.readouterr().out
        assert "0 executed, 2 cache hits" in out

    def test_run_jobs_parallel(self, capsys):
        main(["run", "fig2bc", "--no-cache", "--quiet", "--jobs", "2"])
        assert "Figure 2(b, c)" in capsys.readouterr().out

    def test_unknown_scenario_exits_cleanly(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "fig99", "--no-cache", "--quiet"])

    def test_bad_set_syntax_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "fig2bc", "--no-cache", "--quiet", "--set", "duration"])


class TestOverrideConflicts:
    """A dedicated flag and a --set spelling of the same key must be an
    explicit error, not a silent precedence decision."""

    def test_swarm_size_conflicts_with_set_swarm_sizes(self):
        with pytest.raises(SystemExit, match="--swarm-size conflicts"):
            main(["run", "figx_scale", "--no-cache", "--quiet",
                  "--swarm-size", "500", "--set", "swarm_sizes=[1000]"])

    def test_swarm_size_conflicts_with_set_background_sizes(self):
        # figx_hybrid spells the same axis "background_sizes".
        with pytest.raises(SystemExit, match="background_sizes"):
            main(["run", "figx_hybrid", "--no-cache", "--quiet",
                  "--swarm-size", "500", "--set", "background_sizes=[1000]"])

    def test_focal_hosts_conflicts_with_set(self):
        with pytest.raises(SystemExit, match="--focal-hosts conflicts"):
            main(["run", "figx_hybrid", "--no-cache", "--quiet",
                  "--focal-hosts", "2", "--set", "focal_hosts=3"])


class TestLegacySpellings:
    def test_run_one_prints_table(self, capsys):
        run_one("fig2bc", num_pieces=20)
        out = capsys.readouterr().out
        assert "Figure 2(b, c)" in out
        assert "paper:" in out

    def test_run_one_with_chart(self, capsys):
        run_one("fig2bc", num_pieces=20, chart=True)
        out = capsys.readouterr().out
        assert out.count("Figure 2(b, c)") >= 2  # table + chart headers

    def test_unknown_figure_exits(self):
        with pytest.raises(SystemExit):
            run_one("fig99", num_pieces=20)

    def test_main_parses_bare_figure(self, capsys):
        main(["fig2bc"])
        out = capsys.readouterr().out
        assert "Figure 2(b, c)" in out

    def test_piecewise_figure_accepts_num_pieces(self, capsys):
        main(["fig4bc", "--num-pieces", "10"])
        out = capsys.readouterr().out
        assert "Playable" in out

    def test_legacy_trace_writes_jsonl(self, capsys, tmp_path):
        trace = tmp_path / "run.jsonl"
        main(["fig2bc", "--trace", str(trace)])
        out = capsys.readouterr().out
        assert "Figure 2(b, c)" in out
        assert f"[trace written to {trace}]" in out
        lines = trace.read_text().strip().splitlines()
        assert lines and all(json.loads(line) for line in lines)

    def test_trace_with_run_command_degrades_to_serial(self, capsys, tmp_path):
        trace = tmp_path / "run.jsonl"
        main(["run", "fig2bc", "--no-cache", "--jobs", "4",
              "--set", "duration=5.0", "--trace", str(trace)])
        captured = capsys.readouterr()
        assert "Figure 2(b, c)" in captured.out
        assert "running serially" in captured.err
        assert trace.read_text().strip()
