"""Tests for the experiment CLI (python -m repro.experiments)."""

from __future__ import annotations

import pytest

from repro.experiments.__main__ import PIECEWISE, SIMPLE, main, run_one


class TestCli:
    def test_registry_covers_every_figure(self):
        names = set(SIMPLE) | set(PIECEWISE)
        assert names == {
            "fig2a", "fig2bc", "fig3a", "fig3b", "fig3c", "fig4a",
            "fig4bc", "fig8a", "fig8b", "fig8c", "fig9ab", "fig9c",
        }

    def test_run_one_prints_table(self, capsys):
        run_one("fig2bc", num_pieces=20)
        out = capsys.readouterr().out
        assert "Figure 2(b, c)" in out
        assert "paper:" in out

    def test_run_one_with_chart(self, capsys):
        run_one("fig2bc", num_pieces=20, chart=True)
        out = capsys.readouterr().out
        assert out.count("Figure 2(b, c)") >= 2  # table + chart headers

    def test_unknown_figure_exits(self):
        with pytest.raises(SystemExit):
            run_one("fig99", num_pieces=20)

    def test_main_parses_args(self, capsys):
        main(["fig2bc"])
        out = capsys.readouterr().out
        assert "Figure 2(b, c)" in out

    def test_piecewise_figure_accepts_num_pieces(self, capsys):
        main(["fig4bc", "--num-pieces", "10"])
        out = capsys.readouterr().out
        assert "Playable" in out
