"""Integration tests for TCP connections over the simulated network."""

from __future__ import annotations

import pytest

from repro.net import Packet
from repro.tcp import TCPConfig, TCPStack, TCPSegment
from repro.tcp.segment import ACK, SYN

from tests.helpers import Message, TwoHostNet, collect_messages


def open_connection(net: TwoHostNet, port: int = 6881):
    """Connect a -> b and return (client_conn, server_conn_holder)."""
    server_conns = []

    def on_accept(conn):
        conn.on_message = collect_messages(conn.received_tags)

    # attach a tag sink to accepted connections lazily
    accepted = []

    def accept(conn):
        conn.received_tags = []
        conn.on_message = lambda m: conn.received_tags.append(m.tag)
        accepted.append(conn)

    net.stack_b.listen(port, accept)
    client = net.stack_a.connect(net.b.ip, port)
    client.received_tags = []
    client.on_message = lambda m: client.received_tags.append(m.tag)
    return client, accepted


class TestHandshake:
    def test_three_way_handshake(self, two_hosts):
        net = two_hosts
        client, accepted = open_connection(net)
        established = []
        client.on_established = lambda: established.append(net.sim.now)
        net.sim.run(until=2.0)
        assert established
        assert client.established
        assert len(accepted) == 1
        assert accepted[0].established

    def test_syn_to_closed_port_gets_rst(self, two_hosts):
        net = two_hosts
        client = net.stack_a.connect(net.b.ip, 9)
        closed = []
        client.on_close = lambda r: closed.append(r)
        net.sim.run(until=2.0)
        assert closed == ["reset"]
        assert net.stack_b.rst_sent == 1

    def test_syn_retransmission_on_loss(self):
        net = TwoHostNet(wireless=True, ber=0.0)
        # drop the first SYN via an egress filter
        dropped = []

        def drop_first_syn(pkt):
            seg = pkt.payload
            if isinstance(seg, TCPSegment) and seg.has(SYN) and not dropped:
                dropped.append(pkt)
                return []
            return None

        net.a.netfilter.egress.register(drop_first_syn)
        net.stack_b.listen(6881, lambda c: None)
        client = net.stack_a.connect(net.b.ip, 6881)
        net.sim.run(until=5.0)
        assert dropped
        assert client.established

    def test_connect_requires_address(self, two_hosts):
        net = two_hosts
        net.a.take_down()
        with pytest.raises(RuntimeError):
            net.stack_a.connect(net.b.ip, 6881)


class TestDataTransfer:
    def test_messages_delivered_in_order(self, two_hosts):
        net = two_hosts
        client, accepted = open_connection(net)
        for i in range(100):
            client.send_message(Message(1000, i))
        net.sim.run(until=30.0)
        assert accepted[0].received_tags == list(range(100))

    def test_large_message_spans_segments(self, two_hosts):
        net = two_hosts
        client, accepted = open_connection(net)
        client.send_message(Message(100_000, "big"))
        net.sim.run(until=30.0)
        assert accepted[0].received_tags == ["big"]
        assert client.stats.segments_sent > 60  # ~69 MSS segments

    def test_bidirectional_transfer(self, two_hosts):
        net = two_hosts
        client, accepted = open_connection(net)
        net.sim.run(until=1.0)
        server = accepted[0]
        for i in range(50):
            client.send_message(Message(1000, ("c", i)))
            server.send_message(Message(1000, ("s", i)))
        net.sim.run(until=30.0)
        assert len(server.received_tags) == 50
        assert len(client.received_tags) == 50

    def test_piggybacking_dominates_bidirectional_bulk(self):
        """With data flowing both ways, most ACKs ride on data segments."""
        net = TwoHostNet()
        client, accepted = open_connection(net)
        net.sim.run(until=1.0)
        server = accepted[0]
        for i in range(200):
            client.send_message(Message(1460, i))
            server.send_message(Message(1460, i))
        net.sim.run(until=60.0)
        assert len(client.received_tags) == 200
        # data segments (each carrying an ACK) far outnumber pure ACKs
        assert server.stats.pure_acks_sent < server.stats.segments_sent / 2

    def test_unidirectional_uses_pure_acks(self, two_hosts):
        net = two_hosts
        client, accepted = open_connection(net)
        for i in range(100):
            client.send_message(Message(1460, i))
        net.sim.run(until=30.0)
        server = accepted[0]
        assert server.stats.pure_acks_sent > 30  # receiver never piggybacks

    def test_throughput_bounded_by_bottleneck(self):
        net = TwoHostNet(wireless=True, rate=50_000, ber=0.0)
        client, accepted = open_connection(net)
        start = 1.0
        payload = 300_000

        def pump():
            client.send_message(Message(payload, "x"))

        net.sim.schedule(start, pump)
        net.sim.run(until=40.0)
        assert accepted[0].received_tags == ["x"]
        # payload took at least payload/rate seconds after start
        assert net.sim.now >= start + payload / 50_000 * 0.9


class TestLossRecovery:
    def _lossy_net(self, ber=1e-5, seed=2):
        return TwoHostNet(seed=seed, wireless=True, ber=ber)

    def test_transfer_completes_despite_losses(self):
        net = self._lossy_net()
        client, accepted = open_connection(net)
        for i in range(150):
            client.send_message(Message(1460, i))
        net.sim.run(until=120.0)
        assert accepted[0].received_tags == list(range(150))
        assert client.stats.retransmissions > 0

    def test_fast_retransmit_used(self):
        net = self._lossy_net(ber=4e-6, seed=5)
        client, accepted = open_connection(net)
        for i in range(400):
            client.send_message(Message(1460, i))
        net.sim.run(until=200.0)
        assert accepted[0].received_tags == list(range(400))
        assert client.stats.fast_retransmits > 0

    def test_dupacks_are_pure(self):
        """Receivers must never piggyback DUPACKs on data (spec rule §3.2)."""
        net = self._lossy_net(ber=1e-5, seed=3)
        client, accepted = open_connection(net)
        net.sim.run(until=1.0)
        server = accepted[0]
        # bidirectional bulk: server has data to piggyback on, yet dupacks
        # must go out as pure ACKs
        pure_acks = []

        def watch(pkt):
            seg = pkt.payload
            if isinstance(seg, TCPSegment) and seg.is_pure_ack:
                pure_acks.append(seg)
            return None

        net.b.netfilter.egress.register(watch)
        for i in range(200):
            client.send_message(Message(1460, i))
            server.send_message(Message(1460, i))
        net.sim.run(until=120.0)
        assert server.stats.dupacks_sent > 0
        # every dupack the server sent was observed as a pure ACK
        assert len(pure_acks) >= server.stats.dupacks_sent

    def test_retransmission_timeout_recovers_total_blackout(self):
        net = TwoHostNet(wireless=True, ber=0.0)
        client, accepted = open_connection(net)
        net.sim.run(until=1.0)
        # black out the channel by dropping everything for a while
        blackout = {"on": False}

        def drop_all(pkt):
            return [] if blackout["on"] else None

        net.b.netfilter.egress.register(drop_all)
        net.a.netfilter.egress.register(drop_all)
        client.send_message(Message(50_000, "pre"))
        net.sim.run(until=5.0)
        blackout["on"] = True
        client.send_message(Message(50_000, "during"))
        net.sim.run(until=8.0)
        blackout["on"] = False
        net.sim.run(until=60.0)
        assert accepted[0].received_tags == ["pre", "during"]
        assert client.stats.timeouts > 0

    def test_connection_dies_after_max_timeouts(self):
        config = TCPConfig(max_consecutive_timeouts=3, max_rto=2.0)
        net = TwoHostNet(tcp_config=config)
        client, accepted = open_connection(net)
        net.sim.run(until=1.0)
        # permanent blackout
        net.a.netfilter.egress.register(lambda pkt: [])
        closed = []
        client.on_close = lambda r: closed.append(r)
        client.send_message(Message(10_000, "x"))
        net.sim.run(until=60.0)
        assert closed == ["timeout"]
        assert client.closed


class TestClose:
    def test_graceful_close_both_sides(self, two_hosts):
        net = two_hosts
        client, accepted = open_connection(net)
        client_closed, server_closed = [], []
        client.on_close = lambda r: client_closed.append(r)
        client.send_message(Message(5000, "x"))
        net.sim.run(until=5.0)
        server = accepted[0]
        server.on_close = lambda r: server_closed.append(r)
        client.close()
        net.sim.run(until=10.0)
        server.close()
        net.sim.run(until=20.0)
        assert server.received_tags == ["x"]
        assert client_closed == ["closed"]
        assert server_closed == ["closed"]

    def test_close_flushes_pending_data(self, two_hosts):
        net = two_hosts
        client, accepted = open_connection(net)
        client.send_message(Message(200_000, "big"))
        client.close()  # FIN must wait for the data
        net.sim.run(until=60.0)
        assert accepted[0].received_tags == ["big"]

    def test_send_after_close_rejected(self, two_hosts):
        net = two_hosts
        client, accepted = open_connection(net)
        net.sim.run(until=1.0)
        client.close()
        with pytest.raises(RuntimeError):
            client.send_message(Message(100, "late"))

    def test_abort_sends_rst(self, two_hosts):
        net = two_hosts
        client, accepted = open_connection(net)
        net.sim.run(until=1.0)
        server = accepted[0]
        server_closed = []
        server.on_close = lambda r: server_closed.append(r)
        client.abort()
        net.sim.run(until=2.0)
        assert server_closed == ["reset"]
        assert client.closed

    def test_stack_unregisters_closed_connections(self, two_hosts):
        net = two_hosts
        client, accepted = open_connection(net)
        net.sim.run(until=1.0)
        assert net.stack_a.connection_count() == 1
        client.abort()
        net.sim.run(until=2.0)
        assert net.stack_a.connection_count() == 0
        assert net.stack_b.connection_count() == 0


class TestStack:
    def test_ephemeral_ports_unique(self, two_hosts):
        net = two_hosts
        net.stack_b.listen(6881, lambda c: None)
        conns = [net.stack_a.connect(net.b.ip, 6881) for _ in range(10)]
        ports = {c.local_port for c in conns}
        assert len(ports) == 10

    def test_duplicate_listen_rejected(self, two_hosts):
        net = two_hosts
        net.stack_b.listen(6881, lambda c: None)
        with pytest.raises(ValueError):
            net.stack_b.listen(6881, lambda c: None)

    def test_abort_all(self, two_hosts):
        net = two_hosts
        net.stack_b.listen(6881, lambda c: None)
        for _ in range(5):
            net.stack_a.connect(net.b.ip, 6881)
        net.sim.run(until=1.0)
        assert net.stack_a.abort_all() == 5
        assert net.stack_a.connection_count() == 0

    def test_stale_connection_dies_after_ip_change(self):
        """A connection bound to the old address starves after a handoff."""
        from repro.net.mobility import disconnect_host, reconnect_host

        config = TCPConfig(max_consecutive_timeouts=3, max_rto=2.0)
        net = TwoHostNet(tcp_config=config)
        client, accepted = open_connection(net)
        net.sim.run(until=1.0)
        closed = []
        client.on_close = lambda r: closed.append(r)
        disconnect_host(net.a, net.internet, net.alloc)
        reconnect_host(net.a, net.internet, net.alloc)
        client.send_message(Message(10_000, "x"))
        net.sim.run(until=120.0)
        # packets leave with the stale source address; replies are unroutable
        assert closed == ["timeout"]
