"""Regression tests for specific TCP bugs found during development.

Each test pins a behaviour that once failed; keep them even if they look
redundant with broader suites.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tcp import TCPConfig, TCPSegment

from tests.helpers import Message, TwoHostNet


def open_pair(net, port=6881):
    accepted = []

    def accept(conn):
        conn.received = []
        conn.on_message = lambda m: conn.received.append(m.tag)
        accepted.append(conn)

    net.stack_b.listen(port, accept)
    client = net.stack_a.connect(net.b.ip, port)
    return client, accepted


class TestFastRetransmitRestartsRtoTimer:
    """Bug: the RTO timer armed at the last new ACK could expire milliseconds
    after a fast retransmit, collapsing an almost-complete recovery into
    slow start and a go-back-N duplicate storm."""

    def test_no_timeout_when_fast_retransmit_recovers(self):
        net = TwoHostNet(core_delay=0.05)
        client, accepted = open_pair(net)
        net.sim.run(until=1.0)
        # drop exactly one mid-stream data segment
        state = {"dropped": False}

        def drop_one(pkt):
            seg = pkt.payload
            if (
                isinstance(seg, TCPSegment)
                and seg.payload_len > 0
                and not state["dropped"]
                and seg.seq > 20_000
            ):
                state["dropped"] = True
                return []
            return None

        net.a.netfilter.egress.register(drop_one)
        for i in range(60):
            client.send_message(Message(1460, i))
        net.sim.run(until=30.0)
        assert accepted[0].received == list(range(60))
        assert state["dropped"]
        assert client.stats.fast_retransmits == 1
        # the single loss must be healed by fast retransmit alone
        assert client.stats.timeouts == 0

    def test_rto_timer_pushed_out_by_retransmission(self):
        net = TwoHostNet()
        client, accepted = open_pair(net)
        net.sim.run(until=1.0)
        client.send_message(Message(30_000, "x"))
        net.sim.run(until=0.01 + net.sim.now)
        before = client._rto_timer.expires_at
        client._retransmit_head()
        after = client._rto_timer.expires_at
        assert after is not None and before is not None
        assert after >= before


class TestGoBackNAckAcceptance:
    """Bug: after an RTO rewound snd_nxt, cumulative ACKs above snd_nxt
    (for data the receiver already held) were discarded, deadlocking the
    sender into serial timeouts."""

    def test_ack_above_rewound_nxt_accepted(self):
        config = TCPConfig(max_rto=2.0)
        net = TwoHostNet(tcp_config=config)
        client, accepted = open_pair(net)
        net.sim.run(until=1.0)
        # drop a burst mid-window so the RTO path must run
        state = {"window": (30_000, 45_000)}

        def drop_range(pkt):
            seg = pkt.payload
            lo, hi = state["window"]
            if (
                isinstance(seg, TCPSegment)
                and seg.payload_len > 0
                and lo <= seg.seq < hi
            ):
                state["window"] = (0, 0)  # only once per segment range
                return []
            return None

        net.a.netfilter.egress.register(drop_range)
        for i in range(100):
            client.send_message(Message(1460, i))
        net.sim.run(until=60.0)
        assert accepted[0].received == list(range(100))
        # no serial-timeout death spiral
        assert client.stats.timeouts <= 3


class TestAdversarialLossPatterns:
    """Property: whatever subset of data packets an adversary drops (each
    at most once), the stream is always delivered completely and in order."""

    @given(
        st.sets(st.integers(min_value=0, max_value=79), max_size=25),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=25, deadline=None)
    def test_drop_any_subset_once(self, drop_indices, seed):
        config = TCPConfig(max_rto=2.0)
        net = TwoHostNet(seed=seed % 1000, tcp_config=config)
        client, accepted = open_pair(net)
        counter = {"n": 0}
        dropped = set()

        def dropper(pkt):
            seg = pkt.payload
            if isinstance(seg, TCPSegment) and seg.payload_len > 0:
                index = counter["n"]
                counter["n"] += 1
                if index in drop_indices and index not in dropped:
                    dropped.add(index)
                    return []
            return None

        net.a.netfilter.egress.register(dropper)
        for i in range(80):
            client.send_message(Message(1460, i))
        net.sim.run(until=120.0)
        assert accepted[0].received == list(range(80))

    @given(
        st.sets(st.integers(min_value=0, max_value=79), max_size=25),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=15, deadline=None)
    def test_drop_any_subset_once_with_sack(self, drop_indices, seed):
        config = TCPConfig(max_rto=2.0, sack=True)
        net = TwoHostNet(seed=seed % 1000, tcp_config=config)
        client, accepted = open_pair(net)
        counter = {"n": 0}
        dropped = set()

        def dropper(pkt):
            seg = pkt.payload
            if isinstance(seg, TCPSegment) and seg.payload_len > 0:
                index = counter["n"]
                counter["n"] += 1
                if index in drop_indices and index not in dropped:
                    dropped.add(index)
                    return []
            return None

        net.a.netfilter.egress.register(dropper)
        for i in range(80):
            client.send_message(Message(1460, i))
        net.sim.run(until=120.0)
        assert accepted[0].received == list(range(80))
