"""Tests for the mean-field fluid swarm tier (:mod:`repro.scale`)."""

from __future__ import annotations

import hashlib
import json
import random

import pytest

import repro.experiments  # noqa: F401  — registers the figure scenarios
from repro.chaos import preset_schedule
from repro.chaos.schedule import (
    ChaosSchedule,
    HandoffStorm,
    LinkBlackout,
    LinkDegradation,
    PeerChurn,
    PeerCrash,
    TrackerOutage,
)
from repro.runner import BACKENDS, Runner, ScenarioSpec, get_scenario
from repro.runner.spec import canonical_json, cell_digest
from repro.scale import (
    FluidParams,
    FluidSwarm,
    MatchedScenario,
    PeerClass,
    ValidationReport,
    ValidationRow,
    class_matches,
    cross_validate,
    expected_prefix_fraction,
    playability_surrogate,
    run_fluid,
    schedule_modifiers,
)

MIB = 1 << 20


def params(file_size=4 * MIB, scale=1.0, mobile=True, wp2p=False, **kw):
    classes = [
        PeerClass("seeds", 5 * scale, 96_000.0, 1_000_000.0, seed=True),
        PeerClass("wired", 75 * scale, 48_000.0, 500_000.0),
    ]
    if mobile:
        classes.append(PeerClass(
            "mobile", 20 * scale, 24_000.0, 100_000.0, mobile=True,
            wp2p=wp2p, wireless_shared=True, handoff_interval=90.0,
        ))
    return FluidParams(
        file_size=file_size, piece_length=65_536,
        classes=tuple(classes), **kw,
    )


# ----------------------------------------------------------------------
# Model validation and surrogates
# ----------------------------------------------------------------------
class TestModel:
    def test_availability_is_a_duty_cycle(self):
        always_on = PeerClass("w", 1, 1.0, 1.0)
        assert always_on.availability() == 1.0
        mobile = PeerClass("m", 1, 1.0, 1.0, mobile=True,
                           handoff_interval=90.0, handoff_downtime=1.0,
                           restart_delay=15.0)
        assert mobile.availability() == pytest.approx(90.0 / 106.0)

    def test_wp2p_recovers_cheaper_than_default(self):
        default = PeerClass("m", 1, 1.0, 1.0, handoff_interval=60.0)
        wp2p = PeerClass("m", 1, 1.0, 1.0, handoff_interval=60.0, wp2p=True)
        assert wp2p.recovery_cost < default.recovery_cost
        assert wp2p.availability() > default.availability()

    @pytest.mark.parametrize("bad", [
        dict(count=-1),
        dict(download_rate=0.0),
        dict(handoff_interval=0.0),
        dict(lihd_level=0.0),
        dict(selection="weirdest"),
        dict(arrival_rate=-1.0),
    ])
    def test_peer_class_rejects_bad_fields(self, bad):
        kw = dict(name="x", count=1.0, upload_rate=1.0, download_rate=1.0)
        kw.update(bad)
        with pytest.raises(ValueError):
            PeerClass(**kw)

    def test_fluid_params_rejects_duplicate_class_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            FluidParams(file_size=MIB, piece_length=65_536, classes=(
                PeerClass("a", 1, 1.0, 1.0), PeerClass("a", 1, 1.0, 1.0),
            ))

    def test_num_pieces_rounds_up(self):
        p = FluidParams(file_size=65_537, piece_length=65_536,
                        classes=(PeerClass("a", 1, 1.0, 1.0),))
        assert p.num_pieces == 2

    def test_prefix_fraction_bounds_and_value(self):
        assert expected_prefix_fraction(0.0, 20) == 0.0
        assert expected_prefix_fraction(1.0, 20) == 1.0
        # m=2: (p + p^2)/2
        assert expected_prefix_fraction(0.5, 2) == pytest.approx(0.375)

    def test_inorder_surrogate_tracks_progress(self):
        assert playability_surrogate(0.4, 64, "inorder") == pytest.approx(0.4)
        # Rarest-first leaves the prefix far behind the downloaded fraction.
        assert playability_surrogate(0.4, 64, "rarest") < 0.05


# ----------------------------------------------------------------------
# Chaos-schedule -> rate-parameter mapping
# ----------------------------------------------------------------------
class TestChaosMap:
    def test_every_event_kind_maps(self):
        schedule = ChaosSchedule(events=(
            PeerChurn(start=10.0, duration=60.0, rate_per_min=6.0,
                      downtime=20.0, target="wired"),
            PeerCrash(start=5.0, target="mobile", downtime=30.0),
            TrackerOutage(start=40.0, duration=25.0),
            LinkBlackout(start=50.0, duration=5.0, target="wireless"),
            LinkDegradation(start=60.0, duration=30.0, rate_factor=0.5,
                            ber=0.0, target="wireless"),
            HandoffStorm(start=70.0, count=10, spacing=2.0, downtime=1.5,
                         target="mobile"),
        ))
        windows, impulses = schedule_modifiers(schedule)
        kinds = {
            (w.departure_rate > 0, w.freeze_rejoin, w.availability_factor,
             w.upload_factor, w.extra_handoff_rate > 0)
            for w in windows
        }
        churn = next(w for w in windows if w.departure_rate > 0)
        assert churn.departure_rate == pytest.approx(0.1)  # 6/min -> 0.1/s
        assert churn.rejoin_rate == pytest.approx(1.0 / 20.0)
        outage = next(w for w in windows if w.freeze_rejoin)
        assert outage.target == "*"
        blackout = next(w for w in windows if w.availability_factor == 0.0)
        assert blackout.end == pytest.approx(55.0)
        degradation = next(w for w in windows if w.upload_factor == 0.5)
        assert degradation.download_factor == 0.5
        storm = next(w for w in windows if w.extra_handoff_rate > 0)
        assert storm.extra_handoff_rate == pytest.approx(0.5)
        assert storm.end == pytest.approx(70.0 + 20.0)
        assert len(impulses) == 1 and impulses[0].downtime == 30.0
        assert len(kinds) == 5  # five distinct window shapes

    def test_mapping_is_pure(self):
        schedule = preset_schedule("mixed", 1.5, 300.0)
        assert schedule_modifiers(schedule) == schedule_modifiers(schedule)

    def test_class_matching_selectors(self):
        wired = PeerClass("wired", 1, 1.0, 1.0)
        mobile = PeerClass("roamer", 1, 1.0, 1.0, mobile=True)
        assert class_matches(wired, "*") and class_matches(mobile, "*")
        assert class_matches(wired, "wired") and not class_matches(mobile, "wired")
        assert class_matches(mobile, "wireless") and class_matches(mobile, "mobile")
        assert class_matches(mobile, "roamer")
        assert not class_matches(wired, "roamer")

    def test_churn_slows_the_swarm(self):
        clean = run_fluid(params()).leecher_completion_time()
        churned = FluidSwarm(
            params(),
            chaos=ChaosSchedule(events=(
                PeerChurn(start=0.0, duration=600.0, rate_per_min=6.0,
                          downtime=30.0, target="*"),
            )),
        ).run().leecher_completion_time()
        assert churned > clean

    def test_blackout_halts_wireless_progress(self):
        p = params(max_time=400.0)
        blackout = ChaosSchedule(events=(
            LinkBlackout(start=0.0, duration=400.0, target="wireless"),
        ))
        result = FluidSwarm(p, chaos=blackout).run()
        assert result.classes["mobile"].final_progress == 0.0
        assert result.classes["wired"].completion_time is not None


# ----------------------------------------------------------------------
# Crash-impulse population accounting
# ----------------------------------------------------------------------
def _state(swarm, name):
    return next(s for s in swarm._states if s.cls.name == name)


class TestImpulseConservation:
    def test_permanent_impulse_kills_parked_recovery_pools(self):
        # Regression: the first crash parks the class in a slow recovery
        # pool; a later permanent impulse used to remove only the online
        # remainder, leaving the parked mass alive (and rejoining)
        # forever after a supposedly fatal crash.
        schedule = ChaosSchedule(events=(
            PeerCrash(start=2.0, target="wired", downtime=500.0),
            PeerCrash(start=6.0, target="wired", downtime=None),
        ))
        swarm = FluidSwarm(params(mobile=False, max_time=60.0),
                           chaos=schedule)
        swarm.run()
        wired = _state(swarm, "wired")
        assert wired.alive == pytest.approx(0.0, abs=1e-9)
        assert wired.online == pytest.approx(0.0, abs=1e-9)
        assert wired.offline == pytest.approx(0.0, abs=1e-9)

    def test_overlapping_transient_impulses_conserve_mass(self):
        # The second crash re-parks everything it can reach — online
        # mass plus the first impulse's half-drained pool — without
        # creating or destroying population.
        schedule = ChaosSchedule(events=(
            PeerCrash(start=2.0, target="wired", downtime=500.0),
            PeerCrash(start=6.0, target="wired", downtime=500.0),
        ))
        swarm = FluidSwarm(params(mobile=False, max_time=60.0),
                           chaos=schedule)
        swarm.run()
        wired = _state(swarm, "wired")
        assert wired.alive == pytest.approx(75.0)
        assert wired.online + wired.offline == pytest.approx(
            wired.alive, abs=1e-9)

    def test_zero_downtime_impulse_does_not_leak_mass(self):
        # Regression: a transient crash with downtime=0 used to zero the
        # online mass without parking it anywhere — the peers vanished
        # while still being counted alive, stalling the class forever.
        schedule = ChaosSchedule(events=(
            PeerCrash(start=2.0, target="wired", downtime=0.0),
        ))
        swarm = FluidSwarm(params(mobile=False, max_time=600.0),
                           chaos=schedule)
        result = swarm.run()
        wired = _state(swarm, "wired")
        assert wired.online + wired.offline == pytest.approx(
            wired.alive, abs=1e-9)
        assert result.classes["wired"].completion_time is not None


class TestMassConservationProperty:
    def test_every_step_conserves_population_under_fuzzed_chaos(self):
        # Mirrors scripts/fuzz_audit.py's seed rotation: each drawn
        # topology/schedule is a pure function of its seed, so a
        # violating step reproduces from the seed alone.  The invariant
        # (`alive == online + Σpools` with departures accounted) is the
        # one the hybrid backend's boundary source terms must preserve.
        for seed in range(8):
            rng = random.Random(seed)
            classes = (
                PeerClass("seeds", 4.0, 96_000.0, 1_000_000.0, seed=True),
                PeerClass("wired", rng.uniform(10.0, 100.0), 48_000.0,
                          500_000.0,
                          arrival_rate=rng.choice([0.0, 0.0, 0.5])),
                PeerClass("mobile", rng.uniform(5.0, 40.0), 24_000.0,
                          100_000.0, mobile=True, wireless_shared=True,
                          handoff_interval=rng.choice([60.0, 90.0])),
            )
            events = []
            for _ in range(rng.randint(1, 4)):
                draw = rng.random()
                start = rng.uniform(0.0, 120.0)
                target = rng.choice(["*", "wired", "mobile", "wireless"])
                if draw < 0.5:
                    events.append(PeerCrash(
                        start=start, target=target,
                        downtime=rng.choice([None, 0.0, 10.0, 300.0]),
                    ))
                elif draw < 0.8:
                    events.append(PeerChurn(
                        start=start, duration=rng.uniform(10.0, 60.0),
                        rate_per_min=rng.uniform(1.0, 10.0),
                        downtime=rng.choice([5.0, 30.0]), target=target,
                    ))
                else:
                    events.append(TrackerOutage(
                        start=start, duration=rng.uniform(5.0, 40.0),
                    ))
            p = FluidParams(
                file_size=MIB, piece_length=65_536, classes=classes,
                max_time=180.0,
            )
            swarm = FluidSwarm(p, chaos=ChaosSchedule(events=tuple(events)))
            while swarm.t < p.max_time:
                swarm.advance(swarm.t + p.dt)
                for s in swarm._states:
                    context = f"seed={seed} t={swarm.t} class={s.cls.name}"
                    assert s.online + s.offline == pytest.approx(
                        s.alive, abs=1e-6), context
                    born = s.cls.count + s.cls.arrival_rate * swarm.t
                    assert -1e-6 <= s.alive <= born + 1e-6, context


# ----------------------------------------------------------------------
# Engine determinism and scale-invariant cost
# ----------------------------------------------------------------------
class TestEngine:
    def test_bit_identical_reruns(self):
        a = run_fluid(params()).to_jsonable()
        b = run_fluid(params()).to_jsonable()
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_cost_is_per_class_not_per_peer(self):
        small = run_fluid(params(scale=1.0))
        huge = run_fluid(params(scale=1_000.0))
        # Proportional populations: identical dynamics, identical steps.
        assert huge.steps == small.steps
        assert huge.peak_population == pytest.approx(
            1_000.0 * small.peak_population)
        for name, cr in small.classes.items():
            assert huge.classes[name].completion_time == pytest.approx(
                cr.completion_time)

    def test_wp2p_beats_default_under_mobility(self):
        default = run_fluid(params())
        wp2p = run_fluid(params(wp2p=True))
        dt_default = default.classes["mobile"].completion_time
        dt_wp2p = wp2p.classes["mobile"].completion_time
        assert dt_wp2p < dt_default

    def test_seeds_never_download(self):
        result = run_fluid(params())
        seeds = result.classes["seeds"]
        assert seeds.completion_time == 0.0
        assert seeds.mean_goodput == 0.0
        assert result.leecher_completion_time() is not None

    def test_censored_swarm_reports_none(self):
        p = params(max_time=5.0)  # far too short to finish
        result = run_fluid(p)
        assert result.leecher_completion_time() is None

    def test_metrics_and_traces_flow_through_obs(self):
        from repro.obs.tracing import RingBufferSink

        swarm = FluidSwarm(params())
        sink = swarm.trace.attach(RingBufferSink())
        result = swarm.run()
        snapshot = swarm.metrics.snapshot()
        assert "scale.steps" in snapshot
        assert "scale.peers_peak" in snapshot
        assert snapshot["scale.completions"]["total"] > 0
        assert sink.matching("engine_start")
        finish = sink.matching("engine_finish")
        assert finish and finish[0]["layer"] == "scale"
        assert result.steps > 0


# ----------------------------------------------------------------------
# Backend cache keying
# ----------------------------------------------------------------------
class TestBackendKeying:
    def test_backends_tuple(self):
        assert BACKENDS == ("packet", "fluid", "hybrid")

    def test_packet_digest_is_byte_identical_to_pre_backend_era(self):
        spec = ScenarioSpec.create("figx", {"runs": 2}, backend="packet")
        got = cell_digest(spec, ("k", 10), 7, code="pinned")
        # The exact body the pre-backend cell_digest hashed: no
        # "backend" key.  Any change here silently invalidates (or
        # worse, aliases) every cached packet result — keep it frozen.
        legacy_body = canonical_json({
            "scenario": "figx",
            "params": {"runs": 2},
            "key": ["k", 10],
            "seed": 7,
            "code": "pinned",
        })
        expected = hashlib.sha256(legacy_body.encode("utf-8")).hexdigest()
        assert got == expected

    def test_nondefault_backend_digests_are_mutually_disjoint(self):
        specs = [
            ScenarioSpec.create("figx", {"runs": 2}, backend=b)
            for b in ("packet", "fluid", "hybrid")
        ]
        assert len({s.spec_hash() for s in specs}) == 3
        assert len({
            cell_digest(s, ("k",), 1, code="c") for s in specs
        }) == 3

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            ScenarioSpec.create("figx", {}, backend="quantum")

    def test_scenarios_declare_their_backends(self):
        scale = get_scenario("figx_scale")
        assert scale.backends == ("fluid", "packet")
        assert scale.resolve_backend(None) == "fluid"
        assert scale.resolve_backend("packet") == "packet"
        legacy = get_scenario("fig2a")
        assert legacy.backends == ("packet",)
        assert legacy.resolve_backend(None) == "packet"
        with pytest.raises(ValueError, match="fluid"):
            legacy.resolve_backend("fluid")


# ----------------------------------------------------------------------
# figx_scale through the runner
# ----------------------------------------------------------------------
FAST_SCALE = {
    "swarm_sizes": [30, 3_000],
    "mobile_fractions": [0.0, 0.2],
    "file_size_kib": 1_024,
}


class TestFigxScaleScenario:
    def test_serial_and_parallel_fluid_runs_are_bit_identical(self):
        serial = Runner(jobs=1).run("figx_scale", FAST_SCALE)
        parallel = Runner(jobs=4).run("figx_scale", FAST_SCALE)
        assert serial.spec.backend == "fluid"
        assert serial.values == parallel.values
        s = [(s.label, s.x, s.y) for s in serial.result.series]
        p = [(s.label, s.x, s.y) for s in parallel.result.series]
        assert json.dumps(s) == json.dumps(p)

    def test_mobile_fraction_hurts_and_wp2p_helps(self):
        run = Runner(jobs=2).run("figx_scale", FAST_SCALE)
        baseline, default, wp2p = run.result.series
        assert baseline.label.startswith("All-wired")
        for wired_t, default_t, wp2p_t in zip(baseline.y, default.y, wp2p.y):
            assert default_t > wired_t
            assert wired_t < wp2p_t < default_t

    def test_ambient_chaos_perturbs_fluid_cells(self):
        # The runner's --chaos preset must reach the fluid engine as
        # rate modifiers, exactly as it reaches packet-level swarms.
        over = {"swarm_sizes": [1_000], "mobile_fractions": [0.2]}
        clean = Runner(jobs=1).run("figx_scale", over)
        chaotic = Runner(jobs=1, chaos="churn",
                         chaos_intensity=1.5).run("figx_scale", over)
        key = (("default", 1_000, 0.2), 1_500)
        assert (chaotic.values[key]["completion"]
                > clean.values[key]["completion"])

    def test_packet_backend_caps_swarm_size(self):
        scn = get_scenario("figx_scale")
        p = scn.params({"swarm_sizes": [500]})
        with pytest.raises(ValueError, match="swarm_size"):
            scn.run_cell(("default", 500, 0.2), 1, p)

    def test_fluid_cells_land_at_backend_specific_digests(self, tmp_path):
        from repro.runner import ResultCache

        cache = ResultCache(tmp_path)
        first = Runner(jobs=1, cache=cache).run("figx_scale", FAST_SCALE)
        again = Runner(jobs=1, cache=cache).run("figx_scale", FAST_SCALE)
        assert again.stats.cache_hits == again.stats.total_cells
        assert again.values == first.values


# ----------------------------------------------------------------------
# Cross-validation gate
# ----------------------------------------------------------------------
class TestValidation:
    def test_row_relative_error_and_verdict(self):
        ok = ValidationRow("s", "completion_time", packet=100.0, fluid=110.0,
                           tolerance=0.15)
        assert ok.rel_error == pytest.approx(0.10)
        assert ok.ok
        miss = ValidationRow("s", "completion_time", packet=100.0, fluid=130.0,
                             tolerance=0.15)
        assert not miss.ok
        # Near-zero references switch to an absolute floor instead of an
        # infinite ratio (JSON has no Infinity): the reported error is
        # the absolute difference, and it still gates.
        degenerate = ValidationRow("s", "mean_goodput", packet=0.0, fluid=1.0,
                                   tolerance=0.15)
        assert degenerate.rel_error == pytest.approx(1.0)
        assert not degenerate.ok
        close = ValidationRow("s", "mean_goodput", packet=0.0, fluid=0.05,
                              tolerance=0.15)
        assert close.ok
        json.dumps(degenerate.to_jsonable())  # must stay serialisable

    def test_table_renders_with_custom_labels(self):
        report = ValidationReport(rows=[
            ValidationRow("s", "completion_time", 100.0, 105.0, 0.15),
        ])
        default = report.table()
        assert "packet" in default and "fluid" in default
        relabelled = report.table(labels=("reference", "hybrid"))
        assert "reference" in relabelled and "hybrid" in relabelled
        assert relabelled.splitlines()[-1].endswith("ok")

    def test_report_passes_only_when_every_row_does(self):
        good = ValidationRow("s", "m", 100.0, 105.0, 0.15)
        bad = ValidationRow("s", "m", 100.0, 150.0, 0.15)
        assert ValidationReport(rows=[good]).passed
        assert not ValidationReport(rows=[good, bad]).passed
        payload = ValidationReport(rows=[good, bad]).to_jsonable()
        assert payload["passed"] is False
        assert len(payload["rows"]) == 2

    def test_matched_scenario_backends_agree_within_tolerance(self):
        # One small matched swarm end-to-end: the real anchoring gate
        # (scripts/validate_scale.py runs the full standing set).
        ms = MatchedScenario(
            name="tiny", description="2 seeds + 4 wired leechers",
            seeds=2, wired=4, file_size=512 * 1024,
        )
        report = cross_validate(scenarios=[ms], seeds=(11,))
        assert report.passed, "\n" + report.table()
        assert {r.metric for r in report.rows} == {
            "completion_time", "mean_goodput"}

    def test_tolerance_gate_actually_gates(self):
        ms = MatchedScenario(
            name="tiny", description="gate check",
            seeds=2, wired=4, file_size=512 * 1024,
        )
        strict = cross_validate(scenarios=[ms], seeds=(11,), tolerance=1e-6)
        assert not strict.passed
