"""Property tests for the calendar event queue against the heap oracle.

The two queue implementations in :mod:`repro.sim.events` promise the
identical ``(time, seq)`` total order — that contract is what makes
them freely interchangeable without perturbing a single simulation
result ("bit-identical or it doesn't merge", docs/PERFORMANCE.md).
These tests drive both in lockstep through randomized insert / cancel /
bounded-pop schedules and assert every pop matches, including the
float-boundary regime that broke the first calendar implementation:
``int(t / width)`` can round across a bucket boundary (e.g.
``4.1 / 0.005``), so day mapping must be canonicalised or the calendar
walk skips live events.
"""

from __future__ import annotations

import random

import pytest

from repro.net import AddressAllocator, Host, Internet, attach_wired_host
from repro.sim import Simulator
from repro.sim.events import (
    CalendarEventQueue,
    HeapEventQueue,
    _day_of,
    make_event_queue,
)
from repro.tcp import TCPStack


def _noop() -> None:
    pass


def _drive(seed: int, *, times, ops: int = 4_000) -> None:
    """Run an identical random schedule through both queues; every pop
    (bounded and unbounded) must return events with identical
    ``(time, seq)``."""
    rng = random.Random(seed)
    calendar = CalendarEventQueue()
    heap = HeapEventQueue()
    live = []  # parallel (calendar_event, heap_event) handles

    for _ in range(ops):
        roll = rng.random()
        if roll < 0.55 or not live:
            t = times(rng)
            live.append((calendar.push(t, _noop), heap.push(t, _noop)))
        elif roll < 0.70 and live:
            ce, he = live.pop(rng.randrange(len(live)))
            calendar.cancel(ce)
            heap.cancel(he)
        else:
            until = None if rng.random() < 0.3 else times(rng)
            got = calendar.pop_due(until)
            want = heap.pop_due(until)
            if want is None:
                assert got is None, (until, got and (got.time, got.seq))
            else:
                assert got is not None, (until, (want.time, want.seq))
                assert (got.time, got.seq) == (want.time, want.seq)
                # Retire the popped handles: cancelling an event that has
                # already fired is a kernel-contract violation.
                live = [(ce, he) for ce, he in live if he is not want]
            assert calendar.peek_time() == heap.peek_time()

    # Drain: the full remaining order must match exactly.
    while True:
        want = heap.pop()
        got = calendar.pop()
        if want is None:
            assert got is None
            break
        assert got is not None and (got.time, got.seq) == (want.time, want.seq)
    assert len(calendar) == len(heap) == 0


@pytest.mark.parametrize("seed", range(8))
def test_pop_order_matches_heap_random(seed):
    """Uniform random times over several orders of magnitude."""
    _drive(seed, times=lambda rng: rng.random() * 10 ** rng.randint(-3, 2))


@pytest.mark.parametrize("seed", range(8))
def test_pop_order_matches_heap_boundary_times(seed):
    """Times that are exact multiples of common bucket widths — the
    float regime where ``int(t / width)`` rounds across a boundary."""

    def times(rng):
        # e.g. 4.1 with width 0.005: 4.1/0.005 -> 820 but 4.1 < 820*0.005.
        return rng.randrange(0, 2000) * 0.005 + rng.choice((0.0, 0.1, 4.1))

    _drive(seed, times=times)


def test_pop_order_matches_heap_bursty_same_time():
    """Many events at the identical instant must pop in push order."""
    _drive(99, times=lambda rng: rng.choice((1.0, 1.0, 1.0, 2.5, 2.5)))


def test_day_of_is_canonical():
    """_day_of must satisfy k*width <= t < (k+1)*width exactly."""
    rng = random.Random(42)
    for _ in range(20_000):
        width = rng.choice((0.005, 0.001, 0.1, 1 / 3, 1e-6))
        t = rng.randrange(0, 10_000) * width + rng.random() * width
        k = _day_of(t, width)
        assert k * width <= t < (k + 1) * width, (t, width, k)
    # The regression instance that produced an out-of-order dispatch.
    k = _day_of(4.1, 0.005)
    assert k * 0.005 <= 4.1 < (k + 1) * 0.005


def test_make_event_queue_selection(monkeypatch):
    assert make_event_queue("calendar").kind == "calendar"
    assert make_event_queue("heap").kind == "heap"
    monkeypatch.setenv("REPRO_EVENT_QUEUE", "heap")
    assert make_event_queue().kind == "heap"
    monkeypatch.delenv("REPRO_EVENT_QUEUE")
    assert make_event_queue().kind == "calendar"
    with pytest.raises(ValueError):
        make_event_queue("splay")


def _bulk_transfer(queue: str):
    """A full TCP bulk transfer; returns order-sensitive run statistics."""

    class _Message:
        def __init__(self, wire_length: int) -> None:
            self.wire_length = wire_length

    sim = Simulator(seed=5, queue=queue)
    internet = Internet(sim, core_delay=0.01)
    alloc = AddressAllocator()
    a, b = Host(sim, "a"), Host(sim, "b")
    stack_a, stack_b = TCPStack(sim, a), TCPStack(sim, b)
    attach_wired_host(sim, a, internet, alloc.allocate(),
                      down_rate=200_000, up_rate=200_000)
    attach_wired_host(sim, b, internet, alloc.allocate(),
                      down_rate=200_000, up_rate=200_000)
    received = []
    stack_b.listen(6881, lambda conn: setattr(conn, "on_message", received.append))
    client = stack_a.connect(b.ip, 6881)
    for _ in range(300):
        client.send_message(_Message(1400))
    end = sim.run(until=60.0)
    return (
        end,
        len(received),
        sim.events_processed,
        client.stats.segments_sent,
        client.stats.segments_received,
        client.stats.pure_acks_sent,
        internet.packets_forwarded,
    )


def test_simulation_bit_identical_across_queue_impls():
    """The same run under calendar and heap queues must agree on every
    order-sensitive statistic (the end-to-end interchangeability claim;
    the figure-level digests are pinned in tests/test_scale.py)."""
    assert _bulk_transfer("calendar") == _bulk_transfer("heap")
