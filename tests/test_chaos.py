"""repro.chaos: schedules, presets, the controller, and runner integration.

Covers the determinism contract (same seed + same schedule -> identical
faults and results, serial == parallel, chaos-keyed caching), the
per-fault semantics, the mobility stop-mid-handoff regression, the
flapping leak bounds (addresses / timers / ledger state under audit),
and the runner's per-cell wall-clock timeout.
"""

from __future__ import annotations

import time

import pytest

from repro import audit, chaos
from repro.bittorrent.swarm import SwarmScenario
from repro.chaos import (
    ChaosController,
    ChaosSchedule,
    CorruptionBurst,
    HandoffStorm,
    LinkBlackout,
    LinkDegradation,
    PeerChurn,
    PeerCrash,
    TrackerOutage,
    preset_schedule,
)
from repro.obs.tracing import RingBufferSink
from repro.runner import ResultCache, Runner, Scenario, scenario
from repro.runner.spec import ScenarioSpec, cell_digest
from repro.tcp import TCPConfig

import repro.experiments  # noqa: F401  (registers figx_chaos)


# Small, fast figx_chaos campaign shared by the runner-facing tests.
FAST_CHAOS = {"runs": 1, "intensities": [0.0, 1.5]}


def small_swarm(seed: int = 7, **kwargs) -> SwarmScenario:
    sc = SwarmScenario(
        seed=seed, file_size=256 * 1024, piece_length=32_768, **kwargs
    )
    sc.add_wired_peer("seed0", complete=True)
    sc.add_wired_peer("leech0")
    sc.add_wireless_peer("mob0", rate=100_000)
    return sc


# ----------------------------------------------------------------------
# Schedules
# ----------------------------------------------------------------------
class TestSchedule:
    def test_events_sorted_by_start(self):
        sched = ChaosSchedule((
            PeerCrash(start=20.0), TrackerOutage(start=5.0), LinkBlackout(start=10.0),
        ))
        assert [e.start for e in sched] == [5.0, 10.0, 20.0]

    def test_json_round_trip(self):
        sched = ChaosSchedule((
            PeerCrash(start=1.0, target="a", downtime=3.0),
            PeerChurn(start=2.0, duration=60.0, rate_per_min=1.5, downtime=9.0),
            TrackerOutage(start=3.0, duration=12.0, mode="refuse"),
            LinkBlackout(start=4.0, duration=6.0, target="wireless"),
            LinkDegradation(start=5.0, duration=7.0, rate_factor=0.4, ber=1e-5),
            HandoffStorm(start=6.0, count=4, spacing=8.0, downtime=0.5),
            CorruptionBurst(start=7.0, duration=9.0, probability=0.3),
        ))
        assert ChaosSchedule.from_jsonable(sched.to_jsonable()) == sched

    def test_from_jsonable_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault event kind"):
            ChaosSchedule.from_jsonable([{"kind": "meteor_strike", "start": 1.0}])

    def test_composition(self):
        a = ChaosSchedule((PeerCrash(start=9.0),))
        b = ChaosSchedule((TrackerOutage(start=1.0),))
        combined = a + b
        assert len(combined) == 2
        assert combined.events[0].kind == "tracker_outage"

    def test_validation(self):
        with pytest.raises(ValueError):
            PeerCrash(start=-1.0)
        with pytest.raises(ValueError):
            TrackerOutage(start=0.0, mode="emp")
        with pytest.raises(ValueError):
            CorruptionBurst(start=0.0, probability=1.0)
        with pytest.raises(ValueError):
            LinkDegradation(start=0.0, rate_factor=0.0)


class TestPresets:
    def test_pure_function_of_arguments(self):
        for name in chaos.PRESET_NAMES:
            assert preset_schedule(name, 1.3, 200.0) == preset_schedule(name, 1.3, 200.0)

    def test_zero_intensity_is_empty(self):
        for name in chaos.PRESET_NAMES:
            assert preset_schedule(name, 0.0, 300.0).empty

    def test_unknown_preset_raises(self):
        with pytest.raises(ValueError, match="unknown chaos preset"):
            preset_schedule("lava", 1.0, 300.0)

    def test_schedules_are_cache_keyable(self):
        # Every preset's schedule survives the JSON round-trip the cache
        # and worker payloads rely on.
        for name in chaos.PRESET_NAMES:
            sched = preset_schedule(name, 2.0, 300.0)
            assert ChaosSchedule.from_jsonable(sched.to_jsonable()) == sched


# ----------------------------------------------------------------------
# Controller fault semantics
# ----------------------------------------------------------------------
class TestController:
    def test_peer_crash_stops_client_and_rejoin_restarts(self):
        sc = small_swarm()
        sc.add_chaos(ChaosSchedule((
            PeerCrash(start=3.0, target="leech0", downtime=5.0),
        )))
        sc.start_all()
        sc.run(until=4.0)
        leech = sc["leech0"]
        assert not leech.client.started
        assert leech.host.ip is None
        sc.run(until=10.0)
        assert leech.client.started
        assert leech.host.ip is not None

    def test_link_blackout_keeps_client_running(self):
        sc = small_swarm(seed=8)
        sc.add_chaos(ChaosSchedule((
            LinkBlackout(start=3.0, duration=4.0, target="mob0"),
        )))
        sc.start_all()
        sc.run(until=4.0)
        mob = sc["mob0"]
        assert mob.client.started       # the process survives a dead radio
        assert mob.host.ip is None
        sc.run(until=10.0)
        assert mob.host.ip is not None

    def test_tracker_blackout_returns_at_original_address(self):
        sc = small_swarm(seed=9)
        original = sc.tracker_host.ip
        sc.add_chaos(ChaosSchedule((
            TrackerOutage(start=2.0, duration=5.0, mode="blackout"),
        )))
        sc.start_all()
        sc.run(until=3.0)
        assert sc.tracker_host.ip is None
        sc.run(until=10.0)
        assert sc.tracker_host.ip == original == sc.torrent.tracker_ip

    def test_degradation_restores_baseline(self):
        sc = small_swarm(seed=10)
        mob = sc["mob0"]
        base_rate = mob.channel.rate
        leech_link = sc["leech0"].host.interface.link
        base_down = leech_link.downlink.rate
        sc.add_chaos(ChaosSchedule((
            LinkDegradation(start=1.0, duration=3.0, target="*",
                            rate_factor=0.25, extra_delay=0.05),
        )))
        sc.start_all()
        sc.run(until=2.0)
        assert mob.channel.rate == pytest.approx(base_rate * 0.25)
        assert leech_link.downlink.rate == pytest.approx(base_down * 0.25)
        sc.run(until=5.0)
        assert mob.channel.rate == pytest.approx(base_rate)
        assert leech_link.downlink.rate == pytest.approx(base_down)

    def test_handoff_storm_via_mobility_controller(self):
        sc = small_swarm(seed=11)
        mob = sc["mob0"]
        controller = sc.add_mobility(mob, interval=500.0, downtime=1.0)
        sc.add_chaos(ChaosSchedule((
            HandoffStorm(start=2.0, target="mobile", count=3, spacing=4.0,
                         downtime=0.5),
        )))
        sc.start_all()
        sc.run(until=20.0)
        assert controller.handoffs == 3
        assert sc.chaos.faults_injected == 3

    def test_overlapping_host_faults_are_skipped(self):
        sc = small_swarm(seed=12)
        sc.add_chaos(ChaosSchedule((
            LinkBlackout(start=2.0, duration=10.0, target="leech0"),
            PeerCrash(start=5.0, target="leech0", downtime=1.0),
        )))
        sc.start_all()
        sc.run(until=8.0)
        assert sc.chaos.faults_injected == 1
        assert sc.chaos.faults_skipped == 1

    def test_second_controller_rejected(self):
        sc = small_swarm(seed=13)
        sc.add_chaos(ChaosSchedule((PeerCrash(start=1.0),)))
        with pytest.raises(RuntimeError, match="already has an armed"):
            sc.add_chaos(ChaosSchedule((PeerCrash(start=2.0),)))

    def test_churn_is_deterministic_per_seed(self):
        def run_once():
            sc = small_swarm(seed=21)
            sc.add_chaos(ChaosSchedule((
                PeerChurn(start=1.0, duration=120.0, rate_per_min=4.0,
                          downtime=3.0, target="*"),
            )))
            sc.start_all()
            sc.run(until=90.0)
            return sc.chaos.log, sc["leech0"].client.manager.bytes_completed

        first, second = run_once(), run_once()
        assert first == second
        assert any(kind == "peer_churn" for _, kind, _ in first[0])

    def test_metrics_and_trace_events(self):
        sc = small_swarm(seed=14)
        sc.add_chaos(ChaosSchedule((
            TrackerOutage(start=1.0, duration=2.0, mode="refuse"),
            CorruptionBurst(start=2.0, duration=3.0, target="leech0",
                            probability=0.4),
        )))
        sink = sc.sim.trace.attach(RingBufferSink())
        sc.start_all()
        sc.run(until=10.0)
        assert sc.sim.metrics.counter("chaos.faults").total == 2
        assert sc.sim.metrics.counter("chaos.tracker_outage").total == 1
        names = {e["event"] for e in sink.by_layer("chaos")}
        assert names >= {"tracker_outage", "corruption_burst"}


# ----------------------------------------------------------------------
# Global install (the audit-style pattern)
# ----------------------------------------------------------------------
class TestGlobalInstall:
    def test_unleashed_attaches_to_new_scenarios(self):
        with chaos.unleashed("handoff-storm", intensity=1.0, horizon=60.0) as made:
            sc = small_swarm(seed=15)
            sc.add_mobility(sc["mob0"], interval=500.0, downtime=1.0)
            assert sc.chaos is made[0]
            sc.start_all()
            sc.run(until=60.0)
        assert not chaos.installed()
        assert made[0].faults_injected > 0

    def test_off_by_default(self):
        assert not chaos.installed()
        assert small_swarm(seed=16).chaos is None

    def test_install_validates_preset(self):
        with pytest.raises(ValueError, match="unknown chaos preset"):
            chaos.install("nope")
        assert not chaos.installed()


# ----------------------------------------------------------------------
# Satellite: MobilityController.stop() mid-handoff
# ----------------------------------------------------------------------
class TestStopMidHandoff:
    def test_stop_cancels_inflight_reconnect(self):
        sc = small_swarm(seed=17)
        mob = sc["mob0"]
        controller = sc.add_mobility(mob, interval=10.0, downtime=2.0)
        sc.start_all()
        sc.run(until=10.5)            # handoff at t=10, reconnect due t=12
        assert controller.in_handoff
        assert mob.host.ip is None
        controller.stop()
        sc.run(until=20.0)
        # the stale reconnect must NOT have re-attached the host
        assert mob.host.ip is None
        assert not controller.in_handoff

    def test_trigger_handoff_refuses_when_stopped_or_busy(self):
        sc = small_swarm(seed=18)
        controller = sc.add_mobility(sc["mob0"], interval=100.0, downtime=2.0)
        sc.start_all()
        sc.run(until=1.0)
        assert controller.trigger_handoff()        # forces one now
        assert not controller.trigger_handoff()    # mid-handoff: refused
        sc.run(until=5.0)
        controller.stop()
        assert not controller.trigger_handoff()    # stopped: refused


# ----------------------------------------------------------------------
# Satellite: flapping must not leak addresses, timers, or ledger state
# ----------------------------------------------------------------------
class TestFlappingLeaks:
    def test_repeated_flap_cycles_stay_bounded(self):
        with audit.audited():
            # fast-failing TCP so doomed SYNs toward stale (pre-handoff)
            # addresses die in seconds — the address-book prune runs on
            # connect failure, and we want to observe the steady state,
            # not the 60 s default SYN backoff
            sc = SwarmScenario(
                seed=19, file_size=4 * 1024 * 1024, piece_length=32_768,
                tracker_interval=15.0,
                tcp_config=TCPConfig(max_syn_retries=2, max_rto=2.0),
            )
            sc.add_wired_peer("seed0", complete=True, up_rate=120_000)
            sc.add_wired_peer("f0", up_rate=60_000)
            sc.add_wireless_peer("mob0", rate=80_000)
            # 18 forced handoff cycles against the mobile peer plus three
            # tracker blackouts: every cycle regenerates the mobile's
            # peer ID and address.
            sc.add_chaos(ChaosSchedule((
                HandoffStorm(start=2.0, target="mob0", count=18, spacing=6.0,
                             downtime=0.5),
                TrackerOutage(start=20.0, duration=4.0, mode="blackout"),
                TrackerOutage(start=50.0, duration=4.0, mode="blackout"),
                TrackerOutage(start=80.0, duration=4.0, mode="refuse"),
            )))
            sc.start_all()
            sc.run(until=70.0)
            mid_pending = sc.sim.pending_events
            sc.run(until=130.0)

            # Addresses: the allocator's live set is exactly the up hosts.
            up_ips = {
                h.host.ip for h in sc.peers.values() if h.host.ip is not None
            }
            if sc.tracker_host.ip is not None:
                up_ips.add(sc.tracker_host.ip)
            assert sc.alloc.live_addresses == up_ips

            # Timers: the pending-event count must not grow with flap
            # count (a leaked timer per cycle would roughly double it
            # between the two checkpoints).
            assert sc.sim.pending_events <= mid_pending * 1.5 + 25

            # Ledger + address book: entries for dead peer IDs are
            # pruned/decayed instead of accumulating one per flap.
            for handle in sc.peers.values():
                assert len(handle.client.ledger.known_ids()) <= 8
                assert len(handle.client.known_addresses) <= 8
            # Tracker records for stale IDs prune on the announce path.
            assert sc.tracker.swarm_size(sc.torrent.info_hash) <= 8
            assert sc.chaos.faults_injected >= 18


# ----------------------------------------------------------------------
# Runner integration: determinism, caching, ambient chaos
# ----------------------------------------------------------------------
class TestRunnerIntegration:
    def test_serial_equals_parallel(self):
        serial = Runner(jobs=1).run("figx_chaos", FAST_CHAOS)
        parallel = Runner(jobs=4).run("figx_chaos", FAST_CHAOS)
        assert serial.values == parallel.values

    def test_warm_cache_hits_everything(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cold = Runner(jobs=2, cache=cache).run("figx_chaos", FAST_CHAOS)
        warm = Runner(jobs=2, cache=cache).run("figx_chaos", FAST_CHAOS)
        assert warm.stats.executed == 0
        assert warm.stats.cache_hits == warm.stats.total_cells
        assert warm.values == cold.values

    def test_graceful_degradation_ordering(self):
        run = Runner(jobs=4).run("figx_chaos", FAST_CHAOS)
        completion = {
            (variant, intensity): value["completion"]
            for ((variant, intensity), _seed), value in run.values.items()
        }
        assert not run.failures
        # chaos hurts both variants...
        assert completion[("default", 1.5)] > completion[("default", 0.0)]
        assert completion[("wp2p", 1.5)] > completion[("wp2p", 0.0)]
        # ...but wP2P degrades more gracefully than the default client
        assert completion[("wp2p", 1.5)] < completion[("default", 1.5)]

    def test_ambient_chaos_keys_the_cache_separately(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        clean = Runner(jobs=2, cache=cache).run("figx_chaos", FAST_CHAOS)
        chaotic = Runner(
            jobs=2, cache=cache, chaos="blackout", chaos_intensity=1.0
        ).run("figx_chaos", FAST_CHAOS)
        assert chaotic.stats.cache_hits == 0           # disjoint address space
        assert chaotic.values != clean.values          # and different physics
        rerun = Runner(
            jobs=2, cache=cache, chaos="blackout", chaos_intensity=1.0
        ).run("figx_chaos", FAST_CHAOS)
        assert rerun.stats.cache_hits == rerun.stats.total_cells
        assert rerun.values == chaotic.values

    def test_chaos_digest_distinct_from_clean(self):
        spec = ScenarioSpec.create("x", {"a": 1}, seeds=[1])
        clean = cell_digest(spec, ("k",), 1, code="c")
        chaotic = cell_digest(
            spec, ("k",), 1, code="c",
            chaos={"preset": "mixed", "intensity": 1.0, "horizon": 300.0},
        )
        assert clean != chaotic
        # and the clean digest is exactly the legacy (pre-chaos) digest
        assert clean == cell_digest(spec, ("k",), 1, code="c", chaos=None)

    def test_bad_preset_fails_at_construction(self):
        with pytest.raises(ValueError, match="unknown chaos preset"):
            Runner(chaos="volcano")

    def test_audit_composes_with_chaos(self):
        run = Runner(
            jobs=2, audit=True, chaos="handoff-storm", chaos_intensity=1.0
        ).run("figx_chaos", {"runs": 1, "intensities": [1.0]})
        assert not run.failures


# ----------------------------------------------------------------------
# Satellite: per-cell wall-clock timeout
# ----------------------------------------------------------------------
@scenario
class _SleepyScenario(Scenario):
    """Cells that burn real wall clock; used to test cell_timeout."""

    name = "_test_sleepy"
    description = "test-only: cells that sleep for their key's duration"
    defaults = {"sleeps": [0.01, 1.5]}

    def cells(self, p):
        for s in p["sleeps"]:
            yield (s,), 0

    def run_cell(self, key, seed, p):
        time.sleep(key[0])
        return key[0]

    def assemble(self, p, values, failures):
        return sorted(v for v in values.values())


class TestCellTimeout:
    def test_slow_cell_becomes_failure_without_retry(self):
        run = Runner(jobs=1, cell_timeout=0.4).run("_test_sleepy")
        assert run.stats.failed == 1
        assert len(run.failures) == 1
        failure = run.failures[0]
        assert failure.key == (1.5,)
        assert "CellTimeout" in failure.error
        assert failure.attempts == 1          # timeouts are not retried
        assert run.values[((0.01,), 0)] == 0.01

    def test_pool_workers_also_enforce_the_budget(self):
        run = Runner(jobs=2, cell_timeout=0.4).run("_test_sleepy")
        assert run.stats.failed == 1
        assert "CellTimeout" in run.failures[0].error

    def test_generous_budget_passes_everything(self):
        run = Runner(jobs=1, cell_timeout=30.0).run(
            "_test_sleepy", {"sleeps": [0.01, 0.02]}
        )
        assert not run.failures

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError, match="cell_timeout"):
            Runner(cell_timeout=0.0)


# ----------------------------------------------------------------------
# MTTR accounting (repro.chaos.recovery)
# ----------------------------------------------------------------------
class TestRecoveryTracking:
    def churned_swarm(self, seed: int = 500) -> SwarmScenario:
        sc = SwarmScenario(seed=seed, file_size=1024 * 1024,
                           piece_length=16_384)
        sc.add_chaos(preset_schedule("churn", intensity=3.0, horizon=120.0))
        sc.add_wired_peer("seed", complete=True, up_rate=64_000)
        sc.add_wired_peer("l0", up_rate=32_000)
        sc.add_wired_peer("l1", up_rate=32_000)
        return sc

    def test_armed_controller_tracks_recoveries(self):
        sink = None
        sc = self.churned_swarm()
        sink = sc.sim.trace.attach(RingBufferSink())
        sc.start_all()
        sc.run(until=180.0)
        tracker = sc.chaos.recovery
        assert tracker is not None
        assert tracker.samples > 100  # 1 Hz read-only sampling ran
        assert sc.chaos.faults_injected > 0
        summary = tracker.summary()
        assert summary["recoveries"] + summary["censored"] >= \
            sc.chaos.faults_injected
        if tracker.recoveries:
            assert summary["mean_mttr"] > 0.0
            assert summary["max_mttr"] >= summary["mean_mttr"]
            for recovery in tracker.recoveries:
                assert recovery.recovered_at > recovery.fault_time
            events = sink.matching("recovered")
            assert len(events) == len(tracker.recoveries)
            assert sc.sim.metrics.snapshot()[
                "chaos.recovery_seconds"]["count"] == len(tracker.recoveries)

    def test_recovery_tracking_is_read_only(self):
        # Identical runs with and without the tracker sampling must not
        # diverge: sampling reads counters, it never touches peers.
        def completion(arm_tracker: bool) -> float:
            sc = self.churned_swarm(seed=501)
            if not arm_tracker and sc.chaos is not None \
                    and sc.chaos.recovery is not None:
                sc.chaos.recovery.stop()
            sc.start_all()
            sc.run_until_complete(["l0", "l1"], timeout=400)
            return sc.sim.now

        assert completion(True) == completion(False)

    def test_empty_schedule_arms_no_tracker(self):
        sc = SwarmScenario(seed=502, file_size=256 * 1024,
                           piece_length=65_536)
        sc.add_chaos(ChaosSchedule())
        assert sc.chaos.recovery is None

    def test_runreport_renders_mttr_section(self):
        from repro.analysis.runreport import render_report

        sc = self.churned_swarm(seed=503)
        sink = sc.sim.trace.attach(RingBufferSink())
        sc.start_all()
        sc.run(until=180.0)
        if not sc.chaos.recovery.recoveries:
            pytest.skip("no recovery completed under this seed")
        report = render_report(sink.records)
        assert "## Fault recovery (MTTR)" in report
        assert "Mean MTTR" in report
