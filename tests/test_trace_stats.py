"""Tests for the packet tracer and multi-run statistics."""

from __future__ import annotations

import pytest

from repro.analysis import (
    Summary,
    clearly_greater,
    relative_gain,
    summarize,
    t_critical_95,
)
from repro.net import PacketTrace

from tests.helpers import Message, TwoHostNet


class TestPacketTrace:
    def open_traced_pair(self):
        net = TwoHostNet()
        trace = PacketTrace(net.sim, net.a)
        accepted = []

        def accept(conn):
            conn.on_message = lambda m: accepted.append(m.tag)

        net.stack_b.listen(6881, accept)
        client = net.stack_a.connect(net.b.ip, 6881)
        return net, trace, client

    def test_captures_both_directions(self):
        net, trace, client = self.open_traced_pair()
        client.send_message(Message(1000, "x"))
        net.sim.run(until=5.0)
        assert trace.egress()
        assert trace.ingress()
        assert len(trace) == len(trace.egress()) + len(trace.ingress())

    def test_tcp_summaries_readable(self):
        net, trace, client = self.open_traced_pair()
        client.send_message(Message(1000, "x"))
        net.sim.run(until=5.0)
        syns = trace.matching("SYN")
        assert syns
        assert "seq=" in syns[0].summary
        assert str(syns[0])  # renders

    def test_filter_predicate(self):
        net = TwoHostNet()
        trace = PacketTrace(
            net.sim, net.a, keep=lambda p: p.payload.payload_len > 0
        )
        accepted = []
        net.stack_b.listen(6881, lambda c: None)
        client = net.stack_a.connect(net.b.ip, 6881)
        client.send_message(Message(3000, "x"))
        net.sim.run(until=5.0)
        assert all("len=" in r.summary for r in trace.records)

    def test_detach_stops_capture(self):
        net, trace, client = self.open_traced_pair()
        net.sim.run(until=2.0)
        count = len(trace)
        trace.detach()
        client.send_message(Message(5000, "more"))
        net.sim.run(until=5.0)
        assert len(trace) == count
        trace.detach()  # idempotent

    def test_max_records_cap(self):
        net = TwoHostNet()
        trace = PacketTrace(net.sim, net.a, max_records=5)
        net.stack_b.listen(6881, lambda c: None)
        client = net.stack_a.connect(net.b.ip, 6881)
        for i in range(50):
            client.send_message(Message(1460, i))
        net.sim.run(until=10.0)
        assert len(trace) == 5
        assert trace.dropped_records > 0

    def test_bytes_by_direction_and_dump(self):
        net, trace, client = self.open_traced_pair()
        client.send_message(Message(2000, "x"))
        net.sim.run(until=5.0)
        by_dir = trace.bytes_by_direction()
        assert by_dir["egress"] > 2000
        assert by_dir["ingress"] > 0
        assert "->" in trace.dump(limit=3)

    def test_trace_does_not_alter_traffic(self):
        # identical outcome with and without a trace attached
        def run(traced):
            net = TwoHostNet(seed=8, wireless=True, ber=5e-6)
            if traced:
                PacketTrace(net.sim, net.a)
            got = []

            def accept(conn):
                conn.on_message = lambda m: got.append(m.tag)

            net.stack_b.listen(6881, accept)
            client = net.stack_a.connect(net.b.ip, 6881)
            for i in range(60):
                client.send_message(Message(1460, i))
            net.sim.run(until=60.0)
            return got, client.stats.segments_sent

        assert run(False) == run(True)


class TestStats:
    def test_summarize_basic(self):
        s = summarize([10.0, 12.0, 11.0, 13.0])
        assert s.n == 4
        assert s.mean == pytest.approx(11.5)
        assert s.low < s.mean < s.high

    def test_single_sample(self):
        s = summarize([5.0])
        assert s == Summary(1, 5.0, 0.0, 0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_t_critical(self):
        assert t_critical_95(1) == pytest.approx(12.706)
        assert t_critical_95(30) == pytest.approx(2.042)
        assert t_critical_95(1000) == pytest.approx(1.96)
        with pytest.raises(ValueError):
            t_critical_95(0)

    def test_clearly_greater(self):
        a = [100.0, 101.0, 99.0, 100.5]
        b = [50.0, 51.0, 49.0, 50.5]
        assert clearly_greater(a, b)
        assert not clearly_greater(b, a)
        # overlapping samples: not clearly greater
        assert not clearly_greater([10.0, 30.0], [15.0, 25.0])

    def test_relative_gain(self):
        assert relative_gain([120.0], [100.0]) == pytest.approx(0.2)
        assert relative_gain([10.0], [0.0]) == float("inf")
        assert relative_gain([0.0], [0.0]) == 0.0
