"""Tests for tracker pruning, announce scheduling, and swarm discovery."""

from __future__ import annotations

import pytest

from repro.bittorrent import ClientConfig
from repro.bittorrent.swarm import SwarmScenario
from repro.net.mobility import disconnect_host, reconnect_host


class TestTrackerPruning:
    def test_silent_peer_pruned_after_missed_announces(self):
        sc = SwarmScenario(seed=80, file_size=256 * 1024, piece_length=65_536,
                           tracker_interval=30.0)
        sc.add_wired_peer("seed", complete=True)
        l0 = sc.add_wired_peer("l0")
        sc.start_all()
        sc.run(until=5.0)
        assert sc.tracker.swarm_size(sc.torrent.info_hash) == 2
        # l0 vanishes without a 'stopped' event
        l0.client._sweep.stop()
        l0.client.choker.stop()
        sc.sim.cancel(l0.client._announce_event)
        l0.client._announce_event = None
        disconnect_host(l0.host, sc.internet, sc.alloc)
        # after > prune_factor * interval of silence plus another peer's
        # announce (pruning happens on handling), the record is gone
        sc.run(until=5.0 + 30.0 * 2.5 + 40.0)
        assert sc.tracker.swarm_size(sc.torrent.info_hash) == 1

    def test_periodic_announce_refreshes_last_seen(self):
        sc = SwarmScenario(seed=81, file_size=256 * 1024, piece_length=65_536,
                           tracker_interval=20.0)
        sc.add_wired_peer("seed", complete=True)
        sc.add_wired_peer("l0")
        sc.start_all()
        sc.run(until=150.0)
        # both keep announcing; nobody is pruned
        assert sc.tracker.swarm_size(sc.torrent.info_hash) == 2
        assert sc.tracker.announces >= 10


class TestAnnounceRecovery:
    def test_announce_retries_while_host_down(self):
        sc = SwarmScenario(seed=82, file_size=256 * 1024, piece_length=65_536)
        l0 = sc.add_wired_peer("l0")
        disconnect_host(l0.host, sc.internet, sc.alloc)
        l0.client.start()  # start while down: announce must defer, not crash
        sc.run(until=15.0)
        assert sc.tracker.swarm_size(sc.torrent.info_hash) == 0
        reconnect_host(l0.host, sc.internet, sc.alloc)
        sc.run(until=40.0)
        assert sc.tracker.swarm_size(sc.torrent.info_hash) == 1

    def test_completed_event_updates_seed_count(self):
        sc = SwarmScenario(seed=83, file_size=256 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True)
        sc.add_wired_peer("l0")
        sc.start_all()
        assert sc.run_until_complete(["l0"], timeout=300)
        sc.run(until=sc.sim.now + 5.0)
        seeds, leeches = sc.tracker.seeds_and_leeches(sc.torrent.info_hash)
        assert seeds == 2
        assert leeches == 0

    def test_numwant_caps_response(self):
        config = ClientConfig(numwant=3)
        sc = SwarmScenario(seed=84, file_size=256 * 1024, piece_length=65_536)
        for i in range(8):
            sc.add_wired_peer(f"p{i}")
        late = sc.add_wired_peer("late", config=config)
        sc.start_all()
        sc.run(until=10.0)
        # 'late' asked for at most 3 peers per announce
        assert 0 < len(late.client.known_addresses) <= 6  # a couple announces

    def test_tracker_error_for_garbage(self):
        from repro.bittorrent.messages import TrackerError

        sc = SwarmScenario(seed=85, file_size=256 * 1024, piece_length=65_536)
        l0 = sc.add_wired_peer("l0")
        errors = []
        conn = l0.client.stack.connect(sc.torrent.tracker_ip, sc.torrent.tracker_port)
        conn.on_message = lambda m: errors.append(m)

        class Garbage:
            wire_length = 50

        conn.send_message(Garbage())
        sc.run(until=5.0)
        assert errors and isinstance(errors[0], TrackerError)


class TestKeepSeedingPolicy:
    def test_stop_after_completion_when_configured(self):
        config = ClientConfig(keep_seeding=False)
        sc = SwarmScenario(seed=86, file_size=256 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True)
        l0 = sc.add_wired_peer("l0", config=config)
        sc.start_all()
        assert sc.run_until_complete(["l0"], timeout=300)
        sc.run(until=sc.sim.now + 10.0)
        assert not l0.client.started

    def test_keep_seeding_default_stays(self):
        sc = SwarmScenario(seed=87, file_size=256 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True)
        l0 = sc.add_wired_peer("l0")
        sc.start_all()
        assert sc.run_until_complete(["l0"], timeout=300)
        sc.run(until=sc.sim.now + 10.0)
        assert l0.client.started


class TestAnnounceBackoff:
    def test_backoff_doubles_with_jitter_and_caps_at_interval(self):
        sc = SwarmScenario(seed=88, file_size=256 * 1024, piece_length=65_536,
                           tracker_interval=90.0)
        l0 = sc.add_wired_peer("l0")
        client = l0.client
        client._tracker_interval_hint = 90.0
        base = client.config.announce_retry
        delays = [client._announce_backoff() for _ in range(8)]
        for i, delay in enumerate(delays):
            ideal = base * (2.0 ** i)
            # within the ±12.5% seeded jitter band, then hard-capped
            assert delay <= min(ideal * 1.125, 90.0)
            assert delay >= min(ideal * 0.875, 90.0) * 0.875
        assert delays[-1] == 90.0  # ceiling reached

    def test_success_resets_the_backoff_ladder(self):
        sc = SwarmScenario(seed=89, file_size=256 * 1024, piece_length=65_536)
        l0 = sc.add_wired_peer("l0")
        l0.client._announce_failures = 6
        sc.start_all()
        sc.run(until=10.0)  # first announce succeeds
        assert l0.client._announce_failures == 0

    def test_refused_announces_stay_bit_reproducible(self):
        # The jitter draws from a dedicated client RNG stream; a run
        # that exercises the backoff path must not perturb protocol
        # randomness, so two identical runs stay identical — the
        # digest-reproducibility contract behind result caching.
        from repro.chaos import ChaosSchedule, TrackerOutage

        def run(seed: int):
            sc = SwarmScenario(seed=seed, file_size=256 * 1024,
                               piece_length=65_536, tracker_interval=30.0)
            sc.add_chaos(ChaosSchedule(events=(
                TrackerOutage(start=2.0, duration=60.0, mode="refuse"),
            )))
            sc.add_wired_peer("seed", complete=True)
            l0 = sc.add_wired_peer("l0")
            sc.start_all()
            assert sc.run_until_complete(["l0"], timeout=400)
            return (
                l0.client.completion_time,
                l0.client.announce_count,
                l0.client._announce_failures,
                sc.sim.now,
            )

        first, second = run(123), run(123)
        assert first == second
        assert first[2] > 0 or first[1] > 2  # the outage really bit
