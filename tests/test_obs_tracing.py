"""Tests for the tracing bus, sinks, kernel profiler, and run reports."""

from __future__ import annotations

import json

import pytest

from repro.obs import tracing
from repro.obs.tracing import (
    JSONLSink,
    NullSink,
    RingBufferSink,
    TraceBus,
    read_jsonl,
)
from repro.sim import Simulator


@pytest.fixture(autouse=True)
def _no_global_sinks():
    """Tests must not leak globally installed default sinks."""
    tracing.uninstall()
    yield
    tracing.uninstall()


class TestTraceBus:
    def test_disabled_by_default_and_emits_nothing(self):
        bus = TraceBus()
        assert not bus.enabled
        bus.event("tcp", "rto", conn="a")  # no sink: must be a no-op
        assert bus.events_emitted == 0

    def test_attach_enables_detach_disables(self):
        bus = TraceBus()
        sink = bus.attach(RingBufferSink())
        assert bus.enabled
        bus.detach(sink)
        assert not bus.enabled

    def test_event_records_time_layer_fields(self):
        clock = [0.0]
        bus = TraceBus(clock=lambda: clock[0])
        sink = bus.attach(RingBufferSink())
        clock[0] = 4.25
        bus.event("wp2p", "lihd_update", upload_cap=1234.0)
        assert sink.records == [
            {"t": 4.25, "layer": "wp2p", "event": "lihd_update",
             "upload_cap": 1234.0}
        ]

    def test_layer_filter(self):
        bus = TraceBus()
        sink = bus.attach(RingBufferSink(), layers=["tcp"])
        bus.event("tcp", "rto")
        bus.event("bittorrent", "choke_round")
        assert [r["layer"] for r in sink.records] == ["tcp"]

    def test_fan_out_to_multiple_sinks(self):
        bus = TraceBus()
        a = bus.attach(RingBufferSink())
        b = bus.attach(RingBufferSink())
        bus.event("sim", "stop")
        assert len(a) == len(b) == 1

    def test_null_sink_keeps_bus_enabled(self):
        bus = TraceBus()
        bus.attach(NullSink())
        bus.event("sim", "stop")
        assert bus.enabled
        assert bus.events_emitted == 1


class TestRingBufferSink:
    def test_capacity_bound(self):
        sink = RingBufferSink(capacity=3)
        for i in range(5):
            sink.write({"t": float(i), "layer": "sim", "event": "e"})
        assert len(sink) == 3
        assert sink.total_written == 5
        assert sink.records[0]["t"] == 2.0

    def test_query_helpers(self):
        sink = RingBufferSink()
        sink.write({"t": 0, "layer": "tcp", "event": "rto"})
        sink.write({"t": 1, "layer": "wp2p", "event": "am_state"})
        assert len(sink.by_layer("tcp")) == 1
        assert len(sink.matching("am_state")) == 1
        sink.clear()
        assert len(sink) == 0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)


class TestJSONLRoundTrip:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JSONLSink(path)
        records = [
            {"t": 0.5, "layer": "tcp", "event": "rto", "cwnd": 2920},
            {"t": 1.0, "layer": "wp2p", "event": "am_state", "status": "mature"},
        ]
        for record in records:
            sink.write(record)
        sink.close()
        assert read_jsonl(path) == records
        assert sink.records_written == 2

    def test_lazy_open_writes_nothing_without_events(self, tmp_path):
        path = tmp_path / "never.jsonl"
        sink = JSONLSink(str(path))
        sink.close()
        assert not path.exists()


class TestGlobalInstall:
    def test_new_simulators_pick_up_default_sinks(self):
        sink = RingBufferSink()
        tracing.install(sink)
        sim = Simulator()
        assert sim.trace.enabled
        sim.schedule(1.0, lambda: None)
        sim.run()
        layers = {r["layer"] for r in sink.records}
        assert layers == {"sim"}

    def test_uninstall_stops_affecting_new_simulators(self):
        tracing.install(RingBufferSink())
        tracing.uninstall()
        assert not Simulator().trace.enabled

    def test_capture_context_manager(self, tmp_path):
        path = str(tmp_path / "cap.jsonl")
        with tracing.capture(path=path):
            sim = Simulator()
            sim.schedule(0.5, sim.stop)
            sim.run()
        assert not tracing.installed()
        events = read_jsonl(path)
        assert {r["event"] for r in events} >= {"run_begin", "stop"}


class TestZeroOverheadWhenDisabled:
    def test_kernel_emits_nothing_without_sinks(self):
        sim = Simulator()
        for i in range(50):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.trace.events_emitted == 0
        assert sim.profiler is None

    def test_instrumented_paths_silent_without_sinks(self):
        # A full traffic-bearing run with tracing disabled must emit zero
        # events through any of the wired layers.
        from repro.experiments.base import run_transfer

        stats = run_transfer(seed=1, ber=1e-5, bidirectional=True, duration=5.0)
        assert stats.delivered_down > 0

    def test_event_is_module_noop_while_disabled(self):
        # The fast path is a *precomputed guard*: with no sink attached,
        # bus.event must be the module-level no-op (no bound method, no
        # enabled check per call).  Attach swaps in _emit, detach swaps
        # the no-op back.  Pinned so a refactor cannot quietly turn the
        # obs-off path back into per-event dispatch overhead.
        bus = TraceBus()
        assert bus.event is tracing._noop_event
        sink = bus.attach(RingBufferSink())
        assert bus.event.__func__ is TraceBus._emit
        bus.detach(sink)
        assert bus.event is tracing._noop_event
        assert Simulator().trace.event is tracing._noop_event

    def test_detached_sink_sees_zero_calls_from_a_run(self):
        # A sink that was attached and then detached must observe zero
        # writes during a subsequent traffic-bearing run: the obs-off
        # fast path performs zero sink calls, not merely zero records.
        class CountingSink:
            calls = 0

            def write(self, record):
                CountingSink.calls += 1

            def close(self):
                pass

        sim = Simulator()
        sink = sim.trace.attach(CountingSink())
        sim.trace.detach(sink)
        for i in range(100):
            sim.schedule(float(i) * 0.1, lambda: None)
        sim.run()
        assert CountingSink.calls == 0
        assert sim.trace.events_emitted == 0


class TestKernelProfiler:
    def test_profiler_aggregates_handler_costs(self):
        sim = Simulator()
        prof = sim.enable_profiling()

        def busy():
            sum(range(200))

        for i in range(10):
            sim.schedule(float(i), busy)
        sim.run(until=20.0)
        assert prof.events == 10
        assert prof.sim_seconds == pytest.approx(20.0)
        assert prof.events_per_second > 0
        assert prof.wall_per_sim_second >= 0
        top = prof.top_handlers()
        assert top and top[0].calls == 10
        assert "busy" in top[0].label
        report = prof.format_report()
        assert "events processed : 10" in report
        assert "busy" in report

    def test_bound_methods_aggregate_per_class(self):
        from repro.obs.profiling import _callback_label

        class Thing:
            def handler(self):
                pass

        assert _callback_label(Thing().handler) == "Thing.handler"

    def test_disable_profiling(self):
        sim = Simulator()
        sim.enable_profiling()
        sim.disable_profiling()
        assert sim.profiler is None


class TestCrossLayerTrace:
    def test_traced_swarm_run_covers_four_layers(self, tmp_path):
        """A wP2P swarm run must log sim, tcp, bittorrent, and wp2p events."""
        from repro.bittorrent.swarm import SwarmScenario
        from repro.wp2p import WP2PClient, WP2PConfig

        path = str(tmp_path / "swarm.jsonl")
        with tracing.capture(path=path):
            sc = SwarmScenario(
                seed=3, file_size=512 * 1024, piece_length=65_536
            )
            sc.add_wired_peer("seed", complete=True)
            cfg = WP2PConfig(
                am_enabled=True, lihd_u_max=50_000.0, lihd_interval=2.0
            )
            sc.add_wireless_peer(
                "mobile", rate=100_000, ber=1e-5,
                client_factory=WP2PClient, config=cfg,
            )
            sc.start_all()
            sc.run(until=40.0)
        events = read_jsonl(path)
        layers = {r["layer"] for r in events}
        assert {"sim", "tcp", "bittorrent", "wp2p"} <= layers
        # every record is a well-formed structured event
        for record in events:
            assert set(record) >= {"t", "layer", "event"}

    def test_topology_trace_path(self, tmp_path):
        from repro.experiments.base import run_transfer

        path = str(tmp_path / "transfer.jsonl")
        run_transfer(
            seed=1, ber=1e-5, bidirectional=True, duration=5.0,
            trace_path=path,
        )
        events = read_jsonl(path)
        assert {r["layer"] for r in events} >= {"sim", "tcp"}


class TestRunReport:
    def test_render_report_sections(self):
        from repro.analysis.runreport import render_report

        events = [
            {"t": 0.0, "layer": "sim", "event": "run_begin"},
            {"t": 1.0, "layer": "tcp", "event": "rto", "cwnd": 1460},
            {"t": 1.5, "layer": "tcp", "event": "rto", "cwnd": 1460},
            {"t": 2.0, "layer": "wp2p", "event": "am_state", "status": "mature"},
        ]
        md = render_report(events, title="T")
        assert md.startswith("# T")
        assert "- **Events:** 4" in md
        assert "### `tcp` — 2 events" in md
        assert "| `rto` | 2 |" in md
        assert "## Timeline excerpts" in md
        # layer render order: sim before tcp before wp2p
        assert md.index("`sim`") < md.index("`tcp`") < md.index("`wp2p`")

    def test_render_report_with_metrics(self):
        from repro.analysis.runreport import render_report
        from repro.obs.metrics import MetricsRegistry

        reg = MetricsRegistry()
        reg.counter("tcp.rto").add(3)
        md = render_report(
            [{"t": 0.0, "layer": "tcp", "event": "rto"}], metrics=reg
        )
        assert "## Metrics" in md
        assert "`tcp.rto`" in md and "total=3" in md

    def test_empty_report(self):
        from repro.analysis.runreport import render_report

        assert "_No events recorded._" in render_report([])

    def test_excerpt_elision(self):
        from repro.analysis.runreport import render_report

        events = [
            {"t": float(i), "layer": "tcp", "event": "rto"} for i in range(50)
        ]
        md = render_report(events, excerpt=5)
        assert "40 events elided" in md

    def test_report_from_jsonl(self, tmp_path):
        from repro.analysis.runreport import report_from_jsonl

        path = tmp_path / "log.jsonl"
        path.write_text(
            json.dumps({"t": 0.0, "layer": "sim", "event": "run_begin"}) + "\n"
        )
        md = report_from_jsonl(str(path))
        assert "run_begin" in md
