"""Property-based tests for BitTorrent data structures and invariants."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bittorrent import (
    Bitfield,
    PieceManager,
    RarestFirstSelector,
    SelectionContext,
    SequentialSelector,
    make_torrent,
)
from repro.media import playability_curve, playable_prefix_pieces
from repro.net.packet import loss_probability


class TestBitfieldProperties:
    @given(st.integers(min_value=1, max_value=500), st.data())
    @settings(max_examples=100, deadline=None)
    def test_count_matches_indices(self, size, data):
        have = data.draw(st.sets(st.integers(min_value=0, max_value=size - 1)))
        bf = Bitfield(size, have=have)
        assert bf.count() == len(have)
        assert set(bf.indices()) == have
        assert set(bf.missing()) == set(range(size)) - have

    @given(st.integers(min_value=1, max_value=300), st.data())
    @settings(max_examples=100, deadline=None)
    def test_set_clear_roundtrip(self, size, data):
        index = data.draw(st.integers(min_value=0, max_value=size - 1))
        bf = Bitfield(size)
        bf.set(index)
        assert bf.has(index)
        bf.clear(index)
        assert not bf.has(index)
        assert bf.empty

    @given(st.integers(min_value=1, max_value=300), st.data())
    @settings(max_examples=100, deadline=None)
    def test_interest_iff_set_difference(self, size, data):
        a_have = data.draw(st.sets(st.integers(min_value=0, max_value=size - 1)))
        b_have = data.draw(st.sets(st.integers(min_value=0, max_value=size - 1)))
        a = Bitfield(size, have=a_have)
        b = Bitfield(size, have=b_have)
        assert a.has_piece_other_is_missing(b) == bool(a_have - b_have)


class TestTorrentGeometry:
    @given(
        st.integers(min_value=1, max_value=50_000_000),
        st.sampled_from([16_384, 32_768, 65_536, 131_072, 262_144]),
    )
    @settings(max_examples=200, deadline=None)
    def test_pieces_and_blocks_cover_file_exactly(self, total_size, piece_length):
        t = make_torrent("f", total_size=total_size, piece_length=piece_length)
        piece_sum = sum(t.piece_size(i) for i in range(t.num_pieces))
        assert piece_sum == total_size
        for i in range(min(t.num_pieces, 5)):
            offsets = t.block_offsets(i)
            assert sum(length for _, length in offsets) == t.piece_size(i)
            assert all(length > 0 for _, length in offsets)


class TestPieceManagerProperties:
    @given(st.integers(min_value=1, max_value=40), st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=50, deadline=None)
    def test_any_block_arrival_order_completes(self, pieces, seed):
        """Whatever order blocks arrive in, the manager ends complete with
        exact byte accounting."""
        torrent = make_torrent("f", total_size=pieces * 49_152, piece_length=49_152)
        manager = PieceManager(torrent)
        rng = random.Random(seed)
        blocks = [
            (i, begin, length)
            for i in range(torrent.num_pieces)
            for begin, length in torrent.block_offsets(i)
        ]
        rng.shuffle(blocks)
        completed = []
        for index, begin, length in blocks:
            done = manager.receive_block(index, begin, length)
            if done is not None:
                completed.append(done)
        assert manager.complete
        assert manager.bytes_completed == torrent.total_size
        assert sorted(completed) == list(range(torrent.num_pieces))
        assert manager.completion_order == completed

    @given(st.integers(min_value=2, max_value=30), st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=50, deadline=None)
    def test_next_request_never_duplicates_outstanding(self, pieces, seed):
        torrent = make_torrent("f", total_size=pieces * 49_152, piece_length=49_152)
        manager = PieceManager(torrent)
        peer_bf = Bitfield.full(torrent.num_pieces)
        ctx = SelectionContext({}, 0.0, 0.0, random.Random(seed))
        selector = RarestFirstSelector()
        issued = set()
        while True:
            req = manager.next_request(peer_bf, selector, ctx)
            if req is None:
                break
            key = (req[0], req[1])
            assert key not in issued
            issued.add(key)
            manager.mark_requested(req[0], req[1], 0.0)
        total_blocks = sum(torrent.blocks_in_piece(i) for i in range(torrent.num_pieces))
        assert len(issued) == total_blocks


class TestSelectorProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=999), min_size=1, max_size=50, unique=True),
        st.dictionaries(st.integers(min_value=0, max_value=999), st.integers(min_value=0, max_value=20)),
        st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=200, deadline=None)
    def test_selectors_choose_from_candidates(self, candidates, availability, seed):
        ctx = SelectionContext(availability, 0.5, 0.0, random.Random(seed))
        for selector in (RarestFirstSelector(), SequentialSelector()):
            choice = selector.choose(candidates, ctx)
            assert choice in candidates

    @given(
        st.lists(st.integers(min_value=0, max_value=999), min_size=1, max_size=50, unique=True),
        st.dictionaries(st.integers(min_value=0, max_value=999), st.integers(min_value=0, max_value=20)),
        st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=200, deadline=None)
    def test_rarest_first_is_minimal(self, candidates, availability, seed):
        ctx = SelectionContext(availability, 0.5, 0.0, random.Random(seed))
        choice = RarestFirstSelector().choose(candidates, ctx)
        min_avail = min(availability.get(c, 0) for c in candidates)
        assert availability.get(choice, 0) == min_avail


class TestPlayabilityProperties:
    @given(st.integers(min_value=1, max_value=200), st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=100, deadline=None)
    def test_curve_monotone_and_bounded(self, pieces, seed):
        torrent = make_torrent("f", total_size=pieces * 16_384, piece_length=16_384)
        order = list(range(pieces))
        random.Random(seed).shuffle(order)
        curve = playability_curve(torrent, order)
        downs = [d for d, _ in curve]
        plays = [p for _, p in curve]
        assert downs == sorted(downs)
        assert plays == sorted(plays)  # playable prefix never shrinks
        assert all(p <= d + 1e-9 for d, p in curve)  # playable <= downloaded
        assert curve[-1] == (100.0, 100.0)

    @given(st.integers(min_value=1, max_value=300), st.data())
    @settings(max_examples=100, deadline=None)
    def test_prefix_definition(self, size, data):
        have = data.draw(st.sets(st.integers(min_value=0, max_value=size - 1)))
        bf = Bitfield(size, have=have)
        prefix = playable_prefix_pieces(bf)
        assert all(i in have for i in range(prefix))
        assert prefix == size or prefix not in have


class TestLossModelProperties:
    @given(
        st.floats(min_value=0.0, max_value=1e-3, allow_nan=False),
        st.integers(min_value=1, max_value=65_535),
    )
    @settings(max_examples=200, deadline=None)
    def test_probability_bounds_and_monotonicity(self, ber, size):
        p = loss_probability(ber, size)
        assert 0.0 <= p <= 1.0
        assert loss_probability(ber, size + 100) >= p
        if ber > 0:
            assert loss_probability(ber * 2, size) >= p
