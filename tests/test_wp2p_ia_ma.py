"""Tests for Incentive-Aware and Mobility-Aware components and WP2PClient."""

from __future__ import annotations

import random

import pytest

from repro.bittorrent import SelectionContext
from repro.bittorrent.swarm import SwarmScenario
from repro.wp2p import (
    IdentityRetention,
    LIHDController,
    MobilityAwareSelector,
    WP2PClient,
    WP2PConfig,
    exponential_progress_schedule,
    linear_progress_schedule,
    stability_schedule,
)


def ctx(progress=0.0, availability=None, now=0.0, seed=0):
    return SelectionContext(
        availability=availability or {},
        progress=progress,
        now=now,
        rng=random.Random(seed),
    )


class TestPrSchedules:
    def test_linear_equals_progress(self):
        assert linear_progress_schedule(ctx(progress=0.3)) == pytest.approx(0.3)
        assert linear_progress_schedule(ctx(progress=0.0)) == 0.0
        assert linear_progress_schedule(ctx(progress=1.5)) == 1.0

    def test_exponential_endpoints(self):
        sched = exponential_progress_schedule(p0=0.2)
        assert sched(ctx(progress=0.0)) == pytest.approx(0.2)
        assert sched(ctx(progress=1.0)) == pytest.approx(1.0)

    def test_exponential_monotone(self):
        sched = exponential_progress_schedule(p0=0.2)
        values = [sched(ctx(progress=p / 10)) for p in range(11)]
        assert values == sorted(values)

    def test_exponential_invalid_p0(self):
        with pytest.raises(ValueError):
            exponential_progress_schedule(p0=0.0)

    def test_stability_schedule(self):
        import math

        sched = stability_schedule(tau=10.0, connected_since=lambda: 0.0)
        assert sched(ctx(now=0.0)) == pytest.approx(0.0)
        assert sched(ctx(now=10.0)) == pytest.approx(1 - math.exp(-1), abs=0.01)
        assert sched(ctx(now=1000.0)) > 0.99

    def test_stability_invalid_tau(self):
        with pytest.raises(ValueError):
            stability_schedule(tau=0, connected_since=lambda: 0.0)


class TestMobilityAwareSelector:
    def test_all_sequential_at_zero_progress(self):
        sel = MobilityAwareSelector()
        for seed in range(10):
            assert sel.choose([5, 2, 9], ctx(progress=0.0, seed=seed)) == 2
        assert sel.sequential_choices == 10
        assert sel.rarest_choices == 0

    def test_all_rarest_at_full_progress(self):
        sel = MobilityAwareSelector()
        availability = {5: 1, 2: 9, 9: 9}
        for seed in range(10):
            assert sel.choose([5, 2, 9], ctx(progress=1.0, availability=availability, seed=seed)) == 5
        assert sel.rarest_choices == 10

    def test_mixes_at_half_progress(self):
        sel = MobilityAwareSelector()
        availability = {5: 1, 2: 9}
        picks = {
            sel.choose([5, 2], ctx(progress=0.5, availability=availability, seed=s))
            for s in range(40)
        }
        assert picks == {2, 5}  # both strategies exercised

    def test_empty_candidates(self):
        assert MobilityAwareSelector().choose([], ctx()) is None


class TestIdentityRetention:
    def test_remember_recall(self):
        ident = IdentityRetention()
        ident.remember("ih1", "peer-a")
        assert ident.recall("ih1") == "peer-a"
        assert ident.recall("ih2") is None

    def test_per_swarm_scoping(self):
        ident = IdentityRetention()
        ident.remember("ih1", "peer-a")
        ident.remember("ih2", "peer-b")
        assert ident.recall("ih1") == "peer-a"
        assert ident.recall("ih2") == "peer-b"

    def test_forget(self):
        ident = IdentityRetention()
        ident.remember("ih1", "peer-a")
        ident.forget("ih1")
        assert ident.recall("ih1") is None


class TestLIHD:
    def make_scenario(self, u_max=50_000.0, **lihd_kwargs):
        sc = SwarmScenario(seed=21, file_size=1024 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True)
        cfg = WP2PConfig(lihd_u_max=u_max, am_enabled=False)
        for key, value in lihd_kwargs.items():
            setattr(cfg, f"lihd_{key}", value)
        mob = sc.add_wireless_peer(
            "mob", rate=100_000, config=cfg, client_factory=WP2PClient
        )
        return sc, mob

    def test_initializes_at_half_umax(self):
        sc, mob = self.make_scenario(u_max=40_000.0)
        assert mob.client.lihd is not None
        assert mob.client.lihd.u_cur == pytest.approx(20_000.0)

    def test_rate_applied_to_bucket(self):
        sc, mob = self.make_scenario(u_max=40_000.0)
        sc.start_all()
        sc.run(until=2.0)
        assert mob.client.upload_bucket.rate == pytest.approx(20_000.0)

    def test_adjusts_over_time(self):
        sc, mob = self.make_scenario(u_max=40_000.0, interval=2.0)
        sc.start_all()
        sc.run(until=60.0)
        lihd = mob.client.lihd
        assert len(lihd.history) >= 10
        rates = {u for _, u, _ in lihd.history}
        assert len(rates) > 1  # controller actually moved

    def test_respects_bounds(self):
        sc, mob = self.make_scenario(u_max=30_000.0, interval=1.0, alpha=50_000.0, beta=50_000.0)
        sc.start_all()
        sc.run(until=60.0)
        for _, u, _ in mob.client.lihd.history:
            assert mob.client.lihd.u_floor <= u <= 30_000.0

    def test_parameter_validation(self):
        sc = SwarmScenario(seed=22, file_size=256 * 1024, piece_length=65_536)
        peer = sc.add_wired_peer("p")
        with pytest.raises(ValueError):
            LIHDController(peer.client, u_max=0)
        with pytest.raises(ValueError):
            LIHDController(peer.client, u_max=100.0, alpha=0)
        with pytest.raises(ValueError):
            LIHDController(peer.client, u_max=100.0, u_floor=200.0)


class TestWP2PClient:
    def test_identity_retained_across_handoff(self):
        sc = SwarmScenario(seed=23, file_size=1024 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True)
        mob = sc.add_wireless_peer("mob", rate=150_000, client_factory=WP2PClient)
        sc.add_mobility(mob, interval=15.0, downtime=1.0)
        sc.start_all()
        original_id = mob.client.peer_id
        sc.run(until=60.0)
        assert mob.client.reconnections >= 2
        assert mob.client.peer_id == original_id

    def test_tracker_sees_single_record_for_wp2p(self):
        sc = SwarmScenario(seed=24, file_size=2 * 1024 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True)
        mob = sc.add_wireless_peer("mob", rate=150_000, client_factory=WP2PClient)
        sc.add_mobility(mob, interval=15.0, downtime=1.0)
        sc.start_all()
        sc.run(until=70.0)
        # same peer id re-announced: exactly seed + mob in the swarm
        assert sc.tracker.swarm_size(sc.torrent.info_hash) == 2

    def test_role_reversal_reconnects_quickly(self):
        sc = SwarmScenario(seed=25, file_size=4 * 1024 * 1024, piece_length=65_536)
        sc.add_wired_peer("fixed")
        mob = sc.add_wireless_peer(
            "mobseed", complete=True, rate=200_000, client_factory=WP2PClient
        )
        sc.start_all()
        sc.run(until=15.0)
        from repro.net.mobility import disconnect_host, reconnect_host

        disconnect_host(mob.host, sc.internet, sc.alloc)
        reconnect_host(mob.host, sc.internet, sc.alloc)
        # role reversal delay is 0.5 s; within a few seconds the mobile has
        # re-initiated connections toward its stored peers
        sc.run(until=sc.sim.now + 5.0)
        assert any(
            p.remote_ip == sc["fixed"].host.ip
            for p in mob.client.connected_peers()
        )

    def test_components_toggleable(self):
        sc = SwarmScenario(seed=26, file_size=256 * 1024, piece_length=65_536)
        cfg = WP2PConfig(
            am_enabled=False,
            mobility_aware_fetching=False,
            identity_retention=False,
            role_reversal=False,
        )
        mob = sc.add_wireless_peer("mob", config=cfg, client_factory=WP2PClient)
        assert mob.client.am is None
        assert mob.client.lihd is None
        from repro.bittorrent import RarestFirstSelector

        assert isinstance(mob.client.selector, RarestFirstSelector)

    def test_wp2p_completes_download(self):
        sc = SwarmScenario(seed=27, file_size=1024 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True)
        mob = sc.add_wireless_peer("mob", rate=150_000, ber=1e-6, client_factory=WP2PClient)
        sc.start_all()
        assert sc.run_until_complete(["mob"], timeout=600)
