"""Property-based tests (hypothesis) for TCP stream reassembly.

The receive stream must deliver exactly the in-order byte stream and each
application message exactly once, regardless of how segments are reordered,
duplicated, or fragmented — the core invariant everything above TCP relies
on.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tcp.streams import ReceiveStream, SendStream


class Msg:
    def __init__(self, tag):
        self.tag = tag


@st.composite
def message_lengths(draw):
    return draw(st.lists(st.integers(min_value=1, max_value=5000), min_size=1, max_size=20))


@st.composite
def segmented_stream(draw):
    """A message stream cut into segments, then shuffled with duplicates."""
    lengths = draw(message_lengths())
    send = SendStream(0)
    messages = []
    for i, length in enumerate(lengths):
        msg = Msg(i)
        send.write_message(msg, length)
        messages.append(msg)
    total = send.end
    # segmentation: random cut points
    n_cuts = draw(st.integers(min_value=0, max_value=min(total - 1, 30)))
    cuts = sorted(draw(st.sets(st.integers(min_value=1, max_value=total - 1), min_size=n_cuts, max_size=n_cuts))) if total > 1 else []
    bounds = [0] + list(cuts) + [total]
    segments = []
    for start, end in zip(bounds, bounds[1:]):
        segments.append((start, end - start, send.messages_in(start, end)))
    # delivery schedule: shuffled with duplicates
    order = draw(st.permutations(range(len(segments))))
    dup_count = draw(st.integers(min_value=0, max_value=len(segments)))
    dups = draw(st.lists(st.integers(min_value=0, max_value=len(segments) - 1),
                         min_size=dup_count, max_size=dup_count))
    schedule = list(order) + dups
    return segments, schedule, lengths


class TestReceiveStreamProperties:
    @given(segmented_stream())
    @settings(max_examples=200, deadline=None)
    def test_all_messages_delivered_once_in_order(self, data):
        segments, schedule, lengths = data
        recv = ReceiveStream(0)
        delivered = []
        for idx in schedule:
            seq, length, msgs = segments[idx]
            recv.add(seq, length, msgs)
            delivered.extend(m.tag for m in recv.pop_deliverable())
        assert recv.rcv_nxt == sum(lengths)
        assert delivered == list(range(len(lengths)))
        assert not recv.has_gap

    @given(segmented_stream())
    @settings(max_examples=100, deadline=None)
    def test_bytes_delivered_equals_stream_length(self, data):
        segments, schedule, lengths = data
        recv = ReceiveStream(0)
        for idx in schedule:
            seq, length, msgs = segments[idx]
            recv.add(seq, length, msgs)
            recv.pop_deliverable()
        assert recv.bytes_delivered == sum(lengths)

    @given(segmented_stream())
    @settings(max_examples=100, deadline=None)
    def test_rcv_nxt_monotone(self, data):
        segments, schedule, _ = data
        recv = ReceiveStream(0)
        last = recv.rcv_nxt
        for idx in schedule:
            seq, length, msgs = segments[idx]
            recv.add(seq, length, msgs)
            recv.pop_deliverable()
            assert recv.rcv_nxt >= last
            last = recv.rcv_nxt

    @given(segmented_stream(), st.integers(min_value=0, max_value=10))
    @settings(max_examples=100, deadline=None)
    def test_partial_delivery_never_over_delivers(self, data, prefix_count):
        """Delivering only a prefix of segments must deliver only messages
        entirely covered by contiguous data."""
        segments, schedule, lengths = data
        recv = ReceiveStream(0)
        delivered = []
        for idx in schedule[:prefix_count]:
            seq, length, msgs = segments[idx]
            recv.add(seq, length, msgs)
            delivered.extend(m.tag for m in recv.pop_deliverable())
        # delivered tags must be a prefix of 0..n in order
        assert delivered == list(range(len(delivered)))
        # and consistent with the contiguous byte point
        ends = []
        acc = 0
        for length in lengths:
            acc += length
            ends.append(acc)
        expected = sum(1 for e in ends if e <= recv.rcv_nxt)
        assert len(delivered) == expected


class TestSendStreamProperties:
    @given(message_lengths())
    @settings(max_examples=100, deadline=None)
    def test_ranges_partition_stream(self, lengths):
        send = SendStream(0)
        ranges = [send.write_message(Msg(i), n) for i, n in enumerate(lengths)]
        expected_start = 0
        for (start, end), length in zip(ranges, lengths):
            assert start == expected_start
            assert end - start == length
            expected_start = end
        assert send.end == sum(lengths)

    @given(message_lengths(), st.data())
    @settings(max_examples=100, deadline=None)
    def test_cumulative_acks_conserve_bytes(self, lengths, data):
        send = SendStream(0)
        for i, n in enumerate(lengths):
            send.write_message(Msg(i), n)
        send.nxt = send.end
        total = send.end
        acked = 0
        while send.una < total:
            ack = data.draw(st.integers(min_value=send.una + 1, max_value=total))
            acked += send.ack_to(ack)
            assert send.una == ack
        assert acked == total
        # all message bookkeeping pruned
        assert send.messages_in(0, total) == ()
