"""Tests for the scenario registry and the parallel, cache-aware runner."""

from __future__ import annotations

import json

import pytest

import repro.experiments  # noqa: F401  — registers the figure scenarios
from repro.obs import tracing
from repro.obs.metrics import MetricsRegistry
from repro.runner import (
    ResultCache,
    Runner,
    Scenario,
    ScenarioSpec,
    UnknownScenarioError,
    code_version,
    collect,
    freeze_params,
    get_scenario,
    run_scenario,
    scenario,
    scenario_names,
)
from repro.runner.spec import cell_digest

# Tiny fig2a campaign: 2 BERs x 2 seeds x 2 modes = 8 cells, < 1 s total.
FAST_FIG2A = {"runs": 2, "duration": 2.0, "bers": [0.0, 1e-5]}


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_every_figure_is_registered(self):
        assert set(scenario_names()) >= {
            "fig2a", "fig2bc", "fig3a", "fig3b", "fig3c", "fig4a",
            "fig4bc", "fig8a", "fig8b", "fig8c", "fig9ab", "fig9c",
        }

    def test_lookup_returns_the_scenario(self):
        scn = get_scenario("fig2a")
        assert scn.name == "fig2a"
        assert scn.description

    def test_unknown_name_raises_with_known_names(self):
        with pytest.raises(UnknownScenarioError) as exc:
            get_scenario("fig99")
        assert "fig99" in str(exc.value)
        assert "fig2a" in str(exc.value)  # the error lists what *is* known

    def test_unknown_override_key_fails_fast(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            get_scenario("fig2a").params({"durations": 5.0})

    def test_duplicate_registration_raises(self):
        with pytest.raises(ValueError, match="already registered"):
            @scenario
            class Impostor(Scenario):
                name = "fig2a"

    def test_collect_orders_by_seed(self):
        values = {(("a",), 3): 30, (("a",), 1): 10, (("b",), 2): 99, (("a",), 2): 20}
        assert collect(values, ("a",)) == [10, 20, 30]


# ----------------------------------------------------------------------
# Spec hashing
# ----------------------------------------------------------------------
class TestSpec:
    def test_params_are_canonical(self):
        # Tuples and lists hash identically: both become JSON arrays.
        a = ScenarioSpec.create("x", {"bers": (0.0, 1e-5)})
        b = ScenarioSpec.create("x", {"bers": [0.0, 1e-5]})
        assert a == b
        assert a.spec_hash() == b.spec_hash()

    def test_spec_is_hashable(self):
        spec = ScenarioSpec.create("x", {"runs": 2}, seeds=(1, 2))
        assert spec in {spec}

    def test_different_params_different_digest(self):
        a = ScenarioSpec.create("x", {"runs": 2})
        b = ScenarioSpec.create("x", {"runs": 3})
        assert cell_digest(a, ("k",), 1) != cell_digest(b, ("k",), 1)

    def test_digest_depends_on_seed_and_key(self):
        spec = ScenarioSpec.create("x", {"runs": 2})
        assert cell_digest(spec, ("k",), 1) != cell_digest(spec, ("k",), 2)
        assert cell_digest(spec, ("k",), 1) != cell_digest(spec, ("j",), 1)

    def test_code_version_is_stable(self):
        assert code_version() == code_version()
        assert len(code_version()) == 16

    def test_freeze_params_json_round_trip(self):
        frozen = freeze_params({"a": (1, 2), "b": {"c": 3.0}})
        assert frozen == {"a": [1, 2], "b": {"c": 3.0}}


# ----------------------------------------------------------------------
# Determinism: serial == parallel, bit for bit
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_serial_and_parallel_are_bit_identical(self):
        serial = Runner(jobs=1).run("fig2a", FAST_FIG2A)
        parallel = Runner(jobs=4).run("fig2a", FAST_FIG2A)
        assert serial.values == parallel.values
        s = [(s.label, s.x, s.y, s.y_err) for s in serial.result.series]
        p = [(s.label, s.x, s.y, s.y_err) for s in parallel.result.series]
        assert json.dumps(s) == json.dumps(p)

    def test_wrapper_matches_runner(self):
        from repro.experiments import fig2a

        direct = fig2a(runs=2, duration=2.0, bers=[0.0, 1e-5])
        via_runner = Runner(jobs=2).run("fig2a", FAST_FIG2A).result
        assert [s.y for s in direct.series] == [s.y for s in via_runner.series]

    def test_trace_sinks_force_serial(self, tmp_path):
        # Global sinks live in this process; the runner must not fan out.
        lines = []
        with tracing.capture(path=str(tmp_path / "t.jsonl")):
            assert tracing.installed()
            run = Runner(jobs=4, progress=lines.append).run("fig2a", FAST_FIG2A)
        assert run.stats.executed == 8
        assert any("serial" in line for line in lines)


# ----------------------------------------------------------------------
# Cache
# ----------------------------------------------------------------------
class TestCache:
    def test_cold_run_misses_then_populates(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        run = Runner(cache=cache).run("fig2a", FAST_FIG2A)
        assert run.stats.cache_hits == 0
        assert run.stats.executed == run.stats.total_cells == 8
        assert len(cache) == 8

    def test_warm_rerun_executes_zero_simulations(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cold = Runner(cache=cache).run("fig2a", FAST_FIG2A)
        warm = Runner(cache=cache).run("fig2a", FAST_FIG2A)
        assert warm.stats.executed == 0
        assert warm.stats.cache_hits == warm.stats.total_cells
        # and the assembled result is bit-identical to the cold one
        assert warm.values == cold.values
        assert [s.y for s in warm.result.series] == [s.y for s in cold.result.series]

    def test_changed_params_invalidate(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        Runner(cache=cache).run("fig2a", FAST_FIG2A)
        changed = dict(FAST_FIG2A, duration=3.0)
        rerun = Runner(cache=cache).run("fig2a", changed)
        assert rerun.stats.cache_hits == 0
        assert rerun.stats.executed == 8

    def test_changed_code_version_invalidates(self, tmp_path):
        spec = ScenarioSpec.create("fig2a", freeze_params(FAST_FIG2A))
        assert (
            cell_digest(spec, ("uni", 0.0), 100, code="aaaa")
            != cell_digest(spec, ("uni", 0.0), 100, code="bbbb")
        )

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("ab" * 32, {"v": 1})
        with open(cache._path("ab" * 32), "w", encoding="utf-8") as handle:
            handle.write("not json{")
        hit, value = cache.get("ab" * 32)
        assert not hit and value is None

    def test_no_cache_runner_never_touches_disk(self, tmp_path):
        Runner(cache=None).run("fig2a", FAST_FIG2A)
        assert list(tmp_path.iterdir()) == []


# ----------------------------------------------------------------------
# Failure capture and degradation
# ----------------------------------------------------------------------
@scenario
class FlakyScenario(Scenario):
    """Seed 2 always dies; seed 3 fails once then succeeds."""

    name = "test-flaky"
    description = "test scenario: deterministic failures"
    defaults = {"seeds": [1, 2, 3]}

    def cells(self, p):
        for seed in p["seeds"]:
            yield ("v",), seed

    def run_cell(self, key, seed, p):
        if seed == 2:
            raise RuntimeError("seed 2 always dies")
        if seed == 3 and not getattr(self, "_seed3_failed", False):
            self._seed3_failed = True
            raise RuntimeError("seed 3 dies once")
        return seed * 10

    def assemble(self, p, values, failures):
        return {"values": collect(values, ("v",)), "failed": len(failures)}


class TestFailures:
    def test_dead_seed_is_reported_not_fatal(self):
        metrics = MetricsRegistry()
        run = Runner(metrics=metrics).run("test-flaky")
        # seed 2 failed (after a retry), seeds 1 and 3 survived
        assert run.result == {"values": [10, 30], "failed": 1}
        assert [f.seed for f in run.failures] == [2]
        failure = run.failures[0]
        assert failure.attempts == 2
        assert "seed 2 always dies" in failure.error
        assert "seed 2 always dies" in failure.summary()
        # stats: retries counted for both the dead and the flaky seed
        assert run.stats.failed == 1
        assert run.stats.retries == 2
        assert run.stats.executed == 3
        assert metrics.counter("runner.failures").total == 1

    def test_zero_retries_fails_immediately(self):
        run = Runner(retries=0).run("test-flaky", {"seeds": [2]})
        assert run.failures[0].attempts == 1

    def test_failed_cells_are_not_cached(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        Runner(cache=cache).run("test-flaky", {"seeds": [1, 2]})
        assert len(cache) == 1  # only seed 1's value landed on disk

    def test_invalid_runner_args_rejected(self):
        with pytest.raises(ValueError):
            Runner(jobs=0)
        with pytest.raises(ValueError):
            Runner(retries=-1)


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------
class TestObservability:
    def test_runner_metrics_and_progress(self):
        metrics = MetricsRegistry()
        lines = []
        run = Runner(metrics=metrics, progress=lines.append).run(
            "fig2a", FAST_FIG2A
        )
        assert metrics.counter("runner.cells").total == 8
        assert metrics.counter("runner.executed").total == 8
        assert metrics.counter("runner.cache_hits").total == 0
        assert metrics.histogram("runner.cell_seconds").snapshot()["count"] == 8
        assert len(run.stats.cell_seconds) == 8
        assert sum(1 for line in lines if "/8 cells" in line) == 8
        assert "8 cells: 8 executed" in run.stats.summary()

    def test_run_scenario_front_door(self):
        result = run_scenario("fig2bc", {"duration": 5.0})
        assert result.figure == "Figure 2(b, c)"
