"""Unit tests for the network substrate (packets, queues, links, routing)."""

from __future__ import annotations

import pytest

from repro.net import (
    AddressAllocator,
    DropTailQueue,
    Host,
    Internet,
    Packet,
    attach_wired_host,
    attach_wireless_host,
    loss_probability,
)
from repro.net.mobility import disconnect_host, reconnect_host
from repro.sim import Simulator


class Payload:
    def __init__(self, size: int) -> None:
        self.wire_size = size


class Sink:
    """Transport handler that records delivered packets."""

    def __init__(self) -> None:
        self.packets = []

    def receive(self, packet) -> None:
        self.packets.append(packet)


def make_pair(sim, wireless_b=False, **wireless_kwargs):
    internet = Internet(sim, core_delay=0.01)
    alloc = AddressAllocator()
    a, b = Host(sim, "a"), Host(sim, "b")
    a.transport, b.transport = Sink(), Sink()
    attach_wired_host(sim, a, internet, alloc.allocate())
    if wireless_b:
        attach_wireless_host(sim, b, internet, alloc.allocate(), **wireless_kwargs)
    else:
        attach_wired_host(sim, b, internet, alloc.allocate())
    return internet, alloc, a, b


class TestLossProbability:
    def test_zero_ber_never_loses(self):
        assert loss_probability(0.0, 1500) == 0.0

    def test_longer_packets_lose_more(self):
        assert loss_probability(1e-5, 1500) > loss_probability(1e-5, 40)

    def test_known_value(self):
        # PER = 1 - (1 - 1e-5)^(8*1500) ~= 0.1131
        assert loss_probability(1e-5, 1500) == pytest.approx(0.1131, abs=0.001)

    def test_bounds(self):
        assert loss_probability(1.0, 10) == 1.0
        assert 0.0 <= loss_probability(1e-9, 1) <= 1.0


class TestAddressAllocator:
    def test_unique_addresses(self):
        alloc = AddressAllocator()
        addrs = {alloc.allocate() for _ in range(100)}
        assert len(addrs) == 100

    def test_release_and_liveness(self):
        alloc = AddressAllocator()
        ip = alloc.allocate()
        assert alloc.is_live(ip)
        alloc.release(ip)
        assert not alloc.is_live(ip)

    def test_released_addresses_not_reissued(self):
        alloc = AddressAllocator()
        ip = alloc.allocate()
        alloc.release(ip)
        assert alloc.allocate() != ip


class TestDropTailQueue:
    def test_fifo_order(self):
        q = DropTailQueue("q", capacity_packets=10)
        p1, p2 = Packet("a", "b", Payload(100)), Packet("a", "b", Payload(100))
        q.enqueue(p1, 0.0)
        q.enqueue(p2, 0.0)
        assert q.dequeue() is p1
        assert q.dequeue() is p2
        assert q.dequeue() is None

    def test_overflow_drops_recorded(self):
        q = DropTailQueue("q", capacity_packets=1)
        assert q.enqueue(Packet("a", "b", Payload(10)), 0.0)
        assert not q.enqueue(Packet("a", "b", Payload(10)), 1.5)
        assert len(q.drops) == 1
        assert q.drops[0].time == 1.5
        assert q.drops[0].reason == "buffer_overflow"

    def test_byte_capacity(self):
        q = DropTailQueue("q", capacity_packets=10, capacity_bytes=100)
        assert q.enqueue(Packet("a", "b", Payload(50)), 0.0)  # 70B with IP header
        assert not q.enqueue(Packet("a", "b", Payload(50)), 0.0)

    def test_clear(self):
        q = DropTailQueue("q", capacity_packets=10)
        q.enqueue(Packet("a", "b", Payload(10)), 0.0)
        assert q.clear() == 1
        assert len(q) == 0
        assert q.depth_bytes == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DropTailQueue("q", capacity_packets=0)


class TestWiredDelivery:
    def test_packet_reaches_destination(self):
        sim = Simulator(seed=1)
        internet, alloc, a, b = make_pair(sim)
        a.send(Packet(a.ip, b.ip, Payload(1000), created_at=sim.now))
        sim.run(until=1.0)
        assert len(b.transport.packets) == 1

    def test_unroutable_packet_dropped_at_core(self):
        sim = Simulator(seed=1)
        internet, alloc, a, b = make_pair(sim)
        a.send(Packet(a.ip, "10.9.9.9", Payload(100), created_at=sim.now))
        sim.run(until=1.0)
        assert len(internet.unroutable) == 1

    def test_down_host_does_not_send(self):
        sim = Simulator(seed=1)
        internet, alloc, a, b = make_pair(sim)
        a.take_down()
        a.send(Packet("stale", b.ip, Payload(100), created_at=sim.now))
        sim.run(until=1.0)
        assert b.transport.packets == []
        assert a.drops[0].reason == "interface_down"

    def test_transmission_time_scales_with_rate(self):
        sim = Simulator(seed=1)
        internet = Internet(sim, core_delay=0.0)
        alloc = AddressAllocator()
        a, b = Host(sim, "a"), Host(sim, "b")
        b.transport = Sink()
        attach_wired_host(sim, a, internet, alloc.allocate(), up_rate=10_000)
        attach_wired_host(sim, b, internet, alloc.allocate(), down_rate=1_000_000)
        a.send(Packet(a.ip, b.ip, Payload(9_980), created_at=sim.now))  # 10 KB w/ header
        sim.run()
        # uplink serialization dominates: 10000B / 10000Bps = 1 s
        assert sim.now == pytest.approx(1.0, abs=0.05)


class TestWirelessChannel:
    def test_lossless_delivery_both_directions(self):
        sim = Simulator(seed=1)
        internet, alloc, a, b = make_pair(sim, wireless_b=True, ber=0.0)
        a.send(Packet(a.ip, b.ip, Payload(1000), created_at=sim.now))
        b.send(Packet(b.ip, a.ip, Payload(1000), created_at=sim.now))
        sim.run(until=2.0)
        assert len(b.transport.packets) == 1
        assert len(a.transport.packets) == 1

    def test_ber_drops_frames(self):
        sim = Simulator(seed=3)
        internet, alloc, a, b = make_pair(sim, wireless_b=True, ber=5e-5)
        # Pace sends so no queue overflows: every loss is then a bit error.
        for i in range(200):
            sim.schedule(
                i * 0.1,
                lambda: a.send(Packet(a.ip, b.ip, Payload(1460), created_at=sim.now)),
            )
        sim.run(until=200.0)
        ch = b.interface.link
        assert ch.frames_lost > 0
        assert len(b.transport.packets) < 200
        assert len(b.transport.packets) + ch.frames_lost == 200
        assert ch.buffer_drops == []

    def test_shared_channel_serializes_directions(self):
        # Uplink and downlink share airtime: sending N packets each way takes
        # about twice as long as N one-way.
        def one_way_time():
            sim = Simulator(seed=1)
            internet, alloc, a, b = make_pair(sim, wireless_b=True, rate=50_000)
            for _ in range(20):
                a.send(Packet(a.ip, b.ip, Payload(1460), created_at=sim.now))
            sim.run()
            return sim.now

        def two_way_time():
            sim = Simulator(seed=1)
            internet, alloc, a, b = make_pair(sim, wireless_b=True, rate=50_000)
            for _ in range(20):
                a.send(Packet(a.ip, b.ip, Payload(1460), created_at=sim.now))
                b.send(Packet(b.ip, a.ip, Payload(1460), created_at=sim.now))
            sim.run()
            return sim.now

        assert two_way_time() > 1.7 * one_way_time()

    def test_ap_buffer_overflow_recorded(self):
        sim = Simulator(seed=1)
        internet, alloc, a, b = make_pair(
            sim, wireless_b=True, rate=10_000, ap_queue_packets=5
        )
        for _ in range(50):
            a.send(Packet(a.ip, b.ip, Payload(1460), created_at=sim.now))
        sim.run(until=60)
        assert len(b.interface.link.buffer_drops) > 0

    def test_set_ber_validation(self):
        sim = Simulator(seed=1)
        internet, alloc, a, b = make_pair(sim, wireless_b=True)
        with pytest.raises(ValueError):
            b.interface.link.set_ber(1.5)
        with pytest.raises(ValueError):
            b.interface.link.set_rate(0)


class TestMobility:
    def test_disconnect_releases_route_and_address(self):
        sim = Simulator(seed=1)
        internet, alloc, a, b = make_pair(sim)
        old_ip = b.ip
        released = disconnect_host(b, internet, alloc)
        assert released == old_ip
        assert not internet.has_route(old_ip)
        assert not alloc.is_live(old_ip)
        assert b.ip is None

    def test_reconnect_gets_fresh_address(self):
        sim = Simulator(seed=1)
        internet, alloc, a, b = make_pair(sim)
        old_ip = disconnect_host(b, internet, alloc)
        new_ip = reconnect_host(b, internet, alloc)
        assert new_ip != old_ip
        assert internet.has_route(new_ip)
        assert b.ip == new_ip

    def test_ip_change_listener_fires(self):
        sim = Simulator(seed=1)
        internet, alloc, a, b = make_pair(sim)
        changes = []
        b.on_ip_change(lambda old, new: changes.append((old, new)))
        old = disconnect_host(b, internet, alloc)
        new = reconnect_host(b, internet, alloc)
        assert changes == [(old, None), (None, new)]

    def test_packets_to_old_address_unroutable(self):
        sim = Simulator(seed=1)
        internet, alloc, a, b = make_pair(sim)
        old_ip = b.ip
        disconnect_host(b, internet, alloc)
        reconnect_host(b, internet, alloc)
        a.send(Packet(a.ip, old_ip, Payload(100), created_at=sim.now))
        sim.run(until=1.0)
        assert len(internet.unroutable) == 1
        assert b.transport.packets == []

    def test_controller_schedule(self):
        from repro.net import MobilityController

        sim = Simulator(seed=1)
        internet, alloc, a, b = make_pair(sim)
        ips = [b.ip]
        b.on_ip_change(lambda old, new: ips.append(new) if new else None)
        ctl = MobilityController(sim, b, internet, alloc, interval=10.0, downtime=1.0)
        ctl.start()
        sim.run(until=35.0)
        ctl.stop()
        assert ctl.handoffs == 3
        assert len(set(ips)) == 4  # initial + 3 new addresses


class TestNetfilter:
    def test_egress_filter_can_drop(self):
        sim = Simulator(seed=1)
        internet, alloc, a, b = make_pair(sim)
        a.netfilter.egress.register(lambda pkt: [])
        a.send(Packet(a.ip, b.ip, Payload(100), created_at=sim.now))
        sim.run(until=1.0)
        assert b.transport.packets == []

    def test_egress_filter_can_inject(self):
        sim = Simulator(seed=1)
        internet, alloc, a, b = make_pair(sim)

        def duplicate(pkt):
            extra = Packet(pkt.src, pkt.dst, pkt.payload, created_at=pkt.created_at)
            return [extra, pkt]

        a.netfilter.egress.register(duplicate)
        a.send(Packet(a.ip, b.ip, Payload(100), created_at=sim.now))
        sim.run(until=1.0)
        assert len(b.transport.packets) == 2

    def test_injected_packets_traverse_remaining_filters(self):
        sim = Simulator(seed=1)
        internet, alloc, a, b = make_pair(sim)
        seen = []
        a.netfilter.egress.register(lambda pkt: [pkt, pkt])
        a.netfilter.egress.register(lambda pkt: seen.append(pkt) or None)
        a.send(Packet(a.ip, b.ip, Payload(100), created_at=sim.now))
        assert len(seen) == 2

    def test_ingress_filter_applies(self):
        sim = Simulator(seed=1)
        internet, alloc, a, b = make_pair(sim)
        b.netfilter.ingress.register(lambda pkt: [])
        a.send(Packet(a.ip, b.ip, Payload(100), created_at=sim.now))
        sim.run(until=1.0)
        assert b.transport.packets == []

    def test_unregister(self):
        sim = Simulator(seed=1)
        internet, alloc, a, b = make_pair(sim)
        f = lambda pkt: []
        a.netfilter.egress.register(f)
        a.netfilter.egress.unregister(f)
        a.send(Packet(a.ip, b.ip, Payload(100), created_at=sim.now))
        sim.run(until=1.0)
        assert len(b.transport.packets) == 1
