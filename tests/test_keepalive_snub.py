"""Tests for keep-alives, idle reaping, and anti-snubbing."""

from __future__ import annotations

import pytest

from repro.bittorrent import ClientConfig
from repro.bittorrent.swarm import SwarmScenario


class TestKeepAlive:
    def test_idle_connections_get_keepalives(self):
        config = ClientConfig(keepalive_interval=20.0)
        sc = SwarmScenario(seed=95, file_size=256 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True, config=config)
        l0 = sc.add_wired_peer("l0", config=config)
        sc.start_all()
        assert sc.run_until_complete(["l0"], timeout=300)
        # after completion the connection goes idle; keep-alives flow
        sc.run(until=sc.sim.now + 90.0)
        peers = l0.client.connected_peers()
        assert peers
        assert any(p.keepalives_sent > 0 for p in peers)

    def test_busy_connections_skip_keepalives(self):
        config = ClientConfig(keepalive_interval=20.0)
        sc = SwarmScenario(seed=96, file_size=8 * 1024 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True, up_rate=60_000, config=config)
        l0 = sc.add_wired_peer("l0", config=config)
        sc.start_all()
        sc.run(until=60.0)  # transfer still in progress: constant traffic
        for p in l0.client.connected_peers():
            assert p.keepalives_sent == 0

    def test_idle_timeout_reaps_silent_peer(self):
        # l0 reaps connections silent for >30s; the seed keeps quiet by
        # having keep-alives effectively disabled
        quiet = ClientConfig(keepalive_interval=10_000.0)
        reaper = ClientConfig(idle_timeout=30.0, keepalive_interval=10_000.0)
        sc = SwarmScenario(seed=97, file_size=256 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True, config=quiet)
        l0 = sc.add_wired_peer("l0", config=reaper)
        sc.start_all()
        assert sc.run_until_complete(["l0"], timeout=300)
        sc.run(until=sc.sim.now + 60.0)
        reasons = {p.close_reason for p in []}  # placeholder for clarity
        assert all(
            p.last_received >= sc.sim.now - 31.0 for p in l0.client.connected_peers()
        )

    def test_keepalive_resets_peer_idle_clock(self):
        alive = ClientConfig(keepalive_interval=10.0)
        reaper = ClientConfig(idle_timeout=30.0, keepalive_interval=10.0)
        sc = SwarmScenario(seed=98, file_size=256 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True, config=alive)
        l0 = sc.add_wired_peer("l0", config=reaper)
        sc.start_all()
        assert sc.run_until_complete(["l0"], timeout=300)
        sc.run(until=sc.sim.now + 120.0)
        # both sides keep-alive fast enough that nothing is reaped
        assert len(l0.client.connected_peers()) == 1


class TestAntiSnubbing:
    def test_snubbed_detection(self):
        sc = SwarmScenario(seed=99, file_size=1024 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True, up_rate=40_000)
        l0 = sc.add_wired_peer("l0")
        sc.start_all()
        sc.run(until=10.0)
        peers = l0.client.connected_peers()
        assert peers
        peer = peers[0]
        # actively delivering: not snubbed
        assert not peer.snubbed(timeout=60.0)

    def test_choked_peer_never_snubbed(self):
        sc = SwarmScenario(seed=100, file_size=1024 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True)
        l0 = sc.add_wired_peer("l0")
        sc.start_all()
        sc.run(until=10.0)
        peer = l0.client.connected_peers()[0]
        peer.peer_choking = True
        assert not peer.snubbed(timeout=0.001)

    def test_anti_snubbing_excludes_from_ranked_slots(self):
        """A peer that takes blocks but returns none loses its ranked slot
        when anti-snubbing is on."""
        config = ClientConfig(
            anti_snubbing=True, snub_timeout=15.0,
            unchoke_slots=1, choke_interval=5.0, optimistic_every=100,
        )
        sc = SwarmScenario(seed=101, file_size=8 * 1024 * 1024, piece_length=65_536)
        uploader = sc.add_wired_peer("uploader", config=config,
                                     initial_pieces=range(0, 64))
        # freerider takes blocks and uploads nothing back
        freerider = sc.add_wired_peer(
            "freerider", config=ClientConfig(upload_limit=0.0),
            initial_pieces=range(64, 128),
        )
        sc.start_all()
        sc.run(until=120.0)
        # after the snub timeout, the uploader chokes the freerider in
        # ranked rounds (only optimistic unchokes remain, disabled here)
        view = [p for p in uploader.client.connected_peers()
                if p.peer_id == freerider.client.peer_id]
        assert view
        assert view[0].snubbed(config.snub_timeout) or view[0].am_choking
