"""Tests for the SACK-lite extension."""

from __future__ import annotations

import pytest

from repro.tcp import TCPConfig, TCPSegment
from repro.tcp.segment import ACK

from tests.helpers import Message, TwoHostNet


def open_pair(net, port=6881):
    accepted = []

    def accept(conn):
        conn.received = []
        conn.on_message = lambda m: conn.received.append(m.tag)
        accepted.append(conn)

    net.stack_b.listen(port, accept)
    client = net.stack_a.connect(net.b.ip, port)
    return client, accepted


class TestSackWireFormat:
    def test_sack_blocks_cost_option_bytes(self):
        plain = TCPSegment(1, 2, 0, 0, ACK)
        sacked = TCPSegment(1, 2, 0, 0, ACK, sack_blocks=((100, 200), (400, 500)))
        assert sacked.wire_size == plain.wire_size + 2 + 8 * 2

    def test_at_most_four_blocks(self):
        blocks = tuple((i * 100, i * 100 + 50) for i in range(5))
        with pytest.raises(ValueError):
            TCPSegment(1, 2, 0, 0, ACK, sack_blocks=blocks)

    def test_dupack_with_sack_still_pure(self):
        seg = TCPSegment(1, 2, 0, 0, ACK, sack_blocks=((10, 20),))
        assert seg.is_pure_ack


class TestSackReceiver:
    def test_receiver_reports_gaps(self):
        config = TCPConfig(sack=True)
        net = TwoHostNet(tcp_config=config)
        observed = []

        def watch(pkt):
            seg = pkt.payload
            if isinstance(seg, TCPSegment) and seg.sack_blocks:
                observed.append(seg.sack_blocks)
            return None

        net.b.netfilter.egress.register(watch)

        # drop exactly one data segment to open a gap
        dropped = []

        def drop_one(pkt):
            seg = pkt.payload
            if (
                isinstance(seg, TCPSegment)
                and seg.payload_len > 0
                and not dropped
                and seg.seq > 3000
            ):
                dropped.append(seg.seq)
                return []
            return None

        net.a.netfilter.egress.register(drop_one)
        client, accepted = open_pair(net)
        for i in range(30):
            client.send_message(Message(1460, i))
        net.sim.run(until=20.0)
        assert dropped
        assert observed  # DUPACKs carried SACK blocks
        # the reported range starts at or after the dropped segment's end
        first_blocks = observed[0]
        assert first_blocks[0][0] >= dropped[0]
        assert accepted[0].received == list(range(30))

    def test_no_sack_blocks_when_disabled(self):
        net = TwoHostNet(seed=3, wireless=True, ber=1e-5)
        observed = []

        def watch(pkt):
            seg = pkt.payload
            if isinstance(seg, TCPSegment) and seg.sack_blocks:
                observed.append(seg)
            return None

        net.b.netfilter.egress.register(watch)
        client, accepted = open_pair(net)
        for i in range(100):
            client.send_message(Message(1460, i))
        net.sim.run(until=60.0)
        assert observed == []


class TestSackRecovery:
    def _run(self, sack: bool, seed: int = 11, n: int = 400, ber: float = 8e-6):
        config = TCPConfig(sack=sack)
        net = TwoHostNet(seed=seed, wireless=True, ber=ber, tcp_config=config)
        client, accepted = open_pair(net)
        for i in range(n):
            client.send_message(Message(1460, i))
        net.sim.run(until=300.0)
        return client, accepted[0], net

    def test_transfer_correct_with_sack(self):
        client, server, net = self._run(sack=True)
        assert server.received == list(range(400))

    def test_sack_reduces_spurious_retransmissions(self):
        """With selective information, the sender resends fewer already-
        received bytes than go-back-N/NewReno (averaged over seeds)."""
        plain_retx = sack_retx = 0
        plain_dup = sack_dup = 0
        for seed in (11, 12, 13):
            c1, s1, _ = self._run(sack=False, seed=seed)
            c2, s2, _ = self._run(sack=True, seed=seed)
            plain_retx += c1.stats.retransmissions
            sack_retx += c2.stats.retransmissions
            plain_dup += s1.rcv.duplicate_bytes if s1.rcv else 0
            sack_dup += s2.rcv.duplicate_bytes if s2.rcv else 0
            assert s1.received == list(range(400))
            assert s2.received == list(range(400))
        # SACK must not redeliver more duplicate bytes than blind recovery
        assert sack_dup <= plain_dup

    def test_scoreboard_cleared_on_timeout(self):
        config = TCPConfig(sack=True, max_rto=2.0)
        net = TwoHostNet(tcp_config=config)
        client, accepted = open_pair(net)
        net.sim.run(until=1.0)
        client.send_message(Message(50_000, "x"))
        blackout = {"on": False}
        net.a.netfilter.egress.register(lambda p: [] if blackout["on"] else None)
        net.b.netfilter.egress.register(lambda p: [] if blackout["on"] else None)
        net.sim.run(until=2.0)
        blackout["on"] = True
        client.send_message(Message(50_000, "y"))
        net.sim.run(until=6.0)
        blackout["on"] = False
        net.sim.run(until=60.0)
        assert accepted[0].received == ["x", "y"]
        assert client._sack_scoreboard == [] or client.snd.flight_size == 0
