"""Determinism: a run is a pure function of its seed.

Experiments rely on this for A/B fairness (default vs wP2P see the same
environment noise) and for reproducible figures.
"""

from __future__ import annotations

from repro.bittorrent.swarm import SwarmScenario
from repro.experiments import run_transfer
from repro.wp2p import WP2PClient


def swarm_fingerprint(seed: int):
    sc = SwarmScenario(seed=seed, file_size=1024 * 1024, piece_length=65_536)
    sc.add_wired_peer("seed", complete=True, up_rate=100_000)
    sc.add_wired_peer("l0")
    mob = sc.add_wireless_peer("mob", rate=150_000, ber=5e-6,
                               client_factory=WP2PClient)
    sc.add_mobility(mob, interval=30.0, downtime=1.0)
    sc.start_all()
    sc.run(until=90.0)
    return (
        sc.sim.events_processed,
        mob.client.downloaded.total,
        mob.client.uploaded.total,
        tuple(mob.client.manager.completion_order),
        mob.channel.frames_lost,
        sc["l0"].client.downloaded.total,
        mob.client.peer_id,
    )


class TestDeterminism:
    def test_identical_seeds_identical_runs(self):
        assert swarm_fingerprint(123) == swarm_fingerprint(123)

    def test_different_seeds_differ(self):
        assert swarm_fingerprint(123) != swarm_fingerprint(124)

    def test_raw_transfer_deterministic(self):
        a = run_transfer(seed=5, ber=1e-5, bidirectional=True, duration=15.0)
        b = run_transfer(seed=5, ber=1e-5, bidirectional=True, duration=15.0)
        assert a.delivered_down == b.delivered_down
        assert a.delivered_up == b.delivered_up

    def test_component_rng_isolation(self):
        """Consuming extra draws from one named stream must not perturb
        another component's stream."""
        from repro.sim import Simulator

        sim1 = Simulator(seed=9)
        sim2 = Simulator(seed=9)
        # sim2's "wireless" stream is consumed heavily before "choker" use
        for _ in range(1000):
            sim2.rng.stream("wireless.cell.loss").random()
        assert (
            sim1.rng.stream("choker.x").random()
            == sim2.rng.stream("choker.x").random()
        )
