"""Edge-case tests for hosts, interfaces, and the Internet core."""

from __future__ import annotations

import pytest

from repro.net import (
    AddressAllocator,
    Host,
    Internet,
    Packet,
    attach_wired_host,
)
from repro.sim import Simulator


class Payload:
    def __init__(self, size):
        self.wire_size = size


class Sink:
    def __init__(self):
        self.packets = []

    def receive(self, packet):
        self.packets.append(packet)


def pair(sim):
    internet = Internet(sim, core_delay=0.01)
    alloc = AddressAllocator()
    a, b = Host(sim, "a"), Host(sim, "b")
    a.transport, b.transport = Sink(), Sink()
    attach_wired_host(sim, a, internet, alloc.allocate())
    attach_wired_host(sim, b, internet, alloc.allocate())
    return internet, alloc, a, b


class TestHostLifecycle:
    def test_bring_up_same_ip_no_notification(self):
        sim = Simulator()
        internet, alloc, a, b = pair(sim)
        changes = []
        a.on_ip_change(lambda o, n: changes.append((o, n)))
        a.bring_up(a.ip)  # same address: no-op notification-wise
        assert changes == []

    def test_take_down_idempotent(self):
        sim = Simulator()
        internet, alloc, a, b = pair(sim)
        first = a.take_down()
        second = a.take_down()
        assert first is not None
        assert second is None

    def test_delivery_without_transport_recorded(self):
        sim = Simulator()
        internet, alloc, a, b = pair(sim)
        b.transport = None
        a.send(Packet(a.ip, b.ip, Payload(100), created_at=sim.now))
        sim.run(until=1.0)
        assert any(d.reason == "no_transport" for d in b.drops)

    def test_interface_tx_drop_counter(self):
        sim = Simulator()
        internet, alloc, a, b = pair(sim)
        a.interface.up = False
        a.interface.transmit(Packet("x", b.ip, Payload(10)))
        assert a.interface.tx_dropped == 1

    def test_down_host_does_not_receive(self):
        sim = Simulator()
        internet, alloc, a, b = pair(sim)
        b.interface.up = False
        b.interface.receive(Packet(a.ip, b.ip, Payload(10)))
        assert b.transport.packets == []


class TestInternetCore:
    def test_double_register_same_link_ok(self):
        sim = Simulator()
        internet, alloc, a, b = pair(sim)
        link = a.interface.link
        internet.register(a.ip, link)  # same attachment: fine

    def test_double_register_conflict_rejected(self):
        sim = Simulator()
        internet, alloc, a, b = pair(sim)
        with pytest.raises(ValueError):
            internet.register(a.ip, b.interface.link)

    def test_unregister_idempotent(self):
        sim = Simulator()
        internet, alloc, a, b = pair(sim)
        internet.unregister(a.ip)
        internet.unregister(a.ip)
        assert not internet.has_route(a.ip)

    def test_forward_counts(self):
        sim = Simulator()
        internet, alloc, a, b = pair(sim)
        a.send(Packet(a.ip, b.ip, Payload(100), created_at=sim.now))
        sim.run(until=1.0)
        assert internet.packets_forwarded == 1
        assert b.transport.packets[0].hops == 1

    def test_negative_core_delay_rejected(self):
        with pytest.raises(ValueError):
            Internet(Simulator(), core_delay=-1.0)

    def test_zero_core_delay_synchronous(self):
        sim = Simulator()
        internet = Internet(sim, core_delay=0.0)
        alloc = AddressAllocator()
        a, b = Host(sim, "a"), Host(sim, "b")
        b.transport = Sink()
        attach_wired_host(sim, a, internet, alloc.allocate())
        attach_wired_host(sim, b, internet, alloc.allocate())
        a.send(Packet(a.ip, b.ip, Payload(100), created_at=sim.now))
        sim.run()
        assert len(b.transport.packets) == 1


class TestMakeAddress:
    def test_small_host_index(self):
        from repro.net import make_address

        assert make_address(0, 1) == "10.0.0.1"
        assert make_address(258, 5) == "10.1.2.5"

    def test_large_host_index(self):
        from repro.net import make_address

        addr = make_address(3, 1000)
        assert addr.startswith("172.")

    def test_bounds(self):
        from repro.net import make_address

        with pytest.raises(ValueError):
            make_address(-1, 1)
        with pytest.raises(ValueError):
            make_address(0, 0)
        with pytest.raises(ValueError):
            make_address(70000, 1)
