"""Tests for TCP flow control, ACK policy, and window behaviour."""

from __future__ import annotations

import pytest

from repro.tcp import TCPConfig, TCPSegment
from repro.tcp.segment import ACK

from tests.helpers import Message, TwoHostNet


def open_pair(net, port=6881):
    accepted = []

    def accept(conn):
        conn.received = []
        conn.on_message = lambda m: conn.received.append(m.tag)
        accepted.append(conn)

    net.stack_b.listen(port, accept)
    client = net.stack_a.connect(net.b.ip, port)
    client.received = []
    client.on_message = lambda m: client.received.append(m.tag)
    return client, accepted


class TestReceiveWindow:
    def test_sender_respects_peer_rwnd(self):
        config = TCPConfig(rwnd=8_192)
        net = TwoHostNet(tcp_config=config)
        client, accepted = open_pair(net)
        net.sim.run(until=1.0)
        client.send_message(Message(100_000, "big"))
        # at any instant, flight never exceeds the advertised window
        for _ in range(100):
            net.sim.run(until=net.sim.now + 0.05)
            assert client.snd.flight_size <= 8_192
        net.sim.run(until=60.0)
        assert accepted[0].received == ["big"]


class TestAckPolicy:
    def test_delayed_ack_coalesces(self):
        """With delack, far fewer pure ACKs than data segments on a clean
        unidirectional transfer."""
        net = TwoHostNet()
        client, accepted = open_pair(net)
        for i in range(100):
            client.send_message(Message(1460, i))
        net.sim.run(until=30.0)
        server = accepted[0]
        assert server.stats.pure_acks_sent < client.stats.segments_sent
        # delack_segments=2: roughly one ACK per two segments
        assert server.stats.pure_acks_sent <= client.stats.segments_sent * 0.75

    def test_delack_timer_fires_for_odd_segment(self):
        """A lone segment still gets acknowledged within the delack window."""
        net = TwoHostNet()
        client, accepted = open_pair(net)
        net.sim.run(until=1.0)
        client.send_message(Message(500, "only"))
        net.sim.run(until=1.0 + 0.5)
        assert accepted[0].received == ["only"]
        assert client.snd.flight_size == 0  # acked despite no 2nd segment

    def test_piggyback_counter_tracks_data_acks(self):
        net = TwoHostNet()
        client, accepted = open_pair(net)
        net.sim.run(until=1.0)
        server = accepted[0]
        for i in range(50):
            client.send_message(Message(1460, i))
            server.send_message(Message(1460, i))
        net.sim.run(until=30.0)
        assert server.stats.piggybacked_acks > 0


class TestSegmentationAndIdle:
    def test_mss_respected(self):
        seen_sizes = []

        net = TwoHostNet()

        def watch(pkt):
            seg = pkt.payload
            if isinstance(seg, TCPSegment) and seg.payload_len:
                seen_sizes.append(seg.payload_len)
            return None

        net.a.netfilter.egress.register(watch)
        client, accepted = open_pair(net)
        client.send_message(Message(100_000, "big"))
        net.sim.run(until=30.0)
        assert seen_sizes
        assert max(seen_sizes) <= net.stack_a.config.mss

    def test_many_small_messages_share_segments(self):
        """Small messages are coalesced into MSS-sized segments."""
        net = TwoHostNet()
        client, accepted = open_pair(net)
        net.sim.run(until=1.0)
        for i in range(100):
            client.send_message(Message(100, i))
        net.sim.run(until=30.0)
        assert accepted[0].received == list(range(100))
        # without Nagle each synchronous send may flush, but once the
        # window fills queued messages coalesce into MSS-sized segments
        assert client.stats.segments_sent < 60
        assert client.stats.payload_bytes_sent == 100 * 100

    def test_idle_connection_stays_established(self):
        net = TwoHostNet()
        client, accepted = open_pair(net)
        net.sim.run(until=1.0)
        client.send_message(Message(1000, "a"))
        net.sim.run(until=120.0)  # long silence
        assert client.established
        client.send_message(Message(1000, "b"))
        net.sim.run(until=130.0)
        assert accepted[0].received == ["a", "b"]


class TestStatsConsistency:
    def test_bytes_acked_matches_bytes_delivered(self):
        net = TwoHostNet(seed=6, wireless=True, ber=5e-6)
        client, accepted = open_pair(net)
        for i in range(200):
            client.send_message(Message(1460, i))
        net.sim.run(until=120.0)
        server = accepted[0]
        assert server.received == list(range(200))
        assert client.stats.payload_bytes_acked == 200 * 1460
        assert server.stats.payload_bytes_delivered == 200 * 1460

    def test_retransmissions_counted_under_loss(self):
        net = TwoHostNet(seed=7, wireless=True, ber=1e-5)
        client, accepted = open_pair(net)
        for i in range(100):
            client.send_message(Message(1460, i))
        net.sim.run(until=120.0)
        assert client.stats.retransmissions > 0
        # payload sent >= payload size (retransmissions inflate it)
        assert client.stats.payload_bytes_sent >= 100 * 1460

    def test_cwnd_tracking_flag(self):
        config = TCPConfig(track_cwnd=True)
        net = TwoHostNet(tcp_config=config)
        client, accepted = open_pair(net)
        for i in range(50):
            client.send_message(Message(1460, i))
        net.sim.run(until=20.0)
        assert len(client.stats.cwnd_history) > 10
        times = [t for t, _ in client.stats.cwnd_history]
        assert times == sorted(times)
