"""Coverage for remaining smaller behaviours across packages."""

from __future__ import annotations

import pytest

from repro.bittorrent.swarm import SwarmScenario
from repro.net import attach_wireless_host
from repro.sim import Simulator


class TestSwarmScenarioApi:
    def test_getitem_and_wireless_flag(self):
        sc = SwarmScenario(seed=1, file_size=128 * 1024, piece_length=65_536)
        wired = sc.add_wired_peer("w")
        wireless = sc.add_wireless_peer("m")
        assert sc["w"] is wired
        assert not wired.wireless
        assert wireless.wireless
        with pytest.raises(KeyError):
            sc["nope"]

    def test_run_until_complete_times_out_false(self):
        sc = SwarmScenario(seed=2, file_size=128 * 1024, piece_length=65_536)
        sc.add_wired_peer("lonely")  # no seed: cannot complete
        sc.start_all()
        assert sc.run_until_complete(["lonely"], timeout=10.0) is False

    def test_torrent_points_at_tracker(self):
        sc = SwarmScenario(seed=3, file_size=128 * 1024, piece_length=65_536)
        assert sc.torrent.tracker_ip == sc.tracker_host.ip
        assert sc.torrent.tracker_port == sc.tracker.port

    def test_mobility_helper_registers_controller(self):
        sc = SwarmScenario(seed=4, file_size=128 * 1024, piece_length=65_536)
        mob = sc.add_wireless_peer("m")
        ctl = sc.add_mobility(mob, interval=30.0, start=False)
        assert mob.mobility is ctl
        assert not ctl._running if hasattr(ctl, "_running") else True


class TestWirelessDynamics:
    def test_rate_change_mid_run_affects_throughput(self):
        from repro.net import AddressAllocator, Host, Internet, Packet

        class Sink:
            def __init__(self):
                self.packets = []

            def receive(self, packet):
                self.packets.append(packet)

        class Payload:
            wire_size = 1460

        sim = Simulator(seed=5)
        internet = Internet(sim, core_delay=0.0)
        alloc = AddressAllocator()
        mob = Host(sim, "m")
        mob.transport = Sink()
        from repro.net import attach_wired_host

        fixed = Host(sim, "f")
        attach_wired_host(sim, fixed, internet, alloc.allocate(),
                          up_rate=10_000_000)
        channel = attach_wireless_host(sim, mob, internet, alloc.allocate(),
                                       rate=20_000)
        for i in range(100):
            sim.schedule(i * 0.01, lambda: fixed.send(
                Packet(fixed.ip, mob.ip, Payload(), created_at=sim.now)))
        sim.run(until=2.0)
        slow_count = len(mob.transport.packets)
        channel.set_rate(200_000)
        sim.run(until=4.0)
        fast_count = len(mob.transport.packets) - slow_count
        assert fast_count > slow_count  # drains much faster after the boost

    def test_mac_efficiency_validated(self):
        from repro.net import WirelessChannel, Host, Internet

        sim = Simulator()
        internet = Internet(sim)
        host = Host(sim, "h")
        with pytest.raises(ValueError):
            WirelessChannel(sim, host, internet, mac_efficiency=0.0)
        with pytest.raises(ValueError):
            WirelessChannel(sim, host, internet, mac_efficiency=1.5)
        with pytest.raises(ValueError):
            WirelessChannel(sim, host, internet, rate=0)
        with pytest.raises(ValueError):
            WirelessChannel(sim, host, internet, ber=1.0)


class TestCounterEdges:
    def test_value_at_exact_boundaries(self):
        from repro.sim import Counter

        sim = Simulator()
        counter = Counter(sim, "x", record_history=True)
        sim.schedule(1.0, lambda: counter.add(10))
        sim.schedule(1.0, lambda: counter.add(5))
        sim.run()
        assert counter.value_at(1.0) == 15
        assert counter.value_at(0.999) == 0

    def test_mobility_controller_param_validation(self):
        from repro.net import MobilityController, AddressAllocator, Host, Internet

        sim = Simulator()
        internet = Internet(sim)
        host = Host(sim, "h")
        alloc = AddressAllocator()
        with pytest.raises(ValueError):
            MobilityController(sim, host, internet, alloc, interval=0)
        with pytest.raises(ValueError):
            MobilityController(sim, host, internet, alloc, interval=10, downtime=-1)
        with pytest.raises(ValueError):
            MobilityController(sim, host, internet, alloc, interval=10, jitter=10)


class TestWP2PConfigDefaults:
    def test_wp2p_defaults_enable_all_components(self):
        from repro.wp2p import WP2PConfig

        cfg = WP2PConfig()
        assert cfg.am_enabled
        assert cfg.identity_retention
        assert cfg.role_reversal
        assert cfg.mobility_aware_fetching
        assert cfg.lihd_u_max is None  # LIHD needs an explicit ceiling

    def test_wp2p_config_inherits_client_config(self):
        from repro.bittorrent import ClientConfig
        from repro.wp2p import WP2PConfig

        cfg = WP2PConfig(unchoke_slots=7)
        assert isinstance(cfg, ClientConfig)
        assert cfg.unchoke_slots == 7
