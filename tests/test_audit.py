"""The invariant-audit harness (repro.audit).

Two families of tests:

* **Alarm-ring** — every checker must actually fire: build a healthy
  component, deliberately corrupt its state, and assert the auditor
  reports a violation from exactly that checker.  A checker that stays
  silent on a broken fixture is dead weight.
* **Silence** — registered scenarios and the canonical topologies must
  run clean under full auditing at default parameters.

Plus regression tests for the two bugs the harness's construction
surfaced: ``TokenBucket.set_rate`` clobbering a configured burst, and
``RTTEstimator.backoff`` driving its multiplier below 1 when the RTO
already exceeds ``max_rto``.
"""

from __future__ import annotations

import pytest

from repro import audit
from repro.audit import Auditor, AuditViolation
from repro.bittorrent.rate import TokenBucket
from repro.net import AddressAllocator, Host, Internet, attach_wired_host, attach_wireless_host
from repro.sim import Simulator
from repro.tcp.rtt import RTTEstimator

from tests.helpers import Message, TwoHostNet


def collecting(sim: Simulator) -> Auditor:
    """Attach a collect-mode auditor (violations recorded, not raised)."""
    return Auditor(raise_on_violation=False).attach(sim)


def checkers_fired(auditor: Auditor) -> set:
    return {v.checker for v in auditor.violations}


# ----------------------------------------------------------------------
# Plumbing
# ----------------------------------------------------------------------
class TestPlumbing:
    def test_off_by_default(self):
        sim = Simulator(seed=1)
        assert sim.audit is None
        sim.schedule(1.0, lambda: None)
        sim.run()  # no auditor in the loop

    def test_install_attaches_new_simulators(self):
        audit.install()
        try:
            sim = Simulator(seed=1)
            assert isinstance(sim.audit, Auditor)
            assert sim.audit in audit.auditors()
        finally:
            audit.uninstall()
        assert Simulator(seed=2).audit is None

    def test_audited_context_keeps_auditors_inspectable(self):
        with audit.audited(raise_on_violation=False) as auditors:
            sim = Simulator(seed=3)
            sim.schedule(0.5, lambda: None)
            sim.run()
        assert len(auditors) == 1
        assert auditors[0].sweeps >= 1
        assert auditors[0].ok

    def test_attach_is_exclusive(self):
        sim = Simulator(seed=1)
        collecting(sim)
        with pytest.raises(RuntimeError):
            Auditor().attach(sim)

    def test_violation_raises_by_default(self):
        sim = Simulator(seed=1)
        auditor = Auditor().attach(sim)
        auditor.before_event(5.0)
        with pytest.raises(AuditViolation, match="backwards"):
            auditor.before_event(1.0)


# ----------------------------------------------------------------------
# Alarm-ring: kernel and trace stream
# ----------------------------------------------------------------------
class TestKernelAndTraceAlarms:
    def test_event_monotonicity(self):
        sim = Simulator(seed=1)
        auditor = collecting(sim)
        auditor.before_event(5.0)
        auditor.before_event(1.0)
        assert "sim.event_monotonic" in checkers_fired(auditor)

    def test_trace_time_monotonicity(self):
        auditor = collecting(Simulator(seed=1))
        auditor.write({"t": 5.0, "layer": "sim", "event": "x"})
        auditor.write({"t": 1.0, "layer": "sim", "event": "x"})
        assert "trace.time_monotonic" in checkers_fired(auditor)

    def test_negative_announce_left(self):
        auditor = collecting(Simulator(seed=1))
        auditor.write({"t": 0.0, "layer": "bittorrent", "event": "announce",
                       "client": "c", "left": -1})
        assert "bittorrent.announce" in checkers_fired(auditor)

    def test_progress_regression_and_range(self):
        auditor = collecting(Simulator(seed=1))
        rec = {"t": 0.0, "layer": "bittorrent", "event": "piece_complete",
               "client": "c", "progress": 0.5}
        auditor.write(dict(rec))
        auditor.write(dict(rec, progress=0.4))
        auditor.write(dict(rec, progress=1.5))
        msgs = [v.message for v in auditor.violations]
        assert any("regressed" in m for m in msgs)
        assert any("outside" in m for m in msgs)

    def test_am_state_machine(self):
        auditor = collecting(Simulator(seed=1))
        rec = {"t": 0.0, "layer": "wp2p", "event": "am_state",
               "host": "m", "flow": "f", "status": "young"}
        auditor.write(dict(rec))
        assert auditor.ok  # first report for a flow is a transition
        auditor.write(dict(rec))  # young -> young is not a transition
        auditor.write(dict(rec, status="senile"))
        assert [v.checker for v in auditor.violations] == ["wp2p.am", "wp2p.am"]

    def test_ma_fetch_mode_machine(self):
        auditor = collecting(Simulator(seed=1))
        rec = {"t": 0.0, "layer": "wp2p", "event": "ma_fetch_mode",
               "client": "m", "mode": "rarest", "pr": 0.5}
        auditor.write(dict(rec))
        assert auditor.ok
        auditor.write(dict(rec))  # rarest -> rarest is not a flip
        auditor.write(dict(rec, mode="alphabetical"))
        auditor.write(dict(rec, mode="sequential", pr=1.5))
        fired = [v.checker for v in auditor.violations]
        assert fired == ["wp2p.ma"] * 3

    def test_lihd_update_record(self):
        auditor = collecting(Simulator(seed=1))
        auditor.write({"t": 0.0, "layer": "wp2p", "event": "lihd_update",
                       "client": "m", "decision": "oscillate", "dec_count": -2})
        assert len(auditor.violations) == 2
        assert checkers_fired(auditor) == {"wp2p.lihd"}


# ----------------------------------------------------------------------
# Alarm-ring: net layer
# ----------------------------------------------------------------------
class TestNetAlarms:
    def _wired(self):
        sim = Simulator(seed=1)
        auditor = collecting(sim)
        internet = Internet(sim)
        host = Host(sim, "h")
        link = attach_wired_host(sim, host, internet, "10.0.0.1")
        return sim, auditor, link

    def test_queue_packet_conservation(self):
        sim, auditor, link = self._wired()
        link.uplink.queue.enqueued += 1
        auditor.sweep()
        assert "net.queue" in checkers_fired(auditor)

    def test_queue_byte_conservation(self):
        sim, auditor, link = self._wired()
        link.uplink.queue.bytes_enqueued += 40
        auditor.sweep()
        assert "net.queue" in checkers_fired(auditor)

    def test_link_direction_accounting(self):
        sim, auditor, link = self._wired()
        link.uplink.packets_sent += 1
        auditor.sweep()
        assert "net.link" in checkers_fired(auditor)

    def test_wireless_arrival_map_leak(self):
        sim = Simulator(seed=1)
        auditor = collecting(sim)
        internet = Internet(sim)
        host = Host(sim, "m")
        channel = attach_wireless_host(sim, host, internet, "10.0.1.1")
        channel._up_order.append(999)  # ticket with no queued packet
        auditor.sweep()
        assert "net.wireless" in checkers_fired(auditor)

    def test_wireless_loss_record_mismatch(self):
        sim = Simulator(seed=1)
        auditor = collecting(sim)
        internet = Internet(sim)
        host = Host(sim, "m")
        channel = attach_wireless_host(sim, host, internet, "10.0.1.1")
        channel.frames_lost += 1  # no matching DropRecord
        auditor.sweep()
        assert "net.wireless" in checkers_fired(auditor)


# ----------------------------------------------------------------------
# Alarm-ring: token bucket and TCP
# ----------------------------------------------------------------------
class TestTransportAlarms:
    def test_bucket_negative_balance(self):
        sim = Simulator(seed=1)
        auditor = collecting(sim)
        bucket = TokenBucket(sim, rate=100.0)
        bucket._tokens = -5.0
        auditor.sweep()
        assert "bittorrent.bucket" in checkers_fired(auditor)

    def test_bucket_negative_burst(self):
        sim = Simulator(seed=1)
        auditor = collecting(sim)
        bucket = TokenBucket(sim, rate=None)
        bucket.burst = -1.0
        auditor.sweep()
        assert "bittorrent.bucket" in checkers_fired(auditor)

    def _pair(self):
        net = TwoHostNet()
        auditor = collecting(net.sim)
        server_conns = []
        net.stack_b.listen(7000, server_conns.append)
        conn = net.stack_a.connect(net.b.ip, 7000)
        net.sim.run(until=1.0)
        assert conn.established and server_conns
        for _ in range(20):
            conn.send_message(Message(1000))
        net.sim.run(until=3.0)
        return net, auditor, conn, server_conns[0]

    def test_tcp_backoff_below_one(self):
        net, auditor, conn, _ = self._pair()
        conn.rtt._backoff = 0.5
        auditor.sweep()
        assert "tcp.connection" in checkers_fired(auditor)

    def test_tcp_sequence_disorder(self):
        net, auditor, conn, _ = self._pair()
        conn.snd.una = conn.snd.nxt + 1000
        auditor.sweep()
        assert "tcp.connection" in checkers_fired(auditor)

    def test_tcp_pair_receiver_ahead_of_sender(self):
        net, auditor, conn, server = self._pair()
        server.rcv.rcv_nxt += 10**9
        auditor.sweep()
        assert "tcp.pair" in checkers_fired(auditor)

    def test_tcp_clean_pair_is_silent(self):
        net, auditor, conn, _ = self._pair()
        net.sim.run(until=10.0)
        assert auditor.ok, auditor.violations


# ----------------------------------------------------------------------
# Alarm-ring: BitTorrent client state and wP2P controllers
# ----------------------------------------------------------------------
class TestBitTorrentAlarms:
    def _swarm(self):
        from repro.bittorrent.swarm import SwarmScenario

        audit.install(raise_on_violation=False)
        try:
            scenario = SwarmScenario(seed=7, file_size=128 * 1024)
            scenario.add_wired_peer("seed0", complete=True)
            leech = scenario.add_wired_peer("leech0")
            scenario.start_all()
            scenario.run(until=10.0)
        finally:
            audit.uninstall()
        (auditor,) = audit.auditors()
        assert auditor.ok, auditor.violations
        return scenario, auditor, leech.client

    def test_bitfield_byte_counter_mismatch(self):
        scenario, auditor, client = self._swarm()
        client.manager.bytes_completed += 1
        auditor.sweep()
        assert "bittorrent.client" in checkers_fired(auditor)

    def test_availability_desync(self):
        scenario, auditor, client = self._swarm()
        client.availability[0] = client.availability.get(0, 0) + 99
        auditor.sweep()
        assert "bittorrent.client" in checkers_fired(auditor)

    def test_ledger_credit_exceeds_delivery(self):
        scenario, auditor, client = self._swarm()
        client.ledger._credit["phantom"] = (10**9, scenario.sim.now)
        auditor.sweep()
        fired = [v for v in auditor.violations if "ledger" in v.message]
        assert fired and fired[0].checker == "bittorrent.client"

    def test_transfer_conservation(self):
        scenario, auditor, client = self._swarm()
        auditor.note_block_received(client, "phantom-uploader", 4096)
        auditor.sweep()
        assert "bittorrent.transfer" in checkers_fired(auditor)

    def test_am_status_contradicts_cwnd(self):
        from repro.wp2p.age_manipulation import (
            MATURE, AgeBasedManipulation, _FlowState,
        )

        sim = Simulator(seed=1)
        auditor = collecting(sim)
        host = Host(sim, "m")
        am = AgeBasedManipulation(sim, host)
        am._flows[(6881, "10.0.0.2", 6881)] = _FlowState(
            cwnd_estimate=0, status=MATURE  # 0 < gamma must be YOUNG
        )
        auditor.sweep()
        assert "wp2p.am" in checkers_fired(auditor)

    def test_lihd_cap_out_of_band(self):
        from repro.wp2p.incentive_aware import LIHDController

        scenario, auditor, client = self._swarm()
        lihd = LIHDController(client, u_max=30_000.0)
        lihd.start()
        lihd.u_cur = lihd.u_floor - 1.0
        auditor.sweep()
        assert "wp2p.lihd" in checkers_fired(auditor)

    def test_lihd_bucket_disagreement(self):
        from repro.wp2p.incentive_aware import LIHDController

        scenario, auditor, client = self._swarm()
        lihd = LIHDController(client, u_max=30_000.0)
        lihd.start()
        client.upload_bucket.set_rate(99_999.0)  # behind LIHD's back
        auditor.sweep()
        assert "wp2p.lihd" in checkers_fired(auditor)


# ----------------------------------------------------------------------
# Silence: healthy topologies raise nothing under full auditing
# ----------------------------------------------------------------------
class TestCleanRuns:
    def test_transfer_clean_under_audit(self):
        from repro.experiments.base import run_transfer

        with audit.audited() as auditors:
            run_transfer(seed=5, ber=1e-5, bidirectional=True, duration=20.0)
        assert auditors and all(a.ok for a in auditors)
        assert any(a.sweeps > 0 for a in auditors)

    def test_swarm_clean_under_audit(self):
        from repro.bittorrent.swarm import SwarmScenario

        with audit.audited() as auditors:
            scenario = SwarmScenario(seed=11, file_size=256 * 1024)
            scenario.add_wired_peer("seed0", complete=True, up_rate=200_000.0)
            scenario.add_wireless_peer("mobile0", ber=1e-5)
            scenario.start_all()
            scenario.run(until=60.0)
        assert auditors and all(a.ok for a in auditors)

    def test_registered_scenario_clean_via_runner(self):
        from repro.runner import Runner

        runner = Runner(jobs=1, audit=True)
        run = runner.run("fig2a", {"runs": 1, "duration": 20.0})
        assert run.failures == []
        assert run.stats.executed == run.stats.total_cells  # cache bypassed

    def test_runner_audit_disables_cache(self, tmp_path):
        from repro.runner import ResultCache, Runner

        runner = Runner(jobs=1, cache=ResultCache(str(tmp_path)), audit=True)
        assert runner.cache is None


# ----------------------------------------------------------------------
# Regression: TokenBucket.set_rate burst handling
# ----------------------------------------------------------------------
class TestTokenBucketSetRate:
    def test_explicit_burst_survives_live_rate_change(self):
        sim = Simulator(seed=1)
        bucket = TokenBucket(sim, rate=10_000.0, burst=50_000.0)
        bucket.set_rate(20_000.0)  # a LIHD-style live adjustment
        assert bucket.burst == 50_000.0
        bucket.set_rate(5.0)
        assert bucket.burst == 50_000.0

    def test_explicit_burst_survives_none_and_zero(self):
        sim = Simulator(seed=1)
        bucket = TokenBucket(sim, rate=10_000.0, burst=50_000.0)
        bucket.set_rate(None)
        assert bucket.unlimited and bucket.burst == 50_000.0
        bucket.set_rate(0.0)
        assert bucket.blocked and bucket.burst == 50_000.0
        assert 0.0 <= bucket.tokens <= bucket.burst

    def test_default_burst_tracks_rate(self):
        sim = Simulator(seed=1)
        bucket = TokenBucket(sim, rate=10_000.0)
        bucket.set_rate(20_000.0)
        assert bucket.burst == 20_000.0
        bucket.set_rate(None)  # disabled: no stale balance survives
        assert bucket.burst == 0.0 and bucket.tokens == 0.0
        bucket.set_rate(10_000.0)
        assert bucket.burst == 10_000.0
        assert bucket.tokens == 0.0  # re-enabled empty, fills at `rate`

    def test_tokens_never_exceed_burst_across_changes(self):
        sim = Simulator(seed=1)
        bucket = TokenBucket(sim, rate=10_000.0, burst=50_000.0)
        sim.schedule(100.0, lambda: None)
        sim.run()  # bucket saturates at burst
        assert bucket.tokens == pytest.approx(50_000.0)
        bucket.set_rate(1_000.0)
        assert bucket.tokens <= bucket.burst
        assert bucket.tokens == pytest.approx(50_000.0)  # on-hand preserved


# ----------------------------------------------------------------------
# Regression: RTTEstimator.backoff vs the max_rto clamp
# ----------------------------------------------------------------------
class TestRTTBackoffClamp:
    def test_backoff_never_below_one_when_rto_exceeds_max(self):
        est = RTTEstimator(initial_rto=1.0, min_rto=0.2, max_rto=60.0)
        est.sample(100.0)  # srtt=100 -> _rto = 300 > max_rto
        assert est._rto > est.max_rto
        assert est.rto == est.max_rto
        before = est.rto
        est.backoff()
        assert est._backoff >= 1.0
        assert est.rto >= before  # a timeout must never shorten the wait

    def test_backoff_sample_backoff_sequence(self):
        est = RTTEstimator(initial_rto=1.0, min_rto=0.2, max_rto=60.0)
        est.sample(100.0)
        est.backoff()
        est.backoff()
        assert est.rto == est.max_rto
        est.sample(0.1)  # recovery: fresh measurement clears the backoff
        assert est._backoff == 1.0
        for _ in range(50):  # EWMA needs a few windows to converge back
            est.sample(0.1)
        normal = est.rto
        assert normal < est.max_rto
        est.backoff()
        assert est.rto == pytest.approx(min(est.max_rto, 2.0 * normal))

    def test_repeated_backoff_doubles_then_caps(self):
        est = RTTEstimator(initial_rto=1.0, min_rto=0.2, max_rto=60.0)
        est.sample(0.5)
        waits = []
        for _ in range(10):
            est.backoff()
            assert est._backoff >= 1.0
            waits.append(est.rto)
        assert waits == sorted(waits)  # monotone non-decreasing
        assert waits[-1] == est.max_rto
