"""Unit tests for the discrete-event kernel."""

from __future__ import annotations

import pytest

from repro.sim import (
    EventQueue,
    PeriodicTask,
    RngRegistry,
    SimulationError,
    Simulator,
    Timer,
    derive_seed,
)


class TestEventQueue:
    def test_pops_in_time_order(self):
        q = EventQueue()
        fired = []
        q.push(2.0, fired.append, (2,))
        q.push(1.0, fired.append, (1,))
        q.push(3.0, fired.append, (3,))
        while q:
            e = q.pop()
            e.callback(*e.args)
        assert fired == [1, 2, 3]

    def test_same_time_fires_in_scheduling_order(self):
        q = EventQueue()
        order = []
        q.push(1.0, order.append, ("first",))
        q.push(1.0, order.append, ("second",))
        e = q.pop()
        e.callback(*e.args)
        e = q.pop()
        e.callback(*e.args)
        assert order == ["first", "second"]

    def test_cancelled_events_are_skipped(self):
        q = EventQueue()
        e1 = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        q.cancel(e1)
        assert len(q) == 1
        popped = q.pop()
        assert popped.time == 2.0

    def test_cancel_is_idempotent(self):
        q = EventQueue()
        e = q.push(1.0, lambda: None)
        q.cancel(e)
        q.cancel(e)
        assert len(q) == 0

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        e1 = q.push(1.0, lambda: None)
        q.push(5.0, lambda: None)
        q.cancel(e1)
        assert q.peek_time() == 5.0


class TestSimulator:
    def test_clock_advances_to_event_times(self):
        sim = Simulator()
        times = []
        sim.schedule(1.5, lambda: times.append(sim.now))
        sim.schedule(0.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [0.5, 1.5]

    def test_run_until_advances_clock_even_when_idle(self):
        sim = Simulator()
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_run_until_does_not_fire_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(True))
        sim.run(until=4.0)
        assert fired == []
        sim.run(until=6.0)
        assert fired == [True]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(2.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_stop_halts_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, sim.stop)
        sim.schedule(2.0, lambda: fired.append(True))
        sim.run()
        assert fired == []
        assert sim.now == 1.0

    def test_events_scheduled_during_run_fire(self):
        sim = Simulator()
        fired = []

        def first():
            sim.schedule(1.0, lambda: fired.append("nested"))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == ["nested"]
        assert sim.now == 2.0

    def test_cancel_none_is_noop(self):
        sim = Simulator()
        sim.cancel(None)

    def test_call_soon_fires_at_current_time(self):
        sim = Simulator()
        seen = []

        def outer():
            sim.call_soon(lambda: seen.append(sim.now))

        sim.schedule(3.0, outer)
        sim.run()
        assert seen == [3.0]


class TestTimer:
    def test_fires_after_delay(self):
        sim = Simulator()
        fired = []
        t = Timer(sim, lambda: fired.append(sim.now))
        t.start(2.0)
        sim.run()
        assert fired == [2.0]

    def test_restart_supersedes(self):
        sim = Simulator()
        fired = []
        t = Timer(sim, lambda: fired.append(sim.now))
        t.start(2.0)
        sim.schedule(1.0, lambda: t.start(5.0))
        sim.run()
        assert fired == [6.0]

    def test_cancel_prevents_firing(self):
        sim = Simulator()
        fired = []
        t = Timer(sim, lambda: fired.append(True))
        t.start(2.0)
        t.cancel()
        sim.run()
        assert fired == []
        assert not t.armed

    def test_armed_and_expiry(self):
        sim = Simulator()
        t = Timer(sim, lambda: None)
        assert not t.armed
        t.start(4.0)
        assert t.armed
        assert t.expires_at == 4.0


class TestPeriodicTask:
    def test_ticks_at_interval(self):
        sim = Simulator()
        ticks = []
        task = PeriodicTask(sim, 1.0, lambda: ticks.append(sim.now)).start()
        sim.run(until=3.5)
        task.stop()
        assert ticks == [1.0, 2.0, 3.0]

    def test_stop_from_callback(self):
        sim = Simulator()
        ticks = []

        def cb():
            ticks.append(sim.now)
            if len(ticks) == 2:
                task.stop()

        task = PeriodicTask(sim, 1.0, cb).start()
        sim.run(until=10)
        assert ticks == [1.0, 2.0]

    def test_first_delay_override(self):
        sim = Simulator()
        ticks = []
        PeriodicTask(sim, 2.0, lambda: ticks.append(sim.now)).start(first_delay=0.5)
        sim.run(until=5)
        assert ticks == [0.5, 2.5, 4.5]

    def test_invalid_interval_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PeriodicTask(sim, 0.0, lambda: None)


class TestRng:
    def test_streams_are_deterministic(self):
        r1 = RngRegistry(7)
        r2 = RngRegistry(7)
        assert [r1.stream("x").random() for _ in range(5)] == [
            r2.stream("x").random() for _ in range(5)
        ]

    def test_streams_are_independent(self):
        reg = RngRegistry(7)
        a = reg.stream("a")
        b = reg.stream("b")
        assert [a.random() for _ in range(3)] != [b.random() for _ in range(3)]

    def test_same_name_same_stream_object(self):
        reg = RngRegistry(0)
        assert reg.stream("x") is reg.stream("x")

    def test_derive_seed_varies_with_name_and_seed(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_reseed_clears_streams(self):
        reg = RngRegistry(1)
        first = reg.stream("x").random()
        reg.reseed(1)
        assert reg.stream("x").random() == first
