"""Tests for the extension features: endgame mode, bulk apps, seed-LIHD."""

from __future__ import annotations

import pytest

from repro.apps import BulkSender, BulkServer, ForegroundDownload
from repro.bittorrent import Bitfield, ClientConfig, PieceManager, make_torrent
from repro.bittorrent.swarm import SwarmScenario
from repro.wp2p import seed_lihd

from tests.helpers import TwoHostNet


class TestEndgameManager:
    def make(self, pieces=2):
        torrent = make_torrent("f", total_size=pieces * 49_152, piece_length=49_152)
        return torrent, PieceManager(torrent)

    def test_all_remaining_requested_detection(self):
        from repro.bittorrent import SequentialSelector, SelectionContext
        import random

        torrent, mgr = self.make()
        ctx = SelectionContext({}, 0.0, 0.0, random.Random(0))
        full = Bitfield.full(torrent.num_pieces)
        assert not mgr.all_remaining_requested()
        while True:
            req = mgr.next_request(full, SequentialSelector(), ctx)
            if req is None:
                break
            mgr.mark_requested(req[0], req[1], 0.0)
        assert mgr.all_remaining_requested()

    def test_endgame_candidates_respect_bitfield(self):
        torrent, mgr = self.make(pieces=2)
        from repro.bittorrent import SequentialSelector, SelectionContext
        import random

        ctx = SelectionContext({}, 0.0, 0.0, random.Random(0))
        full = Bitfield.full(torrent.num_pieces)
        req = mgr.next_request(full, SequentialSelector(), ctx)
        mgr.mark_requested(req[0], req[1], 0.0)
        only_other = Bitfield(torrent.num_pieces, have=[1])
        assert mgr.endgame_candidates(only_other) == []
        has_it = Bitfield(torrent.num_pieces, have=[req[0]])
        assert (req[0], req[1], req[2]) in mgr.endgame_candidates(has_it)

    def test_complete_manager_not_in_endgame(self):
        torrent, mgr = self.make(pieces=1)
        for begin, length in torrent.block_offsets(0):
            mgr.receive_block(0, begin, length)
        assert not mgr.all_remaining_requested()


class TestEndgameClient:
    def test_endgame_download_completes_with_duplicates_cancelled(self):
        config = ClientConfig(endgame=True)
        sc = SwarmScenario(seed=71, file_size=512 * 1024, piece_length=65_536)
        # one very slow seed plus a fast one: without endgame the last
        # blocks can be hostage to the slow connection
        sc.add_wired_peer("slow", complete=True, up_rate=5_000)
        sc.add_wired_peer("fast", complete=True, up_rate=200_000)
        leech = sc.add_wired_peer("leech", config=config)
        sc.start_all()
        assert sc.run_until_complete(["leech"], timeout=600)
        # duplicate arrivals are possible but bounded
        assert leech.client.manager.duplicate_blocks <= 40

    def test_endgame_off_by_default(self):
        assert ClientConfig().endgame is False


class TestBulkApps:
    def test_bulk_server_and_download(self):
        net = TwoHostNet()
        server = BulkServer(net.sim, net.a, port=8080)
        download = ForegroundDownload(net.sim, net.b, net.a.ip, 8080)
        net.sim.run(until=10.0)
        assert download.bytes_received > 0
        assert download.rate() > 0
        download.stop()
        server.stop()

    def test_bulk_sender_stops(self):
        net = TwoHostNet()
        received = []

        def accept(conn):
            conn.on_message = lambda m: received.append(m.wire_length)

        net.stack_b.listen(9000, accept)
        conn = net.stack_a.connect(net.b.ip, 9000)
        sender = BulkSender(net.sim, conn).start()
        net.sim.run(until=3.0)
        sender.stop()
        count = len(received)
        queued = sender.bytes_queued
        net.sim.run(until=10.0)
        assert sender.bytes_queued == queued  # nothing more queued
        assert len(received) >= count


class TestSeedLIHD:
    def build(self, with_lihd: bool, seed: int = 72):
        """A mobile seed sharing its wireless channel with a foreground
        download, plus hungry fixed leeches."""
        sc = SwarmScenario(seed=seed, file_size=8 * 1024 * 1024, piece_length=65_536)
        for i in range(3):
            sc.add_wired_peer(f"f{i}", down_rate=500_000, up_rate=48_000)
        mob = sc.add_wireless_peer("mobseed", complete=True, rate=120_000)
        # foreground web server on its own wired host
        from repro.net import Host, attach_wired_host
        from repro.tcp import TCPStack

        web = Host(sc.sim, "webserver")
        TCPStack(sc.sim, web)
        attach_wired_host(sc.sim, web, sc.internet, sc.alloc.allocate(),
                          down_rate=1_000_000, up_rate=1_000_000)
        server = BulkServer(sc.sim, web, port=8080)
        download = ForegroundDownload(sc.sim, mob.host, web.ip, 8080)
        controller = None
        if with_lihd:
            controller = seed_lihd(
                mob.client, download.rate, u_max=100_000.0, interval=3.0
            )
            controller.start()
        sc.start_all()
        sc.run(until=90.0)
        return download, mob, controller

    def test_seed_lihd_protects_foreground_download(self):
        unprotected, _, _ = self.build(with_lihd=False)
        protected, mob, controller = self.build(with_lihd=True)
        assert controller is not None and controller.history
        # the controller must deliver a clearly better foreground download
        assert protected.bytes_received > unprotected.bytes_received * 1.15

    def test_seed_still_uploads_under_lihd(self):
        _, mob, controller = self.build(with_lihd=True)
        assert mob.client.uploaded.total > 0
        assert controller.u_cur >= controller.u_floor
