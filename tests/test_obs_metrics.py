"""Unit tests for the unified metrics layer (repro.obs.metrics)."""

from __future__ import annotations

import math

import pytest

from repro.obs.metrics import (
    Counter,
    EwmaRateMeter,
    Gauge,
    Histogram,
    MetricsRegistry,
    WindowRateMeter,
)


class FakeClock:
    """A manually advanced clock for driving metrics in unit tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        a = reg.counter("tcp.retransmissions")
        b = reg.counter("tcp.retransmissions")
        assert a is b
        assert len(reg) == 1

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_names_sorted_and_contains(self):
        reg = MetricsRegistry()
        reg.gauge("b")
        reg.counter("a")
        assert reg.names() == ["a", "b"]
        assert "a" in reg and "missing" not in reg
        assert reg.get("missing") is None

    def test_shared_clock(self):
        clock = FakeClock()
        reg = MetricsRegistry(clock=clock)
        counter = reg.counter("c", record_history=True)
        clock.now = 3.0
        counter.add(10)
        assert counter.history == [(3.0, 10)]

    def test_snapshot_and_rows(self):
        reg = MetricsRegistry()
        reg.counter("a").add(2)
        reg.gauge("g").set(7)
        snap = reg.snapshot()
        assert snap["a"] == {"total": 2.0}
        assert snap["g"]["value"] == 7
        rows = reg.rows()
        assert [(name, kind) for name, kind, _ in rows] == [
            ("a", "counter"), ("g", "gauge"),
        ]

    def test_all_factory_kinds(self):
        reg = MetricsRegistry()
        assert reg.histogram("h").kind == "histogram"
        assert reg.ewma("e").kind == "ewma"
        assert reg.window_rate("w").kind == "window_rate"
        assert reg.series("s").kind == "series"


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("queue")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12
        assert g.updates == 3

    def test_history(self):
        clock = FakeClock()
        g = Gauge("cwnd", clock=clock, record_history=True)
        g.set(1)
        clock.now = 2.0
        g.set(4)
        assert g.history == [(0.0, 1), (2.0, 4)]


class TestHistogram:
    def test_percentiles_interpolated(self):
        h = Histogram("lat")
        for v in [10, 20, 30, 40, 50, 60, 70, 80, 90, 100]:
            h.observe(v)
        assert h.percentile(0) == 10
        assert h.percentile(100) == 100
        assert h.percentile(50) == 55  # midpoint of 50 and 60
        assert h.percentile(25) == pytest.approx(32.5)
        assert h.min == 10 and h.max == 100

    def test_mean_count_sum(self):
        h = Histogram()
        h.observe(1)
        h.observe(3)
        assert h.count == 2
        assert h.sum == 4
        assert h.mean == 2

    def test_empty_and_bad_percentile(self):
        h = Histogram("x")
        with pytest.raises(ValueError):
            h.percentile(50)
        h.observe(1)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_single_observation(self):
        h = Histogram()
        h.observe(42)
        assert h.percentile(73) == 42

    def test_lazy_resort_after_new_data(self):
        h = Histogram()
        h.observe(5)
        assert h.percentile(50) == 5
        h.observe(1)  # arrives after a sort; must re-sort lazily
        assert h.percentile(0) == 1

    def test_snapshot_empty(self):
        assert Histogram().snapshot() == {"count": 0}


class TestEwmaRateMeter:
    def test_converges_to_constant_rate(self):
        clock = FakeClock()
        m = EwmaRateMeter("rate", clock=clock, tau=5.0)
        # 100 units every second -> should approach 100/s.
        for step in range(1, 60):
            clock.now = float(step)
            m.add(100)
        assert m.rate() == pytest.approx(100.0, rel=0.05)
        assert m.total == 100 * 59

    def test_decays_when_idle(self):
        clock = FakeClock()
        m = EwmaRateMeter(clock=clock, tau=5.0)
        for step in range(1, 30):
            clock.now = float(step)
            m.add(100)
        busy = m.rate()
        clock.now += 5.0  # one time constant of idleness
        assert m.rate() == pytest.approx(busy * math.exp(-1.0), rel=0.01)
        clock.now += 100.0
        assert m.rate() < 1e-6

    def test_first_sample_establishes_baseline(self):
        clock = FakeClock()
        m = EwmaRateMeter(clock=clock)
        assert m.rate() == 0.0
        m.add(1000)  # no elapsed interval yet
        assert m.rate() == 0.0

    def test_rejects_bad_tau(self):
        with pytest.raises(ValueError):
            EwmaRateMeter(tau=0)


class TestWindowRateMeter:
    def test_window_semantics(self):
        clock = FakeClock()
        m = WindowRateMeter(clock=clock, window=10.0)
        m.add(1000)
        clock.now = 5.0
        m.add(1000)
        clock.now = 10.0
        assert m.rate() == pytest.approx(200.0, rel=0.05)
        clock.now = 100.0
        assert m.rate() == 0.0
        assert m.total_bytes == 2000


class TestProbesCompatShims:
    """sim.probes must remain a thin facade over the obs layer."""

    def test_probe_classes_are_obs_backed(self):
        from repro import obs
        from repro.sim import probes

        assert issubclass(probes.Counter, obs.Counter)
        assert issubclass(probes.RateMeter, obs.WindowRateMeter)
        assert probes.TimeSeries is obs.TimeSeries
        assert probes.mean is obs.mean

    def test_probe_counter_tracks_sim_clock(self):
        from repro.sim import Counter, Simulator

        sim = Simulator()
        c = Counter(sim, "x", record_history=True)
        sim.schedule(2.5, lambda: c.add(7))
        sim.run()
        assert c.history == [(2.5, 7.0)]
        assert c.name == "x"

    def test_sim_metrics_registry_shares_clock(self):
        from repro.sim import Simulator

        sim = Simulator()
        counter = sim.metrics.counter("events", record_history=True)
        sim.schedule(1.0, lambda: counter.add(1))
        sim.run()
        assert counter.history == [(1.0, 1.0)]
        assert sim.metrics.counter("events") is counter
