"""Integration tests: full swarms over the simulated network."""

from __future__ import annotations

import pytest

from repro.bittorrent import ClientConfig, SequentialSelector
from repro.bittorrent.swarm import SwarmScenario


class TestBasicSwarm:
    def test_single_leech_completes(self):
        sc = SwarmScenario(seed=1, file_size=512 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True)
        sc.add_wired_peer("leech")
        sc.start_all()
        assert sc.run_until_complete(["leech"], timeout=300)
        assert sc["leech"].client.downloaded.total == 512 * 1024

    def test_leeches_exchange_pieces(self):
        sc = SwarmScenario(seed=2, file_size=1024 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True, up_rate=100_000)
        sc.add_wired_peer("l1")
        sc.add_wired_peer("l2")
        sc.start_all()
        assert sc.run_until_complete(["l1", "l2"], timeout=600)
        # with a slow seed, leech-to-leech upload must have happened
        assert sc["l1"].client.uploaded.total + sc["l2"].client.uploaded.total > 0

    def test_completed_leech_seeds_others(self):
        sc = SwarmScenario(seed=3, file_size=512 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True)
        sc.add_wired_peer("early")
        sc.start_all()
        assert sc.run_until_complete(["early"], timeout=300)
        late = sc.add_wired_peer("late")
        late.client.start()
        assert sc.run_until_complete(["late"], timeout=300)
        assert sc["early"].client.uploaded.total > 0

    def test_completion_time_recorded(self):
        sc = SwarmScenario(seed=4, file_size=256 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True)
        sc.add_wired_peer("leech")
        sc.start_all()
        sc.run_until_complete(["leech"], timeout=300)
        assert sc["leech"].client.completion_time is not None
        assert 0 < sc["leech"].client.completion_time <= sc.sim.now

    def test_wireless_leech_completes(self):
        sc = SwarmScenario(seed=5, file_size=512 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True)
        sc.add_wireless_peer("mob", rate=100_000, ber=1e-6)
        sc.start_all()
        assert sc.run_until_complete(["mob"], timeout=600)

    def test_sequential_selector_downloads_in_order(self):
        sc = SwarmScenario(seed=6, file_size=512 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True)
        sc.add_wired_peer("leech", selector=SequentialSelector())
        sc.start_all()
        assert sc.run_until_complete(["leech"], timeout=300)
        order = sc["leech"].client.manager.completion_order
        assert order == sorted(order)

    def test_rarest_first_spreads_pieces(self):
        """With several leeches, rarest-first should not fetch in file order."""
        sc = SwarmScenario(seed=7, file_size=1024 * 1024, piece_length=32_768)
        sc.add_wired_peer("seed", complete=True, up_rate=100_000)
        for i in range(3):
            sc.add_wired_peer(f"l{i}")
        sc.start_all()
        assert sc.run_until_complete(timeout=900)
        order = sc["l0"].client.manager.completion_order
        assert order != sorted(order)


class TestChoking:
    def test_choker_limits_unchoked_peers(self):
        config = ClientConfig(unchoke_slots=1, optimistic_every=3)
        sc = SwarmScenario(seed=8, file_size=2 * 1024 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True, up_rate=100_000, config=config)
        for i in range(4):
            sc.add_wired_peer(f"l{i}")
        sc.start_all()
        sc.run(until=30.0)
        seed_client = sc["seed"].client
        unchoked = [p for p in seed_client.connected_peers() if not p.am_choking]
        assert 0 < len(unchoked) <= 2  # 1 slot + optimistic

    def test_upload_limit_enforced(self):
        config = ClientConfig(upload_limit=20_000.0)
        sc = SwarmScenario(seed=9, file_size=1024 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True, config=config)
        sc.add_wired_peer("leech")
        sc.start_all()
        sc.run(until=20.0)
        uploaded = sc["seed"].client.uploaded.total
        # bucket burst is one second of rate; allow slack
        assert uploaded <= 20_000.0 * 21

    def test_zero_upload_leech_still_served_by_seed_optimistic(self):
        config = ClientConfig(upload_limit=0.0)
        sc = SwarmScenario(seed=10, file_size=256 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True)
        sc.add_wired_peer("freerider", config=config)
        sc.start_all()
        assert sc.run_until_complete(["freerider"], timeout=300)


class TestMobilitySwarm:
    def test_default_client_restarts_with_new_id(self):
        sc = SwarmScenario(seed=11, file_size=2 * 1024 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True)
        mob = sc.add_wireless_peer("mob", rate=150_000)
        sc.add_mobility(mob, interval=20.0, downtime=1.0)
        sc.start_all()
        ids = {mob.client.peer_id}
        for _ in range(4):
            sc.run(until=sc.sim.now + 15.0)
            ids.add(mob.client.peer_id)
        assert len(ids) >= 2
        assert mob.client.task_restarts >= 1

    def test_download_survives_handoffs(self):
        sc = SwarmScenario(seed=12, file_size=1024 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True)
        mob = sc.add_wireless_peer("mob", rate=200_000)
        sc.add_mobility(mob, interval=30.0, downtime=1.0)
        sc.start_all()
        assert sc.run_until_complete(["mob"], timeout=900)

    def test_fixed_peer_keeps_stale_connection_attempts(self):
        """After the mobile moves, fixed peers' connections to the old
        address strand and die by RTO — the §3.5 stranding behaviour."""
        sc = SwarmScenario(seed=13, file_size=4 * 1024 * 1024, piece_length=65_536)
        sc.add_wired_peer("fixed")
        mob = sc.add_wireless_peer("mobseed", complete=True, rate=200_000)
        sc.start_all()
        sc.run(until=15.0)
        fixed = sc["fixed"].client
        assert len(fixed.connected_peers()) >= 1
        from repro.net.mobility import disconnect_host, reconnect_host

        disconnect_host(mob.host, sc.internet, sc.alloc)
        reconnect_host(mob.host, sc.internet, sc.alloc)
        # stop the mobile's own recovery so only the fixed side acts
        mob.client.stop(announce=False)
        sc.run(until=sc.sim.now + 5.0)
        assert len(sc.internet.unroutable) > 0
