"""Unit tests for the LIHD control law with a scripted rate source.

These pin down the Figure 6 pseudo-code exactly: linear increase on
improvement, history-weighted decrease on stagnation, initialization at
Umax/2, and the bounds.
"""

from __future__ import annotations

import pytest

from repro.bittorrent.swarm import SwarmScenario
from repro.wp2p import LIHDController, seed_lihd


def make_client(seed=90):
    sc = SwarmScenario(seed=seed, file_size=256 * 1024, piece_length=65_536)
    handle = sc.add_wired_peer("x")
    return sc, handle.client


class ScriptedRate:
    """A rate source that replays a fixed schedule of window rates."""

    def __init__(self, values):
        self.values = list(values)
        self.calls = 0

    def __call__(self) -> float:
        value = self.values[min(self.calls, len(self.values) - 1)]
        self.calls += 1
        return value


class TestLIHDControlLaw:
    def run_windows(self, sc, controller, n):
        controller.start()
        sc.run(until=sc.sim.now + controller._task.interval * n + 0.001)

    def test_initialises_at_half_umax(self):
        sc, client = make_client()
        c = LIHDController(client, u_max=80_000.0, rate_source=ScriptedRate([0]))
        assert c.u_cur == 40_000.0

    def test_linear_increase_on_improvement(self):
        sc, client = make_client()
        # rates strictly increasing: after the first nonzero window, every
        # update should add alpha
        rates = ScriptedRate([100, 200, 300, 400, 500])
        c = LIHDController(client, u_max=200_000.0, alpha=1_000.0, beta=1_000.0,
                           interval=1.0, rate_source=rates)
        self.run_windows(sc, c, 5)
        # first window only records d_prev; each following one adds alpha
        assert c.u_cur == pytest.approx(100_000.0 + 4 * 1_000.0)
        assert c._dec_count == 0

    def test_history_based_decrease_accelerates(self):
        sc, client = make_client()
        # improvement once, then stagnation: decrements grow 1x, 2x, 3x beta
        rates = ScriptedRate([100, 200, 200, 200, 200])
        c = LIHDController(client, u_max=200_000.0, alpha=1_000.0, beta=1_000.0,
                           interval=1.0, rate_source=rates)
        self.run_windows(sc, c, 5)
        expected = 100_000.0 + 1_000.0 - (1 + 2 + 3) * 1_000.0
        assert c.u_cur == pytest.approx(expected)

    def test_improvement_resets_decrement_counter(self):
        sc, client = make_client()
        rates = ScriptedRate([100, 50, 40, 200, 300])
        c = LIHDController(client, u_max=200_000.0, alpha=1_000.0, beta=1_000.0,
                           interval=1.0, rate_source=rates)
        self.run_windows(sc, c, 5)
        assert c._dec_count == 0

    def test_floor_and_ceiling_respected(self):
        sc, client = make_client()
        rates = ScriptedRate([100] + [50] * 50)  # perpetual stagnation
        c = LIHDController(client, u_max=20_000.0, alpha=1_000.0, beta=5_000.0,
                           interval=1.0, u_floor=3_000.0, rate_source=rates)
        self.run_windows(sc, c, 30)
        assert c.u_cur == pytest.approx(3_000.0)

        rates_up = ScriptedRate([100] + list(range(200, 20_000, 100)))
        c2 = LIHDController(client, u_max=20_000.0, alpha=50_000.0, beta=1_000.0,
                            interval=1.0, rate_source=rates_up)
        self.run_windows(sc, c2, 10)
        assert c2.u_cur == pytest.approx(20_000.0)

    def test_zero_first_window_records_baseline_only(self):
        sc, client = make_client()
        rates = ScriptedRate([0, 0, 100, 200])
        c = LIHDController(client, u_max=100_000.0, alpha=1_000.0, beta=1_000.0,
                           interval=1.0, rate_source=rates)
        self.run_windows(sc, c, 4)
        # d_prev stayed 0 through the zero windows (Figure 6 line 4 guard),
        # so only the final improving window changed the rate
        assert c.u_cur == pytest.approx(50_000.0 + 1_000.0)

    def test_upload_cap_applied_to_bucket(self):
        sc, client = make_client()
        rates = ScriptedRate([100, 200])
        c = LIHDController(client, u_max=60_000.0, interval=1.0, rate_source=rates)
        c.start()
        assert client.upload_bucket.rate == pytest.approx(30_000.0)

    def test_stop_halts_updates(self):
        sc, client = make_client()
        rates = ScriptedRate([100, 200, 300])
        c = LIHDController(client, u_max=60_000.0, interval=1.0, rate_source=rates)
        c.start()
        c.stop()
        sc.run(until=10.0)
        assert rates.calls == 0

    def test_seed_lihd_factory_wires_rate_source(self):
        sc, client = make_client()
        rates = ScriptedRate([100, 200, 300])
        c = seed_lihd(client, rates, u_max=40_000.0, interval=1.0)
        self.run_windows(sc, c, 3)
        assert rates.calls == 3
        assert c.u_cur > 20_000.0  # improving foreground -> raised cap

    def test_history_records_every_window(self):
        sc, client = make_client()
        rates = ScriptedRate([100, 200, 300])
        c = LIHDController(client, u_max=40_000.0, interval=1.0, rate_source=rates)
        self.run_windows(sc, c, 3)
        assert len(c.history) == 3
        times = [t for t, _, _ in c.history]
        assert times == sorted(times)
