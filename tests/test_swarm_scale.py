"""Scale and churn tests: larger swarms, flash crowds, staggered arrivals."""

from __future__ import annotations

import pytest

from repro.bittorrent import ClientConfig
from repro.bittorrent.swarm import SwarmScenario


class TestScale:
    def test_twenty_peer_swarm_completes(self):
        sc = SwarmScenario(seed=300, file_size=1024 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True, up_rate=100_000)
        for i in range(19):
            sc.add_wired_peer(f"l{i}", up_rate=60_000)
        sc.start_all()
        assert sc.run_until_complete(timeout=900)
        # pieces flowed between leeches, not only from the seed
        leech_upload = sum(sc[f"l{i}"].client.uploaded.total for i in range(19))
        assert leech_upload > sc.torrent.total_size  # replicated many times

    def test_flash_crowd_on_single_seed(self):
        """Ten peers arrive within a second of each other at one seed."""
        sc = SwarmScenario(seed=301, file_size=512 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True, up_rate=80_000)
        for i in range(10):
            sc.add_wired_peer(f"l{i}")
        sc.start_all(stagger=0.1)
        assert sc.run_until_complete(timeout=900)

    def test_staggered_arrivals_all_complete(self):
        sc = SwarmScenario(seed=302, file_size=512 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True, up_rate=60_000)
        names = []
        for i in range(6):
            handle = sc.add_wired_peer(f"l{i}")
            names.append(f"l{i}")
            sc.sim.schedule(i * 20.0, handle.client.start)
        sc["seed"].client.start()
        assert sc.run_until_complete(names, timeout=1200)

    def test_seed_departure_after_full_replication(self):
        """Once one leech completes, the original seed can leave and the
        swarm still self-sustains."""
        sc = SwarmScenario(seed=303, file_size=512 * 1024, piece_length=65_536)
        seed = sc.add_wired_peer("seed", complete=True, up_rate=150_000)
        first = sc.add_wired_peer("first", down_rate=500_000, up_rate=100_000)
        late_names = []
        for i in range(3):
            sc.add_wired_peer(f"late{i}")
            late_names.append(f"late{i}")
        sc.start_all()
        assert sc.run_until_complete(["first"], timeout=600)
        seed.client.stop()
        from repro.net.mobility import disconnect_host

        disconnect_host(seed.host, sc.internet, sc.alloc)
        assert sc.run_until_complete(late_names, timeout=900)

    def test_many_mobile_peers_simultaneously(self):
        sc = SwarmScenario(seed=304, file_size=512 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True, up_rate=150_000)
        names = []
        for i in range(4):
            handle = sc.add_wireless_peer(f"m{i}", rate=200_000)
            sc.add_mobility(handle, interval=40.0, downtime=1.0, jitter=8.0)
            names.append(f"m{i}")
        sc.start_all()
        assert sc.run_until_complete(names, timeout=1200)
