"""Smoke/shape tests for the experiment harness (fast variants).

The full campaigns with paper-shaped assertions live in ``benchmarks/``;
these tests check that every experiment runs end-to-end at reduced scale
and produces structurally sound results.
"""

from __future__ import annotations

import pytest

from repro.analysis import ExperimentResult, Series
from repro.experiments import (
    cluster_drops,
    drop_response_ratio,
    fig2a,
    fig2bc,
    fig4bc,
    fig8a,
    fig9ab,
    playability_run,
    run_transfer,
)


class TestSeriesContainers:
    def test_series_length_check(self):
        with pytest.raises(ValueError):
            Series("x", [1, 2], [1])

    def test_y_at_and_peak(self):
        s = Series("s", [1, 2, 3], [5.0, 9.0, 7.0])
        assert s.y_at(2) == 9.0
        assert s.peak_x == 2
        assert s.mean_y() == pytest.approx(7.0)
        with pytest.raises(KeyError):
            s.y_at(99)

    def test_result_table_renders(self):
        r = ExperimentResult(
            figure="Fig X", title="T", x_label="x", y_label="y",
            series=[Series("a", [1, 2], [3.0, 4.0])],
            paper_expectation="up and to the right",
        )
        text = r.table()
        assert "Fig X" in text
        assert "paper:" in text
        assert "3.00" in text

    def test_result_get_unknown_label(self):
        r = ExperimentResult("F", "T", "x", "y")
        with pytest.raises(KeyError):
            r.get("nope")


class TestRawTransferHarness:
    def test_unidirectional_transfer_measures_down(self):
        stats = run_transfer(seed=1, ber=0.0, bidirectional=False, duration=10.0)
        assert stats.delivered_down > 0
        assert stats.delivered_up == 0
        assert stats.down_rate_kbps > 0

    def test_bidirectional_transfer_measures_both(self):
        stats = run_transfer(seed=1, ber=0.0, bidirectional=True, duration=10.0)
        assert stats.delivered_down > 0
        assert stats.delivered_up > 0

    def test_ber_reduces_throughput(self):
        clean = run_transfer(seed=2, ber=0.0, bidirectional=False, duration=15.0)
        lossy = run_transfer(seed=2, ber=2e-5, bidirectional=False, duration=15.0)
        assert lossy.down_rate_kbps < clean.down_rate_kbps


class TestFig2Helpers:
    def test_cluster_drops(self):
        assert cluster_drops([1.0, 1.1, 1.2, 5.0, 5.05, 9.0], min_gap=1.0) == [1.0, 5.0, 9.0]
        assert cluster_drops([]) == []

    def test_drop_response_ratio_empty(self):
        s = Series("s", [], [])
        assert drop_response_ratio(s, [1.0]) is None

    def test_fig2a_mini(self):
        result = fig2a(bers=(0.0, 2e-5), runs=1, duration=10.0)
        assert result.get("Uni-TCP").y_at(0.0) > result.get("Uni-TCP").y_at(2e-5)

    def test_fig2bc_mini(self):
        result = fig2bc(duration=10.0)
        assert len(result.get("Uni-directional")) > 10
        assert result.parameters["bi_drop_times"]


class TestPlayabilityHarness:
    def test_playability_run_returns_full_curve(self):
        curve = playability_run(1, num_pieces=10)
        assert curve[0] == (0.0, 0.0)
        assert curve[-1] == (100.0, 100.0)

    def test_fig4bc_mini(self):
        result = fig4bc(num_pieces=10, runs=2)
        series = result.series[0]
        assert series.y_at(0.0) == 0.0
        assert series.y_at(100.0) == 100.0

    def test_fig9ab_mini(self):
        result = fig9ab(num_pieces=10, runs=2)
        assert set(result.labels()) == {"Default P2P", "wP2P"}
        # MF at least matches rarest-first mid-download on average
        assert result.get("wP2P").y_at(50.0) >= result.get("Default P2P").y_at(50.0) - 10


class TestFig8Mini:
    def test_fig8a_mini_runs(self):
        result = fig8a(bers=(1e-5,), runs=1, duration=15.0)
        assert result.get("Default P2P").y[0] > 0
        assert result.get("wP2P").y[0] > 0


class TestFigXErasureMini:
    def test_packet_cell_variants_share_volume_fairness(self):
        from repro.experiments.figx_erasure import erasure_run

        rep = erasure_run(
            seed=1300, variant="replication", intensity=0.0,
            mobile_fraction=0.5, duration=240.0, horizon=120.0,
            source_kib=256,
        )
        coded = erasure_run(
            seed=1300, variant="coded", intensity=0.0,
            mobile_fraction=0.5, duration=240.0, horizon=120.0,
            source_kib=256,
        )
        for cell in (rep, coded):
            assert cell["survival"] == 1.0
            assert cell["completion"] is not None
            assert cell["faults"] == 0.0

    def test_fluid_sweep_gate_shape(self):
        import repro.experiments  # noqa: F401

        from repro.runner import run_scenario

        result = run_scenario(
            "figx_erasure", {"runs": 1}, backend="fluid",
        )
        gate = result.parameters["gate"]
        assert gate["intensities"][0] == 0.0
        assert gate["advantage"][0] == 0.0
        advantage = gate["advantage"]
        assert all(b >= a for a, b in zip(advantage, advantage[1:]))
        assert gate["coded_at_gate"] >= gate["replication_at_gate"]
        assert len(result.series) == 3

    def test_unknown_variant_rejected(self):
        from repro.experiments.figx_erasure import erasure_run

        with pytest.raises(ValueError, match="variant"):
            erasure_run(
                seed=1, variant="parity", intensity=0.0,
                mobile_fraction=0.5, duration=10.0, horizon=10.0,
            )
