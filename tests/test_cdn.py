"""Tests for the CDN tier (repro.cdn): catalogs, demand, origin,
multi-swarm scenarios, the fluid surrogate, and the workload axis.

The load-bearing contracts:

* eager validation — malformed catalog/demand/origin specs raise
  ``ValueError`` at parse time (and ``SystemExit`` at the CLI), never
  inside a worker mid-campaign;
* seeded determinism — a demand trace (and a whole packet cell) is a
  pure function of (spec, seed), so serial and ``--jobs N`` runs are
  bit-identical and the cache can address results by content;
* digest stability — the ``workload`` spec axis folds into hashes only
  when non-default, so every pre-CDN digest is byte-identical.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro import cdn
from repro.cdn import (
    Catalog,
    CdnScenario,
    ZipfDemand,
    cdn_fluid_cell,
    normalize_catalog,
    normalize_demand,
    normalize_origin,
    normalize_workload,
    rank_bands,
    zipf_weights,
)
from repro.cdn.demand import cycle_factor, mean_cycle_factor
from repro.runner import Runner
from repro.runner.spec import ScenarioSpec, canonical_json, cell_digest
from repro.scale.assets import AssetClassParams, asset_class_outcome


@pytest.fixture(autouse=True)
def _no_ambient_workload():
    cdn.uninstall()
    yield
    cdn.uninstall()


# ----------------------------------------------------------------------
# Catalog
# ----------------------------------------------------------------------
class TestCatalog:
    def test_normalize_defaults_and_forms(self):
        assert normalize_catalog(None) == {
            "assets": 4, "size_kib": 256, "piece_kib": 16,
        }
        assert normalize_catalog(8)["assets"] == 8
        parsed = normalize_catalog("assets:8,size_kib:512,piece_kib:32")
        assert parsed == {"assets": 8, "size_kib": 512, "piece_kib": 32}
        assert normalize_catalog({"assets": 2}) == {
            "assets": 2, "size_kib": 256, "piece_kib": 16,
        }

    def test_malformed_specs_rejected_eagerly(self):
        with pytest.raises(ValueError):
            normalize_catalog("assets:0")
        with pytest.raises(ValueError):
            normalize_catalog({"assets": "many"})
        with pytest.raises(ValueError):
            normalize_catalog({"bogus": 1})
        with pytest.raises(ValueError):
            normalize_catalog("assets")  # no key:value shape
        with pytest.raises(ValueError):
            # piece length must stay block-aligned
            normalize_catalog({"piece_kib": 17})

    def test_per_asset_sizes(self):
        cat = Catalog.from_spec({"assets": 3, "sizes_kib": [64, 32, 16]})
        assert [a.size for a in cat] == [64 * 1024, 32 * 1024, 16 * 1024]
        with pytest.raises(ValueError):
            normalize_catalog({"assets": 3, "sizes_kib": [64]})

    def test_assets_are_hash_addressed(self):
        cat = Catalog.from_spec({"assets": 2, "size_kib": 64})
        a1, a2 = list(cat)
        assert a1.asset_id != a2.asset_id
        # Content-derived and stable: same (name, size, piece) -> same id.
        again = Catalog.from_spec({"assets": 2, "size_kib": 64})
        assert [a.asset_id for a in again] == [a1.asset_id, a2.asset_id]
        torrent = cat.torrent(a1, "10.0.0.1", 6969)
        assert torrent.info_hash == f"cdn-{a1.asset_id}"


# ----------------------------------------------------------------------
# Demand
# ----------------------------------------------------------------------
class TestDemand:
    def test_normalize_string_forms(self):
        assert normalize_demand("zipf:1.2") == {
            "kind": "zipf", "alpha": 1.2, "rate": 0.05,
        }
        assert normalize_demand("zipf:0.8@0.4")["rate"] == 0.4

    def test_malformed_rejected_eagerly(self):
        for bad in (
            "zipf:0", "zipf:-1", "zipf:abc", "poisson:1",
            {"kind": "zipf", "alpha": 0.0},
            {"kind": "zipf", "rate": -0.1},
            {"kind": "zipf", "bogus": 1},
            {"kind": "zipf", "flash_crowd": {"at": -1.0}},
            {"kind": "zipf", "flash_crowd": {"size": 0}},
            {"kind": "zipf", "flash_crowd": {"width": 0.0}},
            {"kind": "zipf", "flash_crowd": {"rank": 0}},
            {"kind": "zipf", "daily_cycle": {"depth": 1.0}},
            {"kind": "zipf", "daily_cycle": {"period": 0.0}},
        ):
            with pytest.raises(ValueError):
                normalize_demand(bad)

    def test_zipf_weights(self):
        w = zipf_weights(4, 1.0)
        assert w[0] > w[1] > w[2] > w[3]
        assert sum(w) == pytest.approx(1.0)

    def test_trace_is_a_pure_function_of_spec_and_seed(self):
        spec = {
            "kind": "zipf", "alpha": 1.1, "rate": 0.5,
            "flash_crowd": {"at": 50.0, "rank": 1, "size": 5, "width": 4.0},
            "daily_cycle": {"period": 100.0, "depth": 0.5},
        }
        t1 = ZipfDemand(spec, assets=4, peers=6, seed=9).trace(200.0)
        t2 = ZipfDemand(spec, assets=4, peers=6, seed=9).trace(200.0)
        assert t1 == t2
        t3 = ZipfDemand(spec, assets=4, peers=6, seed=10).trace(200.0)
        assert t1 != t3
        # Sorted by time; peers/ranks in range.
        times = [r.time for r in t1]
        assert times == sorted(times)
        assert all(0 <= r.peer < 6 and 1 <= r.rank <= 4 for r in t1)

    def test_flash_crowd_lands_in_its_window(self):
        base = {"kind": "zipf", "alpha": 1.0, "rate": 0.01}
        flash = dict(base, flash_crowd={
            "at": 100.0, "rank": 2, "size": 8, "width": 10.0,
        })
        quiet = ZipfDemand(base, assets=4, peers=4, seed=1).trace(200.0)
        crowd = ZipfDemand(flash, assets=4, peers=4, seed=1).trace(200.0)
        burst = [r for r in crowd if r not in quiet]
        assert len(burst) >= 8
        in_window = [r for r in burst if 100.0 <= r.time <= 110.0 + 1e-9]
        assert len(in_window) >= 8
        assert sum(1 for r in in_window if r.rank == 2) >= 8

    def test_daily_cycle_thins_arrivals(self):
        base = {"kind": "zipf", "alpha": 1.0, "rate": 1.0}
        cycled = dict(base, daily_cycle={"period": 100.0, "depth": 0.8})
        flat = ZipfDemand(base, assets=2, peers=4, seed=2).trace(400.0)
        thinned = ZipfDemand(cycled, assets=2, peers=4, seed=2).trace(400.0)
        assert len(thinned) < len(flat)
        assert cycle_factor(0.0, cycled["daily_cycle"]) == pytest.approx(1.0)
        assert cycle_factor(50.0, cycled["daily_cycle"]) == pytest.approx(0.2)
        assert mean_cycle_factor(cycled["daily_cycle"]) == pytest.approx(0.6)


# ----------------------------------------------------------------------
# Origin policies
# ----------------------------------------------------------------------
class TestOrigin:
    def test_normalize_and_policies(self):
        norm = normalize_origin(None)
        assert norm["policy"] == "pin_top_k"
        assert normalize_origin({"policy": "lru_evict"})["policy"] == "lru_evict"
        with pytest.raises(ValueError):
            normalize_origin({"policy": "magic"})
        with pytest.raises(ValueError):
            normalize_origin({"policy": "pin_top_k", "k": 5, "capacity": 2})
        with pytest.raises(ValueError):
            normalize_origin({"capacity": 0})
        with pytest.raises(ValueError):
            normalize_origin({"up_rate": 0})


# ----------------------------------------------------------------------
# Workload axis: normalize / ambient install / digests
# ----------------------------------------------------------------------
class TestWorkloadAxis:
    def test_normalize_workload(self):
        assert normalize_workload(None) is None
        assert normalize_workload({}) is None
        norm = normalize_workload({"catalog": 2, "demand": "zipf:1.1"})
        assert norm["catalog"]["assets"] == 2
        assert norm["demand"]["alpha"] == 1.1
        with pytest.raises(ValueError):
            normalize_workload({"catalogue": 2})
        with pytest.raises(ValueError):
            normalize_workload("zipf:1.1")

    def test_ambient_workload_beats_constructor_arguments(self):
        cdn.install({"catalog": {"assets": 2, "size_kib": 16}})
        try:
            assert cdn.installed()
            sc = CdnScenario(seed=0, catalog="assets:5", peers=2, horizon=10.0)
            assert len(sc.catalog) == 2
        finally:
            cdn.uninstall()
        assert not cdn.installed()
        sc = CdnScenario(seed=0, catalog="assets:5,size_kib:16", peers=2,
                         horizon=10.0)
        assert len(sc.catalog) == 5

    def test_default_workload_digest_is_byte_identical_to_pre_cdn_era(self):
        spec = ScenarioSpec.create("figx", {"runs": 2})
        got = cell_digest(spec, ("k", 10), 7, code="pinned")
        # The exact body the pre-CDN cell_digest hashed: no "workload"
        # key.  Any change here silently invalidates (or aliases) every
        # cached pre-CDN result — keep it frozen.
        legacy_body = canonical_json({
            "scenario": "figx",
            "params": {"runs": 2},
            "key": ["k", 10],
            "seed": 7,
            "code": "pinned",
        })
        expected = hashlib.sha256(legacy_body.encode("utf-8")).hexdigest()
        assert got == expected

    def test_workloads_cache_disjointly(self):
        specs = [
            ScenarioSpec.create("figx", {"runs": 2}, workload=workload)
            for workload in (
                None,
                normalize_workload({"catalog": 2}),
                normalize_workload({"catalog": 2, "demand": "zipf:1.3"}),
            )
        ]
        assert len({s.spec_hash() for s in specs}) == 3
        assert len({cell_digest(s, ("k",), 1, code="c") for s in specs}) == 3

    def test_runner_validates_eagerly_and_drops_the_default(self):
        assert Runner(workload=None).workload is None
        assert Runner(workload={}).workload is None
        runner = Runner(workload={"demand": "zipf:1.5@0.2"})
        assert runner.workload == {
            "demand": {"kind": "zipf", "alpha": 1.5, "rate": 0.2},
        }
        with pytest.raises(ValueError):
            Runner(workload={"demand": "zipf:-2"})
        with pytest.raises(ValueError):
            Runner(workload={"origin": {"policy": "nope"}})


# ----------------------------------------------------------------------
# Packet scenario
# ----------------------------------------------------------------------
SMALL = dict(
    catalog="assets:3,size_kib:48,piece_kib:16",
    demand="zipf:1.0@0.15",
    peers=4,
    horizon=90.0,
)


class TestCdnScenario:
    def test_runs_and_serves_requests(self):
        sc = CdnScenario(seed=5, **SMALL)
        sc.run()
        r = sc.results()
        assert r["requests"] > 0
        assert 0 < r["served"] <= r["requests"]
        assert 0.0 <= r["offload"] <= 1.0
        assert r["origin_bytes"] > 0  # cold copies always hit the origin

    def test_deterministic_across_identical_runs(self):
        runs = []
        for _ in range(2):
            sc = CdnScenario(seed=7, **SMALL)
            sc.run()
            runs.append(json.dumps(sc.results(), sort_keys=True))
        assert runs[0] == runs[1]

    def test_peers_share_one_upload_bucket(self):
        sc = CdnScenario(seed=5, **SMALL)
        sc.run()
        multi = [p for p in sc.peers if len(p.clients) >= 2]
        assert multi, "sweep produced no multi-swarm peer"
        for peer in multi:
            buckets = {id(c.upload_bucket) for c in peer.clients.values()}
            assert buckets == {id(peer.bucket)}

    def test_repeat_request_is_a_local_hit(self):
        sc = CdnScenario(
            seed=1, catalog="assets:1,size_kib:16", peers=1,
            demand={"kind": "zipf", "alpha": 1.0, "rate": 0.2},
            horizon=60.0,
        )
        sc.run()
        r = sc.results()
        # One peer, one asset: once the first fetch lands, every request
        # arriving after it is served from the local replica instantly
        # (a request overlapping the in-flight fetch still accrues
        # latency from its own arrival).
        assert r["requests"] >= 2
        assert r["served"] == r["requests"]
        first_done = sc.pending[0].time + sc.pending[0].latency
        after = [e for e in sc.pending if e.time > first_done]
        assert after and all(e.latency == 0.0 for e in after)

    def test_packet_catalog_limit_enforced(self):
        with pytest.raises(ValueError):
            CdnScenario(seed=0, catalog={"assets": 65, "size_kib": 16})

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CdnScenario(seed=0, peers=0)
        with pytest.raises(ValueError):
            CdnScenario(seed=0, mobile_fraction=1.5)
        with pytest.raises(ValueError):
            CdnScenario(seed=0, horizon=0.0)


# ----------------------------------------------------------------------
# Fluid surrogate
# ----------------------------------------------------------------------
class TestFluidSurrogate:
    def test_rank_bands_partition_geometrically(self):
        assert rank_bands(1) == [(1, 1)]
        assert rank_bands(10, max_bands=3) == [(1, 1), (2, 3), (4, 10)]
        bands = rank_bands(10_000)
        assert bands[0] == (1, 1)
        assert bands[-1][1] == 10_000
        covered = []
        for first, last in bands:
            covered.extend(range(first, last + 1))
        assert covered == list(range(1, 10_001))
        with pytest.raises(ValueError):
            rank_bands(0)

    def test_offload_monotone_in_mobility_and_wp2p_recovers(self):
        kw = dict(catalog="assets:4", demand="zipf:1.0@0.2", peers=10,
                  horizon=600.0)
        offloads = [
            cdn_fluid_cell(mobile_fraction=f, **kw)["offload"]
            for f in (0.0, 0.3, 0.6, 0.9)
        ]
        assert all(b <= a + 1e-12 for a, b in zip(offloads, offloads[1:]))
        assert offloads[-1] < offloads[0]
        default = cdn_fluid_cell(mobile_fraction=0.6, **kw)["offload"]
        wp2p = cdn_fluid_cell(mobile_fraction=0.6, wp2p=True, **kw)["offload"]
        assert wp2p > default

    def test_large_catalog_is_cheap(self):
        result = cdn_fluid_cell(
            catalog={"assets": 10_000, "size_kib": 64},
            demand="zipf:1.1@5.0",
            peers=500,
            horizon=600.0,
        )
        # O(log assets) band solves, not 10^4 integrations.
        assert result["steps"] <= 16
        assert 0.0 <= result["offload"] <= 1.0
        assert result["requests"] > 0

    def test_ambient_workload_reaches_the_fluid_cell(self):
        cdn.install({"catalog": {"assets": 2, "size_kib": 16}})
        try:
            result = cdn_fluid_cell(catalog="assets:9")
            assert len(result["per_asset"]) == 2  # bands of a 2-asset catalog
        finally:
            cdn.uninstall()

    def test_asset_class_outcome_contracts(self):
        base = dict(
            size=65_536.0, request_rate=0.1, download_rate=500_000.0,
            upload_rate=48_000.0, origin_rate=100_000.0,
        )
        out = asset_class_outcome(AssetClassParams(**base), horizon=600.0)
        assert out.requests == pytest.approx(60.0)
        assert 0.0 <= out.offload <= 1.0
        assert out.origin_bytes <= out.total_bytes
        # Monotone: less-available peers push bytes onto the origin.
        degraded = asset_class_outcome(
            AssetClassParams(**base, peer_availability=0.4), horizon=600.0
        )
        assert degraded.offload <= out.offload
        with pytest.raises(ValueError):
            AssetClassParams(**dict(base, size=0.0))
        with pytest.raises(ValueError):
            AssetClassParams(**dict(base, peer_availability=0.0))
        # Zero demand: only the (possible) cold copy matters.
        idle = asset_class_outcome(
            AssetClassParams(**dict(base, request_rate=0.0)), horizon=600.0
        )
        assert idle.requests == 0.0
        assert idle.offload == 1.0


# ----------------------------------------------------------------------
# figx_cdn through the runner and the CLI
# ----------------------------------------------------------------------
QUICK_FIGX = [
    "--set", 'mobile_fractions=[0.0,0.5]',
    "--set", 'runs=2',
]


class TestFigxCdn:
    def test_registered_on_both_backends(self):
        import repro.experiments  # noqa: F401 — registers the scenarios
        from repro.runner import get_scenario

        scn = get_scenario("figx_cdn")
        assert scn.backends == ("packet", "fluid")

    def test_fluid_run_emits_gate(self, capsys):
        from repro.experiments.__main__ import main

        main(["run", "figx_cdn", "--backend", "fluid", "--no-cache",
              "--quiet", "--json", *QUICK_FIGX])
        payload = json.loads(capsys.readouterr().out)
        gate = payload["parameters"]["gate"]
        assert gate["offload_monotone_decreasing"] is True
        assert gate["wp2p_recovers_half_gap"] is True
        assert len(gate["default_offload"]) == 2

    def test_serial_and_parallel_runs_are_bit_identical(self, capsys):
        from repro.experiments.__main__ import main

        argv = ["run", "figx_cdn", "--backend", "fluid", "--no-cache",
                "--quiet", "--json", *QUICK_FIGX]
        main(argv)
        serial = json.loads(capsys.readouterr().out)
        main([*argv, "--jobs", "2"])
        parallel = json.loads(capsys.readouterr().out)
        # Everything but wall-clock timing must match bit-for-bit.
        serial.pop("stats")
        parallel.pop("stats")
        assert serial == parallel

    def test_packet_serial_and_parallel_runs_are_bit_identical(self, capsys):
        from repro.experiments.__main__ import main

        argv = ["run", "figx_cdn", "--no-cache", "--quiet", "--json",
                "--set", 'catalog="assets:2,size_kib:32"',
                "--set", 'demand="zipf:1.0@0.1"',
                "--set", 'mobile_fractions=[0.0,0.5]',
                "--set", 'runs=1', "--set", 'peers=3',
                "--set", 'duration=60.0']
        main(argv)
        serial = json.loads(capsys.readouterr().out)
        main([*argv, "--jobs", "2"])
        parallel = json.loads(capsys.readouterr().out)
        serial.pop("stats")
        parallel.pop("stats")
        assert serial == parallel

    def test_warm_cache_rerun_executes_zero_sims(self, capsys, tmp_path):
        from repro.experiments.__main__ import main

        argv = ["run", "figx_cdn", "--backend", "fluid", "--quiet",
                "--json", "--cache-dir", str(tmp_path), *QUICK_FIGX]
        main(argv)
        cold = json.loads(capsys.readouterr().out)
        assert cold["stats"]["executed"] == 8
        main(argv)
        warm = json.loads(capsys.readouterr().out)
        assert warm["stats"]["executed"] == 0
        assert warm["stats"]["cache_hits"] == 8
        assert warm["series"] == cold["series"]

    def test_catalog_flag_conflicts_with_set_spelling(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit, match="--catalog conflicts"):
            main(["run", "figx_cdn", "--backend", "fluid", "--no-cache",
                  "--quiet", "--catalog", "assets:2",
                  "--set", 'catalog="assets:4"'])
        with pytest.raises(SystemExit, match="--demand conflicts"):
            main(["run", "figx_cdn", "--backend", "fluid", "--no-cache",
                  "--quiet", "--demand", "zipf:1.1",
                  "--set", 'demand="zipf:1.2"'])

    def test_malformed_flag_values_exit_cleanly(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit, match="alpha"):
            main(["run", "figx_cdn", "--backend", "fluid", "--no-cache",
                  "--quiet", "--demand", "zipf:0"])
        with pytest.raises(SystemExit, match="assets"):
            main(["run", "figx_cdn", "--backend", "fluid", "--no-cache",
                  "--quiet", "--catalog", "assets:0"])

    def test_workload_flag_changes_the_spec_hash(self, capsys):
        from repro.experiments.__main__ import main

        argv = ["run", "figx_cdn", "--backend", "fluid", "--no-cache",
                "--quiet", "--json", *QUICK_FIGX]
        main(argv)
        plain = json.loads(capsys.readouterr().out)
        main([*argv, "--catalog", "assets:2,size_kib:32"])
        loaded = json.loads(capsys.readouterr().out)
        assert plain["spec_hash"] != loaded["spec_hash"]


# ----------------------------------------------------------------------
# Shared-uplink conservation under audit
# ----------------------------------------------------------------------
class TestAuditedCdn:
    def test_small_cdn_run_is_audit_clean(self):
        from repro import audit

        with audit.audited():
            sc = CdnScenario(seed=11, mobile_fraction=0.5, **SMALL)
            sc.run()
        r = sc.results()
        assert r["requests"] > 0
