"""Property-based tests for the kernel and network conservation laws."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import (
    AddressAllocator,
    Host,
    Internet,
    Packet,
    attach_wired_host,
    attach_wireless_host,
)
from repro.bittorrent import TokenBucket
from repro.sim import Simulator


class Payload:
    def __init__(self, size):
        self.wire_size = size


class Sink:
    def __init__(self):
        self.packets = []

    def receive(self, packet):
        self.packets.append(packet)


class TestKernelProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1000.0,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_events_fire_in_time_order(self, delays):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, lambda d=d: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)
        assert sim.now == max(delays)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                 min_size=2, max_size=100),
        st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_cancelled_events_never_fire(self, delays, data):
        sim = Simulator()
        fired = []
        events = [sim.schedule(d, lambda i=i: fired.append(i)) for i, d in enumerate(delays)]
        to_cancel = data.draw(st.sets(st.integers(min_value=0, max_value=len(delays) - 1)))
        for i in to_cancel:
            sim.cancel(events[i])
        sim.run()
        assert set(fired) == set(range(len(delays))) - to_cancel

    @given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_rng_streams_reproducible(self, seed, name):
        a = Simulator(seed=seed).rng.stream(name).random()
        b = Simulator(seed=seed).rng.stream(name).random()
        assert a == b


class TestWirelessConservation:
    @given(
        st.integers(min_value=1, max_value=60),
        st.floats(min_value=0.0, max_value=5e-5, allow_nan=False),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_every_uplink_packet_accounted(self, n_packets, ber, seed):
        """uplink sends = delivered to core + bit-error losses + queue drops."""
        sim = Simulator(seed=seed)
        internet = Internet(sim, core_delay=0.0)
        alloc = AddressAllocator()
        mobile = Host(sim, "m")
        fixed = Host(sim, "f")
        fixed.transport = Sink()
        channel = attach_wireless_host(sim, mobile, internet, alloc.allocate(),
                                       rate=100_000, ber=ber,
                                       station_queue_packets=10)
        attach_wired_host(sim, fixed, internet, alloc.allocate())
        for i in range(n_packets):
            sim.schedule(i * 0.05, lambda: mobile.send(
                Packet(mobile.ip, fixed.ip, Payload(1000), created_at=sim.now)))
        sim.run()
        delivered = len(fixed.transport.packets)
        bit_losses = sum(
            1 for d in channel.loss_records if d.reason == "bit_error_up"
        )
        queue_drops = len(channel.uplink_queue.drops)
        assert delivered + bit_losses + queue_drops == n_packets

    @given(st.integers(min_value=1, max_value=40), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_airtime_monotone_with_traffic(self, n_packets, seed):
        sim = Simulator(seed=seed)
        internet = Internet(sim, core_delay=0.0)
        alloc = AddressAllocator()
        mobile = Host(sim, "m")
        mobile.transport = Sink()
        fixed = Host(sim, "f")
        fixed.transport = Sink()
        channel = attach_wireless_host(sim, mobile, internet, alloc.allocate(),
                                       rate=100_000)
        attach_wired_host(sim, fixed, internet, alloc.allocate())
        for i in range(n_packets):
            sim.schedule(i * 0.2, lambda: fixed.send(
                Packet(fixed.ip, mobile.ip, Payload(500), created_at=sim.now)))
        sim.run()
        assert channel.airtime_busy > 0
        # airtime equals frames * frame_time exactly (one rate, one size)
        per_frame = (500 + 20 + 34) / 100_000  # payload + IP + MAC overhead
        assert channel.airtime_busy == (
            __import__("pytest").approx(per_frame * n_packets)
        )


class TestTokenBucketProperties:
    @given(
        st.floats(min_value=100.0, max_value=1e6, allow_nan=False),
        st.lists(st.integers(min_value=1, max_value=100_000), min_size=1, max_size=100),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=100, deadline=None)
    def test_consumption_never_exceeds_rate_plus_burst(self, rate, requests, seed):
        sim = Simulator(seed=seed)
        bucket = TokenBucket(sim, rate=rate)
        granted = 0.0
        t = 0.0
        for i, n in enumerate(requests):
            t = i * 0.1
            sim.schedule(t, lambda: None)
            sim.run(until=t)
            if bucket.try_consume(n):
                granted += n
        # total granted <= burst + rate * elapsed
        assert granted <= bucket.burst + rate * t + 1e-6
