"""Integration showdown: the full wP2P client vs the default client in one
hostile scenario combining everything the paper studies — lossy shared
wireless channel, periodic IP handoffs, competitive swarm.

This is the paper's bottom line: same environment, same swarm, the only
difference is the client software on the mobile host.
"""

from __future__ import annotations

import pytest

from repro.bittorrent import ClientConfig
from repro.bittorrent.swarm import SwarmScenario
from repro.media import playable_fraction
from repro.wp2p import WP2PClient, WP2PConfig


def hostile_run(use_wp2p: bool, seed: int = 202, duration: float = 300.0):
    sc = SwarmScenario(
        seed=seed, file_size=48 * 1024 * 1024, piece_length=131_072,
        tracker_interval=60.0,
    )
    competitor_cfg = ClientConfig(
        unchoke_slots=2, optimistic_every=5, choke_interval=5.0,
        ledger_half_life=120.0,
    )
    for i in range(2):
        sc.add_wired_peer(f"s{i}", complete=True, up_rate=80_000, config=competitor_cfg)
    for i in range(6):
        sc.add_wired_peer(f"c{i}", up_rate=60_000, config=competitor_cfg)
    if use_wp2p:
        cfg = WP2PConfig(unchoke_slots=2, choke_interval=5.0)
        mob = sc.add_wireless_peer(
            "mob", rate=400_000, ber=2e-6, config=cfg, client_factory=WP2PClient
        )
    else:
        cfg = ClientConfig(unchoke_slots=2, choke_interval=5.0, task_restart_delay=15.0)
        mob = sc.add_wireless_peer("mob", rate=400_000, ber=2e-6, config=cfg)
    sc.add_mobility(mob, interval=60.0, downtime=1.0, jitter=5.0)
    sc.start_all()
    sc.run(until=duration)
    return sc, mob


class TestShowdown:
    def test_wp2p_downloads_more_in_hostile_environment(self):
        _, default = hostile_run(use_wp2p=False)
        _, wp2p = hostile_run(use_wp2p=True)
        assert wp2p.client.downloaded.total > default.client.downloaded.total

    def test_wp2p_keeps_content_playable(self):
        sc_d, default = hostile_run(use_wp2p=False, duration=200.0)
        sc_w, wp2p = hostile_run(use_wp2p=True, duration=200.0)
        playable_default = playable_fraction(
            sc_d.torrent, default.client.manager.bitfield
        )
        playable_wp2p = playable_fraction(sc_w.torrent, wp2p.client.manager.bitfield)
        # if the network vanished now, the wP2P user has at least as much
        # in-sequence content (normally far more)
        assert playable_wp2p >= playable_default

    def test_wp2p_keeps_single_identity(self):
        _, wp2p = hostile_run(use_wp2p=True, duration=200.0)
        assert wp2p.client.reconnections >= 2
        assert (
            wp2p.client.identity.recall(wp2p.client.torrent.info_hash)
            == wp2p.client.peer_id
        )

    def test_backward_compatibility_fixed_peers_unaffected(self):
        """Fixed peers complete their downloads normally whether the mobile
        runs wP2P or the default client (wP2P is wire-compatible)."""
        sc_w, _ = hostile_run(use_wp2p=True, duration=300.0)
        finished_with_wp2p = sum(
            1 for name in ("c0", "c1", "c2") if sc_w[name].client.complete
        )
        sc_d, _ = hostile_run(use_wp2p=False, duration=300.0)
        finished_with_default = sum(
            1 for name in ("c0", "c1", "c2") if sc_d[name].client.complete
        )
        # wP2P on the mobile host never breaks the fixed peers
        assert finished_with_wp2p >= finished_with_default - 1
