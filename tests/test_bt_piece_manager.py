"""Unit tests for the piece manager and selection strategies."""

from __future__ import annotations

import random

import pytest

from repro.bittorrent import (
    Bitfield,
    PieceManager,
    RandomSelector,
    RarestFirstSelector,
    SelectionContext,
    SequentialSelector,
    make_torrent,
)


def make_manager(pieces=4, piece_length=65_536, **kwargs):
    torrent = make_torrent("f", total_size=pieces * piece_length, piece_length=piece_length)
    return torrent, PieceManager(torrent, **kwargs)


def ctx(availability=None, progress=0.0, seed=0):
    return SelectionContext(
        availability=availability or {},
        progress=progress,
        now=0.0,
        rng=random.Random(seed),
    )


def full_bitfield(torrent):
    return Bitfield.full(torrent.num_pieces)


def complete_piece(torrent, manager, index):
    done = None
    for begin, length in torrent.block_offsets(index):
        done = manager.receive_block(index, begin, length)
    return done


class TestPieceManager:
    def test_initially_empty(self):
        torrent, mgr = make_manager()
        assert not mgr.complete
        assert mgr.progress == 0.0
        assert mgr.missing_pieces() == [0, 1, 2, 3]

    def test_seed_constructor(self):
        torrent, mgr = make_manager(complete=True)
        assert mgr.complete
        assert mgr.progress == 1.0

    def test_next_request_walks_blocks(self):
        torrent, mgr = make_manager()
        peer_bf = full_bitfield(torrent)
        selector = SequentialSelector()
        seen = set()
        for _ in range(torrent.blocks_in_piece(0)):
            req = mgr.next_request(peer_bf, selector, ctx())
            assert req is not None
            index, begin, length = req
            assert index == 0  # strict priority finishes piece 0 first
            mgr.mark_requested(index, begin, 0.0)
            seen.add(begin)
        assert len(seen) == torrent.blocks_in_piece(0)
        # piece 0 fully requested; next request starts piece 1
        req = mgr.next_request(peer_bf, selector, ctx())
        assert req[0] == 1

    def test_requested_blocks_not_reissued(self):
        torrent, mgr = make_manager()
        peer_bf = full_bitfield(torrent)
        selector = SequentialSelector()
        first = mgr.next_request(peer_bf, selector, ctx())
        mgr.mark_requested(first[0], first[1], 0.0)
        second = mgr.next_request(peer_bf, selector, ctx())
        assert (first[0], first[1]) != (second[0], second[1])

    def test_release_makes_block_requestable(self):
        torrent, mgr = make_manager()
        peer_bf = full_bitfield(torrent)
        selector = SequentialSelector()
        index, begin, length = mgr.next_request(peer_bf, selector, ctx())
        mgr.mark_requested(index, begin, 0.0)
        mgr.release_request(index, begin)
        again = mgr.next_request(peer_bf, selector, ctx())
        assert again[:2] == (index, begin)

    def test_expire_requests(self):
        torrent, mgr = make_manager()
        peer_bf = full_bitfield(torrent)
        selector = SequentialSelector()
        index, begin, _ = mgr.next_request(peer_bf, selector, ctx())
        mgr.mark_requested(index, begin, now=0.0)
        assert mgr.expire_requests(now=10.0, timeout=30.0) == []
        assert mgr.expire_requests(now=31.0, timeout=30.0) == [(index, begin)]
        assert mgr.outstanding_requests() == []

    def test_piece_completion(self):
        torrent, mgr = make_manager()
        done = complete_piece(torrent, mgr, 2)
        assert done == 2
        assert mgr.have_piece(2)
        assert mgr.bytes_completed == torrent.piece_size(2)
        assert mgr.completion_order == [2]

    def test_duplicate_block_counted(self):
        torrent, mgr = make_manager()
        begin, length = torrent.block_offsets(0)[0]
        mgr.receive_block(0, begin, length)
        mgr.receive_block(0, begin, length)
        assert mgr.duplicate_blocks == 1

    def test_block_for_complete_piece_is_duplicate(self):
        torrent, mgr = make_manager()
        complete_piece(torrent, mgr, 0)
        begin, length = torrent.block_offsets(0)[0]
        assert mgr.receive_block(0, begin, length) is None
        assert mgr.duplicate_blocks == 1

    def test_unsolicited_block_accepted(self):
        torrent, mgr = make_manager()
        begin, length = torrent.block_offsets(3)[0]
        assert mgr.receive_block(3, begin, length) is None
        assert 3 in mgr.partial_pieces

    def test_corrupt_piece_is_refetched(self):
        torrent, mgr = make_manager(
            corrupt_probability=1.0, rng=random.Random(1)
        )
        done = complete_piece(torrent, mgr, 0)
        assert done is None
        assert mgr.hash_failures == 1
        assert not mgr.have_piece(0)
        # the piece can be requested again
        req = mgr.next_request(full_bitfield(torrent), SequentialSelector(), ctx())
        assert req[0] == 0

    def test_complete_when_all_pieces_done(self):
        torrent, mgr = make_manager(pieces=3)
        for i in range(3):
            complete_piece(torrent, mgr, i)
        assert mgr.complete
        assert mgr.progress == 1.0

    def test_no_request_when_peer_has_nothing(self):
        torrent, mgr = make_manager()
        empty = Bitfield(torrent.num_pieces)
        assert mgr.next_request(empty, SequentialSelector(), ctx()) is None

    def test_partial_priority_respects_peer_bitfield(self):
        torrent, mgr = make_manager()
        # start piece 2 via a peer that only has piece 2
        only2 = Bitfield(torrent.num_pieces, have=[2])
        req = mgr.next_request(only2, SequentialSelector(), ctx())
        assert req[0] == 2
        mgr.mark_requested(*req[:2], now=0.0)
        # a peer with only piece 1 cannot serve piece 2's blocks
        only1 = Bitfield(torrent.num_pieces, have=[1])
        req = mgr.next_request(only1, SequentialSelector(), ctx())
        assert req[0] == 1


class TestSelectors:
    def test_sequential_picks_lowest(self):
        assert SequentialSelector().choose([5, 2, 9], ctx()) == 2

    def test_sequential_empty(self):
        assert SequentialSelector().choose([], ctx()) is None

    def test_rarest_first_picks_min_availability(self):
        availability = {1: 5, 2: 1, 3: 3}
        sel = RarestFirstSelector()
        assert sel.choose([1, 2, 3], ctx(availability)) == 2

    def test_rarest_first_ties_broken_randomly(self):
        availability = {1: 1, 2: 1, 3: 5}
        sel = RarestFirstSelector()
        picks = {sel.choose([1, 2, 3], ctx(availability, seed=s)) for s in range(20)}
        assert picks == {1, 2}

    def test_rarest_treats_unknown_as_zero(self):
        sel = RarestFirstSelector()
        assert sel.choose([7, 8], ctx({7: 2})) == 8

    def test_random_selector_uniformish(self):
        sel = RandomSelector()
        picks = {sel.choose([1, 2, 3], ctx(seed=s)) for s in range(30)}
        assert picks == {1, 2, 3}

    def test_random_empty(self):
        assert RandomSelector().choose([], ctx()) is None
