"""Unit tests for the playability model."""

from __future__ import annotations

import pytest

from repro.bittorrent import Bitfield, make_torrent
from repro.media import (
    average_curves,
    downloaded_fraction,
    playability_curve,
    playable_bytes,
    playable_fraction,
    playable_percentage_at,
    playable_prefix_pieces,
)


def torrent(pieces=10, piece_length=65_536):
    return make_torrent("media", total_size=pieces * piece_length, piece_length=piece_length)


class TestPlayablePrefix:
    def test_empty(self):
        assert playable_prefix_pieces(Bitfield(10)) == 0

    def test_full(self):
        assert playable_prefix_pieces(Bitfield.full(10)) == 10

    def test_prefix_stops_at_gap(self):
        bf = Bitfield(10, have=[0, 1, 2, 4, 5])
        assert playable_prefix_pieces(bf) == 3

    def test_no_prefix_without_first_piece(self):
        bf = Bitfield(10, have=[1, 2, 3])
        assert playable_prefix_pieces(bf) == 0


class TestFractions:
    def test_playable_fraction(self):
        t = torrent(10)
        bf = Bitfield(10, have=[0, 1, 5])
        assert playable_fraction(t, bf) == pytest.approx(0.2)
        assert downloaded_fraction(t, bf) == pytest.approx(0.3)

    def test_full_file_playable(self):
        t = torrent(10)
        assert playable_fraction(t, Bitfield.full(10)) == 1.0
        assert playable_bytes(t, Bitfield.full(10)) == t.total_size

    def test_short_final_piece(self):
        t = make_torrent("m", total_size=65_536 + 100, piece_length=65_536)
        bf = Bitfield.full(t.num_pieces)
        assert playable_bytes(t, bf) == t.total_size


class TestCurve:
    def test_sequential_order_tracks_downloaded(self):
        t = torrent(4)
        curve = playability_curve(t, [0, 1, 2, 3])
        assert curve[0] == (0.0, 0.0)
        for down, play in curve:
            assert play == pytest.approx(down)

    def test_rarest_like_order_is_unplayable_until_end(self):
        t = torrent(4)
        curve = playability_curve(t, [3, 2, 1, 0])
        # playable stays 0 until the final piece arrives
        assert curve[-2][1] == 0.0
        assert curve[-1][1] == 100.0

    def test_interpolation(self):
        t = torrent(4)
        curve = playability_curve(t, [0, 1, 2, 3])
        assert playable_percentage_at(curve, 50.0) == pytest.approx(50.0)
        assert playable_percentage_at(curve, 10.0) == pytest.approx(0.0)
        assert playable_percentage_at([], 50.0) == 0.0

    def test_average_curves(self):
        t = torrent(2)
        good = playability_curve(t, [0, 1])
        bad = playability_curve(t, [1, 0])
        grid = [0.0, 50.0, 100.0]
        avg = average_curves([good, bad], grid)
        assert avg[1] == (50.0, pytest.approx(25.0))
        assert avg[2] == (100.0, pytest.approx(100.0))

    def test_average_no_curves(self):
        assert average_curves([], [0.0, 100.0]) == [(0.0, 0.0), (100.0, 0.0)]


class TestEdgeCases:
    """Degenerate inputs: empty/tiny files, extreme orders, off-grid queries."""

    def test_empty_file_is_rejected_at_the_source(self):
        # A zero-byte torrent has no pieces and no meaningful playable
        # fraction; the metainfo layer refuses to construct one, which
        # is the contract every playability function relies on.
        with pytest.raises(ValueError, match="total_size"):
            make_torrent("empty", total_size=0, piece_length=65_536)

    def test_empty_completion_order(self):
        # Nothing downloaded yet: the curve is the single origin point
        # and interpolation anywhere reads 0.
        t = torrent(4)
        curve = playability_curve(t, [])
        assert curve == [(0.0, 0.0)]
        assert playable_percentage_at(curve, 0.0) == 0.0
        assert playable_percentage_at(curve, 100.0) == 0.0

    def test_single_piece_file_is_all_or_nothing(self):
        t = make_torrent("tiny", total_size=100, piece_length=65_536)
        assert t.num_pieces == 1
        assert playable_fraction(t, Bitfield(1)) == 0.0
        assert playable_fraction(t, Bitfield.full(1)) == 1.0
        curve = playability_curve(t, [0])
        assert curve == [(0.0, 0.0), (100.0, 100.0)]

    def test_fully_sequential_vs_fully_random_order(self):
        t = torrent(16)
        sequential = playability_curve(t, list(range(16)))
        # "Random" in the worst rarest-first sense: piece 0 arrives last,
        # so nothing is playable until the download completes.
        scattered = playability_curve(
            t, [9, 3, 14, 7, 1, 12, 5, 11, 2, 15, 8, 4, 13, 6, 10, 0])
        for down, play in sequential:
            assert play == pytest.approx(down)
        assert all(play == 0.0 for _, play in scattered[:-1])
        assert scattered[-1] == (100.0, 100.0)
        # At every sampled grid point the sequential order dominates.
        for g in (25.0, 50.0, 75.0, 99.0):
            assert (playable_percentage_at(sequential, g)
                    >= playable_percentage_at(scattered, g))

    def test_interpolation_outside_the_sampled_grid(self):
        t = torrent(4)
        curve = playability_curve(t, [0, 1, 2, 3])
        # Below the first sample (even negative): nothing is playable.
        assert playable_percentage_at(curve, -10.0) == 0.0
        # Beyond the last sample: clamps to the final playable value.
        assert playable_percentage_at(curve, 150.0) == 100.0
        partial = playability_curve(t, [0, 1])  # stops at 50 % downloaded
        assert playable_percentage_at(partial, 99.0) == pytest.approx(50.0)

    def test_average_curves_on_an_off_grid(self):
        t = torrent(2)
        curve = playability_curve(t, [0, 1])
        avg = average_curves([curve], [-5.0, 150.0])
        assert avg == [(-5.0, 0.0), (150.0, pytest.approx(100.0))]
