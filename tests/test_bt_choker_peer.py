"""Tests for the tit-for-tat choker and peer-wire protocol behaviour."""

from __future__ import annotations

import pytest

from repro.bittorrent import ClientConfig
from repro.bittorrent.swarm import SwarmScenario


def wired_swarm(seed=50, n_leeches=4, file_kb=2048, **seed_kwargs):
    sc = SwarmScenario(seed=seed, file_size=file_kb * 1024, piece_length=65_536)
    sc.add_wired_peer("seed", complete=True, **seed_kwargs)
    for i in range(n_leeches):
        sc.add_wired_peer(f"l{i}")
    return sc


class TestChoker:
    def test_unchoke_set_bounded_by_slots_plus_optimistic(self):
        cfg = ClientConfig(unchoke_slots=2, optimistic_every=3)
        sc = SwarmScenario(seed=51, file_size=4 * 1024 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True, up_rate=80_000, config=cfg)
        for i in range(6):
            sc.add_wired_peer(f"l{i}")
        sc.start_all()
        sc.run(until=40.0)
        seed_client = sc["seed"].client
        unchoked = [p for p in seed_client.connected_peers() if not p.am_choking]
        assert len(unchoked) <= 3

    def test_optimistic_unchoke_rotates(self):
        cfg = ClientConfig(unchoke_slots=1, optimistic_every=2, choke_interval=2.0)
        sc = SwarmScenario(seed=52, file_size=8 * 1024 * 1024, piece_length=65_536)
        seed_handle = sc.add_wired_peer("seed", complete=True, up_rate=40_000, config=cfg)
        for i in range(5):
            sc.add_wired_peer(f"l{i}")
        sc.start_all()
        optimistic_ids = set()
        for _ in range(20):
            sc.run(until=sc.sim.now + 4.0)
            peer = seed_handle.client.choker.optimistic_peer
            if peer is not None and peer.peer_id:
                optimistic_ids.add(peer.peer_id)
        assert len(optimistic_ids) >= 2  # rotation actually happened

    def test_uninterested_peers_not_unchoked_by_ranking(self):
        sc = wired_swarm(seed=53)
        sc.start_all()
        sc.run(until=30.0)
        for handle in sc.peers.values():
            for peer in handle.client.connected_peers():
                if not peer.peer_interested:
                    # a peer that never expressed interest may stay unchoked
                    # only if it was never considered; it must not hold a
                    # ranked slot once rounds have run
                    pass  # structural invariant checked via rank_rate below
        seed_client = sc["seed"].client
        ranked = sorted(
            (p for p in seed_client.connected_peers() if p.peer_interested),
            key=seed_client.choker.rank_rate,
            reverse=True,
        )
        assert isinstance(ranked, list)

    def test_seed_ranks_by_upload_rate(self):
        sc = wired_swarm(seed=54, n_leeches=2)
        sc.start_all()
        sc.run(until=20.0)
        seed_client = sc["seed"].client
        for peer in seed_client.connected_peers():
            rate = seed_client.choker.rank_rate(peer)
            assert rate == peer.upload_meter.rate()

    def test_leech_rank_includes_ledger_credit(self):
        sc = wired_swarm(seed=55, n_leeches=2)
        sc.start_all()
        sc.run(until=20.0)
        leech = sc["l0"].client
        peers = leech.connected_peers()
        assert peers
        peer = peers[0]
        before = leech.choker.rank_rate(peer)
        if peer.peer_id:
            leech.ledger.credit(peer.peer_id, 10_000_000)
            assert leech.choker.rank_rate(peer) > before

    def test_choker_params_validated(self):
        from repro.bittorrent import TitForTatChoker

        sc = wired_swarm(seed=56, n_leeches=1)
        client = sc["l0"].client
        with pytest.raises(ValueError):
            TitForTatChoker(client, slots=-1)
        with pytest.raises(ValueError):
            TitForTatChoker(client, optimistic_every=0)


class TestPeerProtocol:
    def test_handshake_rejects_wrong_info_hash(self):
        from repro.bittorrent import make_torrent, BitTorrentClient

        sc = wired_swarm(seed=57, n_leeches=0)
        other_torrent = make_torrent(
            "other", total_size=1024 * 1024,
            tracker_ip=sc.torrent.tracker_ip, tracker_port=8000,
        )
        from repro.net import Host, attach_wired_host
        from repro.tcp import TCPStack

        host = Host(sc.sim, "alien")
        TCPStack(sc.sim, host)
        attach_wired_host(sc.sim, host, sc.internet, sc.alloc.allocate())
        alien = BitTorrentClient(sc.sim, host, other_torrent, name="alien")
        sc.start_all()
        sc.run(until=2.0)
        # alien connects directly to the seed's listen port
        alien.known_addresses["seed-id"] = (sc["seed"].host.ip, 6881)
        alien.started = True
        alien.connect_to_known_peers()
        sc.run(until=5.0)
        assert alien.connected_peers() == []

    def test_self_connection_rejected(self):
        sc = wired_swarm(seed=58, n_leeches=1)
        sc.start_all()
        sc.run(until=2.0)
        l0 = sc["l0"].client
        l0.known_addresses[l0.peer_id] = (sc["l0"].host.ip, 6881)
        l0.connect_to_known_peers()
        sc.run(until=5.0)
        assert all(p.peer_id != l0.peer_id for p in l0.connected_peers())

    def test_duplicate_connections_deduped_consistently(self):
        """When both peers dial each other simultaneously, exactly one
        connection survives — and both ends keep the same one."""
        sc = wired_swarm(seed=59, n_leeches=2)
        sc.start_all()
        sc.run(until=3.0)
        a = sc["l0"].client
        b = sc["l1"].client
        # force simultaneous dials both ways
        a.known_addresses[b.peer_id] = (sc["l1"].host.ip, 6881)
        b.known_addresses[a.peer_id] = (sc["l0"].host.ip, 6881)
        a.connect_to_known_peers()
        b.connect_to_known_peers()
        sc.run(until=10.0)
        a_conns = [p for p in a.connected_peers() if p.peer_id == b.peer_id]
        b_conns = [p for p in b.connected_peers() if p.peer_id == a.peer_id]
        assert len(a_conns) == 1
        assert len(b_conns) == 1
        # same underlying TCP connection (matching 4-tuples, mirrored)
        pa, pb = a_conns[0].tcp, b_conns[0].tcp
        assert (pa.local_port, pa.remote_port) == (pb.remote_port, pb.local_port)

    def test_have_messages_propagate(self):
        sc = wired_swarm(seed=60, n_leeches=2, file_kb=512)
        sc.start_all()
        sc.run(until=5.0)
        l0 = sc["l0"].client
        l1_id = sc["l1"].client.peer_id
        peer_view = l0.peers.get(l1_id)
        if peer_view is not None and sc["l1"].client.manager.bitfield.count() > 0:
            # l0's view of l1 reflects pieces l1 announced via HAVE
            assert peer_view.peer_bitfield.count() > 0

    def test_interest_state_tracks_bitfields(self):
        sc = wired_swarm(seed=61, n_leeches=1, file_kb=512)
        sc.start_all()
        assert sc.run_until_complete(["l0"], timeout=300)
        sc.run(until=sc.sim.now + 15.0)
        l0 = sc["l0"].client
        # once complete, l0 is interested in nobody
        assert all(not p.am_interested for p in l0.connected_peers())

    def test_request_pipeline_bounded(self):
        cfg = ClientConfig(request_pipeline=4)
        sc = SwarmScenario(seed=62, file_size=4 * 1024 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True)
        sc.add_wired_peer("l0", config=cfg)
        sc.start_all()
        for _ in range(30):
            sc.run(until=sc.sim.now + 1.0)
            for peer in sc["l0"].client.connected_peers():
                assert len(peer.outstanding) <= 4

    def test_max_peers_enforced_on_accept(self):
        cfg = ClientConfig(max_peers=2)
        sc = SwarmScenario(seed=63, file_size=1024 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True, config=cfg)
        for i in range(5):
            sc.add_wired_peer(f"l{i}")
        sc.start_all()
        sc.run(until=30.0)
        assert len(sc["seed"].client.connected_peers()) <= 2
