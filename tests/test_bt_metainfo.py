"""Unit tests for torrent metainfo and bitfields."""

from __future__ import annotations

import pytest

from repro.bittorrent import BLOCK_LENGTH, Bitfield, Torrent, make_torrent


class TestTorrent:
    def test_piece_count(self):
        t = make_torrent("f", total_size=1_000_000, piece_length=262_144)
        assert t.num_pieces == 4

    def test_final_piece_short(self):
        t = make_torrent("f", total_size=1_000_000, piece_length=262_144)
        assert t.piece_size(0) == 262_144
        assert t.piece_size(3) == 1_000_000 - 3 * 262_144

    def test_exact_multiple(self):
        t = make_torrent("f", total_size=4 * 262_144, piece_length=262_144)
        assert t.num_pieces == 4
        assert t.piece_size(3) == 262_144

    def test_blocks_in_piece(self):
        t = make_torrent("f", total_size=262_144 * 2, piece_length=262_144)
        assert t.blocks_in_piece(0) == 262_144 // BLOCK_LENGTH

    def test_final_block_short(self):
        t = make_torrent("f", total_size=262_144 + 20_000, piece_length=262_144)
        last = t.num_pieces - 1
        blocks = t.block_offsets(last)
        assert sum(length for _, length in blocks) == 20_000
        assert blocks[-1][1] == 20_000 - BLOCK_LENGTH

    def test_block_offsets_cover_piece(self):
        t = make_torrent("f", total_size=1_000_000, piece_length=65_536)
        for index in range(t.num_pieces):
            offsets = t.block_offsets(index)
            assert sum(length for _, length in offsets) == t.piece_size(index)
            expected_begin = 0
            for begin, length in offsets:
                assert begin == expected_begin
                expected_begin += length

    def test_out_of_range_piece(self):
        t = make_torrent("f", total_size=100_000, piece_length=65_536)
        with pytest.raises(IndexError):
            t.piece_size(5)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            Torrent("x", "f", total_size=0)
        with pytest.raises(ValueError):
            Torrent("x", "f", total_size=100, piece_length=0)

    def test_unique_info_hashes(self):
        a = make_torrent("f", total_size=100)
        b = make_torrent("f", total_size=100)
        assert a.info_hash != b.info_hash


class TestBitfield:
    def test_set_and_has(self):
        bf = Bitfield(10)
        bf.set(3)
        assert bf.has(3)
        assert not bf.has(4)
        assert 3 in bf
        assert 99 not in bf

    def test_clear(self):
        bf = Bitfield(10, have=[1, 2])
        bf.clear(1)
        assert not bf.has(1)
        assert bf.has(2)

    def test_count_and_complete(self):
        bf = Bitfield(12)
        assert bf.count() == 0
        assert bf.empty
        for i in range(12):
            bf.set(i)
        assert bf.count() == 12
        assert bf.complete

    def test_full_constructor(self):
        bf = Bitfield.full(9)
        assert bf.complete
        assert list(bf.indices()) == list(range(9))

    def test_missing(self):
        bf = Bitfield(5, have=[0, 2, 4])
        assert list(bf.missing()) == [1, 3]

    def test_copy_is_independent(self):
        bf = Bitfield(5, have=[1])
        cp = bf.copy()
        cp.set(2)
        assert not bf.has(2)
        assert bf == Bitfield(5, have=[1])

    def test_interest_detection(self):
        mine = Bitfield(8, have=[0, 1])
        theirs = Bitfield(8, have=[0, 1, 2])
        assert theirs.has_piece_other_is_missing(mine)
        assert not mine.has_piece_other_is_missing(theirs)

    def test_interest_false_when_equal(self):
        a = Bitfield(8, have=[3, 4])
        assert not a.has_piece_other_is_missing(a.copy())

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Bitfield(8).has_piece_other_is_missing(Bitfield(9))

    def test_wire_bytes(self):
        assert Bitfield(8).wire_bytes == 1
        assert Bitfield(9).wire_bytes == 2
        assert Bitfield(400).wire_bytes == 50

    def test_out_of_range(self):
        bf = Bitfield(8)
        with pytest.raises(IndexError):
            bf.set(8)
        with pytest.raises(IndexError):
            bf.has(-1)

    def test_last_byte_padding_not_counted(self):
        bf = Bitfield(9, have=[8])
        assert bf.count() == 1
        assert list(bf.indices()) == [8]


class TestMessageSizes:
    def test_wire_lengths_match_protocol(self):
        from repro.bittorrent import (
            BitfieldMessage,
            Cancel,
            Choke,
            Handshake,
            Have,
            Interested,
            KeepAlive,
            NotInterested,
            Piece,
            Request,
            Unchoke,
        )

        assert Handshake("ih", "pid").wire_length == 68
        assert KeepAlive().wire_length == 4
        assert Choke().wire_length == 5
        assert Unchoke().wire_length == 5
        assert Interested().wire_length == 5
        assert NotInterested().wire_length == 5
        assert Have(3).wire_length == 9
        assert Request(0, 0, 16384).wire_length == 17
        assert Cancel(0, 0, 16384).wire_length == 17
        assert Piece(0, 0, 16384).wire_length == 13 + 16384
        assert BitfieldMessage(Bitfield(400)).wire_length == 5 + 50

    def test_piece_requires_positive_length(self):
        from repro.bittorrent import Piece

        with pytest.raises(ValueError):
            Piece(0, 0, 0)
