"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.sim import Simulator

from tests.helpers import TwoHostNet


@pytest.fixture
def sim() -> Simulator:
    return Simulator(seed=42)


@pytest.fixture
def two_hosts() -> TwoHostNet:
    return TwoHostNet()
