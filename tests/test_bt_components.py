"""Unit tests for token bucket, ledger, and tracker."""

from __future__ import annotations

import pytest

from repro.bittorrent import PeerLedger, TokenBucket
from repro.sim import Simulator


class TestTokenBucket:
    def test_unlimited(self):
        sim = Simulator()
        bucket = TokenBucket(sim, rate=None)
        assert bucket.unlimited
        assert bucket.try_consume(10**9)
        assert bucket.time_until(10**9) == 0.0

    def test_zero_rate_blocks(self):
        sim = Simulator()
        bucket = TokenBucket(sim, rate=0)
        assert bucket.blocked
        assert not bucket.try_consume(1)
        assert bucket.time_until(1) == float("inf")

    def test_consume_and_refill(self):
        sim = Simulator()
        bucket = TokenBucket(sim, rate=1000.0)
        assert bucket.try_consume(1000)  # initial burst = rate
        assert not bucket.try_consume(500)
        sim.schedule(0.5, lambda: None)
        sim.run()
        assert bucket.try_consume(500)

    def test_time_until(self):
        sim = Simulator()
        bucket = TokenBucket(sim, rate=100.0)
        bucket.try_consume(100)
        assert bucket.time_until(50) == pytest.approx(0.5)

    def test_burst_cap(self):
        sim = Simulator()
        bucket = TokenBucket(sim, rate=100.0, burst=200.0)
        sim.schedule(100.0, lambda: None)
        sim.run()
        assert bucket.tokens == pytest.approx(200.0)

    def test_set_rate_live(self):
        sim = Simulator()
        bucket = TokenBucket(sim, rate=100.0)
        bucket.set_rate(10_000.0)
        assert bucket.rate == 10_000.0
        bucket.set_rate(None)
        assert bucket.unlimited

    def test_negative_rate_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            TokenBucket(sim, rate=-1.0)
        bucket = TokenBucket(sim, rate=10.0)
        with pytest.raises(ValueError):
            bucket.set_rate(-5.0)


class TestPeerLedger:
    def test_credit_accumulates(self):
        sim = Simulator()
        ledger = PeerLedger(sim, half_life=60.0)
        ledger.credit("p1", 60_000)
        assert ledger.rate("p1") == pytest.approx(1000.0)

    def test_unknown_peer_zero(self):
        sim = Simulator()
        ledger = PeerLedger(sim)
        assert ledger.rate("nobody") == 0.0

    def test_decay_halves_at_half_life(self):
        sim = Simulator()
        ledger = PeerLedger(sim, half_life=10.0)
        ledger.credit("p1", 1000)
        sim.schedule(10.0, lambda: None)
        sim.run()
        assert ledger.rate("p1") == pytest.approx(1000 / 10.0 / 2, rel=0.01)

    def test_credit_survives_gap(self):
        """The point of the ledger: credit persists across disconnection."""
        sim = Simulator()
        ledger = PeerLedger(sim, half_life=60.0)
        ledger.credit("stable-id", 600_000)
        sim.schedule(30.0, lambda: None)
        sim.run()
        assert ledger.rate("stable-id") > 0.5 * 10_000

    def test_forget(self):
        sim = Simulator()
        ledger = PeerLedger(sim)
        ledger.credit("p1", 100)
        ledger.forget("p1")
        assert ledger.rate("p1") == 0.0

    def test_invalid_half_life(self):
        with pytest.raises(ValueError):
            PeerLedger(Simulator(), half_life=0)


class TestTracker:
    def make_swarm(self, n_peers=3):
        from repro.bittorrent.swarm import SwarmScenario

        sc = SwarmScenario(seed=1, file_size=256 * 1024, piece_length=65_536)
        sc.add_wired_peer("seed", complete=True)
        for i in range(n_peers - 1):
            sc.add_wired_peer(f"l{i}")
        return sc

    def test_announce_registers_peer(self):
        sc = self.make_swarm(1)
        sc.start_all()
        sc.run(until=5.0)
        assert sc.tracker.swarm_size(sc.torrent.info_hash) == 1

    def test_peers_learn_each_other(self):
        sc = self.make_swarm(3)
        sc.start_all()
        sc.run(until=10.0)
        assert sc.tracker.swarm_size(sc.torrent.info_hash) == 3
        l0 = sc["l0"].client
        assert len(l0.known_addresses) >= 1

    def test_seed_and_leech_counts(self):
        sc = self.make_swarm(3)
        sc.start_all()
        sc.run(until=5.0)
        seeds, leeches = sc.tracker.seeds_and_leeches(sc.torrent.info_hash)
        assert seeds == 1
        assert leeches == 2

    def test_stopped_event_removes_record(self):
        sc = self.make_swarm(2)
        sc.start_all()
        sc.run(until=5.0)
        sc["l0"].client.stop()
        sc.run(until=10.0)
        assert sc.tracker.swarm_size(sc.torrent.info_hash) == 1

    def test_same_peer_id_updates_record_in_place(self):
        """Identity retention: re-announcing under the same ID replaces the
        stale address instead of adding a second swarm entry."""
        sc = self.make_swarm(2)
        sc.start_all()
        sc.run(until=5.0)
        l0 = sc["l0"].client
        old_records = {r.peer_id: r.ip for r in sc.tracker.swarm_peers(sc.torrent.info_hash)}
        from repro.net.mobility import disconnect_host, reconnect_host

        disconnect_host(sc["l0"].host, sc.internet, sc.alloc)
        reconnect_host(sc["l0"].host, sc.internet, sc.alloc)
        # suppress the default restart policy; announce manually with same id
        sc.sim.cancel(l0._restart_event)
        l0.announce()
        sc.run(until=15.0)
        assert sc.tracker.swarm_size(sc.torrent.info_hash) == 2
        records = {r.peer_id: r.ip for r in sc.tracker.swarm_peers(sc.torrent.info_hash)}
        assert records[l0.peer_id] == sc["l0"].host.ip
        assert records[l0.peer_id] != old_records[l0.peer_id]

    def test_new_peer_id_leaves_stale_record(self):
        """Deployed-client behaviour: a fresh ID after handoff leaves the old
        record (unroutable address) in the swarm until pruned (§3.5)."""
        sc = self.make_swarm(2)
        sc.start_all()
        sc.run(until=5.0)
        l0 = sc["l0"].client
        from repro.net.mobility import disconnect_host, reconnect_host

        disconnect_host(sc["l0"].host, sc.internet, sc.alloc)
        reconnect_host(sc["l0"].host, sc.internet, sc.alloc)
        sc.run(until=20.0)  # default policy restarts with a new peer id
        assert l0.task_restarts == 1
        assert sc.tracker.swarm_size(sc.torrent.info_hash) == 3  # stale + new

    def test_response_excludes_requester(self):
        sc = self.make_swarm(3)
        sc.start_all()
        sc.run(until=10.0)
        l0 = sc["l0"].client
        assert l0.peer_id not in l0.known_addresses
