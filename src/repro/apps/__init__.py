"""Application substrates beyond BitTorrent (bulk transfers, foreground apps)."""

from .bulk import BulkSender, BulkServer, ForegroundDownload, Payload

__all__ = ["BulkSender", "BulkServer", "ForegroundDownload", "Payload"]
