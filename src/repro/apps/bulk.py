"""Bulk-transfer applications over the simulated TCP.

Used two ways: raw-TCP experiments (Figure 2) drive the wireless leg with
:class:`BulkSender`, and the seed-LIHD extension (paper §4.2 "future work")
models "other non-P2P applications on the mobile peer" with
:class:`ForegroundDownload` — e.g. a web download whose throughput a
seeding BitTorrent client must not destroy.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..net.host import Host
from ..sim import RateMeter, Simulator
from ..tcp.connection import TCPConnection
from ..tcp.stack import TCPStack


class Payload:
    """A generic application message: just a length on the wire."""

    __slots__ = ("wire_length",)

    def __init__(self, wire_length: int) -> None:
        self.wire_length = wire_length


class BulkSender:
    """Keeps a TCP connection's send buffer topped up (bulk transfer)."""

    def __init__(
        self,
        sim: Simulator,
        conn: TCPConnection,
        chunk: int = 1460,
        window: int = 64 * 1024,
        poll: float = 0.05,
    ) -> None:
        self.sim = sim
        self.conn = conn
        self.chunk = chunk
        self.window = window
        self.poll = poll
        self.running = False
        self.bytes_queued = 0

    def start(self) -> "BulkSender":
        self.running = True
        self._pump()
        return self

    def stop(self) -> None:
        self.running = False

    def _pump(self) -> None:
        if not self.running or self.conn.closed:
            return
        if self.conn.established:
            while self.conn.send_buffer_bytes < self.window:
                self.conn.send_message(Payload(self.chunk))
                self.bytes_queued += self.chunk
        self.sim.schedule(self.poll, self._pump)


class BulkServer:
    """Listens on a port and bulk-sends to every connection accepted."""

    def __init__(self, sim: Simulator, host: Host, port: int = 8080) -> None:
        self.sim = sim
        self.host = host
        self.port = port
        stack = host.transport
        self.stack: TCPStack = stack if isinstance(stack, TCPStack) else TCPStack(sim, host)
        self.senders: List[BulkSender] = []
        self.stack.listen(port, self._accept)

    def _accept(self, conn: TCPConnection) -> None:
        self.senders.append(BulkSender(self.sim, conn).start())

    def stop(self) -> None:
        for sender in self.senders:
            sender.stop()
        self.stack.unlisten(self.port)


class ForegroundDownload:
    """A non-P2P download running on (typically) a mobile host.

    Connects to a :class:`BulkServer` and measures its own goodput — the
    quantity a seeding P2P client's uploads must not trample (§3.3: "a
    mobile peer functioning as a seed can potentially impact its download
    rates for other non P2P applications").
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        server_ip: str,
        server_port: int = 8080,
        rate_window: float = 5.0,
    ) -> None:
        self.sim = sim
        self.host = host
        stack = host.transport
        self.stack: TCPStack = stack if isinstance(stack, TCPStack) else TCPStack(sim, host)
        self.meter = RateMeter(sim, window=rate_window)
        self.bytes_received = 0
        self.conn = self.stack.connect(server_ip, server_port)
        self.conn.on_message = self._on_message

    def _on_message(self, message: object) -> None:
        length = int(getattr(message, "wire_length", 0))
        self.bytes_received += length
        self.meter.add(length)

    def rate(self) -> float:
        """Current download rate in bytes/second."""
        return self.meter.rate()

    def stop(self) -> None:
        self.conn.abort("done")
