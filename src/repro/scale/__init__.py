"""repro.scale — the mean-field fluid swarm tier.

The packet-level simulator (:mod:`repro.sim` + :mod:`repro.bittorrent`)
is the ground truth of this library, but its cost grows with every
packet on every link: swarms top out at tens of peers.  The ROADMAP
north star is *millions*.  This package adds the approximate-inference
tier that gets there: a deterministic mean-field/fluid engine
(:class:`FluidSwarm`) that evolves peer-class *populations* — wired
seeds and leechers, mobile leechers running the default client or wP2P
— through ODE-style updates of churn, piece-availability coupling,
upload-capacity sharing, handoff/disconnection duty cycles, and
LIHD-style upload throttling.  Cost is per class and per time step,
never per peer, so a 10^6-peer swarm integrates in milliseconds.

An approximate tier is only trustworthy while it is anchored to its
reference implementation: :mod:`repro.scale.validate` runs *matched*
small-N scenarios on both backends and asserts the fluid model tracks
packet-level completion time and mean goodput within a stated tolerance
(``scripts/validate_scale.py`` / the CI scale job run it continuously).

Quick use::

    from repro.scale import FluidParams, PeerClass, run_fluid

    result = run_fluid(FluidParams(
        file_size=16 << 20, piece_length=1 << 18,
        classes=(
            PeerClass("seeds", 500, 200_000.0, 1_000_000.0, seed=True),
            PeerClass("wired", 79_500, 48_000.0, 500_000.0),
            PeerClass("mobile", 20_000, 24_000.0, 100_000.0, mobile=True,
                      wireless_shared=True, handoff_interval=90.0),
        ),
    ))
    print(result.classes["mobile"].completion_time)

Through the runner, the same engine sits behind
``python -m repro.experiments run figx_scale --backend fluid``.
"""

from .chaosmap import (
    CrashImpulse,
    RateWindow,
    class_matches,
    schedule_modifiers,
)
from .fluid import FluidSwarm, run_fluid
from .hybrid import (
    FACADE_NAME,
    FocalResult,
    HybridResult,
    HybridSpec,
    HybridSwarm,
    run_hybrid,
)
from .model import (
    CONTENT_MODES,
    ClassResult,
    FluidParams,
    FluidResult,
    PeerClass,
    coded_fetchability,
    content_rate_factor,
    expected_prefix_fraction,
    playability_surrogate,
)
from .validate import (
    DEFAULT_TOLERANCE,
    EQUIVALENCE_TOLERANCE,
    HYBRID_EMBEDDINGS,
    MATCHED_SCENARIOS,
    HybridEmbedding,
    MatchedScenario,
    Observation,
    ValidationReport,
    ValidationRow,
    cross_validate,
    hybrid_cross_validate,
)

__all__ = [
    "CONTENT_MODES",
    "ClassResult",
    "CrashImpulse",
    "DEFAULT_TOLERANCE",
    "EQUIVALENCE_TOLERANCE",
    "FACADE_NAME",
    "FluidParams",
    "FluidResult",
    "FluidSwarm",
    "FocalResult",
    "HYBRID_EMBEDDINGS",
    "HybridEmbedding",
    "HybridResult",
    "HybridSpec",
    "HybridSwarm",
    "MATCHED_SCENARIOS",
    "MatchedScenario",
    "Observation",
    "PeerClass",
    "RateWindow",
    "ValidationReport",
    "ValidationRow",
    "class_matches",
    "coded_fetchability",
    "content_rate_factor",
    "cross_validate",
    "expected_prefix_fraction",
    "hybrid_cross_validate",
    "playability_surrogate",
    "run_fluid",
    "run_hybrid",
    "schedule_modifiers",
]
