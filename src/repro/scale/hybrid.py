"""Hybrid multi-resolution backend: packet focal hosts in a fluid swarm.

The paper's wP2P mechanisms (AM/IA/MA, §5) are TCP-level behaviours the
packet simulator captures in tens-of-peers swarms, while the population
regimes of Violaris & Mavromoustakis and Neely (PAPERS.md) need the
mean-field fluid tier.  This module couples the two so one question can
be asked across both scales: a handful of **focal hosts** run the full
packet stack (TCP, choker, wP2P machinery, strategy policies) inside a
background swarm of thousands evolved by
:class:`~repro.scale.fluid.FluidSwarm`.

Coupling contract (one exchange per ``coupling_interval`` of model
time, with a one-interval lag in each direction):

* **background → focal** — the fluid state is presented to the packet
  clients by a synthetic facade peer named ``"background"``: its
  bitfield tracks the background's aggregate piece availability
  (:meth:`FluidSwarm.availability_proxy`), and its uplink rate is set to
  the fluid allocation for the focal demand
  (``utilization × Σ focal download capacity``).  Protocol overhead,
  TCP dynamics and choker behaviour then apply naturally packet-side.
* **focal → background** — focal traffic enters the fluid ODEs as
  boundary source terms: bytes the facade actually downloaded from
  focal peers plus the spare upload capacity of *complete* focal
  clients become ``external_supply``, and the access download capacity
  of incomplete focal leechers becomes ``external_demand``.

What is **not** captured: per-piece rarity inside the background (the
facade's bitfield fills in index order), background peers connecting to
each other through the packet stack, and tit-for-tat credit between a
focal host and any individual background peer (the facade is one
aggregate identity).

With an empty background the builder degrades to a pure packet swarm —
no facade, no fluid engine, no coupling events — and is constructed to
be event-for-event identical to the matched packet topology used by
:mod:`repro.scale.validate`, which is how the all-focal equivalence
gate of ``scripts/validate_scale.py --backend hybrid`` can demand exact
agreement.

Chaos schedules split by target: the ambient
:class:`~repro.chaos.ChaosController` strikes the focal peers (the
facade is exempt — see ``PeerHandle.chaos_exempt``) while the same
schedule, mapped through :mod:`repro.scale.chaosmap`, strikes the
background classes.  Ambient strategy mixes apply to focal leechers
only; the background is behaviourally described by its peer classes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..bittorrent import ClientConfig
from ..bittorrent.swarm import PeerHandle, SwarmScenario
from ..chaos.schedule import ChaosSchedule
from .fluid import FluidSwarm
from .model import FluidParams, FluidResult, PeerClass

#: Name of the synthetic aggregate peer presenting the background swarm.
FACADE_NAME = "background"


@dataclass(frozen=True)
class HybridSpec:
    """One hybrid co-simulation: focal packet hosts + fluid background.

    The focal topology fields and rate defaults deliberately mirror
    :class:`~repro.scale.validate.MatchedScenario`, so an all-focal
    spec (zero background) reproduces the matched packet swarm exactly
    and the background classes reuse the calibrated fluid
    decomposition.  Rates are bytes/second, counts are peers.
    """

    focal_seeds: int = 1
    focal_wired: int = 0
    focal_mobile: int = 0
    wp2p: bool = False
    background_seeds: float = 0.0
    background_wired: float = 0.0
    background_mobile: float = 0.0
    file_size: int = 1 << 20
    piece_length: int = 1 << 16
    seed_up_rate: float = 64_000.0
    wired_up_rate: float = 32_000.0
    wired_down_rate: float = 400_000.0
    mobile_up_rate: float = 16_000.0
    wireless_rate: float = 80_000.0
    handoff_interval: Optional[float] = None
    handoff_downtime: float = 1.0
    restart_delay: float = 15.0
    #: Model seconds between boundary-flow exchanges.
    coupling_interval: float = 2.0
    #: Calibration multiplier on the facade uplink allocation.
    facade_gain: float = 1.0
    max_time: float = 3_600.0
    dt: float = 0.25

    def __post_init__(self) -> None:
        if self.focal_seeds + self.focal_wired + self.focal_mobile <= 0:
            raise ValueError("need at least one focal host")
        if min(self.background_seeds, self.background_wired,
               self.background_mobile) < 0:
            raise ValueError("background populations must be >= 0")
        if self.coupling_interval <= 0:
            raise ValueError("coupling_interval must be positive")
        if self.facade_gain <= 0:
            raise ValueError("facade_gain must be positive")

    @property
    def background_population(self) -> float:
        return (self.background_seeds + self.background_wired
                + self.background_mobile)

    @property
    def has_background(self) -> bool:
        return self.background_population > 0

    def background_params(self) -> Optional[FluidParams]:
        """The fluid decomposition of the background (None when empty)."""
        if not self.has_background:
            return None
        classes: List[PeerClass] = []
        if self.background_seeds:
            classes.append(PeerClass(
                "bg_seeds", float(self.background_seeds),
                self.seed_up_rate, 1_000_000.0, seed=True,
            ))
        if self.background_wired:
            classes.append(PeerClass(
                "bg_wired", float(self.background_wired),
                self.wired_up_rate, self.wired_down_rate,
            ))
        if self.background_mobile:
            classes.append(PeerClass(
                "bg_mobile", float(self.background_mobile),
                self.mobile_up_rate, self.wireless_rate,
                mobile=True, wp2p=self.wp2p, wireless_shared=True,
                handoff_interval=self.handoff_interval,
                handoff_downtime=self.handoff_downtime,
                restart_delay=self.restart_delay,
                selection="inorder" if self.wp2p else "rarest",
            ))
        return FluidParams(
            file_size=self.file_size,
            piece_length=self.piece_length,
            classes=tuple(classes),
            dt=self.dt,
            max_time=self.max_time,
        )


@dataclass
class FocalResult:
    """Packet-level outcome of one focal host."""

    name: str
    completion_time: Optional[float]
    mean_goodput: float
    seed: bool = False
    mobile: bool = False
    wp2p: bool = False

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "completion_time": self.completion_time,
            "mean_goodput": self.mean_goodput,
            "seed": self.seed,
            "mobile": self.mobile,
            "wp2p": self.wp2p,
        }


@dataclass
class HybridResult:
    """One completed hybrid co-simulation."""

    focal: Dict[str, FocalResult]
    background: Optional[FluidResult]
    horizon: float
    packet_events: int
    fluid_steps: int
    couplings: int
    utilization_mean: float
    external_supply_mean: float
    external_demand_mean: float
    max_time: float

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "focal": {
                name: fr.to_jsonable() for name, fr in sorted(self.focal.items())
            },
            "background": (
                self.background.to_jsonable() if self.background else None
            ),
            "horizon": self.horizon,
            "packet_events": self.packet_events,
            "fluid_steps": self.fluid_steps,
            "couplings": self.couplings,
            "utilization_mean": self.utilization_mean,
            "external_supply_mean": self.external_supply_mean,
            "external_demand_mean": self.external_demand_mean,
            "max_time": self.max_time,
        }

    def focal_completion_time(self) -> float:
        """Mean focal-leecher completion (censored at ``max_time``)."""
        times = [
            fr.completion_time if fr.completion_time is not None else self.max_time
            for fr in self.focal.values() if not fr.seed
        ]
        return sum(times) / len(times) if times else 0.0

    def focal_mean_goodput(self) -> float:
        rates = [fr.mean_goodput for fr in self.focal.values() if not fr.seed]
        return sum(rates) / len(rates) if rates else 0.0


class HybridSwarm:
    """Co-simulation driver binding a packet swarm to a fluid background.

    ``chaos`` is the schedule applied to the **background** through
    :mod:`repro.scale.chaosmap`; the packet side picks up the ambient
    chaos preset on its own (the scenario builder arms it), which is
    how one schedule splits across the two resolutions.
    """

    def __init__(
        self,
        spec: HybridSpec,
        seed: int = 0,
        chaos: Optional[ChaosSchedule] = None,
    ) -> None:
        self.spec = spec
        params = spec.background_params()
        self.fluid: Optional[FluidSwarm] = (
            FluidSwarm(params, chaos=chaos) if params is not None else None
        )
        self.scenario = self._build_scenario(seed)
        self._focal_seed_names = {
            name for name, handle in self.scenario.peers.items()
            if handle.client.complete
        }
        self.facade: Optional[PeerHandle] = (
            self._add_facade() if self.fluid is not None else None
        )
        self._last_uploaded: Dict[str, float] = {}
        self._last_facade_down = 0.0
        self._couplings = 0
        self._utilization_sum = 0.0
        self._supply_sum = 0.0
        self._demand_sum = 0.0
        if self.fluid is not None:
            self.scenario.sim.schedule(
                spec.coupling_interval, self._couple
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_scenario(self, seed: int) -> SwarmScenario:
        """The focal packet swarm, matched peer-for-peer to
        :meth:`repro.scale.validate.MatchedScenario.packet_observation`
        so the zero-background configuration is event-identical to the
        pure packet backend."""
        spec = self.spec
        sc = SwarmScenario(
            seed=seed,
            file_size=spec.file_size,
            piece_length=spec.piece_length,
            tracker_interval=60.0,
        )
        for i in range(spec.focal_seeds):
            sc.add_wired_peer(f"s{i}", complete=True,
                              down_rate=1_000_000, up_rate=spec.seed_up_rate)
        for i in range(spec.focal_wired):
            sc.add_wired_peer(f"w{i}", down_rate=spec.wired_down_rate,
                              up_rate=spec.wired_up_rate)
        # Lazy for the same reason as validate.py: repro.experiments
        # registers scenarios built on this package.
        from ..experiments.fig9_wp2p import rr_only_config
        from ..wp2p import WP2PClient

        for i in range(spec.focal_mobile):
            if spec.wp2p:
                handle = sc.add_wireless_peer(
                    f"m{i}", rate=spec.wireless_rate,
                    config=rr_only_config(), client_factory=WP2PClient,
                )
            else:
                handle = sc.add_wireless_peer(
                    f"m{i}", rate=spec.wireless_rate,
                    config=ClientConfig(task_restart_delay=spec.restart_delay),
                )
            if spec.handoff_interval is not None:
                sc.add_mobility(handle, interval=spec.handoff_interval,
                                downtime=spec.handoff_downtime)
        return sc

    def _add_facade(self) -> PeerHandle:
        """The aggregate background peer, added after every focal host.

        Added last so focal peer construction (and any strategy-mix
        draws) is independent of the background's existence; the facade
        itself never draws a strategy and is exempt from packet-side
        chaos (background faults arrive through the fluid engine).
        """
        spec = self.spec
        n_focal = len(self.scenario.peers)
        availability = self.fluid.availability_proxy()
        num_pieces = self.scenario.torrent.num_pieces
        initial = int(availability * num_pieces + 1e-9)
        config = ClientConfig(
            max_peers=max(30, 2 * n_focal),
            unchoke_slots=max(4, n_focal),
            numwant=max(50, 2 * n_focal),
        )
        handle = self.scenario.add_wired_peer(
            FACADE_NAME,
            complete=initial >= num_pieces,
            initial_pieces=(
                range(initial) if 0 < initial < num_pieces else None
            ),
            down_rate=2_000_000.0,
            # One background seed's worth of capacity until the first
            # coupling exchange installs the real fluid allocation (an
            # in-flight packet keeps its serialization rate, so starting
            # near zero would stall the handshake for seconds).
            up_rate=spec.seed_up_rate,
            config=config,
            strategy="reference",
        )
        handle.chaos_exempt = True
        return handle

    # ------------------------------------------------------------------
    # Coupling
    # ------------------------------------------------------------------
    def _focal_download_capacity(self, handle: PeerHandle) -> float:
        if handle.wireless:
            return self.spec.wireless_rate
        return self.spec.wired_down_rate

    def _focal_upload_capacity(self, handle: PeerHandle) -> float:
        if handle.wireless:
            return self.spec.mobile_up_rate
        if handle.name in self._focal_seed_names:
            return self.spec.seed_up_rate
        return self.spec.wired_up_rate

    def _couple(self) -> None:
        """One boundary-flow exchange (both directions, one-interval lag)."""
        spec = self.spec
        sim = self.scenario.sim
        interval = spec.coupling_interval

        # focal → background: measured facade intake plus the spare
        # upload capacity of complete focal clients.
        supply = 0.0
        demand = 0.0
        for name, handle in self.scenario.peers.items():
            if handle is self.facade:
                continue
            client = handle.client
            up_total = float(client.uploaded.total)
            up_delta = up_total - self._last_uploaded.get(name, 0.0)
            self._last_uploaded[name] = up_total
            if client.complete:
                cap = self._focal_upload_capacity(handle)
                supply += max(0.0, cap - up_delta / interval)
            else:
                demand += self._focal_download_capacity(handle)
        facade_down = float(self.facade.client.downloaded.total)
        supply += (facade_down - self._last_facade_down) / interval
        self._last_facade_down = facade_down

        self.fluid.external_supply = supply
        self.fluid.external_demand = demand
        self.fluid.advance(sim.now)

        # background → focal: fluid allocation for the focal demand,
        # applied as the facade's raw uplink rate (protocol overhead
        # then happens naturally packet-side).
        utilization = self.fluid.last_utilization
        rate = max(1.0, spec.facade_gain * utilization * demand)
        self.facade.host.interface.link.uplink.set_rate(rate)
        self._sync_facade_bitfield()

        self._couplings += 1
        self._utilization_sum += utilization
        self._supply_sum += supply
        self._demand_sum += demand
        if sim.now < spec.max_time:
            sim.schedule(interval, self._couple)

    def _sync_facade_bitfield(self) -> None:
        """Grow the facade's bitfield with background piece availability.

        Grants whole pieces (index order — per-piece rarity inside the
        background is deliberately not modelled), keeping
        ``bytes_completed`` consistent with the bitfield and announcing
        each grant with HAVE so focal availability maps stay audit-clean.
        Pieces mid-download from focal peers are skipped (they complete
        through the normal block path).
        """
        client = self.facade.client
        manager = client.manager
        bitfield = manager.bitfield
        target = int(self.fluid.availability_proxy() * bitfield.size + 1e-9)
        if bitfield.count() >= target:
            return
        for index in list(bitfield.missing()):
            if index in manager._partials:
                continue
            bitfield.set(index)
            manager.bytes_completed += client.torrent.piece_size(index)
            for conn in client.connected_peers():
                conn.send_have(index)
            if bitfield.count() >= target:
                break

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> HybridResult:
        spec = self.spec
        sc = self.scenario
        sc.start_all()
        leechers = [
            name for name, handle in sc.peers.items()
            if handle is not self.facade and not handle.client.complete
        ]
        sc.run_until_complete(names=leechers, timeout=spec.max_time)

        focal: Dict[str, FocalResult] = {}
        for name, handle in sc.peers.items():
            if handle is self.facade:
                continue
            client = handle.client
            completion = client.completion_time
            was_seed = name not in leechers
            goodput = 0.0
            if not was_seed:
                t = completion if completion is not None else spec.max_time
                if t > 0:
                    goodput = client.manager.bytes_completed / t
            focal[name] = FocalResult(
                name=name,
                completion_time=0.0 if was_seed else completion,
                mean_goodput=goodput,
                seed=was_seed,
                mobile=handle.wireless,
                wp2p=spec.wp2p and handle.wireless,
            )

        background: Optional[FluidResult] = None
        fluid_steps = 0
        if self.fluid is not None:
            # Bring the background up to the packet horizon, then close.
            self.fluid.external_supply = 0.0
            self.fluid.external_demand = 0.0
            self.fluid.advance(sc.sim.now)
            background = self.fluid.finish()
            fluid_steps = background.steps

        couplings = self._couplings or 1
        return HybridResult(
            focal=focal,
            background=background,
            horizon=sc.sim.now,
            packet_events=sc.sim.events_processed,
            fluid_steps=fluid_steps,
            couplings=self._couplings,
            utilization_mean=self._utilization_sum / couplings,
            external_supply_mean=self._supply_sum / couplings,
            external_demand_mean=self._demand_sum / couplings,
            max_time=spec.max_time,
        )


def run_hybrid(
    spec: HybridSpec,
    seed: int = 0,
    chaos: Optional[ChaosSchedule] = None,
) -> HybridResult:
    """Build a :class:`HybridSwarm` and run it to completion."""
    return HybridSwarm(spec, seed=seed, chaos=chaos).run()
