"""Per-asset-class steady-state surrogate for catalog workloads.

The fluid engine (:mod:`repro.scale.fluid`) integrates *one* swarm as a
set of peer classes.  A CDN catalog is thousands of swarms — integrating
each would put the cost back on the catalog size.  This module is the
asset-side analogue of :class:`~repro.scale.model.PeerClass`: it treats
every asset (or popularity band of assets) as a **class** and solves a
deterministic supply/demand fixed point per class, so a 10^4-asset
catalog costs O(bands), not O(assets × time steps).

The balance per asset class, in bytes/second:

* **demand** — requests arrive at ``request_rate`` and each wants
  ``size`` bytes, so steady-state byte demand is ``request_rate * size``
  with ``N = request_rate * T`` leechers concurrently fetching (Little's
  law at the fixed-point latency ``T``).
* **peer supply** — a still-downloading peer contributes
  ``warm_upload`` of its uplink; a finished peer keeps seeding for
  ``seed_dwell`` seconds, contributing its full uplink.  Both are scaled
  by the population's duty-cycle ``peer_availability`` (mobile handoffs;
  compute it with :meth:`~repro.scale.model.PeerClass.availability`) and
  by ``uplink_share`` (the asset's slice of each peer's *shared* multi-
  swarm uplink).
* **origin supply** — ``origin_rate`` when the placement policy has the
  asset active.  The origin is one more always-on seed, so it carries a
  share of the warm byte flow proportional to its slice of total supply.
  The first copy of any asset additionally always comes from the origin
  (no peer has it), after ``activation_delay`` for a non-pinned asset —
  that cold transfer is what the offload fraction can never reclaim on a
  one-request tail asset.

The same calibration constants as the fluid engine apply
(``efficiency``, ``startup_delay``), so the two tiers stay mutually
anchored.
"""

from __future__ import annotations

from dataclasses import dataclass

_FIXED_POINT_ITERATIONS = 24


@dataclass(frozen=True)
class AssetClassParams:
    """One asset class (an asset, or a popularity band treated as one)."""

    size: float  # bytes per asset
    request_rate: float  # requests/second for this asset
    download_rate: float  # per-leecher access downlink, bytes/s
    upload_rate: float  # per-peer uplink, bytes/s
    peer_availability: float = 1.0  # duty cycle of the peer population
    uplink_share: float = 1.0  # this asset's slice of the shared uplink
    seed_dwell: float = 150.0  # seconds a finished peer keeps seeding
    origin_rate: float = 0.0  # origin uplink slice for this asset
    pinned: bool = False  # seeded from t=0 (no activation delay)
    activation_delay: float = 3.0
    efficiency: float = 0.60
    startup_delay: float = 3.0
    warm_upload: float = 0.5

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("size must be > 0")
        if self.request_rate < 0:
            raise ValueError("request_rate must be >= 0")
        if self.download_rate <= 0 or self.upload_rate < 0:
            raise ValueError("rates must be positive (upload may be 0)")
        if not 0.0 < self.peer_availability <= 1.0:
            raise ValueError("peer_availability must be in (0, 1]")
        if not 0.0 < self.uplink_share <= 1.0:
            raise ValueError("uplink_share must be in (0, 1]")
        if self.seed_dwell < 0 or self.origin_rate < 0:
            raise ValueError("seed_dwell and origin_rate must be >= 0")
        if self.activation_delay < 0 or self.startup_delay < 0:
            raise ValueError("delays must be >= 0")
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError("efficiency must be in (0, 1]")
        if not 0.0 <= self.warm_upload <= 1.0:
            raise ValueError("warm_upload must be in [0, 1]")


@dataclass(frozen=True)
class AssetClassOutcome:
    """Window outcome of one asset class under the fixed point."""

    latency: float  # mean request latency (s), censored at the horizon
    cold_latency: float  # first-copy latency (origin transfer)
    served_fraction: float  # requests completing inside the horizon
    requests: float  # expected requests over the window
    total_bytes: float  # bytes the window's requests want
    origin_bytes: float  # bytes the origin actually serves
    offload: float  # 1 - origin_bytes / total_bytes
    concurrency: float  # Little's-law concurrent leechers


def asset_class_outcome(
    p: AssetClassParams, horizon: float
) -> AssetClassOutcome:
    """Solve one asset class's supply/demand balance over ``horizon``.

    Deterministic (a pure function of the params), monotone in
    ``peer_availability`` — less-available peers supply less, the origin
    absorbs the deficit, offload falls — which is exactly the ordering
    the CDN mobility gate asserts.
    """
    if horizon <= 0:
        raise ValueError("horizon must be > 0")
    # Effective per-leecher goodput ceiling: protocol efficiency plus the
    # requester's own duty cycle (a handed-off mobile host downloads
    # nothing mid-handoff).
    d_eff = p.download_rate * p.efficiency * p.peer_availability
    # Per-peer useful uplink toward this asset.
    u_eff = p.upload_rate * p.uplink_share * p.peer_availability * p.efficiency
    activation = 0.0 if p.pinned else p.activation_delay

    # Cold latency: the first copy streams from the origin alone.
    if p.origin_rate > 0:
        cold_rate = min(d_eff, p.origin_rate * p.efficiency)
        cold_latency = p.startup_delay + activation + p.size / cold_rate
    else:
        cold_latency = horizon  # censored: nobody has the bytes
    cold_latency = min(cold_latency, horizon)

    rate = float(p.request_rate)
    if rate <= 0:
        return AssetClassOutcome(
            latency=cold_latency, cold_latency=cold_latency,
            served_fraction=1.0 if cold_latency < horizon else 0.0,
            requests=0.0, total_bytes=0.0, origin_bytes=0.0,
            offload=1.0, concurrency=0.0,
        )

    # Warm fixed point: latency <-> concurrency <-> peer supply.
    latency = p.startup_delay + p.size / d_eff
    origin_supply = p.origin_rate * p.efficiency
    peer_supply = 0.0
    for _ in range(_FIXED_POINT_ITERATIONS):
        concurrency = rate * latency
        peer_supply = u_eff * (
            concurrency * p.warm_upload + rate * p.seed_dwell
        )
        demand = max(concurrency, 1.0) * d_eff
        utilization = min(1.0, (peer_supply + origin_supply) / demand)
        goodput = max(d_eff * utilization, 1e-9)
        latency = p.startup_delay + p.size / goodput
    latency = min(latency, horizon)
    concurrency = rate * latency

    requests = rate * horizon
    total_bytes = requests * p.size
    # Warm-flow split: the origin is one more (always-on) seed competing
    # for unchoke slots, so it carries its proportional share of the
    # served byte flow — shrinking peer supply (mobility) shifts bytes
    # onto the origin smoothly rather than only past a deficit cliff.
    demand_rate = rate * p.size
    supply = peer_supply + origin_supply
    if supply > 0:
        served_rate = min(demand_rate, supply)
        origin_used_rate = served_rate * (origin_supply / supply)
    else:
        origin_used_rate = 0.0
    warm_window = max(0.0, horizon - cold_latency)
    origin_bytes = min(p.size, total_bytes) + origin_used_rate * warm_window
    origin_bytes = min(origin_bytes, total_bytes)
    offload = 1.0 - origin_bytes / total_bytes if total_bytes > 0 else 1.0

    # Mean latency blends the one cold fetch into the warm population;
    # served fraction censors requests arriving too late to finish.
    cold_weight = min(1.0, 1.0 / max(requests, 1.0))
    mean_latency = cold_weight * cold_latency + (1.0 - cold_weight) * latency
    served = max(0.0, 1.0 - mean_latency / horizon)
    return AssetClassOutcome(
        latency=mean_latency,
        cold_latency=cold_latency,
        served_fraction=served,
        requests=requests,
        total_bytes=total_bytes,
        origin_bytes=origin_bytes,
        offload=offload,
        concurrency=concurrency,
    )
