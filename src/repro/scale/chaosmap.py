"""Mapping :mod:`repro.chaos` fault schedules onto fluid rate parameters.

The packet-level simulator injects faults as discrete events against
individual hosts and links; the fluid engine has no hosts — only
per-class *rates*.  This module translates a
:class:`~repro.chaos.ChaosSchedule` into the two things a mean-field
model can consume:

* :class:`RateWindow` — a time interval during which a class's rates are
  scaled (availability, upload/download capacity, goodput efficiency)
  and/or population flows change (churn departure + rejoin rates,
  rejoin freezes during tracker outages, extra handoff pressure);
* :class:`CrashImpulse` — an instantaneous knock-out of the matching
  online population, rejoining after ``downtime`` (or never).

The translation is a **pure function** of the schedule — no randomness,
no clock — mirroring the purity contract of
:func:`repro.chaos.preset_schedule`, so a ``(preset, intensity)`` pair
keys fluid results in the cache exactly as it keys packet-level ones.
Poisson churn, drawn peer-by-peer at arm time in the packet simulator,
becomes its own mean: a deterministic departure *rate* over the churn
window — which is precisely the mean-field limit of the same process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..chaos.schedule import (
    ChaosSchedule,
    CorruptionBurst,
    HandoffStorm,
    LinkBlackout,
    LinkDegradation,
    PeerChurn,
    PeerCrash,
    TrackerOutage,
)
from .model import PeerClass


def class_matches(cls: PeerClass, target: str) -> bool:
    """Does the chaos ``target`` selector apply to this peer class?

    Mirrors the packet-level controller's fire-time semantics: ``"*"``
    matches everyone, ``"wired"`` the fixed classes, ``"wireless"`` and
    ``"mobile"`` the mobile ones, anything else is an exact class name.
    """
    if target == "*":
        return True
    if target == "wired":
        return not cls.mobile
    if target in ("wireless", "mobile"):
        return cls.mobile
    return cls.name == target


@dataclass(frozen=True)
class RateWindow:
    """One interval of modified class rates, ``[start, end)``."""

    start: float
    end: float
    target: str = "*"
    availability_factor: float = 1.0
    upload_factor: float = 1.0
    download_factor: float = 1.0
    efficiency_factor: float = 1.0
    #: Extra per-online-peer departure rate (1/s) — Poisson churn's mean.
    departure_rate: float = 0.0
    #: Rejoin rate (1/s) for the churned-offline pool this window feeds.
    rejoin_rate: float = 0.0
    #: Tracker outage: offline peers cannot re-announce, so rejoins stall.
    freeze_rejoin: bool = False
    #: Additional forced handoffs per second (storm pressure).
    extra_handoff_rate: float = 0.0
    #: Interface downtime per forced handoff, seconds.
    extra_handoff_downtime: float = 0.0

    def active(self, t: float) -> bool:
        return self.start <= t < self.end


@dataclass(frozen=True)
class CrashImpulse:
    """Instantaneous crash of the matching online population at ``t``.

    ``downtime=None`` means the peers never rejoin (population loss);
    otherwise they drain back online at rate ``1/downtime``.
    """

    t: float
    target: str = "*"
    downtime: float = 0.0
    permanent: bool = False


def schedule_modifiers(
    schedule: ChaosSchedule,
) -> Tuple[Tuple[RateWindow, ...], Tuple[CrashImpulse, ...]]:
    """Translate ``schedule`` into fluid rate windows and crash impulses.

    Every :mod:`repro.chaos` event kind maps onto the rate axis it
    perturbs in the mean-field model:

    ===================  ===============================================
    ``peer_churn``        departure rate (= rate/60 per peer/s) + rejoin
    ``peer_crash``        crash impulse (rejoin after downtime, or never)
    ``tracker_outage``    rejoin freeze (offline peers cannot re-announce)
    ``link_blackout``     availability 0 for the targeted classes
    ``link_degradation``  capacity factors; BER folds into efficiency
    ``handoff_storm``     extra handoff rate over the storm span
    ``corruption_burst``  goodput efficiency (corrupt pieces re-fetched)
    ===================  ===============================================
    """
    windows: List[RateWindow] = []
    impulses: List[CrashImpulse] = []
    for event in schedule:
        if isinstance(event, PeerChurn):
            if event.duration > 0 and event.rate_per_min > 0:
                windows.append(RateWindow(
                    start=event.start,
                    end=event.start + event.duration,
                    target=event.target,
                    departure_rate=event.rate_per_min / 60.0,
                    rejoin_rate=(1.0 / event.downtime) if event.downtime > 0 else 0.0,
                ))
        elif isinstance(event, PeerCrash):
            impulses.append(CrashImpulse(
                t=event.start,
                target=event.target,
                downtime=event.downtime or 0.0,
                permanent=event.downtime is None,
            ))
        elif isinstance(event, TrackerOutage):
            windows.append(RateWindow(
                start=event.start,
                end=event.start + event.duration,
                target="*",
                freeze_rejoin=True,
            ))
        elif isinstance(event, LinkBlackout):
            windows.append(RateWindow(
                start=event.start,
                end=event.start + event.duration,
                target=event.target,
                availability_factor=0.0,
            ))
        elif isinstance(event, LinkDegradation):
            # A bit-error rate turns into lost goodput: every corrupted
            # packet is retransmitted, so efficiency scales with the
            # packet survival probability at a nominal 1500 B frame.
            ber_factor = 1.0
            if event.ber:
                ber_factor = max(0.0, (1.0 - event.ber) ** (1500 * 8))
            windows.append(RateWindow(
                start=event.start,
                end=event.start + event.duration,
                target=event.target,
                upload_factor=event.rate_factor,
                download_factor=event.rate_factor,
                efficiency_factor=ber_factor,
            ))
        elif isinstance(event, HandoffStorm):
            span = event.count * event.spacing
            windows.append(RateWindow(
                start=event.start,
                end=event.start + span,
                target=event.target,
                extra_handoff_rate=1.0 / event.spacing,
                extra_handoff_downtime=event.downtime,
            ))
        elif isinstance(event, CorruptionBurst):
            windows.append(RateWindow(
                start=event.start,
                end=event.start + event.duration,
                target=event.target,
                efficiency_factor=1.0 - event.probability,
            ))
        # Unknown event kinds are ignored: the fluid tier models what it
        # can and leaves the rest to the packet-level ground truth.
    windows.sort(key=lambda w: (w.start, w.end, w.target))
    impulses.sort(key=lambda i: (i.t, i.target))
    return tuple(windows), tuple(impulses)
