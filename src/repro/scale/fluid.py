"""The deterministic mean-field fluid swarm engine.

:class:`FluidSwarm` integrates a population/fluid model of a BitTorrent
swarm with a mobile-host fraction (after the hybridised-swarm evaluation
of Violaris & Mavromoustakis, arXiv:1009.1708, and the analytical rate
models of Neely, arXiv:1202.4451): peer classes
(:class:`~repro.scale.model.PeerClass`) carry populations, mean download
progress, and duty-cycle availabilities, coupled through shared upload
capacity and piece availability:

* **supply** — seeds and complete classes upload at capacity; leechers
  contribute once they hold enough pieces to be useful (the
  ``warm_fraction`` ramp is the piece-availability coupling);
* **demand** — online leechers ask for their access capacity; on a
  shared wireless cell uploads steal download airtime (Figure 3(b)),
  which is why wP2P classes throttle uploads LIHD-style
  (``lihd_level * upload_rate``) while default mobile clients upload at
  will and pay for it;
* **mobility** — handoff cycles cost downtime plus a per-client recovery
  penalty (task restart for the default client, cheap re-announce for
  wP2P), folded into a per-class availability factor;
* **churn/chaos** — :mod:`repro.scale.chaosmap` windows scale the rates
  and move population between online and offline pools.

Everything is explicit-Euler with a fixed ``dt``, pure float arithmetic
over a handful of classes, so the cost is independent of swarm size —
a million-peer swarm integrates in the same milliseconds as a ten-peer
one — and results are bit-identical wherever they run.

Observability: the engine owns a
:class:`~repro.obs.metrics.MetricsRegistry` and a
:class:`~repro.obs.tracing.TraceBus` (both clocked on *model* time, and
the bus picks up globally installed sinks exactly like a packet-level
:class:`~repro.sim.kernel.Simulator`), emitting ``scale.*`` metrics and
``scale``-layer trace events.
"""

from __future__ import annotations

import time as _time
from typing import Dict, List, Optional, Sequence, Tuple

from ..chaos.schedule import ChaosSchedule
from ..obs import tracing
from ..obs.metrics import MetricsRegistry
from .chaosmap import CrashImpulse, RateWindow, class_matches, schedule_modifiers
from .model import (
    ClassResult,
    FluidParams,
    FluidResult,
    PeerClass,
    content_rate_factor,
    playability_surrogate,
)


class _ClassState:
    """Mutable integration state for one peer class."""

    __slots__ = (
        "cls", "online", "pools", "progress", "complete", "completion_time",
        "alive", "peak_online", "samples",
    )

    def __init__(self, cls: PeerClass) -> None:
        self.cls = cls
        self.online = float(cls.count)
        #: churned/crashed population pools: [amount, rejoin_rate] pairs.
        self.pools: List[List[float]] = []
        self.progress = 1.0 if cls.seed else 0.0
        self.complete = cls.seed
        self.completion_time: Optional[float] = 0.0 if cls.seed else None
        self.alive = float(cls.count)
        self.peak_online = float(cls.count)
        self.samples: List[Tuple[float, float]] = []

    @property
    def offline(self) -> float:
        return sum(amount for amount, _ in self.pools)


class FluidSwarm:
    """Mean-field swarm integrator (see module docstring).

    >>> params = FluidParams(file_size=1 << 22, piece_length=1 << 16,
    ...                      classes=(seed_cls, leech_cls))   # doctest: +SKIP
    >>> result = FluidSwarm(params).run()                     # doctest: +SKIP
    >>> result.classes["leech"].completion_time               # doctest: +SKIP
    """

    def __init__(
        self,
        params: FluidParams,
        chaos: Optional[ChaosSchedule] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.params = params
        self.t = 0.0
        self.steps = 0
        self.wall_seconds = 0.0
        self.metrics = (
            metrics if metrics is not None
            else MetricsRegistry(clock=lambda: self.t)
        )
        self.trace = tracing.TraceBus(clock=lambda: self.t)
        tracing.apply_defaults(self.trace)
        self.windows: Tuple[RateWindow, ...] = ()
        self.impulses: Tuple[CrashImpulse, ...] = ()
        if chaos is not None and not chaos.empty:
            self.windows, self.impulses = schedule_modifiers(chaos)
        self._states = [_ClassState(c) for c in params.classes]
        self._active_window_count = 0
        self._utilization_sum = 0.0
        self._utilization_steps = 0
        self._next_sample = 0.0
        self._next_impulse = 0
        #: Boundary source terms (B/s) injected by a co-simulation driver
        #: (the hybrid backend): extra upload capacity offered to, and
        #: extra download demand placed on, the background swarm.  Both
        #: default to 0.0, which leaves pure-fluid runs bit-identical.
        self.external_supply = 0.0
        self.external_demand = 0.0
        #: Boundary observables refreshed by every :meth:`_step`.
        self.last_supply = 0.0
        self.last_demand = 0.0
        self.last_utilization = 1.0

    # ------------------------------------------------------------------
    def run(self) -> FluidResult:
        """Integrate until every leecher class completes (or ``max_time``)."""
        params = self.params
        if self.trace.enabled:
            self.trace.event(
                "scale", "engine_start",
                classes=[s.cls.name for s in self._states],
                peers=params.total_peers,
                dt=params.dt,
                chaos_windows=len(self.windows),
            )
        self.advance(params.max_time, stop_when_finished=True)
        return self.finish()

    def advance(self, until: float, *, stop_when_finished: bool = False) -> None:
        """Integrate forward until model time reaches ``until``.

        Incremental driver used both by :meth:`run` and by co-simulation
        (the hybrid backend calls ``advance`` once per coupling interval,
        refreshing :attr:`external_supply`/:attr:`external_demand` between
        calls).  Sampling and crash-impulse cursors live on the instance,
        so successive calls continue exactly where the last one stopped.
        """
        params = self.params
        started = _time.perf_counter()
        while self.t < until:
            if stop_when_finished and self._finished():
                break
            # Crash impulses scheduled inside this step fire first.
            while (
                self._next_impulse < len(self.impulses)
                and self.impulses[self._next_impulse].t < self.t + params.dt
            ):
                self._fire_impulse(self.impulses[self._next_impulse])
                self._next_impulse += 1
            if self.t + 1e-12 >= self._next_sample:
                for state in self._states:
                    state.samples.append((self.t, state.progress))
                self._next_sample += params.sample_interval
            self._step(params.dt)
            self.t += params.dt
            self.steps += 1
        self.wall_seconds += _time.perf_counter() - started

    def finish(self) -> FluidResult:
        """Record tail samples and summary metrics, and build the result."""
        for state in self._states:
            state.samples.append((self.t, state.progress))
        self.metrics.counter("scale.steps").add(self.steps)
        self.metrics.gauge("scale.horizon").set(self.t)
        if self.trace.enabled:
            self.trace.event(
                "scale", "engine_finish",
                steps=self.steps, horizon=self.t,
                completed=[
                    s.cls.name for s in self._states if s.complete
                ],
            )
        return self._result()

    # ------------------------------------------------------------------
    def _finished(self) -> bool:
        return all(
            s.complete for s in self._states if not s.cls.seed
        ) and all(s.cls.arrival_rate == 0.0 for s in self._states)

    @property
    def finished(self) -> bool:
        """True once every leecher class has completed (no open arrivals)."""
        return self._finished()

    def availability_proxy(self) -> float:
        """Aggregate piece availability the background presents outward.

        1.0 while any seed/complete class is still alive (every piece is
        somewhere in the swarm); otherwise the best class-mean progress.
        """
        best = 0.0
        for state in self._states:
            if (state.cls.seed or state.complete) and state.alive > 0.0:
                return 1.0
            best = max(best, state.progress)
        return best

    def _fire_impulse(self, impulse: CrashImpulse) -> None:
        for state in self._states:
            if not class_matches(state.cls, impulse.target):
                continue
            # The impulse hits everything it can reach: the online mass
            # plus anything already parked in recovery pools from earlier
            # crashes — otherwise back-to-back impulses strand pool mass
            # (non-permanent) or leave it alive forever (permanent).
            amount = state.online + state.offline
            if amount <= 0.0:
                continue
            rate = (1.0 / impulse.downtime) if impulse.downtime > 0 else 0.0
            if impulse.permanent:
                state.online = 0.0
                state.pools = []
                state.alive -= amount
            elif rate > 0.0:
                state.online = 0.0
                state.pools = [[amount, rate]]
            else:
                # Zero-downtime transient crash: nothing moves; pools
                # keep recovering at their original rates.
                amount = state.online
                if amount <= 0.0:
                    continue
            self.metrics.counter("scale.crashes").add(amount)
            if self.trace.enabled:
                self.trace.event(
                    "scale", "crash_impulse",
                    target=state.cls.name, amount=amount,
                    permanent=impulse.permanent,
                )

    def _active_windows(self, cls: PeerClass) -> List[RateWindow]:
        t = self.t
        return [
            w for w in self.windows if w.active(t) and class_matches(cls, w.target)
        ]

    # ------------------------------------------------------------------
    def _step(self, dt: float) -> None:
        params = self.params
        file_size = float(params.file_size)
        warm = max(params.warm_fraction, 1.0 / max(params.num_pieces, 1))

        supply_total = 0.0
        demand_total = 0.0
        # Piece-holder mass for the coded-availability surrogate; only
        # tracked when a content mode is set (the default "" skips every
        # branch below, leaving pure-fluid runs bit-identical).
        content_on = params.content_mode != ""
        holder_online = 0.0
        holder_total = 0.0
        per_class: List[Tuple[_ClassState, float, float, float]] = []
        freeze_rejoin = any(
            w.freeze_rejoin for w in self.windows if w.active(self.t)
        )
        active_count = 0

        for state in self._states:
            cls = state.cls
            windows = self._active_windows(cls)
            active_count += len(windows)

            availability_factor = 1.0
            upload_factor = 1.0
            download_factor = 1.0
            efficiency_factor = 1.0
            departure_rate = params.departure_rate if not cls.seed else 0.0
            extra_handoff_rate = 0.0
            extra_handoff_downtime = 0.0
            churn_rejoin_rate = 0.0
            for w in windows:
                availability_factor *= w.availability_factor
                upload_factor *= w.upload_factor
                download_factor *= w.download_factor
                efficiency_factor *= w.efficiency_factor
                departure_rate += w.departure_rate
                extra_handoff_rate += w.extra_handoff_rate
                extra_handoff_downtime = max(
                    extra_handoff_downtime, w.extra_handoff_downtime
                )
                churn_rejoin_rate = max(churn_rejoin_rate, w.rejoin_rate)

            # Rejoins (stalled entirely while the tracker is dark).
            if not freeze_rejoin and state.pools:
                remaining: List[List[float]] = []
                for pool in state.pools:
                    amount, rate = pool
                    drained = amount * min(1.0, rate * dt)
                    state.online += drained
                    amount -= drained
                    if amount > 1e-9:
                        remaining.append([amount, rate])
                state.pools = remaining

            # Churn departures into a pool that rejoins at the window's rate.
            if departure_rate > 0.0 and state.online > 0.0:
                departed = state.online * min(1.0, departure_rate * dt)
                state.online -= departed
                if churn_rejoin_rate > 0.0:
                    state.pools.append([departed, churn_rejoin_rate])
                else:
                    state.alive -= departed  # aborted for good

            # Arrivals enter at zero progress, diluting the class mean.
            if cls.arrival_rate > 0.0:
                joined = cls.arrival_rate * dt
                old_alive = state.alive
                state.online += joined
                state.alive += joined
                if state.alive > 0.0 and not state.complete:
                    state.progress *= old_alive / state.alive

            state.peak_online = max(state.peak_online, state.online)

            # Duty-cycle availability: scheduled handoffs + storm pressure.
            availability = cls.availability()
            if extra_handoff_rate > 0.0:
                penalty = extra_handoff_rate * (
                    extra_handoff_downtime + cls.recovery_cost
                )
                availability *= max(0.0, 1.0 - penalty)
            availability *= availability_factor

            # Effective upload per online peer: wP2P throttles LIHD-style.
            u_cap = cls.upload_rate * upload_factor
            if cls.wp2p and not cls.seed:
                u_cap *= cls.lihd_level
            ramp = 1.0 if state.complete else min(1.0, state.progress / warm)
            u_used = u_cap * ramp
            supply_total += state.online * availability * u_used
            if content_on and (cls.seed or state.complete):
                # Custody holders: the online, duty-cycled fraction of
                # the piece-holding population is what keeps individual
                # coded indices reachable.
                holder_online += state.online * availability
                holder_total += state.online + state.offline

            # Download demand: shared wireless airtime charges for uploads.
            if state.complete:
                per_class.append((state, 0.0, availability, efficiency_factor))
                continue
            d_cap = cls.download_rate * download_factor
            if cls.wireless_shared:
                d_cap = max(0.0, d_cap - cls.upload_coupling * u_used)
            demand_total += state.online * availability * d_cap
            per_class.append((state, d_cap, availability, efficiency_factor))

        # Boundary flows from a co-simulation driver (zero for pure-fluid
        # runs, so adding them keeps results bit-identical).
        supply_total += self.external_supply
        demand_total += self.external_demand

        utilization = 0.0
        if demand_total > 0.0:
            utilization = min(1.0, supply_total / demand_total)
            self._utilization_sum += utilization
            self._utilization_steps += 1
        self.last_supply = supply_total
        self.last_demand = demand_total
        self.last_utilization = utilization if demand_total > 0.0 else 1.0

        if self._active_window_count != active_count and self.trace.enabled:
            self.trace.event(
                "scale", "chaos_windows_active", count=active_count,
            )
        self._active_window_count = active_count

        content_factor = 1.0
        if content_on:
            # No dedicated holder mass (all seeds gone): fall back to the
            # outward availability proxy so the swarm degrades, not NaNs.
            piece_availability = (
                holder_online / holder_total
                if holder_total > 0.0
                else self.availability_proxy()
            )
            content_factor = content_rate_factor(
                params.content_mode, piece_availability,
                params.code_k, params.code_n,
            )

        if self.t < params.startup_delay:
            return

        for state, d_cap, availability, efficiency_factor in per_class:
            if state.complete or d_cap <= 0.0:
                continue
            total_pop = state.online + state.offline
            if total_pop <= 0.0:
                continue
            rate = (
                d_cap * availability * utilization
                * params.efficiency * efficiency_factor * content_factor
            )
            # Class-mean progress: only the online fraction downloads.
            dp = rate * (state.online / total_pop) * dt / file_size
            if dp <= 0.0:
                continue
            new_progress = state.progress + dp
            if new_progress >= 1.0:
                overshoot = (1.0 - state.progress) / dp
                state.completion_time = self.t + overshoot * dt
                state.progress = 1.0
                state.complete = True
                self.metrics.counter("scale.completions").add(state.alive)
                if self.trace.enabled:
                    self.trace.event(
                        "scale", "class_complete",
                        peer_class=state.cls.name,
                        completed_at=state.completion_time,
                        peers=state.alive,
                    )
            else:
                state.progress = new_progress

    # ------------------------------------------------------------------
    def _result(self) -> FluidResult:
        params = self.params
        classes: Dict[str, ClassResult] = {}
        grid = [i / 50.0 for i in range(51)]  # downloaded fraction 0..1
        for state in self._states:
            cls = state.cls
            completion = state.completion_time
            goodput = 0.0
            if not cls.seed and completion:
                goodput = params.file_size / completion
            playability = [
                (100.0 * d,
                 100.0 * playability_surrogate(d, params.num_pieces, cls.selection))
                for d in grid
            ]
            classes[cls.name] = ClassResult(
                name=cls.name,
                completion_time=completion,
                mean_goodput=goodput,
                seed=cls.seed,
                progress=list(state.samples),
                playability=playability,
                final_progress=state.progress,
                peak_online=state.peak_online,
            )
        peak = max((s.peak_online for s in self._states), default=0.0)
        self.metrics.gauge("scale.peers_peak").set(peak)
        utilization_mean = (
            self._utilization_sum / self._utilization_steps
            if self._utilization_steps else 0.0
        )
        return FluidResult(
            classes=classes,
            steps=self.steps,
            horizon=self.t,
            peak_population=sum(s.alive for s in self._states),
            utilization_mean=utilization_mean,
        )


def run_fluid(
    params: FluidParams,
    chaos: Optional[ChaosSchedule] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> FluidResult:
    """Build a :class:`FluidSwarm` and run it to completion."""
    return FluidSwarm(params, chaos=chaos, metrics=metrics).run()
