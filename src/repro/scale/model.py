"""Typed inputs and outputs of the mean-field fluid swarm engine.

A fluid swarm is described by a handful of **peer classes** — population
aggregates sharing one behaviour (wired seed, wired leecher, mobile
leecher with the default client, mobile leecher running wP2P) — plus the
torrent geometry and a few global rates.  The engine
(:class:`~repro.scale.fluid.FluidSwarm`) evolves per-class populations
and mean download progress with deterministic ODE-style updates, so its
cost is a function of the *number of classes and time steps*, never the
number of peers: a 10^6-peer swarm integrates exactly as fast as a
10-peer one.

Everything here is plain data (frozen dataclasses with JSON-friendly
fields) so fluid scenarios hash, cache, and ship to runner workers the
same way packet-level ones do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Piece-selection surrogates used for the analytic playability curve.
SELECTION_POLICIES = ("rarest", "inorder")

#: Content-mode surrogates (see :mod:`repro.coding`): ``""`` is the
#: default pipeline with no starvation modelling, ``"replication"``
#: models custody-seeded replication (each piece has one holder), and
#: ``"group"`` models k-of-n erasure groups.
CONTENT_MODES = ("", "replication", "group")


@dataclass(frozen=True)
class PeerClass:
    """One population aggregate of behaviourally identical peers.

    Rates are bytes/second.  ``wireless_shared`` marks the paper's
    shared-medium wireless cell: the class's uploads and downloads draw
    on one combined airtime budget (``download_rate``), so every byte
    uploaded costs ``upload_coupling`` bytes of download capacity —
    the Figure 3(b) effect LIHD exists to manage.

    Mobile classes hand off IP addresses every ``handoff_interval``
    seconds on average, losing ``handoff_downtime`` seconds of
    connectivity plus a per-client recovery penalty: the default client
    tears its task down and rejoins under a fresh peer ID
    (``restart_delay``, forfeiting tit-for-tat credit, §3.4), while a
    wP2P client retains its identity and pays only ``reconnect_cost``
    (§5.2.4).
    """

    name: str
    count: float
    upload_rate: float
    download_rate: float
    seed: bool = False
    mobile: bool = False
    wp2p: bool = False
    wireless_shared: bool = False
    upload_coupling: float = 1.0
    handoff_interval: Optional[float] = None
    handoff_downtime: float = 1.0
    restart_delay: float = 15.0
    reconnect_cost: float = 1.0
    #: wP2P LIHD operating point as a fraction of ``upload_rate``: the
    #: steady-state ``u_cur / u_max`` the controller converges to.
    lihd_level: float = 0.5
    #: Piece-selection surrogate for the analytic playability curve.
    selection: str = "rarest"
    #: New peers of this class joining per second (entering at p=0).
    arrival_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("count must be >= 0")
        if self.upload_rate < 0 or self.download_rate <= 0:
            raise ValueError("rates must be positive (upload may be 0)")
        if self.handoff_interval is not None and self.handoff_interval <= 0:
            raise ValueError("handoff_interval must be positive")
        if not 0.0 < self.lihd_level <= 1.0:
            raise ValueError("lihd_level must be in (0, 1]")
        if self.selection not in SELECTION_POLICIES:
            raise ValueError(
                f"unknown selection policy {self.selection!r}; "
                f"choose from {', '.join(SELECTION_POLICIES)}"
            )
        if self.arrival_rate < 0:
            raise ValueError("arrival_rate must be >= 0")

    @property
    def recovery_cost(self) -> float:
        """Seconds of post-handoff recovery this client class pays."""
        return self.reconnect_cost if self.wp2p else self.restart_delay

    def availability(self) -> float:
        """Duty-cycle fraction of time this class is usefully connected."""
        if self.handoff_interval is None:
            return 1.0
        cycle = self.handoff_interval + self.handoff_downtime + self.recovery_cost
        return self.handoff_interval / cycle


@dataclass(frozen=True)
class FluidParams:
    """Everything that determines one fluid-swarm integration.

    ``efficiency`` and ``startup_delay`` are the two calibration
    constants anchoring the fluid tier to the packet-level simulator
    (see :mod:`repro.scale.validate`): ``efficiency`` folds protocol
    overhead, TCP dynamics and imperfect pipelining into one goodput
    factor, and ``startup_delay`` models the announce/connect/slow-start
    transient before pieces begin to flow.
    """

    file_size: int
    piece_length: int
    classes: Tuple[PeerClass, ...]
    dt: float = 0.25
    max_time: float = 86_400.0
    efficiency: float = 0.60
    startup_delay: float = 3.0
    #: Leecher departure (abort) rate per online peer per second.
    departure_rate: float = 0.0
    #: Progress fraction at which a leecher becomes a useful uploader.
    warm_fraction: float = 0.05
    sample_interval: float = 5.0
    #: Content-mode surrogate (see :data:`CONTENT_MODES`).  ``""`` — the
    #: default — models nothing and leaves pure-fluid runs bit-identical;
    #: ``"replication"``/``"group"`` multiply download rates by
    #: :func:`content_rate_factor` of the current piece-holder
    #: availability (custody-seeded content starves when its holders go
    #: dark; k-of-n redundancy softens that).
    content_mode: str = ""
    code_k: int = 1
    code_n: int = 1

    def __post_init__(self) -> None:
        if self.content_mode not in CONTENT_MODES:
            raise ValueError(
                f"unknown content_mode {self.content_mode!r}; "
                f"choose from {CONTENT_MODES}"
            )
        if self.content_mode == "group" and (
            self.code_n < 2 or not 1 <= self.code_k <= self.code_n
        ):
            raise ValueError(
                f"bad group geometry k={self.code_k} n={self.code_n}"
            )
        if self.file_size <= 0 or self.piece_length <= 0:
            raise ValueError("file_size and piece_length must be positive")
        if self.dt <= 0 or self.max_time <= 0:
            raise ValueError("dt and max_time must be positive")
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError("efficiency must be in (0, 1]")
        if self.startup_delay < 0:
            raise ValueError("startup_delay must be >= 0")
        if not self.classes:
            raise ValueError("need at least one peer class")
        names = [c.name for c in self.classes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate peer class names: {names}")

    @property
    def num_pieces(self) -> int:
        return max(1, -(-self.file_size // self.piece_length))

    @property
    def total_peers(self) -> float:
        return sum(c.count for c in self.classes)


def coded_fetchability(availability: float, k: int, n: int) -> float:
    """Probability the next *needed* coded piece of a k-of-n group is
    reachable when each individual coded piece is available with
    probability ``availability``.

    The worst-case-alternates surrogate: to finish a group a leecher
    needs ``k`` of ``n`` pieces, so even after ``k - 1`` are in hand
    there are ``n - k + 1`` interchangeable candidates for the last slot
    — the fetch stalls only when *all* of them are dark::

        f(a) = 1 - (1 - a)^(n - k + 1)

    Replication is the degenerate ``k = n = 1`` geometry (each piece its
    own group, no alternates): ``f(a) = a``.  For any real redundancy
    ``f(a) >= a``, monotone in ``a`` and in ``n - k`` — exactly the
    ordering the survival gate asserts.
    """
    if not 1 <= k <= n:
        raise ValueError(f"bad geometry k={k} n={n}")
    a = min(1.0, max(0.0, availability))
    return 1.0 - (1.0 - a) ** (n - k + 1)


def content_rate_factor(
    content_mode: str, availability: float, k: int = 1, n: int = 1
) -> float:
    """Download-rate multiplier for a content mode at a piece-holder
    availability (the fluid tier's coded-availability surrogate).

    ``""`` models nothing (factor 1.0 — the pre-coding engine);
    ``"replication"`` is custody-seeded replication, where each piece
    has a single holder so fetchability *is* the holder availability;
    ``"group"`` is k-of-n erasure coding via :func:`coded_fetchability`.
    """
    if content_mode == "":
        return 1.0
    if content_mode == "replication":
        return coded_fetchability(availability, 1, 1)
    if content_mode == "group":
        return coded_fetchability(availability, k, n)
    raise ValueError(f"unknown content_mode {content_mode!r}")


def expected_prefix_fraction(p: float, num_pieces: int) -> float:
    """Expected in-order-prefix fraction of an ``num_pieces``-piece file
    whose pieces are independently complete with probability ``p``.

    The mean-field surrogate for the paper's §3.6 playability metric
    under rarest-first (order-agnostic) fetching:
    ``E[prefix]/m = (1/m) * sum_{i=1..m} p^i = p(1-p^m) / (m(1-p))``.
    """
    if p <= 0.0:
        return 0.0
    if p >= 1.0:
        return 1.0
    m = max(1, num_pieces)
    return p * (1.0 - p ** m) / (m * (1.0 - p))


def playability_surrogate(
    p: float, num_pieces: int, selection: str
) -> float:
    """Playable fraction for mean progress ``p`` under a selection policy.

    ``"inorder"`` (the wP2P/streaming surrogate) keeps the prefix equal
    to the downloaded fraction; ``"rarest"`` uses the order-agnostic
    expectation of :func:`expected_prefix_fraction`.
    """
    if selection == "inorder":
        return min(1.0, max(0.0, p))
    return expected_prefix_fraction(p, num_pieces)


@dataclass
class ClassResult:
    """Outcome of one peer class over the integration."""

    name: str
    completion_time: Optional[float]
    mean_goodput: float
    seed: bool = False
    progress: List[Tuple[float, float]] = field(default_factory=list)
    playability: List[Tuple[float, float]] = field(default_factory=list)
    final_progress: float = 0.0
    peak_online: float = 0.0

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "completion_time": self.completion_time,
            "mean_goodput": self.mean_goodput,
            "seed": self.seed,
            "final_progress": self.final_progress,
            "peak_online": self.peak_online,
            "progress": [[t, p] for t, p in self.progress],
            "playability": [[d, play] for d, play in self.playability],
        }


@dataclass
class FluidResult:
    """One completed fluid-swarm integration: per-class outcomes + totals."""

    classes: Dict[str, ClassResult]
    steps: int
    horizon: float
    peak_population: float
    utilization_mean: float

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "classes": {
                name: cr.to_jsonable() for name, cr in sorted(self.classes.items())
            },
            "steps": self.steps,
            "horizon": self.horizon,
            "peak_population": self.peak_population,
            "utilization_mean": self.utilization_mean,
        }

    def leecher_completion_time(self) -> Optional[float]:
        """Latest completion among leecher classes (None if any censored)."""
        times: List[float] = []
        for cr in self.classes.values():
            if cr.seed:
                continue
            if cr.completion_time is None:
                return None
            times.append(cr.completion_time)
        return max(times) if times else None
