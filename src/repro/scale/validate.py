"""Cross-validation of the fluid tier against the packet-level simulator.

The fluid engine is an approximation; this module is its warranty card.
A :class:`MatchedScenario` describes one small swarm **twice** — as a
real :class:`~repro.bittorrent.swarm.SwarmScenario` (hosts, links, TCP,
the works) and as the equivalent :class:`~repro.scale.FluidParams`
class decomposition — and :func:`cross_validate` runs both and asserts
the fluid model tracks packet-level *completion time* and *mean
goodput* within a stated relative tolerance (default
:data:`DEFAULT_TOLERANCE`).

The matched set deliberately spans the axes the fluid model claims to
capture: an all-wired swarm (pure capacity sharing), a swarm with
mobile default-client leechers (handoff duty cycles + restart penalty +
shared wireless airtime), and the same swarm on wP2P (identity
retention + LIHD throttling).  ``scripts/validate_scale.py`` and the CI
scale job run this continuously, so calibration drift — the
``efficiency`` / ``startup_delay`` constants going stale against an
improved packet simulator — fails loudly instead of silently skewing
every large-N result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..bittorrent import ClientConfig
from ..bittorrent.swarm import SwarmScenario
from ..wp2p import WP2PClient
from .fluid import FluidSwarm
from .hybrid import HybridSpec, run_hybrid
from .model import FluidParams, PeerClass

#: Maximum relative error at which the fluid tier is considered anchored.
DEFAULT_TOLERANCE = 0.15

#: Packet-simulator seeds averaged per scenario (smooths protocol noise).
DEFAULT_SEEDS: Tuple[int, ...] = (11, 12)

#: Tolerance for the hybrid all-focal equivalence gate: with an empty
#: background the hybrid builder constructs the matched packet swarm
#: event for event, so the agreement must be exact, not approximate.
EQUIVALENCE_TOLERANCE = 1e-9

#: Reference magnitude below which :attr:`ValidationRow.rel_error`
#: switches to an absolute comparison (both metrics — seconds and
#: bytes/second — are far above 1.0 whenever they are meaningful).
REL_ERROR_ATOL = 1.0


@dataclass(frozen=True)
class Observation:
    """What one backend measured for one matched scenario."""

    completion_time: float
    mean_goodput: float


@dataclass(frozen=True)
class MatchedScenario:
    """One swarm described for both backends.

    ``seeds``/``wired``/``mobile`` are peer counts; rates are
    bytes/second.  The fluid decomposition and the packet topology are
    generated from the *same* fields, so the two runs cannot drift
    apart structurally — only the dynamics are approximated.
    """

    name: str
    description: str
    seeds: int
    wired: int
    mobile: int = 0
    wp2p: bool = False
    file_size: int = 1 << 20
    piece_length: int = 1 << 16
    seed_up_rate: float = 64_000.0
    wired_up_rate: float = 32_000.0
    wired_down_rate: float = 400_000.0
    mobile_up_rate: float = 16_000.0
    wireless_rate: float = 80_000.0
    handoff_interval: Optional[float] = None
    handoff_downtime: float = 1.0
    restart_delay: float = 15.0
    max_time: float = 3_600.0

    def fluid_params(self) -> FluidParams:
        classes: List[PeerClass] = [
            PeerClass("seeds", float(self.seeds), self.seed_up_rate,
                      1_000_000.0, seed=True),
        ]
        if self.wired:
            classes.append(PeerClass(
                "wired", float(self.wired), self.wired_up_rate,
                self.wired_down_rate,
            ))
        if self.mobile:
            classes.append(PeerClass(
                "mobile", float(self.mobile), self.mobile_up_rate,
                self.wireless_rate, mobile=True, wp2p=self.wp2p,
                wireless_shared=True,
                handoff_interval=self.handoff_interval,
                handoff_downtime=self.handoff_downtime,
                restart_delay=self.restart_delay,
                selection="inorder" if self.wp2p else "rarest",
            ))
        return FluidParams(
            file_size=self.file_size,
            piece_length=self.piece_length,
            classes=tuple(classes),
            max_time=self.max_time,
        )

    def fluid_observation(self) -> Observation:
        result = FluidSwarm(self.fluid_params()).run()
        leechers = [cr for cr in result.classes.values() if not cr.seed]
        weight = sum(cr.peak_online for cr in leechers) or 1.0
        completion = sum(
            (cr.completion_time if cr.completion_time is not None
             else self.max_time) * cr.peak_online
            for cr in leechers
        ) / weight
        goodput = sum(
            cr.mean_goodput * cr.peak_online for cr in leechers
        ) / weight
        return Observation(completion_time=completion, mean_goodput=goodput)

    def packet_observation(self, seed: int) -> Observation:
        sc = SwarmScenario(
            seed=seed,
            file_size=self.file_size,
            piece_length=self.piece_length,
            tracker_interval=60.0,
        )
        for i in range(self.seeds):
            sc.add_wired_peer(f"s{i}", complete=True,
                              down_rate=1_000_000, up_rate=self.seed_up_rate)
        for i in range(self.wired):
            sc.add_wired_peer(f"w{i}", down_rate=self.wired_down_rate,
                              up_rate=self.wired_up_rate)
        # Lazy: repro.experiments itself registers fluid-backed scenarios
        # built on this package, so a module-level import would cycle.
        from ..experiments.fig9_wp2p import rr_only_config

        for i in range(self.mobile):
            if self.wp2p:
                handle = sc.add_wireless_peer(
                    f"m{i}", rate=self.wireless_rate,
                    config=rr_only_config(), client_factory=WP2PClient,
                )
            else:
                handle = sc.add_wireless_peer(
                    f"m{i}", rate=self.wireless_rate,
                    config=ClientConfig(task_restart_delay=self.restart_delay),
                )
            if self.handoff_interval is not None:
                sc.add_mobility(handle, interval=self.handoff_interval,
                                downtime=self.handoff_downtime)
        sc.start_all()
        leechers = [n for n, h in sc.peers.items() if not h.client.complete]
        sc.run_until_complete(names=leechers, timeout=self.max_time)
        times: List[float] = []
        rates: List[float] = []
        for name in leechers:
            client = sc.peers[name].client
            t = client.completion_time
            if t is None:
                t = self.max_time
            times.append(t)
            if t > 0:
                rates.append(client.manager.bytes_completed / t)
        return Observation(
            completion_time=sum(times) / len(times),
            mean_goodput=sum(rates) / len(rates) if rates else 0.0,
        )


    def hybrid_spec(self) -> HybridSpec:
        """This swarm as an all-focal (zero-background) hybrid spec."""
        return HybridSpec(
            focal_seeds=self.seeds,
            focal_wired=self.wired,
            focal_mobile=self.mobile,
            wp2p=self.wp2p,
            file_size=self.file_size,
            piece_length=self.piece_length,
            seed_up_rate=self.seed_up_rate,
            wired_up_rate=self.wired_up_rate,
            wired_down_rate=self.wired_down_rate,
            mobile_up_rate=self.mobile_up_rate,
            wireless_rate=self.wireless_rate,
            handoff_interval=self.handoff_interval,
            handoff_downtime=self.handoff_downtime,
            restart_delay=self.restart_delay,
            max_time=self.max_time,
        )

    def hybrid_observation(self, seed: int) -> Observation:
        """Run this swarm all-focal on the hybrid backend.

        With no background the hybrid builder must construct the packet
        swarm event for event, so this is expected to equal
        :meth:`packet_observation` exactly (the
        :data:`EQUIVALENCE_TOLERANCE` gate)."""
        result = run_hybrid(self.hybrid_spec(), seed=seed)
        return Observation(
            completion_time=result.focal_completion_time(),
            mean_goodput=result.focal_mean_goodput(),
        )


#: The standing matched set run by ``scripts/validate_scale.py`` and CI.
MATCHED_SCENARIOS: Tuple[MatchedScenario, ...] = (
    MatchedScenario(
        name="wired_small",
        description="2 seeds + 6 wired leechers, pure capacity sharing",
        seeds=2, wired=6,
    ),
    MatchedScenario(
        name="mobile_default",
        description=("2 seeds + 4 wired + 2 mobile default-client leechers "
                     "handing off every 40 s (restart penalty)"),
        seeds=2, wired=4, mobile=2, handoff_interval=40.0,
    ),
    MatchedScenario(
        name="mobile_wp2p",
        description=("same swarm with wP2P mobile leechers "
                     "(identity retention + LIHD)"),
        seeds=2, wired=4, mobile=2, wp2p=True, handoff_interval=40.0,
    ),
)


@dataclass(frozen=True)
class ValidationRow:
    """One (scenario, metric) comparison between the two backends."""

    scenario: str
    metric: str
    packet: float
    fluid: float
    tolerance: float

    @property
    def rel_error(self) -> float:
        # Near-zero references switch to an absolute-tolerance floor:
        # a 0.0 packet reference with a nonzero fluid value is a real
        # miss, but an infinite ratio poisons table()/--json output
        # (JSON has no Infinity) without saying anything more than
        # "the absolute difference is the whole story".
        return abs(self.fluid - self.packet) / max(abs(self.packet),
                                                   REL_ERROR_ATOL)

    @property
    def ok(self) -> bool:
        return self.rel_error <= self.tolerance

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "metric": self.metric,
            "packet": self.packet,
            "fluid": self.fluid,
            "rel_error": self.rel_error,
            "tolerance": self.tolerance,
            "ok": self.ok,
        }


@dataclass
class ValidationReport:
    """All comparisons of one cross-validation run."""

    rows: List[ValidationRow] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(row.ok for row in self.rows)

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "passed": self.passed,
            "rows": [row.to_jsonable() for row in self.rows],
        }

    def table(self, labels: Tuple[str, str] = ("packet", "fluid")) -> str:
        """Fixed-width report; ``labels`` renames the two value columns
        (the hybrid gate compares *reference* vs *hybrid* instead of
        packet vs fluid, same row structure)."""
        reference, observed = labels
        header = (f"{'scenario':<22}{'metric':<18}{reference:>12}"
                  f"{observed:>12}{'rel err':>10}  verdict")
        lines = [header, "-" * len(header)]
        for row in self.rows:
            lines.append(
                f"{row.scenario:<22}{row.metric:<18}{row.packet:>12.2f}"
                f"{row.fluid:>12.2f}{row.rel_error:>9.1%}  "
                f"{'ok' if row.ok else 'FAIL'}"
            )
        return "\n".join(lines)


def cross_validate(
    scenarios: Optional[Sequence[MatchedScenario]] = None,
    tolerance: float = DEFAULT_TOLERANCE,
    seeds: Sequence[int] = DEFAULT_SEEDS,
) -> ValidationReport:
    """Run every matched scenario on both backends and compare.

    Packet observations are averaged over ``seeds`` (the fluid run is
    deterministic and needs no averaging).  Returns a report whose
    ``passed`` flag is the anchoring verdict.
    """
    if scenarios is None:
        scenarios = MATCHED_SCENARIOS
    if not seeds:
        raise ValueError("need at least one packet-simulator seed")
    report = ValidationReport()
    for ms in scenarios:
        packet_obs = [ms.packet_observation(seed) for seed in seeds]
        packet = Observation(
            completion_time=(sum(o.completion_time for o in packet_obs)
                             / len(packet_obs)),
            mean_goodput=(sum(o.mean_goodput for o in packet_obs)
                          / len(packet_obs)),
        )
        fluid = ms.fluid_observation()
        report.rows.append(ValidationRow(
            scenario=ms.name, metric="completion_time",
            packet=packet.completion_time, fluid=fluid.completion_time,
            tolerance=tolerance,
        ))
        report.rows.append(ValidationRow(
            scenario=ms.name, metric="mean_goodput",
            packet=packet.mean_goodput, fluid=fluid.mean_goodput,
            tolerance=tolerance,
        ))
    return report


# ----------------------------------------------------------------------
# Hybrid-backend validation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HybridEmbedding:
    """Focal packet hosts embedded in a large fluid background.

    The reference is the *pure-fluid* prediction for the focal hosts,
    obtained by folding them into the background integration as one
    more peer class; the observation is what the packet-level focal
    hosts actually achieve through the coupling facade.  Agreement
    within :data:`DEFAULT_TOLERANCE` is the hybrid tier's warranty that
    the boundary-flow translation neither starves nor over-serves the
    focal hosts relative to the calibrated mean-field dynamics.
    """

    name: str
    description: str
    focal_mobile: int = 2
    wp2p: bool = False
    background_seeds: float = 2_000.0
    background_wired: float = 8_000.0
    handoff_interval: Optional[float] = 40.0
    file_size: int = 1 << 20
    piece_length: int = 1 << 16
    max_time: float = 3_600.0

    def spec(self) -> HybridSpec:
        return HybridSpec(
            focal_seeds=0,
            focal_mobile=self.focal_mobile,
            wp2p=self.wp2p,
            background_seeds=self.background_seeds,
            background_wired=self.background_wired,
            handoff_interval=self.handoff_interval,
            file_size=self.file_size,
            piece_length=self.piece_length,
            max_time=self.max_time,
        )

    def fluid_reference(self) -> Observation:
        """Pure-fluid prediction with the focal hosts as a peer class."""
        spec = self.spec()
        classes = list(spec.background_params().classes)
        classes.append(PeerClass(
            "focal_mobile", float(self.focal_mobile),
            spec.mobile_up_rate, spec.wireless_rate,
            mobile=True, wp2p=self.wp2p, wireless_shared=True,
            handoff_interval=spec.handoff_interval,
            handoff_downtime=spec.handoff_downtime,
            restart_delay=spec.restart_delay,
            selection="inorder" if self.wp2p else "rarest",
        ))
        params = FluidParams(
            file_size=self.file_size,
            piece_length=self.piece_length,
            classes=tuple(classes),
            max_time=self.max_time,
        )
        result = FluidSwarm(params).run()
        cr = result.classes["focal_mobile"]
        completion = (cr.completion_time if cr.completion_time is not None
                      else self.max_time)
        return Observation(completion_time=completion,
                           mean_goodput=cr.mean_goodput)

    def hybrid_observation(self, seed: int) -> Observation:
        result = run_hybrid(self.spec(), seed=seed)
        return Observation(
            completion_time=result.focal_completion_time(),
            mean_goodput=result.focal_mean_goodput(),
        )


#: The standing embedding set: 10^4-peer background, default vs wP2P
#: focal mobiles — the regimes Figure 4/9 measure at tens of peers,
#: re-asked at fluid scale.
HYBRID_EMBEDDINGS: Tuple[HybridEmbedding, ...] = (
    HybridEmbedding(
        name="embed_default",
        description=("2 default-client mobile focal hosts handing off "
                     "every 40 s inside a 10^4-peer background"),
    ),
    HybridEmbedding(
        name="embed_wp2p",
        description="same focal hosts on wP2P (identity retention + LIHD)",
        wp2p=True,
    ),
)


def _mean_observation(observations: Sequence[Observation]) -> Observation:
    return Observation(
        completion_time=(sum(o.completion_time for o in observations)
                         / len(observations)),
        mean_goodput=(sum(o.mean_goodput for o in observations)
                      / len(observations)),
    )


def hybrid_cross_validate(
    tolerance: float = DEFAULT_TOLERANCE,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    equivalence: Optional[Sequence[MatchedScenario]] = None,
    embeddings: Optional[Sequence[HybridEmbedding]] = None,
) -> ValidationReport:
    """The hybrid backend's two-sided warranty card.

    * **equivalence rows** — every matched scenario run all-focal on
      the hybrid backend against the pure packet backend, gated at
      :data:`EQUIVALENCE_TOLERANCE` (exact by construction);
    * **embedding rows** — focal hosts inside a large background
      against the pure-fluid class prediction, gated at ``tolerance``.

    Rows reuse the :class:`ValidationRow` structure with ``packet``
    holding the reference value and ``fluid`` the hybrid observation
    (render with ``report.table(labels=("reference", "hybrid"))``).
    """
    if equivalence is None:
        equivalence = MATCHED_SCENARIOS
    if embeddings is None:
        embeddings = HYBRID_EMBEDDINGS
    if not seeds:
        raise ValueError("need at least one packet-simulator seed")
    report = ValidationReport()
    for ms in equivalence:
        packet = _mean_observation([ms.packet_observation(s) for s in seeds])
        hybrid = _mean_observation([ms.hybrid_observation(s) for s in seeds])
        for metric, ref, obs in (
            ("completion_time", packet.completion_time, hybrid.completion_time),
            ("mean_goodput", packet.mean_goodput, hybrid.mean_goodput),
        ):
            report.rows.append(ValidationRow(
                scenario=f"focal:{ms.name}", metric=metric,
                packet=ref, fluid=obs, tolerance=EQUIVALENCE_TOLERANCE,
            ))
    for emb in embeddings:
        reference = emb.fluid_reference()
        hybrid = _mean_observation([emb.hybrid_observation(s) for s in seeds])
        for metric, ref, obs in (
            ("completion_time", reference.completion_time,
             hybrid.completion_time),
            ("mean_goodput", reference.mean_goodput, hybrid.mean_goodput),
        ):
            report.rows.append(ValidationRow(
                scenario=emb.name, metric=metric,
                packet=ref, fluid=obs, tolerance=tolerance,
            ))
    return report
