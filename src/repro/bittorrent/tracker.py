"""The tracker: the swarm's directory server.

Runs as an application on a simulated host, answering announce requests
over TCP.  Faithful to the behaviours the paper leans on:

* peers are tracked per ``(info_hash, peer_id)``; a mobile host that
  re-announces under a **new** peer ID leaves its old record — with the now
  unroutable address — in the swarm until it is pruned, so fixed peers keep
  receiving stale addresses (§3.5);
* responses carry a random sample of up to ``numwant`` (default 50) peers;
* clients are expected back every ``interval`` seconds and are pruned after
  missing ``prune_factor`` intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..net.host import Host
from ..sim import Simulator
from ..tcp.connection import TCPConnection
from ..tcp.stack import TCPStack
from .messages import (
    EVENT_COMPLETED,
    EVENT_STOPPED,
    AnnounceRequest,
    AnnounceResponse,
    TrackerError,
)


@dataclass
class PeerRecord:
    peer_id: str
    ip: str
    port: int
    left: int
    last_seen: float
    completed: bool = False


class Tracker:
    """Announce server for any number of swarms."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        port: int = 8000,
        interval: float = 120.0,
        numwant_cap: int = 50,
        prune_factor: float = 2.5,
    ) -> None:
        self.sim = sim
        self.host = host
        self.port = port
        self.interval = interval
        self.numwant_cap = numwant_cap
        self.prune_factor = prune_factor
        self._swarms: Dict[str, Dict[str, PeerRecord]] = {}
        self._rng = sim.rng.stream("tracker")
        self.announces = 0
        self.serving = True
        self.refused = 0
        stack = host.transport
        if not isinstance(stack, TCPStack):
            stack = TCPStack(sim, host)
        self.stack: TCPStack = stack
        self.stack.listen(port, self._accept)

    # ------------------------------------------------------------------
    # Introspection helpers for experiments/tests
    # ------------------------------------------------------------------
    def swarm_size(self, info_hash: str) -> int:
        return len(self._swarms.get(info_hash, {}))

    def swarm_peers(self, info_hash: str) -> List[PeerRecord]:
        return list(self._swarms.get(info_hash, {}).values())

    def seeds_and_leeches(self, info_hash: str) -> Tuple[int, int]:
        seeds = leeches = 0
        for record in self._swarms.get(info_hash, {}).values():
            if record.left == 0:
                seeds += 1
            else:
                leeches += 1
        return seeds, leeches

    # ------------------------------------------------------------------
    # Fault hook (repro.chaos)
    # ------------------------------------------------------------------
    def set_serving(self, serving: bool) -> None:
        """Soft-outage fault hook: while not serving, every announce is
        answered with ``TrackerError("tracker_offline")`` and the
        connection closed — the TCP listener stays up (a tracker whose
        web server is down but whose host is still routable).  For a
        full blackout, disconnect the tracker's *host* instead (see
        :class:`repro.chaos.TrackerOutage`)."""
        self.serving = serving

    # ------------------------------------------------------------------
    def _accept(self, conn: TCPConnection) -> None:
        conn.on_message = lambda message: self._handle(conn, message)

    def _handle(self, conn: TCPConnection, message: object) -> None:
        if not self.serving:
            self.refused += 1
            conn.send_message(TrackerError("tracker_offline"))
            conn.close()
            return
        if not isinstance(message, AnnounceRequest):
            conn.send_message(TrackerError("bad_request"))
            conn.close()
            return
        self.announces += 1
        swarm = self._swarms.setdefault(message.info_hash, {})
        self._prune(swarm)

        if message.event == EVENT_STOPPED:
            swarm.pop(message.peer_id, None)
            conn.send_message(AnnounceResponse(self.interval, ()))
            conn.close()
            return

        record = swarm.get(message.peer_id)
        if record is None:
            record = PeerRecord(
                message.peer_id, message.ip, message.port, message.left, self.sim.now
            )
            swarm[message.peer_id] = record
        else:
            record.ip = message.ip
            record.port = message.port
            record.left = message.left
            record.last_seen = self.sim.now
        if message.event == EVENT_COMPLETED:
            record.completed = True
            record.left = 0

        peers = self._sample(swarm, exclude=message.peer_id, numwant=message.numwant)
        seeds, leeches = self.seeds_and_leeches(message.info_hash)
        conn.send_message(
            AnnounceResponse(
                self.interval,
                tuple((r.ip, r.port, r.peer_id) for r in peers),
                complete=seeds,
                incomplete=leeches,
            )
        )
        conn.close()

    def _sample(
        self, swarm: Dict[str, PeerRecord], exclude: str, numwant: int
    ) -> List[PeerRecord]:
        candidates = [r for pid, r in swarm.items() if pid != exclude]
        want = min(numwant, self.numwant_cap, len(candidates))
        if want >= len(candidates):
            return candidates
        return self._rng.sample(candidates, want)

    def _prune(self, swarm: Dict[str, PeerRecord]) -> None:
        cutoff = self.sim.now - self.interval * self.prune_factor
        stale = [pid for pid, r in swarm.items() if r.last_seen < cutoff]
        for pid in stale:
            del swarm[pid]
