"""One peer-wire connection: handshake, choke/interest state, requests.

A :class:`PeerConnection` wraps a TCP connection and implements the
BitTorrent peer protocol against it.  The owning client supplies policy
(piece selection, choking, rate limiting); this class keeps the per-peer
protocol state machine.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

from ..sim import RateMeter
from ..tcp.connection import TCPConnection
from .bitfield import Bitfield
from .messages import (
    BitfieldMessage,
    Cancel,
    Choke,
    Handshake,
    Have,
    Interested,
    KeepAlive,
    NotInterested,
    Piece,
    Request,
    Unchoke,
)

if TYPE_CHECKING:  # pragma: no cover
    from .client import BitTorrentClient

BlockKey = Tuple[int, int]


class PeerConnection:
    """Protocol state for one remote peer."""

    def __init__(
        self,
        client: "BitTorrentClient",
        tcp: TCPConnection,
        initiated: bool,
    ) -> None:
        self.client = client
        self.tcp = tcp
        self.initiated = initiated
        self.sim = client.sim
        self.peer_id: Optional[str] = None
        self.remote_ip = tcp.remote_ip
        self.remote_port = tcp.remote_port

        self.am_choking = True
        self.am_interested = False
        self.peer_choking = True
        self.peer_interested = False

        self.peer_bitfield = Bitfield(client.torrent.num_pieces)
        self._bitfield_counted = False
        self.handshake_sent = False
        self.handshake_received = False
        self.registered = False

        window = client.config.rate_window
        self.download_meter = RateMeter(self.sim, window=window)
        self.upload_meter = RateMeter(self.sim, window=window)
        self.outstanding: Dict[BlockKey, float] = {}  # our pending requests
        self.blocks_uploaded = 0
        self.blocks_downloaded = 0
        self.closed = False
        self.close_reason: Optional[str] = None
        self.last_sent = self.sim.now
        self.last_received = self.sim.now
        self.last_block_at: Optional[float] = None
        self.keepalives_sent = 0

        tcp.on_established = self._on_established
        tcp.on_message = self._on_message
        tcp.on_close = self._on_close
        if tcp.established:
            self._on_established()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def ready(self) -> bool:
        """Handshake exchanged in both directions."""
        return self.handshake_sent and self.handshake_received

    def snubbed(self, timeout: float) -> bool:
        """True if the peer has us unchoked-and-interested yet delivered no
        block for ``timeout`` seconds (anti-snubbing input)."""
        if self.peer_choking or not self.am_interested:
            return False
        reference = self.last_block_at
        if reference is None:
            reference = self.last_received
        return self.sim.now - reference > timeout

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PeerConnection({self.client.peer_id!r} <-> {self.peer_id!r}, "
            f"amC={self.am_choking} amI={self.am_interested} "
            f"pC={self.peer_choking} pI={self.peer_interested})"
        )

    # ------------------------------------------------------------------
    # Outgoing protocol actions
    # ------------------------------------------------------------------
    def _send(self, message) -> None:
        """Transmit a wire message, tracking activity for keep-alives."""
        self.last_sent = self.sim.now
        self.tcp.send_message(message)

    def send_handshake(self) -> None:
        if self.handshake_sent or self.closed:
            return
        self.handshake_sent = True
        self._send(Handshake(self.client.torrent.info_hash, self.client.peer_id))
        bitfield = self.client.manager.bitfield
        if not bitfield.empty:
            self._send(BitfieldMessage(bitfield))

    def set_choking(self, choking: bool) -> None:
        """Transition our choke state toward the peer (idempotent)."""
        if self.closed or choking == self.am_choking:
            return
        self.am_choking = choking
        self._send(Choke() if choking else Unchoke())
        if choking:
            self.client.drop_uploads_for(self)

    def update_interest(self) -> None:
        """Recompute and signal whether we want anything this peer has."""
        if self.closed or not self.ready:
            return
        interested = self.peer_bitfield.has_piece_other_is_missing(
            self.client.manager.bitfield
        )
        if interested != self.am_interested:
            self.am_interested = interested
            self._send(Interested() if interested else NotInterested())
            if not interested:
                self._release_outstanding()

    def send_request(self, index: int, begin: int, length: int) -> None:
        self.outstanding[(index, begin)] = self.sim.now
        self._send(Request(index, begin, length))

    def send_piece(self, index: int, begin: int, length: int) -> None:
        self._send(Piece(index, begin, length))
        self.upload_meter.add(length)
        self.blocks_uploaded += 1
        self.client.note_uploaded(self, length)

    def send_have(self, index: int) -> None:
        if not self.closed and self.ready:
            self._send(Have(index))

    def send_cancel(self, index: int, begin: int, length: int) -> None:
        self._send(Cancel(index, begin, length))

    def send_keepalive(self) -> None:
        if not self.closed and self.tcp.established:
            self.keepalives_sent += 1
            self._send(KeepAlive())

    def close(self, reason: str = "closed") -> None:
        if self.closed:
            return
        self.tcp.abort(reason)

    # ------------------------------------------------------------------
    # TCP callbacks
    # ------------------------------------------------------------------
    def _on_established(self) -> None:
        if self.initiated:
            self.send_handshake()

    def _on_close(self, reason: str) -> None:
        if self.closed:
            return
        self.closed = True
        self.close_reason = reason
        self._release_outstanding()
        if self._bitfield_counted:
            self.client.availability_remove(self.peer_bitfield)
            self._bitfield_counted = False
        self.client.peer_disconnected(self)

    def _on_message(self, message: object) -> None:
        if self.closed:
            return
        self.last_received = self.sim.now
        if isinstance(message, Handshake):
            self._on_handshake(message)
        elif isinstance(message, BitfieldMessage):
            self._on_bitfield(message)
        elif isinstance(message, Have):
            self._on_have(message)
        elif isinstance(message, Interested):
            self.peer_interested = True
            self.client.peer_became_interested(self)
        elif isinstance(message, NotInterested):
            self.peer_interested = False
        elif isinstance(message, Choke):
            self.peer_choking = True
            self._release_outstanding()
        elif isinstance(message, Unchoke):
            self.peer_choking = False
            self.client.fill_requests(self)
        elif isinstance(message, Request):
            self._on_request(message)
        elif isinstance(message, Piece):
            self._on_piece(message)
        elif isinstance(message, Cancel):
            self.client.cancel_upload(self, message.index, message.begin)
        elif isinstance(message, KeepAlive):
            pass

    # ------------------------------------------------------------------
    # Message handlers
    # ------------------------------------------------------------------
    def _on_handshake(self, handshake: Handshake) -> None:
        if handshake.info_hash != self.client.torrent.info_hash:
            self.close("wrong_info_hash")
            return
        self.handshake_received = True
        self.peer_id = handshake.peer_id
        if not self.handshake_sent:
            self.send_handshake()
        if not self.client.register_peer(self):
            return  # duplicate or self-connection; client closed us
        self.update_interest()

    def _on_bitfield(self, message: BitfieldMessage) -> None:
        if message.bitfield.size != self.peer_bitfield.size:
            self.close("bad_bitfield")
            return
        if self._bitfield_counted:
            self.client.availability_remove(self.peer_bitfield)
        self.peer_bitfield = message.bitfield.copy()
        self.client.availability_add(self.peer_bitfield)
        self._bitfield_counted = True
        self.update_interest()
        if not self.peer_choking:
            self.client.fill_requests(self)

    def _on_have(self, message: Have) -> None:
        if not (0 <= message.index < self.peer_bitfield.size):
            self.close("bad_have")
            return
        if not self.peer_bitfield.has(message.index):
            self.peer_bitfield.set(message.index)
            if not self._bitfield_counted:
                # peer sent no initial bitfield (started empty)
                self.client.availability_add(Bitfield(self.peer_bitfield.size))
                self._bitfield_counted = True
            self.client.availability_increment(message.index)
        self.update_interest()
        if not self.peer_choking and self.am_interested:
            self.client.fill_requests(self)

    def _on_request(self, request: Request) -> None:
        if self.am_choking:
            return  # stale request crossing our CHOKE; silently ignored
        if not self.client.manager.have_piece(request.index):
            return
        self.client.queue_upload(self, request)

    def _on_piece(self, piece: Piece) -> None:
        key = piece.block_key
        self.last_block_at = self.sim.now
        self.outstanding.pop(key, None)
        self.download_meter.add(piece.length)
        self.blocks_downloaded += 1
        self.client.block_received(self, piece)

    # ------------------------------------------------------------------
    def _release_outstanding(self) -> None:
        for index, begin in list(self.outstanding):
            self.client.manager.release_request(index, begin)
        self.outstanding.clear()
