"""Piece-selection strategies.

The client asks its selector which piece to start next, given the candidate
set (pieces the unchoking peer has and we lack) and current availability
(how many connected peers hold each piece).  Strategies implemented here:

* :class:`RarestFirstSelector` — standard BitTorrent behaviour (§2.2);
* :class:`SequentialSelector` — in-order fetching (streaming-friendly);
* :class:`RandomSelector` — the random baseline the paper mentions.

wP2P's mobility-aware fetcher (:mod:`repro.wp2p.mobility_aware`) composes
the first two probabilistically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence


@dataclass
class SelectionContext:
    """Facts a selector may condition on."""

    availability: Dict[int, int]
    progress: float
    now: float
    rng: random.Random


class PieceSelector:
    """Strategy interface: pick the next piece to begin downloading."""

    name = "base"

    def choose(self, candidates: Sequence[int], ctx: SelectionContext) -> Optional[int]:
        raise NotImplementedError


class RarestFirstSelector(PieceSelector):
    """Pick the candidate held by the fewest connected peers (ties random)."""

    name = "rarest-first"

    def choose(self, candidates: Sequence[int], ctx: SelectionContext) -> Optional[int]:
        if not candidates:
            return None
        min_avail = min(ctx.availability.get(i, 0) for i in candidates)
        rarest = [i for i in candidates if ctx.availability.get(i, 0) == min_avail]
        return ctx.rng.choice(rarest)


class SequentialSelector(PieceSelector):
    """Pick the lowest-index candidate (in-order media fetching)."""

    name = "sequential"

    def choose(self, candidates: Sequence[int], ctx: SelectionContext) -> Optional[int]:
        return min(candidates) if candidates else None


class RandomSelector(PieceSelector):
    """Pick a uniformly random candidate."""

    name = "random"

    def choose(self, candidates: Sequence[int], ctx: SelectionContext) -> Optional[int]:
        if not candidates:
            return None
        # No defensive copy: candidates arrive as a fresh list from the
        # piece manager, and random.choice only indexes the sequence.
        return ctx.rng.choice(candidates)


class HoldSelector(PieceSelector):
    """Never fetch anything: serve what you hold and nothing more.

    The custody-seed selector (see
    :meth:`~repro.bittorrent.swarm.SwarmScenario.custody_pieces`): a
    custodian of a piece subset stays a pure uploader for its column
    instead of drifting toward a full replica.
    """

    name = "hold"

    def choose(self, candidates: Sequence[int], ctx: SelectionContext) -> Optional[int]:
        return None


# ----------------------------------------------------------------------
# Selector registry: names resolvable from specs and strategies.
# ----------------------------------------------------------------------
_SELECTORS: Dict[str, Callable[[], PieceSelector]] = {}


class UnknownSelectorError(KeyError):
    """Raised when a selector name is not registered."""


def register_selector(
    name: str, factory: Callable[[], PieceSelector]
) -> None:
    """Register (or replace) a selector factory under ``name``."""
    _SELECTORS[name] = factory


def make_selector(name: str) -> PieceSelector:
    """A fresh instance of the named selector.

    Selectors may be stateful (wP2P's mobility-aware blend counts its
    choices), so resolution always constructs rather than sharing.
    """
    try:
        factory = _SELECTORS[name]
    except KeyError:
        known = ", ".join(selector_names())
        raise UnknownSelectorError(
            f"unknown selector {name!r}; choose from {known}"
        ) from None
    return factory()


def selector_names() -> List[str]:
    """Registered selector names, sorted."""
    return sorted(_SELECTORS)


register_selector(RarestFirstSelector.name, RarestFirstSelector)
register_selector(SequentialSelector.name, SequentialSelector)
register_selector(RandomSelector.name, RandomSelector)
register_selector(HoldSelector.name, HoldSelector)
