"""Peer-wire and tracker protocol messages.

Each message class reports its real BitTorrent wire size via
``wire_length`` so the TCP layer (and therefore the wireless bit-error and
airtime models) sees authentic byte counts:

========================  =======================================
message                   bytes on the stream
========================  =======================================
handshake                 68
keep-alive                4
choke/unchoke/(not)inter  5
have                      9
bitfield                  5 + ceil(num_pieces / 8)
request / cancel          17
piece                     13 + block payload
========================  =======================================

Tracker announces are modelled as compact request/response messages over
TCP, sized like the HTTP GET / bencoded reply they stand in for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .bitfield import Bitfield

HANDSHAKE_LENGTH = 68
HEADER_LENGTH = 5  # 4-byte length prefix + 1-byte message id


class PeerWireMessage:
    """Base class: every message knows its size on the TCP stream."""

    wire_length: int = HEADER_LENGTH


@dataclass(frozen=True)
class Handshake(PeerWireMessage):
    info_hash: str
    peer_id: str
    wire_length: int = HANDSHAKE_LENGTH


@dataclass(frozen=True)
class KeepAlive(PeerWireMessage):
    wire_length: int = 4


@dataclass(frozen=True)
class Choke(PeerWireMessage):
    wire_length: int = HEADER_LENGTH


@dataclass(frozen=True)
class Unchoke(PeerWireMessage):
    wire_length: int = HEADER_LENGTH


@dataclass(frozen=True)
class Interested(PeerWireMessage):
    wire_length: int = HEADER_LENGTH


@dataclass(frozen=True)
class NotInterested(PeerWireMessage):
    wire_length: int = HEADER_LENGTH


@dataclass(frozen=True)
class Have(PeerWireMessage):
    index: int
    wire_length: int = HEADER_LENGTH + 4


class BitfieldMessage(PeerWireMessage):
    """Snapshot of the sender's piece bitfield at connection start."""

    def __init__(self, bitfield: Bitfield) -> None:
        self.bitfield = bitfield.copy()
        self.wire_length = HEADER_LENGTH + bitfield.wire_bytes

    def __repr__(self) -> str:  # pragma: no cover
        return f"BitfieldMessage({self.bitfield!r})"


@dataclass(frozen=True)
class Request(PeerWireMessage):
    index: int
    begin: int
    length: int
    wire_length: int = HEADER_LENGTH + 12

    @property
    def block_key(self) -> Tuple[int, int]:
        return (self.index, self.begin)


@dataclass(frozen=True)
class Cancel(PeerWireMessage):
    index: int
    begin: int
    length: int
    wire_length: int = HEADER_LENGTH + 12


class Piece(PeerWireMessage):
    """A data block.  ``wire_length`` includes the block payload."""

    def __init__(self, index: int, begin: int, length: int) -> None:
        if length <= 0:
            raise ValueError("block length must be positive")
        self.index = index
        self.begin = begin
        self.length = length
        self.wire_length = HEADER_LENGTH + 8 + length

    @property
    def block_key(self) -> Tuple[int, int]:
        return (self.index, self.begin)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Piece({self.index}, {self.begin}, {self.length})"


# ----------------------------------------------------------------------
# Tracker protocol (stands in for HTTP announce)
# ----------------------------------------------------------------------

EVENT_STARTED = "started"
EVENT_STOPPED = "stopped"
EVENT_COMPLETED = "completed"
EVENT_PERIODIC = ""


@dataclass(frozen=True)
class AnnounceRequest:
    info_hash: str
    peer_id: str
    ip: str
    port: int
    uploaded: int = 0
    downloaded: int = 0
    left: int = 0
    event: str = EVENT_PERIODIC
    numwant: int = 50
    wire_length: int = 200  # typical HTTP GET announce size


@dataclass(frozen=True)
class AnnounceResponse:
    interval: float
    peers: Tuple[Tuple[str, int, str], ...]  # (ip, port, peer_id)
    complete: int = 0
    incomplete: int = 0

    @property
    def wire_length(self) -> int:
        # bencoded dict: ~60 bytes of framing + ~26 bytes per peer entry
        return 60 + 26 * len(self.peers)


@dataclass(frozen=True)
class TrackerError:
    reason: str
    wire_length: int = 80
