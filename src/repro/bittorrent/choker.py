"""Round-based choking: shared driver + pluggable policy.

The standard BitTorrent choker (§2.2): every round (10 s) the client
unchokes the interested peers giving it the best rates — download rate from
the peer while leeching, upload rate to the peer while seeding — plus one
*optimistic unchoke* rotated every third round so newcomers can bootstrap.

Rate ranking folds in the :class:`~repro.bittorrent.ledger.PeerLedger`
credit for the peer's ID, which is what makes identity retention matter: a
reconnecting peer with a known ID ranks on its history, a fresh ID ranks
zero and must win the optimistic slot first.

Since the strategy layer (:mod:`repro.strategy`) the *decision* half —
how peers are ranked and which win the ranked slots — lives in a
:class:`~repro.strategy.base.ChokerPolicy`, while :class:`ChokerDriver`
keeps everything temporal: round scheduling, the anti-snubbing filter,
optimistic rotation (skipped for policies that disown it) and applying
choke/unchoke edges.  Without an explicit policy the driver runs
:class:`~repro.strategy.policies.ReferencePolicy`, whose ranking is the
exact expression the pre-seam choker used — same sort order, same RNG
draws, byte-identical trajectories.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from ..sim import PeriodicTask, Simulator
from ..strategy.base import ChokerPolicy
from ..strategy.policies import ReferencePolicy

if TYPE_CHECKING:  # pragma: no cover
    from .client import BitTorrentClient
    from .peer import PeerConnection


class ChokerDriver:
    """Round scheduling + choke application for one client's policy."""

    def __init__(
        self,
        client: "BitTorrentClient",
        interval: float = 10.0,
        slots: int = 3,
        optimistic_every: int = 3,
        policy: Optional[ChokerPolicy] = None,
    ) -> None:
        if slots < 0:
            raise ValueError("slots must be non-negative")
        if optimistic_every < 1:
            raise ValueError("optimistic_every must be >= 1")
        self.client = client
        self.slots = slots
        self.optimistic_every = optimistic_every
        # `strategic` marks an explicitly-supplied policy: only those emit
        # strategy.* metrics/trace, so default runs observe nothing new.
        self.strategic = policy is not None
        self.policy: ChokerPolicy = policy if policy is not None else ReferencePolicy()
        self._task = PeriodicTask(client.sim, interval, self.run_round)
        self._round = 0
        self._optimistic: Optional["PeerConnection"] = None
        self._rng = client.sim.rng.stream(f"choker.{client.name}")
        self.rounds_run = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._task.start(first_delay=min(1.0, self._task.interval))

    def stop(self) -> None:
        self._task.stop()

    # ------------------------------------------------------------------
    def rank_rate(self, peer: "PeerConnection") -> float:
        """Ranking key the policy applies to one interested peer."""
        return self.policy.rank(self.client, peer)

    def run_round(self) -> None:
        self._round += 1
        self.rounds_run += 1
        peers = [p for p in self.client.connected_peers() if p.ready]
        interested = [p for p in peers if p.peer_interested]

        candidates = interested
        if self.client.config.anti_snubbing:
            # Snubbing peers may only win the optimistic slot.
            timeout = self.client.config.snub_timeout
            candidates = [p for p in interested if not p.snubbed(timeout)]
        unchoke = self.policy.allocate(
            self.client, candidates, self.slots, self._rng
        )

        if self.policy.uses_optimistic:
            if self._round % self.optimistic_every == 1 or self._optimistic is None or self._optimistic.closed:
                self._rotate_optimistic(interested, unchoke)
            if self._optimistic is not None and not self._optimistic.closed:
                unchoke.add(self._optimistic)

        if self.strategic:
            metrics = self.client.sim.metrics
            metrics.counter(f"strategy.{self.policy.name}.choke_rounds").add()
            metrics.counter(f"strategy.{self.policy.name}.unchokes").add(
                len(unchoke)
            )

        trace = self.client.sim.trace
        if trace.enabled:
            fields = dict(
                client=self.client.name, round=self._round,
                interested=len(interested),
                unchoked=sorted(p.peer_id or "?" for p in unchoke),
                optimistic=(
                    self._optimistic.peer_id
                    if self._optimistic is not None
                    else None
                ),
            )
            if self.strategic:
                fields["policy"] = self.policy.name
            trace.event("bittorrent", "choke_round", **fields)

        for peer in peers:
            peer.set_choking(peer not in unchoke)

    # ------------------------------------------------------------------
    def _rotate_optimistic(
        self,
        interested: List["PeerConnection"],
        already: set,
    ) -> None:
        candidates = [p for p in interested if p not in already]
        self._optimistic = self._rng.choice(candidates) if candidates else None

    @property
    def optimistic_peer(self) -> Optional["PeerConnection"]:
        return self._optimistic


class TitForTatChoker(ChokerDriver):
    """The reference choker under its historical name.

    Exactly a :class:`ChokerDriver` running
    :class:`~repro.strategy.policies.ReferencePolicy`; kept as the
    default (and the backward-compatible constructor) for every client
    that predates the strategy layer.
    """
