"""Token-bucket rate limiting for application-level upload caps.

Real clients (including the paper's CTorrent) throttle uploads in the
application: blocks are only handed to TCP when the limiter allows.  The
paper's Figure 3(a, b) sweeps exactly this knob, and wP2P's LIHD controller
adjusts it at runtime, so the bucket supports live rate changes.
"""

from __future__ import annotations

from typing import Optional

from ..sim import Simulator


class TokenBucket:
    """A byte-rate limiter.  ``rate=None`` means unlimited."""

    def __init__(
        self,
        sim: Simulator,
        rate: Optional[float],
        burst: Optional[float] = None,
    ) -> None:
        if rate is not None and rate < 0:
            raise ValueError("rate must be non-negative or None")
        self.sim = sim
        self.rate = rate
        # A caller-supplied burst is a configuration choice that must
        # survive live rate changes; only the default (burst == rate)
        # tracks the rate.
        self._explicit_burst = burst is not None
        self.burst = burst if burst is not None else (rate if rate else 0.0)
        self._tokens = self.burst
        self._last = sim.now
        audit = sim.audit
        if audit is not None:
            audit.register_bucket(self)

    # ------------------------------------------------------------------
    def set_rate(self, rate: Optional[float]) -> None:
        """Change the sustained rate; tokens on hand are preserved.

        A burst configured at construction is kept; the default burst
        follows the rate (including down to 0 for ``None``/``0``, so a
        bucket re-enabled later starts empty instead of spending a stale
        balance).  Tokens are always clamped to the current burst.
        """
        if rate is not None and rate < 0:
            raise ValueError("rate must be non-negative or None")
        self._refill()
        self.rate = rate
        if not self._explicit_burst:
            self.burst = rate if rate else 0.0
        self._tokens = min(self._tokens, self.burst)

    @property
    def unlimited(self) -> bool:
        return self.rate is None

    @property
    def blocked(self) -> bool:
        """True when the rate is zero — nothing may ever be sent."""
        return self.rate is not None and self.rate == 0

    def try_consume(self, nbytes: float) -> bool:
        """Take ``nbytes`` tokens if available; False otherwise."""
        if self.rate is None:
            return True
        if self.rate == 0:
            return False
        self._refill()
        if self._tokens >= nbytes:
            self._tokens -= nbytes
            return True
        return False

    def time_until(self, nbytes: float) -> float:
        """Seconds until ``nbytes`` tokens will be on hand (0 if now)."""
        if self.rate is None:
            return 0.0
        if self.rate == 0:
            return float("inf")
        self._refill()
        deficit = nbytes - self._tokens
        if deficit <= 0:
            return 0.0
        return deficit / self.rate

    def _refill(self) -> None:
        now = self.sim._now
        if self.rate:
            self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
        self._last = now

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens
