"""Torrent metainfo.

The simulated analogue of a ``.torrent`` file: content identity
(``info_hash``), piece geometry, and the tracker address.  Block layout
(16 KiB transfer blocks within pieces) matches the real protocol; the paper's
files use the BitTorrent default piece length of 256 KiB.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

BLOCK_LENGTH = 16_384
"""Transfer-block size used by all mainstream clients."""

DEFAULT_PIECE_LENGTH = 262_144
"""BitTorrent's default piece length (256 KiB), as in the paper (§3.6)."""


@dataclass(frozen=True)
class Torrent:
    """Immutable description of one shared file.

    ``tracker_ip``/``tracker_port`` point at the simulated tracker; peers
    learn each other's addresses only through it, as in real BitTorrent.
    """

    info_hash: str
    name: str
    total_size: int
    piece_length: int = DEFAULT_PIECE_LENGTH
    tracker_ip: str = ""
    tracker_port: int = 8000

    def __post_init__(self) -> None:
        if self.total_size <= 0:
            raise ValueError("total_size must be positive")
        if self.piece_length <= 0:
            raise ValueError("piece_length must be positive")
        if self.piece_length % BLOCK_LENGTH != 0 and self.piece_length > BLOCK_LENGTH:
            raise ValueError("piece_length must be a multiple of the block length")

    # ------------------------------------------------------------------
    @property
    def num_pieces(self) -> int:
        return (self.total_size + self.piece_length - 1) // self.piece_length

    def piece_size(self, index: int) -> int:
        """Size of piece ``index`` (the final piece may be short)."""
        self._check_index(index)
        if index < self.num_pieces - 1:
            return self.piece_length
        return self.total_size - self.piece_length * (self.num_pieces - 1)

    def blocks_in_piece(self, index: int) -> int:
        size = self.piece_size(index)
        block = min(BLOCK_LENGTH, self.piece_length)
        return (size + block - 1) // block

    def block_size(self, index: int, block: int) -> int:
        """Size of block ``block`` within piece ``index``."""
        size = self.piece_size(index)
        unit = min(BLOCK_LENGTH, self.piece_length)
        nblocks = self.blocks_in_piece(index)
        if not 0 <= block < nblocks:
            raise IndexError(f"block {block} out of range for piece {index}")
        if block < nblocks - 1:
            return unit
        return size - unit * (nblocks - 1)

    def block_offsets(self, index: int) -> List[Tuple[int, int]]:
        """``(begin, length)`` for every block of piece ``index``."""
        unit = min(BLOCK_LENGTH, self.piece_length)
        return [
            (b * unit, self.block_size(index, b))
            for b in range(self.blocks_in_piece(index))
        ]

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.num_pieces:
            raise IndexError(f"piece {index} out of range (0..{self.num_pieces - 1})")


_torrent_counter = [0]


def make_torrent(
    name: str,
    total_size: int,
    piece_length: int = DEFAULT_PIECE_LENGTH,
    tracker_ip: str = "",
    tracker_port: int = 8000,
) -> Torrent:
    """Create a torrent with a unique synthetic info-hash."""
    _torrent_counter[0] += 1
    info_hash = f"ih-{_torrent_counter[0]:08d}-{name}"
    return Torrent(
        info_hash=info_hash,
        name=name,
        total_size=total_size,
        piece_length=piece_length,
        tracker_ip=tracker_ip,
        tracker_port=tracker_port,
    )
