"""Piece and block bookkeeping for a downloading client.

Tracks which pieces are complete, which blocks of in-progress pieces are
missing/requested/held, enforces the standard "finish partial pieces first"
priority, expires stale requests, and simulates hash verification (with an
optional corruption probability for failure-injection tests).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..coding.codec import ReplicationCodec
from .bitfield import Bitfield
from .metainfo import Torrent
from .selection import PieceSelector, SelectionContext

MISSING = 0
REQUESTED = 1
HAVE = 2

BlockKey = Tuple[int, int]  # (piece index, begin offset)


class _PartialPiece:
    """Block states for one in-progress piece."""

    __slots__ = ("index", "states", "offsets", "requested_at")

    def __init__(self, torrent: Torrent, index: int) -> None:
        self.index = index
        self.offsets = torrent.block_offsets(index)
        self.states = [MISSING] * len(self.offsets)
        self.requested_at: Dict[int, float] = {}

    def block_number(self, begin: int) -> Optional[int]:
        for n, (offset, _length) in enumerate(self.offsets):
            if offset == begin:
                return n
        return None

    @property
    def complete(self) -> bool:
        return all(s == HAVE for s in self.states)

    def first_available(self) -> Optional[int]:
        for n, state in enumerate(self.states):
            if state == MISSING:
                return n
        return None


class PieceManager:
    """Download-side state for one torrent at one client."""

    def __init__(
        self,
        torrent: Torrent,
        complete: bool = False,
        initial_pieces: Optional[Iterable[int]] = None,
        corrupt_probability: float = 0.0,
        rng: Optional[random.Random] = None,
        trace=None,
        owner: str = "",
        codec=None,
    ) -> None:
        self.torrent = torrent
        # Optional structured tracing (repro.obs.tracing.TraceBus); the
        # owning client wires its simulator's bus in so piece completions
        # and hash failures land in the cross-layer event log.
        self._trace = trace
        self._owner = owner
        if complete:
            self.bitfield = Bitfield.full(torrent.num_pieces)
        else:
            self.bitfield = Bitfield(torrent.num_pieces, have=initial_pieces or ())
        self._partials: Dict[int, _PartialPiece] = {}
        self.corrupt_probability = corrupt_probability
        self._rng = rng or random.Random(0)
        self.bytes_completed = sum(
            torrent.piece_size(i) for i in self.bitfield.indices()
        )
        self.duplicate_blocks = 0
        self.hash_failures = 0
        self.completion_order: List[int] = []
        # Content-codec seam (repro.coding).  A trivial codec keeps every
        # hot path below on its historical fast branch (``_grouped is
        # None``) — no group bookkeeping, no extra RNG draws, and cell
        # digests byte-identical to the pre-codec era.  A grouped codec
        # adds O(1)-per-piece group accounting: the content is complete
        # when every k-of-n group is decodable, not when the bitfield is
        # full.
        self.codec = codec if codec is not None else ReplicationCodec(torrent)
        self._grouped = None if self.codec.trivial else self.codec
        if self._grouped is not None:
            counts = self._grouped.group_counts(self.bitfield)
            self._group_have = counts
            self._decodable = [
                count >= self._grouped.required(group)
                for group, count in enumerate(counts)
            ]
            self._decodable_count = sum(self._decodable)
            self.source_bytes_decoded = sum(
                self._grouped.group_source_bytes(group)
                for group, ok in enumerate(self._decodable)
                if ok
            )
            self.group_decode_order: List[int] = []

    # ------------------------------------------------------------------
    # Fault hook (repro.chaos)
    # ------------------------------------------------------------------
    def set_corrupt_probability(self, probability: float) -> None:
        """Change the per-piece corruption probability mid-run (chaos
        corruption bursts set it for a window, then restore it)."""
        if not 0.0 <= probability < 1.0:
            raise ValueError("corrupt_probability must be in [0, 1)")
        self.corrupt_probability = probability

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def complete(self) -> bool:
        if self._grouped is None:
            return self.bitfield.complete
        return self._decodable_count == self._grouped.num_groups

    @property
    def progress(self) -> float:
        """Fraction of the file's bytes verified complete."""
        return self.bytes_completed / self.torrent.total_size

    @property
    def content_progress(self) -> float:
        """Fraction of the *source* payload recoverable right now.

        Equals :attr:`progress` under replication; under a grouped codec
        it is the decoded-group payload over the source size.
        """
        if self._grouped is None:
            return self.progress
        return self.source_bytes_decoded / self._grouped.source_size

    def have_piece(self, index: int) -> bool:
        return self.bitfield.has(index)

    def missing_pieces(self) -> List[int]:
        return list(self.bitfield.missing())

    @property
    def partial_pieces(self) -> List[int]:
        return list(self._partials)

    # ------------------------------------------------------------------
    # Request generation
    # ------------------------------------------------------------------
    def next_request(
        self,
        peer_bitfield: Bitfield,
        selector: PieceSelector,
        ctx: SelectionContext,
    ) -> Optional[Tuple[int, int, int]]:
        """Choose the next ``(index, begin, length)`` to request from a peer.

        Strict priority: finish an in-progress piece the peer holds before
        starting a new one (standard client behaviour — it turns partial
        pieces into advertisable HAVEs quickly).
        """
        for partial in self._partials.values():
            if peer_bitfield.has(partial.index):
                block = partial.first_available()
                if block is not None:
                    begin, length = partial.offsets[block]
                    return partial.index, begin, length

        if self._grouped is None:
            candidates = [
                i
                for i in self.bitfield.missing()
                if i not in self._partials and peer_bitfield.has(i)
            ]
        else:
            # Coded content: never *start* a piece whose group already
            # decodes — those coded pieces are pure redundancy.  (Pieces
            # already partial when their group decoded are finished
            # normally; only a few in-flight blocks ride out.)
            decodable = self._decodable
            n = self._grouped.n
            candidates = [
                i
                for i in self.bitfield.missing()
                if i not in self._partials
                and peer_bitfield.has(i)
                and not decodable[i // n]
            ]
        choice = selector.choose(candidates, ctx)
        if choice is None:
            return None
        partial = _PartialPiece(self.torrent, choice)
        self._partials[choice] = partial
        begin, length = partial.offsets[0]
        return choice, begin, length

    def mark_requested(self, index: int, begin: int, now: float) -> None:
        partial = self._partials.get(index)
        if partial is None:
            return
        block = partial.block_number(begin)
        if block is not None and partial.states[block] == MISSING:
            partial.states[block] = REQUESTED
            partial.requested_at[block] = now

    def release_request(self, index: int, begin: int) -> None:
        """Return a requested block to MISSING (peer died / choked us)."""
        partial = self._partials.get(index)
        if partial is None:
            return
        block = partial.block_number(begin)
        if block is not None and partial.states[block] == REQUESTED:
            partial.states[block] = MISSING
            partial.requested_at.pop(block, None)

    def expire_requests(self, now: float, timeout: float) -> List[BlockKey]:
        """Release requests older than ``timeout``; returns released keys."""
        released: List[BlockKey] = []
        for partial in self._partials.values():
            for block, at in list(partial.requested_at.items()):
                if now - at >= timeout:
                    partial.states[block] = MISSING
                    del partial.requested_at[block]
                    released.append((partial.index, partial.offsets[block][0]))
        return released

    # ------------------------------------------------------------------
    # Block arrival
    # ------------------------------------------------------------------
    def receive_block(self, index: int, begin: int, length: int) -> Optional[int]:
        """Record a received block.

        Returns the piece index if this block completed (and verified) the
        piece, else None.  A corrupted piece is reset to MISSING entirely,
        as real clients re-download failed pieces.
        """
        if self.bitfield.has(index):
            self.duplicate_blocks += 1
            return None
        partial = self._partials.get(index)
        if partial is None:
            # unsolicited block for a piece we never started: accept it
            partial = _PartialPiece(self.torrent, index)
            self._partials[index] = partial
        block = partial.block_number(begin)
        if block is None:
            return None
        if partial.states[block] == HAVE:
            self.duplicate_blocks += 1
            return None
        partial.states[block] = HAVE
        partial.requested_at.pop(block, None)
        if not partial.complete:
            return None
        # Piece complete: verify.
        del self._partials[index]
        if self.corrupt_probability > 0 and self._rng.random() < self.corrupt_probability:
            self.hash_failures += 1
            if self._trace is not None and self._trace.enabled:
                self._trace.event(
                    "bittorrent", "hash_failure", client=self._owner, piece=index
                )
            return None
        self.bitfield.set(index)
        self.bytes_completed += self.torrent.piece_size(index)
        self.completion_order.append(index)
        if self._trace is not None and self._trace.enabled:
            self._trace.event(
                "bittorrent", "piece_complete", client=self._owner,
                piece=index, progress=round(self.progress, 4),
            )
        if self._grouped is not None:
            self._note_group_progress(index)
        return index

    def _note_group_progress(self, index: int) -> None:
        """Grouped-codec bookkeeping for one newly verified piece."""
        grouped = self._grouped
        group = index // grouped.n
        count = self._group_have[group] + 1
        self._group_have[group] = count
        if not self._decodable[group] and count >= grouped.required(group):
            self._decodable[group] = True
            self._decodable_count += 1
            self.source_bytes_decoded += grouped.group_source_bytes(group)
            self.group_decode_order.append(group)
            if self._trace is not None and self._trace.enabled:
                self._trace.event(
                    "coding", "group_decodable", client=self._owner,
                    group=group, decodable=self._decodable_count,
                    groups=grouped.num_groups,
                    content_progress=round(self.content_progress, 4),
                )

    def endgame_candidates(self, peer_bitfield: Bitfield) -> List[Tuple[int, int, int]]:
        """Blocks already requested elsewhere that ``peer_bitfield`` covers.

        Endgame mode re-requests these from additional peers so the last
        few blocks are not hostage to one slow connection.
        """
        out: List[Tuple[int, int, int]] = []
        for partial in self._partials.values():
            if not peer_bitfield.has(partial.index):
                continue
            for block, state in enumerate(partial.states):
                if state == REQUESTED:
                    begin, length = partial.offsets[block]
                    out.append((partial.index, begin, length))
        return out

    def all_remaining_requested(self) -> bool:
        """True when every missing block is already requested (endgame)."""
        if self.complete:
            return False
        for partial in self._partials.values():
            if any(state == MISSING for state in partial.states):
                return False
        # pieces not yet started still have unrequested blocks
        if self._grouped is None:
            return not any(
                i not in self._partials for i in self.bitfield.missing()
            )
        # coded: pieces of already-decodable groups will never be started
        decodable = self._decodable
        n = self._grouped.n
        return not any(
            i not in self._partials and not decodable[i // n]
            for i in self.bitfield.missing()
        )

    # ------------------------------------------------------------------
    def outstanding_requests(self) -> List[BlockKey]:
        out: List[BlockKey] = []
        for partial in self._partials.values():
            for block in partial.requested_at:
                out.append((partial.index, partial.offsets[block][0]))
        return out
