"""Piece and block bookkeeping for a downloading client.

Tracks which pieces are complete, which blocks of in-progress pieces are
missing/requested/held, enforces the standard "finish partial pieces first"
priority, expires stale requests, and simulates hash verification (with an
optional corruption probability for failure-injection tests).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .bitfield import Bitfield
from .metainfo import Torrent
from .selection import PieceSelector, SelectionContext

MISSING = 0
REQUESTED = 1
HAVE = 2

BlockKey = Tuple[int, int]  # (piece index, begin offset)


class _PartialPiece:
    """Block states for one in-progress piece."""

    __slots__ = ("index", "states", "offsets", "requested_at")

    def __init__(self, torrent: Torrent, index: int) -> None:
        self.index = index
        self.offsets = torrent.block_offsets(index)
        self.states = [MISSING] * len(self.offsets)
        self.requested_at: Dict[int, float] = {}

    def block_number(self, begin: int) -> Optional[int]:
        for n, (offset, _length) in enumerate(self.offsets):
            if offset == begin:
                return n
        return None

    @property
    def complete(self) -> bool:
        return all(s == HAVE for s in self.states)

    def first_available(self) -> Optional[int]:
        for n, state in enumerate(self.states):
            if state == MISSING:
                return n
        return None


class PieceManager:
    """Download-side state for one torrent at one client."""

    def __init__(
        self,
        torrent: Torrent,
        complete: bool = False,
        initial_pieces: Optional[Iterable[int]] = None,
        corrupt_probability: float = 0.0,
        rng: Optional[random.Random] = None,
        trace=None,
        owner: str = "",
    ) -> None:
        self.torrent = torrent
        # Optional structured tracing (repro.obs.tracing.TraceBus); the
        # owning client wires its simulator's bus in so piece completions
        # and hash failures land in the cross-layer event log.
        self._trace = trace
        self._owner = owner
        if complete:
            self.bitfield = Bitfield.full(torrent.num_pieces)
        else:
            self.bitfield = Bitfield(torrent.num_pieces, have=initial_pieces or ())
        self._partials: Dict[int, _PartialPiece] = {}
        self.corrupt_probability = corrupt_probability
        self._rng = rng or random.Random(0)
        self.bytes_completed = sum(
            torrent.piece_size(i) for i in self.bitfield.indices()
        )
        self.duplicate_blocks = 0
        self.hash_failures = 0
        self.completion_order: List[int] = []

    # ------------------------------------------------------------------
    # Fault hook (repro.chaos)
    # ------------------------------------------------------------------
    def set_corrupt_probability(self, probability: float) -> None:
        """Change the per-piece corruption probability mid-run (chaos
        corruption bursts set it for a window, then restore it)."""
        if not 0.0 <= probability < 1.0:
            raise ValueError("corrupt_probability must be in [0, 1)")
        self.corrupt_probability = probability

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def complete(self) -> bool:
        return self.bitfield.complete

    @property
    def progress(self) -> float:
        """Fraction of the file's bytes verified complete."""
        return self.bytes_completed / self.torrent.total_size

    def have_piece(self, index: int) -> bool:
        return self.bitfield.has(index)

    def missing_pieces(self) -> List[int]:
        return list(self.bitfield.missing())

    @property
    def partial_pieces(self) -> List[int]:
        return list(self._partials)

    # ------------------------------------------------------------------
    # Request generation
    # ------------------------------------------------------------------
    def next_request(
        self,
        peer_bitfield: Bitfield,
        selector: PieceSelector,
        ctx: SelectionContext,
    ) -> Optional[Tuple[int, int, int]]:
        """Choose the next ``(index, begin, length)`` to request from a peer.

        Strict priority: finish an in-progress piece the peer holds before
        starting a new one (standard client behaviour — it turns partial
        pieces into advertisable HAVEs quickly).
        """
        for partial in self._partials.values():
            if peer_bitfield.has(partial.index):
                block = partial.first_available()
                if block is not None:
                    begin, length = partial.offsets[block]
                    return partial.index, begin, length

        candidates = [
            i
            for i in self.bitfield.missing()
            if i not in self._partials and peer_bitfield.has(i)
        ]
        choice = selector.choose(candidates, ctx)
        if choice is None:
            return None
        partial = _PartialPiece(self.torrent, choice)
        self._partials[choice] = partial
        begin, length = partial.offsets[0]
        return choice, begin, length

    def mark_requested(self, index: int, begin: int, now: float) -> None:
        partial = self._partials.get(index)
        if partial is None:
            return
        block = partial.block_number(begin)
        if block is not None and partial.states[block] == MISSING:
            partial.states[block] = REQUESTED
            partial.requested_at[block] = now

    def release_request(self, index: int, begin: int) -> None:
        """Return a requested block to MISSING (peer died / choked us)."""
        partial = self._partials.get(index)
        if partial is None:
            return
        block = partial.block_number(begin)
        if block is not None and partial.states[block] == REQUESTED:
            partial.states[block] = MISSING
            partial.requested_at.pop(block, None)

    def expire_requests(self, now: float, timeout: float) -> List[BlockKey]:
        """Release requests older than ``timeout``; returns released keys."""
        released: List[BlockKey] = []
        for partial in self._partials.values():
            for block, at in list(partial.requested_at.items()):
                if now - at >= timeout:
                    partial.states[block] = MISSING
                    del partial.requested_at[block]
                    released.append((partial.index, partial.offsets[block][0]))
        return released

    # ------------------------------------------------------------------
    # Block arrival
    # ------------------------------------------------------------------
    def receive_block(self, index: int, begin: int, length: int) -> Optional[int]:
        """Record a received block.

        Returns the piece index if this block completed (and verified) the
        piece, else None.  A corrupted piece is reset to MISSING entirely,
        as real clients re-download failed pieces.
        """
        if self.bitfield.has(index):
            self.duplicate_blocks += 1
            return None
        partial = self._partials.get(index)
        if partial is None:
            # unsolicited block for a piece we never started: accept it
            partial = _PartialPiece(self.torrent, index)
            self._partials[index] = partial
        block = partial.block_number(begin)
        if block is None:
            return None
        if partial.states[block] == HAVE:
            self.duplicate_blocks += 1
            return None
        partial.states[block] = HAVE
        partial.requested_at.pop(block, None)
        if not partial.complete:
            return None
        # Piece complete: verify.
        del self._partials[index]
        if self.corrupt_probability > 0 and self._rng.random() < self.corrupt_probability:
            self.hash_failures += 1
            if self._trace is not None and self._trace.enabled:
                self._trace.event(
                    "bittorrent", "hash_failure", client=self._owner, piece=index
                )
            return None
        self.bitfield.set(index)
        self.bytes_completed += self.torrent.piece_size(index)
        self.completion_order.append(index)
        if self._trace is not None and self._trace.enabled:
            self._trace.event(
                "bittorrent", "piece_complete", client=self._owner,
                piece=index, progress=round(self.progress, 4),
            )
        return index

    def endgame_candidates(self, peer_bitfield: Bitfield) -> List[Tuple[int, int, int]]:
        """Blocks already requested elsewhere that ``peer_bitfield`` covers.

        Endgame mode re-requests these from additional peers so the last
        few blocks are not hostage to one slow connection.
        """
        out: List[Tuple[int, int, int]] = []
        for partial in self._partials.values():
            if not peer_bitfield.has(partial.index):
                continue
            for block, state in enumerate(partial.states):
                if state == REQUESTED:
                    begin, length = partial.offsets[block]
                    out.append((partial.index, begin, length))
        return out

    def all_remaining_requested(self) -> bool:
        """True when every missing block is already requested (endgame)."""
        if self.complete:
            return False
        for partial in self._partials.values():
            if any(state == MISSING for state in partial.states):
                return False
        # pieces not yet started still have unrequested blocks
        return not any(
            i not in self._partials for i in self.bitfield.missing()
        )

    # ------------------------------------------------------------------
    def outstanding_requests(self) -> List[BlockKey]:
        out: List[BlockKey] = []
        for partial in self._partials.values():
            for block in partial.requested_at:
                out.append((partial.index, partial.offsets[block][0]))
        return out
