"""Piece bitfields."""

from __future__ import annotations

from typing import Iterable, Iterator, List


class Bitfield:
    """A fixed-size set of piece indices with protocol wire sizing."""

    __slots__ = ("size", "_bits")

    def __init__(self, size: int, have: Iterable[int] = ()) -> None:
        if size <= 0:
            raise ValueError("size must be positive")
        self.size = size
        self._bits = bytearray((size + 7) // 8)
        for index in have:
            self.set(index)

    @classmethod
    def full(cls, size: int) -> "Bitfield":
        bf = cls(size)
        for i in range(size):
            bf.set(i)
        return bf

    # ------------------------------------------------------------------
    def set(self, index: int) -> None:
        self._check(index)
        self._bits[index >> 3] |= 0x80 >> (index & 7)

    def clear(self, index: int) -> None:
        self._check(index)
        self._bits[index >> 3] &= ~(0x80 >> (index & 7)) & 0xFF

    def has(self, index: int) -> bool:
        self._check(index)
        return bool(self._bits[index >> 3] & (0x80 >> (index & 7)))

    def __contains__(self, index: int) -> bool:
        return 0 <= index < self.size and self.has(index)

    def count(self) -> int:
        return sum(bin(b).count("1") for b in self._bits)

    @property
    def complete(self) -> bool:
        return self.count() == self.size

    @property
    def empty(self) -> bool:
        return all(b == 0 for b in self._bits)

    def indices(self) -> Iterator[int]:
        for i in range(self.size):
            if self.has(i):
                yield i

    def missing(self) -> Iterator[int]:
        for i in range(self.size):
            if not self.has(i):
                yield i

    def copy(self) -> "Bitfield":
        bf = Bitfield(self.size)
        bf._bits[:] = self._bits
        return bf

    def intersection_count(self, other: "Bitfield") -> int:
        if other.size != self.size:
            raise ValueError("bitfield size mismatch")
        return sum(bin(a & b).count("1") for a, b in zip(self._bits, other._bits))

    def has_piece_other_is_missing(self, other: "Bitfield") -> bool:
        """True if we hold any piece ``other`` lacks (interest test)."""
        if other.size != self.size:
            raise ValueError("bitfield size mismatch")
        return any(a & ~b & 0xFF for a, b in zip(self._bits, other._bits))

    @property
    def wire_bytes(self) -> int:
        """Payload bytes of the BITFIELD message body."""
        return len(self._bits)

    def __len__(self) -> int:
        return self.size

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitfield):
            return NotImplemented
        return self.size == other.size and self._bits == other._bits

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Bitfield({self.count()}/{self.size})"

    def _check(self, index: int) -> None:
        if not 0 <= index < self.size:
            raise IndexError(f"piece index {index} out of range (size {self.size})")

    def to_index_list(self) -> List[int]:
        return list(self.indices())
