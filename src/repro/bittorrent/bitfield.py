"""Piece bitfields."""

from __future__ import annotations

from typing import Iterable, Iterator, List


class Bitfield:
    """A fixed-size set of piece indices with protocol wire sizing.

    A set-bit counter is maintained incrementally by :meth:`set` /
    :meth:`clear`, so :meth:`count` — and therefore :attr:`complete`,
    which sits on the availability/interest hot path — is O(1) instead
    of a per-byte popcount over the whole field.
    """

    __slots__ = ("size", "_bits", "_num_set")

    def __init__(self, size: int, have: Iterable[int] = ()) -> None:
        if size <= 0:
            raise ValueError("size must be positive")
        self.size = size
        self._bits = bytearray((size + 7) // 8)
        self._num_set = 0
        for index in have:
            self.set(index)

    @classmethod
    def full(cls, size: int) -> "Bitfield":
        bf = cls(size)
        bf._bits[:-1] = b"\xff" * (len(bf._bits) - 1)
        tail = size & 7
        bf._bits[-1] = 0xFF if tail == 0 else (0xFF00 >> tail) & 0xFF
        bf._num_set = size
        return bf

    # ------------------------------------------------------------------
    # set/has/clear sit on the piece-selection hot path (hundreds of
    # thousands of calls per packet-level run), so the bounds check is
    # inlined rather than delegated to _check().
    def set(self, index: int) -> None:
        if index < 0 or index >= self.size:
            raise IndexError(f"piece index {index} out of range (size {self.size})")
        mask = 0x80 >> (index & 7)
        if not self._bits[index >> 3] & mask:
            self._bits[index >> 3] |= mask
            self._num_set += 1

    def clear(self, index: int) -> None:
        if index < 0 or index >= self.size:
            raise IndexError(f"piece index {index} out of range (size {self.size})")
        mask = 0x80 >> (index & 7)
        if self._bits[index >> 3] & mask:
            self._bits[index >> 3] &= ~mask & 0xFF
            self._num_set -= 1

    def has(self, index: int) -> bool:
        if index < 0 or index >= self.size:
            raise IndexError(f"piece index {index} out of range (size {self.size})")
        return (self._bits[index >> 3] & (0x80 >> (index & 7))) != 0

    def __contains__(self, index: int) -> bool:
        return 0 <= index < self.size and self.has(index)

    def count(self) -> int:
        return self._num_set

    @property
    def complete(self) -> bool:
        return self._num_set == self.size

    @property
    def empty(self) -> bool:
        return self._num_set == 0

    def indices(self) -> Iterator[int]:
        bits = self._bits
        for i in range(self.size):
            if bits[i >> 3] & (0x80 >> (i & 7)):
                yield i

    def missing(self) -> Iterator[int]:
        bits = self._bits
        for i in range(self.size):
            if not bits[i >> 3] & (0x80 >> (i & 7)):
                yield i

    def copy(self) -> "Bitfield":
        bf = Bitfield(self.size)
        bf._bits[:] = self._bits
        bf._num_set = self._num_set
        return bf

    def intersection_count(self, other: "Bitfield") -> int:
        if other.size != self.size:
            raise ValueError("bitfield size mismatch")
        a = int.from_bytes(self._bits, "big")
        b = int.from_bytes(other._bits, "big")
        return (a & b).bit_count()

    def has_piece_other_is_missing(self, other: "Bitfield") -> bool:
        """True if we hold any piece ``other`` lacks (interest test)."""
        if other.size != self.size:
            raise ValueError("bitfield size mismatch")
        a = int.from_bytes(self._bits, "big")
        b = int.from_bytes(other._bits, "big")
        return bool(a & ~b)

    @property
    def wire_bytes(self) -> int:
        """Payload bytes of the BITFIELD message body."""
        return len(self._bits)

    def __len__(self) -> int:
        return self.size

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitfield):
            return NotImplemented
        return self.size == other.size and self._bits == other._bits

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Bitfield({self.count()}/{self.size})"

    def _check(self, index: int) -> None:
        if not 0 <= index < self.size:
            raise IndexError(f"piece index {index} out of range (size {self.size})")

    def to_index_list(self) -> List[int]:
        return list(self.indices())
