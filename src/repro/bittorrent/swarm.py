"""Swarm scenario builder.

Assembles complete testbeds — tracker, wired fixed peers, wireless mobile
peers, mobility controllers — mirroring the paper's setups (Figures 1
and 10) in a few lines.  Used by tests, examples, and every experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .. import chaos as chaos_defaults
from .. import coding as coding_defaults
from .. import strategy as strategy_defaults
from ..chaos import ChaosController, ChaosSchedule
from ..net import (
    AddressAllocator,
    Host,
    Internet,
    MobilityController,
    WirelessChannel,
    attach_wired_host,
    attach_wireless_host,
)
from ..sim import Simulator
from ..tcp.connection import TCPConfig
from ..tcp.stack import TCPStack
from .client import BitTorrentClient, ClientConfig
from .metainfo import Torrent, make_torrent
from .selection import PieceSelector
from .tracker import Tracker


@dataclass
class PeerHandle:
    """Everything a scenario knows about one peer."""

    name: str
    host: Host
    client: BitTorrentClient
    channel: Optional[WirelessChannel] = None
    mobility: Optional[MobilityController] = None
    #: Excluded from wildcard/class chaos targets (still reachable by
    #: exact name).  Set on synthetic aggregates like the hybrid
    #: backend's background facade, whose faults are modelled elsewhere.
    chaos_exempt: bool = False

    @property
    def wireless(self) -> bool:
        return self.channel is not None


class SwarmScenario:
    """A tracker plus any number of wired/wireless peers for one torrent."""

    def __init__(
        self,
        seed: int = 0,
        file_size: int = 4 * 1024 * 1024,
        piece_length: int = 65_536,
        core_delay: float = 0.02,
        tracker_interval: float = 120.0,
        tcp_config: Optional[TCPConfig] = None,
        torrent_name: str = "shared-file",
        strategy_mix=None,
        content=None,
    ) -> None:
        self.sim = Simulator(seed=seed)
        self.internet = Internet(self.sim, core_delay=core_delay)
        self.alloc = AddressAllocator()
        self.tcp_config = tcp_config or TCPConfig()

        self.tracker_host = Host(self.sim, "tracker")
        TCPStack(self.sim, self.tracker_host, config=self.tcp_config)
        attach_wired_host(
            self.sim, self.tracker_host, self.internet, self.alloc.allocate(),
            down_rate=10_000_000, up_rate=10_000_000,
        )
        self.tracker = Tracker(
            self.sim, self.tracker_host, interval=tracker_interval
        )
        self.torrent: Torrent = make_torrent(
            torrent_name,
            total_size=file_size,
            piece_length=piece_length,
            tracker_ip=self.tracker_host.ip or "",
            tracker_port=self.tracker.port,
        )
        self.peers: Dict[str, PeerHandle] = {}
        #: armed fault-injection controller, if any (see repro.chaos)
        self.chaos: Optional[ChaosController] = None
        applied = chaos_defaults.apply_defaults(self)
        if applied is not None:
            self.chaos = applied
        #: canonical strategy mix peers draw from, if any (repro.strategy)
        self.strategy_mix = None
        self._strategy_assigner: Optional[strategy_defaults.MixAssigner] = None
        mix = (
            strategy_mix
            if strategy_mix is not None
            else strategy_defaults.ambient_mix()
        )
        if mix:
            normalized = strategy_defaults.normalize_mix(mix)
            if not strategy_defaults.mix_is_default(normalized):
                self.strategy_mix = normalized
                self._strategy_assigner = strategy_defaults.MixAssigner(normalized)
        #: canonical content mode, if non-default (repro.coding).  Explicit
        #: beats the ambient install; plain replication stays ``None`` so
        #: every peer keeps the historical trivial-codec fast path.
        self.content = None
        spec = content if content is not None else coding_defaults.ambient_content()
        if spec is not None:
            normalized_content = coding_defaults.normalize_content(spec)
            if not coding_defaults.content_is_default(normalized_content):
                self.content = normalized_content

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def add_chaos(self, schedule: ChaosSchedule) -> ChaosController:
        """Arm a :class:`~repro.chaos.ChaosSchedule` against this swarm.

        Fault targets are resolved when each fault fires, so this can be
        called before or after the peers are built.  Only one controller
        may be armed per scenario (schedules compose with ``+`` instead).
        """
        if self.chaos is not None:
            raise RuntimeError(
                "scenario already has an armed ChaosController; "
                "compose schedules with + before attaching"
            )
        self.chaos = ChaosController(self, schedule).arm()
        return self.chaos

    # ------------------------------------------------------------------
    # Peer construction
    # ------------------------------------------------------------------
    def add_wired_peer(
        self,
        name: str,
        complete: bool = False,
        down_rate: float = 500_000.0,
        up_rate: float = 48_000.0,
        config: Optional[ClientConfig] = None,
        selector: Optional[PieceSelector] = None,
        client_factory=BitTorrentClient,
        initial_pieces=None,
        strategy=None,
    ) -> PeerHandle:
        """A fixed peer on an asymmetric wired access link."""
        host = Host(self.sim, name)
        TCPStack(self.sim, host, config=self.tcp_config)
        attach_wired_host(
            self.sim, host, self.internet, self.alloc.allocate(),
            down_rate=down_rate, up_rate=up_rate,
        )
        client = client_factory(
            self.sim, host, self.torrent,
            complete=complete, selector=selector, config=config, name=name,
            initial_pieces=initial_pieces,
            **self._strategy_kwargs(strategy, "wired", complete),
            **self._codec_kwargs(),
        )
        handle = PeerHandle(name, host, client)
        self.peers[name] = handle
        return handle

    def add_wireless_peer(
        self,
        name: str,
        complete: bool = False,
        rate: float = 100_000.0,
        ber: float = 0.0,
        ap_queue_packets: int = 50,
        config: Optional[ClientConfig] = None,
        selector: Optional[PieceSelector] = None,
        client_factory=BitTorrentClient,
        initial_pieces=None,
        strategy=None,
    ) -> PeerHandle:
        """A (potentially mobile) peer behind a shared wireless cell."""
        host = Host(self.sim, name)
        TCPStack(self.sim, host, config=self.tcp_config)
        channel = attach_wireless_host(
            self.sim, host, self.internet, self.alloc.allocate(),
            rate=rate, ber=ber, ap_queue_packets=ap_queue_packets,
        )
        client = client_factory(
            self.sim, host, self.torrent,
            complete=complete, selector=selector, config=config, name=name,
            initial_pieces=initial_pieces,
            **self._strategy_kwargs(strategy, "mobile", complete),
            **self._codec_kwargs(),
        )
        handle = PeerHandle(name, host, client, channel=channel)
        self.peers[name] = handle
        return handle

    def _strategy_kwargs(self, strategy, population: str, complete: bool):
        """Resolve a peer's strategy: explicit beats the scenario mix.

        Returned as kwargs so the default path passes nothing — custom
        ``client_factory`` callables that predate the strategy layer
        keep working untouched.  Seeds never draw from the mix (the
        sweep fractions describe the leecher population).
        """
        if strategy is None and self._strategy_assigner is not None and not complete:
            strategy = self._strategy_assigner.assign(population)
        return {} if strategy is None else {"strategy": strategy}

    def _codec_kwargs(self):
        """A fresh codec per peer when a content mode is set, else nothing
        (so ``client_factory`` callables predating the codec seam keep
        working untouched)."""
        if self.content is None:
            return {}
        return {"codec": coding_defaults.make_codec(self.content, self.torrent)}

    def custody_pieces(self, column: int, custodians: int) -> List[int]:
        """Initial pieces for custody seed ``column`` of ``custodians``.

        PeerDAS-style subset seeding: the custodians jointly cover every
        piece index exactly once.  Layout is content-agnostic — under
        replication each piece has one holder; under a grouped codec each
        custodian holds an interleaved column of coded pieces.
        """
        return coding_defaults.custody_column(
            self.torrent.num_pieces, column, custodians
        )

    def add_mobility(
        self,
        peer: PeerHandle,
        interval: float,
        downtime: float = 1.0,
        jitter: float = 0.0,
        start: bool = True,
    ) -> MobilityController:
        """Attach periodic IP renumbering to a peer."""
        controller = MobilityController(
            self.sim, peer.host, self.internet, self.alloc,
            interval=interval, downtime=downtime, jitter=jitter,
        )
        peer.mobility = controller
        if start:
            controller.start()
        return controller

    # ------------------------------------------------------------------
    # Execution helpers
    # ------------------------------------------------------------------
    def start_all(self, stagger: float = 0.1) -> None:
        """Start every client, staggered to avoid thundering-herd announces."""
        for i, handle in enumerate(self.peers.values()):
            self.sim.schedule(i * stagger, handle.client.start)

    def run(self, until: float) -> float:
        return self.sim.run(until=until)

    def run_until_complete(
        self,
        names: Optional[List[str]] = None,
        timeout: float = 3600.0,
        poll: float = 1.0,
    ) -> bool:
        """Run until the named clients (default: all leeches) finish."""
        if names is None:
            names = [n for n, h in self.peers.items() if not h.client.complete]
        deadline = self.sim.now + timeout
        while self.sim.now < deadline:
            if all(self.peers[n].client.complete for n in names):
                return True
            self.sim.run(until=min(self.sim.now + poll, deadline))
        return all(self.peers[n].client.complete for n in names)

    def __getitem__(self, name: str) -> PeerHandle:
        return self.peers[name]
