"""Per-peer-ID transfer credit that survives reconnections.

BitTorrent implementations of the paper's era (Azureus in particular, which
the paper's testbed runs) keep per-peer statistics and reputation keyed by
**peer ID**, so a peer that reconnects under the same ID re-enters the
choker's ranking with its history, while a new ID starts from zero and must
wait for an optimistic unchoke.  That asymmetry is exactly what the paper's
identity-retention result (Figure 8(b)) exploits: "since the peers track the
goodness of corresponding peers based on the peer-id, [an IP change] results
in the mobile peer losing all the credit it has built" (§3.4).

:class:`PeerLedger` models that credit as an exponentially decayed byte
rate: receipts add to the credit, and the credit halves every ``half_life``
seconds, connected or not.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..sim import Simulator


class PeerLedger:
    """Decaying per-peer-ID credit, in effective bytes/second."""

    def __init__(self, sim: Simulator, half_life: float = 60.0) -> None:
        if half_life <= 0:
            raise ValueError("half_life must be positive")
        self.sim = sim
        self.half_life = half_life
        self._credit: Dict[str, Tuple[float, float]] = {}  # id -> (bytes, t)

    def credit(self, peer_id: str, nbytes: float) -> None:
        """Record ``nbytes`` received from ``peer_id``."""
        decayed = self._decayed(peer_id)
        self._credit[peer_id] = (decayed + nbytes, self.sim.now)

    def rate(self, peer_id: str) -> float:
        """Effective credited rate for ``peer_id`` (bytes/second)."""
        return self._decayed(peer_id) / self.half_life

    def raw_credit(self, peer_id: str) -> float:
        """Undecayed credit currently stored for ``peer_id`` (0 if unknown).

        This is the upper bound on what the peer can ever have delivered:
        decay only shrinks the stored value, so ``raw_credit`` can never
        exceed the true bytes received from that ID.
        """
        entry = self._credit.get(peer_id)
        return entry[0] if entry is not None else 0.0

    def forget(self, peer_id: str) -> None:
        self._credit.pop(peer_id, None)

    def prune(self, floor: float = 1.0) -> int:
        """Drop entries whose decayed credit has fallen below ``floor``
        bytes; returns how many were dropped.

        Peer-ID churn (a mobile host restarting its task with a fresh ID
        after every handoff) would otherwise grow the ledger without
        bound: each orphaned ID sits at an exponentially decaying — but
        never zero — credit forever.  Below one byte of effective credit
        an entry is indistinguishable from an unknown peer.
        """
        stale = [pid for pid in self._credit if self._decayed(pid) < floor]
        for pid in stale:
            del self._credit[pid]
        return len(stale)

    def known_ids(self) -> Tuple[str, ...]:
        return tuple(self._credit)

    def _decayed(self, peer_id: str) -> float:
        entry = self._credit.get(peer_id)
        if entry is None:
            return 0.0
        value, at = entry
        dt = self.sim.now - at
        if dt <= 0:
            return value
        return value * 0.5 ** (dt / self.half_life)
