"""The BitTorrent client.

Ties the protocol pieces together for one torrent on one host: tracker
announces, peer connection management (with the standard duplicate-
connection tie-break), interest/choke handling via the tit-for-tat choker,
request pipelining through the piece manager and selection strategy, and a
token-bucket upload limiter.

Mobility behaviour is pluggable via ``ip_change_policy``.  The default is
what the paper observes in deployed clients (§3.4): on an IP change the
task is terminated and re-initiated with a **fresh peer ID**, forfeiting
all tit-for-tat credit.  wP2P installs a different policy (identity
retention + role reversal) from :mod:`repro.wp2p`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple, Union

from ..net.host import Host
from ..sim import Counter, PeriodicTask, Simulator
from ..strategy import ClientStrategy, resolve_strategy
from ..tcp.connection import TCPConnection
from ..tcp.stack import TCPStack
from .choker import ChokerDriver, TitForTatChoker
from .ledger import PeerLedger
from .messages import (
    EVENT_COMPLETED,
    EVENT_PERIODIC,
    EVENT_STARTED,
    EVENT_STOPPED,
    AnnounceRequest,
    AnnounceResponse,
    Piece,
    Request,
    TrackerError,
)
from .metainfo import Torrent
from .peer import PeerConnection
from .piece_manager import PieceManager
from .selection import (
    PieceSelector,
    RarestFirstSelector,
    SelectionContext,
    make_selector,
)


@dataclass
class ClientConfig:
    """Client tunables (defaults follow mainstream-client conventions)."""

    listen_port: int = 6881
    max_peers: int = 30
    request_pipeline: int = 8
    request_timeout: float = 30.0
    choke_interval: float = 10.0
    unchoke_slots: int = 3
    optimistic_every: int = 3
    numwant: int = 50
    announce_interval: Optional[float] = None  # None: use tracker's value
    announce_retry: float = 10.0
    upload_limit: Optional[float] = None  # bytes/second; None = unlimited
    rate_window: float = 10.0
    ledger_half_life: float = 60.0
    send_buffer_cap: int = 65_536
    sweep_interval: float = 1.0
    connects_per_sweep: int = 4
    task_restart_delay: float = 2.0
    keep_seeding: bool = True
    corrupt_probability: float = 0.0
    endgame: bool = False
    """Re-request the last outstanding blocks from multiple peers and
    Cancel duplicates on arrival (real-client endgame mode; off by default
    to match the paper's CTorrent baseline)."""
    keepalive_interval: float = 120.0
    """Send a keep-alive on connections idle this long (standard 2 min)."""
    idle_timeout: float = 0.0
    """Drop connections silent for this long; 0 disables (most experiments
    are shorter than a realistic 4-minute timeout)."""
    anti_snubbing: bool = False
    """Exclude peers that stopped sending us blocks from ranked unchoke
    slots (real-client behaviour; off by default to match the paper's
    CTorrent baseline)."""
    snub_timeout: float = 60.0


IPChangePolicy = Callable[["BitTorrentClient", Optional[str], Optional[str]], None]

#: Backoff ceiling for failed announces when neither the client config
#: nor a past tracker response pins an announce interval.
DEFAULT_ANNOUNCE_BACKOFF_CAP = 120.0


def default_restart_policy(
    client: "BitTorrentClient", old: Optional[str], new: Optional[str]
) -> None:
    """The deployed-client behaviour the paper measures: on a new address,
    terminate the task and re-initiate it under a fresh peer ID."""
    client.schedule_task_restart(new_peer_id=True)


class BitTorrentClient:
    """One torrent's client application on one host."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        torrent: Torrent,
        complete: bool = False,
        selector: Optional[PieceSelector] = None,
        config: Optional[ClientConfig] = None,
        name: Optional[str] = None,
        initial_pieces=None,
        strategy: Optional[Union[str, ClientStrategy]] = None,
        codec=None,
        upload_bucket=None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.torrent = torrent
        self.config = config or ClientConfig()
        self.name = name or f"bt.{host.name}"
        # Strategy resolution: a registry name or ClientStrategy bundles a
        # choking policy, an optional selector and config overrides.  The
        # overrides land on a *copy* (configs are shared across peers in
        # several experiments); ``strategy=None`` changes nothing at all.
        self.strategy: Optional[ClientStrategy] = resolve_strategy(strategy)
        if self.strategy is not None and self.strategy.config_overrides:
            self.config = replace(self.config, **self.strategy.config_overrides)
        if (
            selector is None
            and self.strategy is not None
            and self.strategy.selector is not None
        ):
            selector = make_selector(self.strategy.selector)
        self.selector = selector or RarestFirstSelector()
        self._rng = sim.rng.stream(f"client.{self.name}")
        self.manager = PieceManager(
            torrent,
            complete=complete,
            initial_pieces=initial_pieces,
            corrupt_probability=self.config.corrupt_probability,
            rng=sim.rng.stream(f"client.{self.name}.verify"),
            trace=sim.trace,
            owner=self.name,
            codec=codec,
        )
        # Coded content gets PeerDAS-style availability sampling; the
        # default (trivial) codec attaches nothing.
        self._availability_sampler = None
        if not self.manager.codec.trivial:
            from ..coding.sampling import AvailabilitySampler

            self._availability_sampler = AvailabilitySampler(self)
        stack = host.transport
        self.stack: TCPStack = stack if isinstance(stack, TCPStack) else TCPStack(sim, host)

        self.peer_id = self._generate_peer_id()
        self.peers: Dict[str, PeerConnection] = {}
        self._pending: Set[PeerConnection] = set()
        self._connecting: Set[Tuple[str, int]] = set()
        self.known_addresses: Dict[str, Tuple[str, int]] = {}
        self.availability: Dict[int, int] = {}

        self.ledger = PeerLedger(sim, half_life=self.config.ledger_half_life)
        self.choker = ChokerDriver(
            self,
            interval=self.config.choke_interval,
            slots=self.config.unchoke_slots,
            optimistic_every=self.config.optimistic_every,
            policy=(
                self.strategy.make_policy()
                if self.strategy is not None
                else None
            ),
        )
        if self.strategy is not None:
            sim.metrics.counter(f"strategy.{self.strategy.name}.peers").add()
            if sim.trace.enabled:
                sim.trace.event(
                    "strategy", "assign",
                    client=self.name, strategy=self.strategy.name,
                )
        from .rate import TokenBucket

        # A caller may hand several clients on one host the *same* bucket
        # (the CDN tier's shared uplink); by default each client gets its
        # own, rate-capped by config.upload_limit.
        if upload_bucket is not None:
            self.upload_bucket = upload_bucket
        else:
            self.upload_bucket = TokenBucket(sim, self.config.upload_limit)
        self._upload_queue: Deque[Tuple[PeerConnection, Request]] = deque()
        self._pump_event = None

        self.downloaded = Counter(sim, f"{self.name}.down", record_history=True)
        self.uploaded = Counter(sim, f"{self.name}.up", record_history=True)
        self.completion_time: Optional[float] = None
        self.task_restarts = 0
        self.announce_count = 0
        self._announce_failures = 0
        self._tracker_interval_hint: Optional[float] = None
        self._backoff_rng = None

        self._sweep = PeriodicTask(sim, self.config.sweep_interval, self._on_sweep)
        self._announce_event = None
        self._restart_event = None
        self.started = False

        audit = sim.audit
        if audit is not None:
            audit.register_client(self)
        self.ip_change_policy: IPChangePolicy = default_restart_policy
        host.on_ip_change(self._on_ip_change)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Join the swarm: listen, start the choker, announce."""
        if self.started:
            return
        self.started = True
        self.stack.listen(self.config.listen_port, self._accept)
        self.choker.start()
        self._sweep.start(first_delay=self.config.sweep_interval)
        if self._availability_sampler is not None:
            self._availability_sampler.start()
        self.announce(EVENT_STARTED)

    def stop(self, announce: bool = True) -> None:
        """Leave the swarm and tear down every connection."""
        if not self.started:
            return
        self.started = False
        if announce and self.host.ip is not None:
            self._send_announce(EVENT_STOPPED, fire_and_forget=True)
        self.choker.stop()
        self._sweep.stop()
        if self._availability_sampler is not None:
            self._availability_sampler.stop()
        self.sim.cancel(self._announce_event)
        self._announce_event = None
        self.sim.cancel(self._restart_event)
        self._restart_event = None
        self._close_all_connections("stopped")
        self.stack.unlisten(self.config.listen_port)

    def schedule_task_restart(
        self,
        new_peer_id: bool,
        delay: Optional[float] = None,
        forget_peers: Optional[bool] = None,
    ) -> None:
        """Terminate and re-initiate the task after a teardown delay."""
        if not self.started:
            return
        self.sim.cancel(self._restart_event)
        restart_delay = self.config.task_restart_delay if delay is None else delay
        self._restart_event = self.sim.schedule(
            restart_delay, self.restart_task, new_peer_id, forget_peers
        )

    def restart_task(
        self, new_peer_id: bool = True, forget_peers: Optional[bool] = None
    ) -> None:
        """Tear down all peer connections and rejoin the swarm now.

        With ``new_peer_id`` (deployed-client default) all tit-for-tat
        credit at remote peers is orphaned under the old ID, and the
        restarted task has no memory of previously known peers
        (``forget_peers`` defaults to ``new_peer_id``) — it must wait for
        the tracker response to rebuild its swarm view.  wP2P restarts with
        both retained (identity retention + role reversal).
        """
        if not self.started:
            return
        self._restart_event = None
        self.task_restarts += 1
        if self.sim.trace.enabled:
            self.sim.trace.event(
                "bittorrent", "task_restart", client=self.name,
                new_peer_id=new_peer_id, restarts=self.task_restarts,
            )
        self._close_all_connections("task_restart")
        if forget_peers is None:
            forget_peers = new_peer_id
        if forget_peers:
            self.known_addresses.clear()
        if new_peer_id:
            self.peer_id = self._generate_peer_id()
        self.announce(EVENT_STARTED)
        if not forget_peers:
            # Role-reversal style: reconnect to remembered peers at once
            # rather than waiting for the tracker round trip.
            self.connect_to_known_peers()

    # ------------------------------------------------------------------
    # Announce path
    # ------------------------------------------------------------------
    def announce(self, event: str = EVENT_PERIODIC) -> None:
        """Announce to the tracker now (rescheduling any pending announce)."""
        self.sim.cancel(self._announce_event)
        self._announce_event = None
        self._send_announce(event)

    def _send_announce(self, event: str, fire_and_forget: bool = False) -> None:
        if not self.started and not fire_and_forget:
            return
        if self.host.ip is None:
            self._schedule_announce(self.config.announce_retry)
            return
        try:
            conn = self.stack.connect(self.torrent.tracker_ip, self.torrent.tracker_port)
        except (RuntimeError, ValueError):
            self._schedule_announce(self._announce_backoff())
            return
        self.announce_count += 1
        # A content-complete coded client reports itself a seed even with
        # a partial bitfield; under replication this is the same number
        # as before (a full bitfield leaves zero bytes).
        if self.manager.complete:
            left = 0
        else:
            left = self.torrent.total_size - self.manager.bytes_completed
        if self.sim.trace.enabled:
            self.sim.trace.event(
                "bittorrent", "announce", client=self.name,
                announce_event=event, left=left,
            )
        request = AnnounceRequest(
            info_hash=self.torrent.info_hash,
            peer_id=self.peer_id,
            ip=self.host.ip,
            port=self.config.listen_port,
            uploaded=int(self.uploaded.total),
            downloaded=int(self.downloaded.total),
            left=left,
            event=event,
            numwant=self.config.numwant,
        )
        got_response = []

        def on_message(message: object) -> None:
            if isinstance(message, AnnounceResponse):
                got_response.append(True)
                if not fire_and_forget:
                    self._on_tracker_response(message)
                conn.close()
            elif isinstance(message, TrackerError):
                # A refusing tracker closes after the error; close our
                # side too so on_close fires and schedules the retry —
                # otherwise the connection idles in CLOSE_WAIT and the
                # client never re-announces.
                conn.close()

        def on_close(reason: str) -> None:
            if not got_response and not fire_and_forget:
                self._schedule_announce(self._announce_backoff())

        conn.on_message = on_message
        conn.on_close = on_close
        conn.send_message(request)

    def _announce_backoff(self) -> float:
        """Retry delay after a failed announce (tracker refused with a
        :class:`TrackerError`, was unreachable, or dropped us mid-round).

        Exponential backoff from ``announce_retry`` with deterministic
        seeded jitter (±12.5%, its own RNG stream so protocol streams
        are untouched), capped at the announce interval — consecutive
        failures stop hammering a refusing tracker, while the cap keeps
        the client re-probing at least once per normal announce period.
        Note the host-down path keeps the plain fixed retry: that is the
        *client's* outage, not the tracker's.
        """
        failures = self._announce_failures
        self._announce_failures = failures + 1
        base = self.config.announce_retry
        cap = max(
            base,
            self.config.announce_interval
            or self._tracker_interval_hint
            or DEFAULT_ANNOUNCE_BACKOFF_CAP,
        )
        delay = base * (2.0 ** min(failures, 16))
        if self._backoff_rng is None:
            self._backoff_rng = self.sim.rng.stream(f"client.{self.name}.backoff")
        jitter = 1.0 + 0.25 * (self._backoff_rng.random() - 0.5)
        return min(delay * jitter, cap)

    def _on_tracker_response(self, response: AnnounceResponse) -> None:
        self._announce_failures = 0
        self._tracker_interval_hint = response.interval
        interval = self.config.announce_interval or response.interval
        self._schedule_announce(interval)
        for ip, port, peer_id in response.peers:
            if peer_id != self.peer_id:
                self.known_addresses[peer_id] = (ip, port)
        self.connect_to_known_peers()

    def _schedule_announce(self, delay: float) -> None:
        if not self.started:
            return
        self.sim.cancel(self._announce_event)
        self._announce_event = self.sim.schedule(delay, self._periodic_announce)

    def _periodic_announce(self) -> None:
        self._announce_event = None
        self._send_announce(EVENT_PERIODIC)

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def connect_to_known_peers(self, limit: Optional[int] = None) -> int:
        """Open connections toward known addresses, up to capacity."""
        if self.host.ip is None or not self.started:
            return 0
        budget = self.config.max_peers - self._connection_count()
        if limit is not None:
            budget = min(budget, limit)
        opened = 0
        connected_ids = set(self.peers)
        for peer_id, (ip, port) in list(self.known_addresses.items()):
            if budget <= 0:
                break
            if peer_id in connected_ids or (ip, port) in self._connecting:
                continue
            if self._connect(ip, port):
                budget -= 1
                opened += 1
        return opened

    def _connect(self, ip: str, port: int) -> bool:
        try:
            tcp = self.stack.connect(ip, port)
        except (RuntimeError, ValueError):
            return False
        self._connecting.add((ip, port))
        peer = PeerConnection(self, tcp, initiated=True)
        self._pending.add(peer)
        return True

    def _accept(self, tcp: TCPConnection) -> None:
        if self._connection_count() >= self.config.max_peers or not self.started:
            tcp.abort("busy")
            return
        peer = PeerConnection(self, tcp, initiated=False)
        self._pending.add(peer)

    def register_peer(self, peer: PeerConnection) -> bool:
        """Finalize a handshake: dedupe and index by peer ID."""
        peer_id = peer.peer_id
        assert peer_id is not None
        if peer_id == self.peer_id:
            peer.close("self_connection")
            return False
        existing = self.peers.get(peer_id)
        if existing is not None and not existing.closed and existing is not peer:
            if existing.initiated == peer.initiated:
                existing.close("superseded")
            else:
                # Deterministic tie-break both ends agree on: keep the
                # connection initiated by the lexicographically smaller ID.
                keep_initiated_here = self.peer_id < peer_id
                if peer.initiated != keep_initiated_here:
                    peer.close("duplicate")
                    return False
                existing.close("duplicate")
        self.peers[peer_id] = peer
        self._pending.discard(peer)
        peer.registered = True
        if peer.initiated:
            self.known_addresses.setdefault(peer_id, (peer.remote_ip, peer.remote_port))
        return True

    def peer_disconnected(self, peer: PeerConnection) -> None:
        self._pending.discard(peer)
        self._connecting.discard((peer.remote_ip, peer.remote_port))
        if peer.peer_id is not None and self.peers.get(peer.peer_id) is peer:
            del self.peers[peer.peer_id]
        if peer.peer_id is None and peer.initiated:
            # An outgoing connection that died before the handshake means
            # the address is stale (a handed-off mobile host, a crashed
            # peer).  Forget it — keeping it would both leak an entry per
            # churn cycle and burn a connect slot on a doomed SYN every
            # sweep.  A live peer is re-learned from the next tracker
            # response or its own incoming connection.
            dead = (peer.remote_ip, peer.remote_port)
            for peer_id, addr in list(self.known_addresses.items()):
                if addr == dead:
                    del self.known_addresses[peer_id]
        self.drop_uploads_for(peer)

    def connected_peers(self) -> List[PeerConnection]:
        return [p for p in self.peers.values() if not p.closed]

    def _connection_count(self) -> int:
        return len(self.connected_peers()) + len(self._pending)

    def _close_all_connections(self, reason: str) -> None:
        for peer in list(self.peers.values()) + list(self._pending):
            peer.close(reason)
        self.peers.clear()
        self._pending.clear()
        self._connecting.clear()
        self._upload_queue.clear()
        self.availability.clear()

    # ------------------------------------------------------------------
    # Availability ledger (rarest-first input)
    # ------------------------------------------------------------------
    def availability_add(self, bitfield) -> None:
        for index in bitfield.indices():
            self.availability[index] = self.availability.get(index, 0) + 1

    def availability_remove(self, bitfield) -> None:
        for index in bitfield.indices():
            count = self.availability.get(index, 0) - 1
            if count <= 0:
                self.availability.pop(index, None)
            else:
                self.availability[index] = count

    def availability_increment(self, index: int) -> None:
        self.availability[index] = self.availability.get(index, 0) + 1

    # ------------------------------------------------------------------
    # Download path
    # ------------------------------------------------------------------
    def fill_requests(self, peer: PeerConnection) -> None:
        """Keep the request pipeline to ``peer`` full."""
        if (
            peer.closed
            or not peer.ready
            or peer.peer_choking
            or self.manager.complete
            or not self.started
        ):
            return
        peer.update_interest()
        if not peer.am_interested:
            return
        ctx = SelectionContext(
            availability=self.availability,
            progress=self.manager.progress,
            now=self.sim.now,
            rng=self._rng,
        )
        while len(peer.outstanding) < self.config.request_pipeline:
            choice = self.manager.next_request(peer.peer_bitfield, self.selector, ctx)
            if choice is None:
                if self.config.endgame and self.manager.all_remaining_requested():
                    self._fill_endgame(peer)
                break
            index, begin, length = choice
            self.manager.mark_requested(index, begin, self.sim.now)
            peer.send_request(index, begin, length)

    def _fill_endgame(self, peer: PeerConnection) -> None:
        """Endgame: duplicate the remaining requests toward ``peer``."""
        for index, begin, length in self.manager.endgame_candidates(peer.peer_bitfield):
            if len(peer.outstanding) >= self.config.request_pipeline:
                break
            if (index, begin) not in peer.outstanding:
                peer.send_request(index, begin, length)

    def block_received(self, peer: PeerConnection, piece: Piece) -> None:
        if peer.peer_id is not None:
            self.ledger.credit(peer.peer_id, piece.length)
        audit = self.sim.audit
        if audit is not None:
            audit.note_block_received(self, peer.peer_id, piece.length)
        self.downloaded.add(piece.length)
        if self.config.endgame:
            self._cancel_duplicate_requests(peer, piece)
        completed = self.manager.receive_block(piece.index, piece.begin, piece.length)
        if completed is not None:
            for other in self.connected_peers():
                other.send_have(completed)
                other.update_interest()
            if self.manager.complete and self.completion_time is None:
                # The guard matters only for coded content, where blocks
                # in flight past the decode point can still finish pieces.
                self._on_complete()
        self.fill_requests(peer)

    def _cancel_duplicate_requests(self, source: PeerConnection, piece: Piece) -> None:
        """Endgame: a block arrived; Cancel its copies pending elsewhere."""
        key = piece.block_key
        for other in self.connected_peers():
            if other is not source and key in other.outstanding:
                del other.outstanding[key]
                other.send_cancel(piece.index, piece.begin, piece.length)

    def peer_became_interested(self, peer: PeerConnection) -> None:
        """Hook for subclasses/policies; default defers to choker rounds."""

    def _on_complete(self) -> None:
        self.completion_time = self.sim.now
        if self.sim.trace.enabled:
            self.sim.trace.event(
                "bittorrent", "download_complete", client=self.name,
                downloaded=self.downloaded.total,
            )
        self.announce(EVENT_COMPLETED)
        if not self.config.keep_seeding:
            self.sim.call_soon(self.stop)

    # ------------------------------------------------------------------
    # Upload path
    # ------------------------------------------------------------------
    def queue_upload(self, peer: PeerConnection, request: Request) -> None:
        self._upload_queue.append((peer, request))
        self._pump_uploads()

    def cancel_upload(self, peer: PeerConnection, index: int, begin: int) -> None:
        self._upload_queue = deque(
            (p, r)
            for p, r in self._upload_queue
            if not (p is peer and r.index == index and r.begin == begin)
        )

    def drop_uploads_for(self, peer: PeerConnection) -> None:
        self._upload_queue = deque(
            (p, r) for p, r in self._upload_queue if p is not peer
        )

    def note_uploaded(self, peer: PeerConnection, nbytes: int) -> None:
        audit = self.sim.audit
        if audit is not None:
            audit.note_block_sent(self, peer.peer_id, nbytes)
        self.uploaded.add(nbytes)

    def set_upload_limit(self, rate: Optional[float]) -> None:
        """Change the upload cap live (used by wP2P's LIHD controller)."""
        self.upload_bucket.set_rate(rate)
        self._pump_uploads()

    def _pump_uploads(self) -> None:
        queue = self._upload_queue
        rotations = 0
        while queue:
            peer, request = queue[0]
            if peer.closed or peer.am_choking:
                queue.popleft()
                continue
            snd = peer.tcp.snd
            if snd.end - snd.una >= self.config.send_buffer_cap:  # send_buffer_bytes, inlined
                queue.rotate(-1)
                rotations += 1
                if rotations >= len(queue):
                    self._schedule_pump(0.05)
                    return
                continue
            if not self.upload_bucket.try_consume(request.length):
                delay = self.upload_bucket.time_until(request.length)
                if delay != float("inf"):
                    self._schedule_pump(delay)
                return
            queue.popleft()
            rotations = 0
            peer.send_piece(request.index, request.begin, request.length)

    def _schedule_pump(self, delay: float) -> None:
        if self._pump_event is not None and self._pump_event.alive:
            return
        self._pump_event = self.sim.schedule(max(delay, 1e-3), self._pump_ready)

    def _pump_ready(self) -> None:
        self._pump_event = None
        self._pump_uploads()

    # ------------------------------------------------------------------
    # Housekeeping
    # ------------------------------------------------------------------
    def _on_sweep(self) -> None:
        released = self.manager.expire_requests(self.sim.now, self.config.request_timeout)
        if released:
            keys = set(released)
            for peer in self.connected_peers():
                for key in list(peer.outstanding):
                    if key in keys:
                        del peer.outstanding[key]
        for peer in self.connected_peers():
            if not peer.peer_choking and peer.am_interested:
                self.fill_requests(peer)
        self._keepalive_sweep()
        self._pump_uploads()
        self.ledger.prune()
        if self._connection_count() < self.config.max_peers:
            self.connect_to_known_peers(limit=self.config.connects_per_sweep)

    def _keepalive_sweep(self) -> None:
        """Keep idle connections alive; reap dead-silent ones."""
        now = self.sim.now
        for peer in self.connected_peers():
            if not peer.ready:
                continue
            if (
                self.config.idle_timeout > 0
                and now - peer.last_received > self.config.idle_timeout
            ):
                peer.close("idle_timeout")
                continue
            if now - peer.last_sent >= self.config.keepalive_interval:
                peer.send_keepalive()

    # ------------------------------------------------------------------
    # Mobility
    # ------------------------------------------------------------------
    def _on_ip_change(self, old: Optional[str], new: Optional[str]) -> None:
        if not self.started or new is None:
            return
        self.ip_change_policy(self, old, new)

    # ------------------------------------------------------------------
    # Progress properties
    # ------------------------------------------------------------------
    @property
    def progress(self) -> float:
        return self.manager.progress

    @property
    def complete(self) -> bool:
        return self.manager.complete

    @property
    def strategy_name(self) -> str:
        """The resolved strategy name (``reference`` when none was set)."""
        return self.strategy.name if self.strategy is not None else "reference"

    def _generate_peer_id(self) -> str:
        """Peer IDs are a function of the current address and a random value
        (§3.4), so every task re-initiation after a handoff yields a new one."""
        ip = self.host.ip or "0.0.0.0"
        nonce = self._rng.randrange(16 ** 8)
        return f"-SM1000-{ip}-{nonce:08x}"
