"""BitTorrent: metainfo, tracker, peer wire protocol, choking, client."""

from .bitfield import Bitfield
from .choker import ChokerDriver, TitForTatChoker
from .client import BitTorrentClient, ClientConfig, default_restart_policy
from .ledger import PeerLedger
from .messages import (
    AnnounceRequest,
    AnnounceResponse,
    BitfieldMessage,
    Cancel,
    Choke,
    EVENT_COMPLETED,
    EVENT_PERIODIC,
    EVENT_STARTED,
    EVENT_STOPPED,
    Handshake,
    Have,
    Interested,
    KeepAlive,
    NotInterested,
    Piece,
    Request,
    TrackerError,
    Unchoke,
)
from .metainfo import BLOCK_LENGTH, DEFAULT_PIECE_LENGTH, Torrent, make_torrent
from .peer import PeerConnection
from .piece_manager import PieceManager
from .rate import TokenBucket
from .selection import (
    HoldSelector,
    PieceSelector,
    RandomSelector,
    RarestFirstSelector,
    SelectionContext,
    SequentialSelector,
    make_selector,
    register_selector,
    selector_names,
)
from .tracker import PeerRecord, Tracker

__all__ = [
    "Bitfield",
    "ChokerDriver",
    "TitForTatChoker",
    "BitTorrentClient",
    "ClientConfig",
    "default_restart_policy",
    "PeerLedger",
    "AnnounceRequest",
    "AnnounceResponse",
    "BitfieldMessage",
    "Cancel",
    "Choke",
    "EVENT_COMPLETED",
    "EVENT_PERIODIC",
    "EVENT_STARTED",
    "EVENT_STOPPED",
    "Handshake",
    "Have",
    "Interested",
    "KeepAlive",
    "NotInterested",
    "Piece",
    "Request",
    "TrackerError",
    "Unchoke",
    "BLOCK_LENGTH",
    "DEFAULT_PIECE_LENGTH",
    "Torrent",
    "make_torrent",
    "PeerConnection",
    "PieceManager",
    "TokenBucket",
    "HoldSelector",
    "PieceSelector",
    "RandomSelector",
    "RarestFirstSelector",
    "SelectionContext",
    "SequentialSelector",
    "make_selector",
    "register_selector",
    "selector_names",
    "PeerRecord",
    "Tracker",
]
