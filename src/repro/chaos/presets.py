"""Named chaos presets: ``preset_schedule(name, intensity, horizon)``.

A preset is a **pure function** of its three arguments — no randomness,
no clock — returning a :class:`~repro.chaos.schedule.ChaosSchedule`.
All stochastic choices (churn arrival times, churn victims) happen later,
at arm time, from the simulation's seeded RNG.  That purity is what
makes a ``(preset, intensity)`` pair a valid result-cache key.

``intensity`` scales fault pressure continuously: ``0.0`` yields the
empty schedule (a clean run), ``1.0`` the nominal preset, larger values
proportionally more/longer/harsher faults.  ``horizon`` is the simulated
time window the faults are laid out over; presets keep roughly the last
quarter of the horizon fault-free so runs can drain and complete.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from .schedule import (
    ChaosSchedule,
    CorruptionBurst,
    HandoffStorm,
    LinkBlackout,
    LinkDegradation,
    PeerChurn,
    TrackerOutage,
)


def _churn(intensity: float, horizon: float) -> ChaosSchedule:
    """Poisson peer crash/rejoin churn across the whole swarm."""
    active = horizon * 0.75
    return ChaosSchedule((
        PeerChurn(
            start=active * 0.1,
            duration=active * 0.8,
            rate_per_min=0.5 * intensity,
            downtime=8.0,
            target="*",
        ),
    ))


def _blackout(intensity: float, horizon: float) -> ChaosSchedule:
    """Tracker outages plus wireless link blackouts (dead radio)."""
    active = horizon * 0.75
    events = [
        TrackerOutage(start=active * 0.2, duration=10.0 * intensity, mode="blackout"),
        TrackerOutage(start=active * 0.6, duration=10.0 * intensity, mode="refuse"),
        LinkBlackout(start=active * 0.4, duration=5.0 * intensity, target="wireless"),
    ]
    if intensity >= 1.5:
        events.append(
            LinkBlackout(start=active * 0.8, duration=5.0 * intensity, target="wireless")
        )
    return ChaosSchedule(tuple(events))


def _degrade(intensity: float, horizon: float) -> ChaosSchedule:
    """A worsening-then-recovering link-quality ramp on the wireless cell."""
    active = horizon * 0.75
    step = active * 0.2
    factor = max(0.05, 1.0 - 0.35 * intensity)
    return ChaosSchedule((
        LinkDegradation(
            start=step, duration=step, target="wireless",
            rate_factor=factor, extra_delay=0.01 * intensity,
        ),
        LinkDegradation(
            start=step * 2, duration=step, target="wireless",
            rate_factor=max(0.05, factor * 0.5),
            ber=min(5e-5 * intensity, 5e-4),
            extra_delay=0.02 * intensity,
        ),
        LinkDegradation(
            start=step * 3, duration=step, target="wireless",
            rate_factor=factor, extra_delay=0.01 * intensity,
        ),
    ))


def _handoff_storm(intensity: float, horizon: float) -> ChaosSchedule:
    """Forced IP-handoff bursts against the mobile host(s)."""
    active = horizon * 0.75
    count = max(1, round(3 * intensity))
    spacing = max(5.0, active * 0.5 / count)
    return ChaosSchedule((
        HandoffStorm(
            start=active * 0.2, target="mobile",
            count=count, spacing=spacing, downtime=1.0,
        ),
    ))


def _corruption(intensity: float, horizon: float) -> ChaosSchedule:
    """Piece-corruption bursts: hash failures and re-downloads."""
    active = horizon * 0.75
    probability = min(0.9, 0.15 * intensity)
    return ChaosSchedule((
        CorruptionBurst(
            start=active * 0.2, duration=active * 0.3,
            target="*", probability=probability,
        ),
    ))


def _mixed(intensity: float, horizon: float) -> ChaosSchedule:
    """The kitchen sink: churn + outage + degradation + handoff storm.

    This is the preset the ``figx_chaos`` sweep uses: it stresses exactly
    the recovery paths wP2P improves (identity retention across handoffs,
    mobility-aware peering), so the wP2P-vs-baseline gap widens with
    intensity.
    """
    active = horizon * 0.75
    count = max(1, round(2 * intensity))
    return ChaosSchedule((
        PeerChurn(
            start=active * 0.15, duration=active * 0.6,
            rate_per_min=0.25 * intensity, downtime=8.0, target="wired",
        ),
        TrackerOutage(start=active * 0.3, duration=8.0 * intensity, mode="refuse"),
        LinkDegradation(
            start=active * 0.45, duration=active * 0.2, target="wireless",
            rate_factor=max(0.1, 1.0 - 0.3 * intensity),
        ),
        HandoffStorm(
            start=active * 0.2, target="mobile",
            count=count, spacing=max(6.0, active * 0.4 / count), downtime=1.0,
        ),
        CorruptionBurst(
            start=active * 0.65, duration=active * 0.2,
            target="wireless", probability=min(0.6, 0.1 * intensity),
        ),
    ))


PRESETS: Dict[str, Callable[[float, float], ChaosSchedule]] = {
    "churn": _churn,
    "blackout": _blackout,
    "degrade": _degrade,
    "handoff-storm": _handoff_storm,
    "corruption": _corruption,
    "mixed": _mixed,
}

PRESET_NAMES: Tuple[str, ...] = tuple(sorted(PRESETS))


def preset_schedule(
    name: str, intensity: float = 1.0, horizon: float = 300.0
) -> ChaosSchedule:
    """The schedule for preset ``name`` at ``intensity`` over ``horizon``.

    ``intensity <= 0`` returns the empty schedule regardless of preset,
    so sweeps can include a clean baseline cell without special-casing.
    """
    if name not in PRESETS:
        raise ValueError(
            f"unknown chaos preset {name!r}; choose from {', '.join(PRESET_NAMES)}"
        )
    if intensity < 0:
        raise ValueError("intensity must be >= 0")
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if intensity == 0:
        return ChaosSchedule()
    return PRESETS[name](intensity, horizon)
