"""The :class:`ChaosController`: arms a :class:`ChaosSchedule` on a swarm.

The controller is the bridge from declarative fault events to the
simulation's actual hooks: it schedules one kernel callback per fault at
arm time and, when each fires, resolves the event's target against the
scenario's *current* peers and drives the layer-specific fault hooks —
``disconnect_host``/``reconnect_host`` for crashes and blackouts,
:meth:`~repro.net.mobility.MobilityController.trigger_handoff` for
storms, ``apply_degradation`` on links/channels,
:meth:`~repro.bittorrent.tracker.Tracker.set_serving` or a tracker-host
blackout for outages, and
:meth:`~repro.bittorrent.piece_manager.PieceManager.set_corrupt_probability`
for corruption bursts.

Determinism contract
--------------------
Every fault fires at a time fixed by the schedule (plus, for
:class:`~repro.chaos.schedule.PeerChurn`, arrival offsets drawn **once at
arm time** from the sim's seeded ``chaos.churn.<n>`` streams).  No wall
clock, no unseeded randomness: the same seed and schedule replay
bit-identically, serial or parallel, which is what lets chaos runs share
the runner's result cache.

Conflict rules — at most one host-level fault owns a peer at a time:

* a peer already down (chaos fault in progress, or mid mobility handoff)
  is **skipped** by later host-level faults, counted in
  ``chaos.skipped``;
* crashing or blacking out a peer with a running
  :class:`~repro.net.mobility.MobilityController` stops the controller
  for the fault's duration and restarts it on recovery, so the two
  mechanisms never race for the interface.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..net.mobility import disconnect_host, reconnect_host
from .recovery import RecoveryTracker
from .schedule import (
    ChaosSchedule,
    CorruptionBurst,
    FaultEvent,
    HandoffStorm,
    LinkBlackout,
    LinkDegradation,
    PeerChurn,
    PeerCrash,
    TrackerOutage,
)


class ChaosController:
    """Executes one :class:`ChaosSchedule` against one scenario.

    ``scenario`` is duck-typed: anything with ``sim``, ``internet``,
    ``alloc``, ``peers`` (name -> handle with ``host``/``client``/
    ``channel``/``mobility``), ``tracker`` and ``tracker_host`` works —
    i.e. :class:`~repro.bittorrent.swarm.SwarmScenario` and anything
    shaped like it.
    """

    def __init__(self, scenario, schedule: ChaosSchedule) -> None:
        self.scenario = scenario
        self.sim = scenario.sim
        self.schedule = schedule
        self.armed = False
        self.faults_injected = 0
        self.faults_skipped = 0
        #: (sim time, event kind, target) for every fault that fired
        self.log: List[Tuple[float, str, str]] = []
        # peers currently held down by a chaos fault (crash/blackout)
        self._down: Dict[str, bool] = {}
        # mobility controllers paused by a fault, to restart on recovery
        self._paused_mobility: Dict[str, object] = {}
        self._tracker_down = False
        #: MTTR accounting (see :mod:`repro.chaos.recovery`); started at
        #: arm time whenever the schedule actually contains faults.
        self.recovery: Optional[RecoveryTracker] = None

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------
    def arm(self) -> "ChaosController":
        """Schedule every fault on the simulator.  Idempotent."""
        if self.armed:
            return self
        self.armed = True
        if len(self.schedule) > 0:
            self.recovery = RecoveryTracker(self.scenario).start()
        for n, event in enumerate(self.schedule):
            if isinstance(event, PeerChurn):
                self._arm_churn(n, event)
            elif isinstance(event, HandoffStorm):
                for shot in range(event.count):
                    self.sim.schedule(
                        event.start + shot * event.spacing,
                        self._fire_handoff, event,
                    )
            else:
                self.sim.schedule(event.start, self._fire, event)
        return self

    def _arm_churn(self, index: int, event: PeerChurn) -> None:
        """Draw the Poisson arrival times now (seeded), schedule each."""
        if event.rate_per_min <= 0 or event.duration <= 0:
            return
        rng = self.sim.rng.stream(f"chaos.churn.{index}")
        mean_gap = 60.0 / event.rate_per_min
        t = event.start
        while True:
            t += rng.expovariate(1.0 / mean_gap)
            if t > event.start + event.duration:
                break
            # Pick the victim index now too, so firing order alone
            # (not dict iteration at fire time) decides who dies.
            pick = rng.random()
            self.sim.schedule_at(t, self._fire_churn_crash, event, pick)

    # ------------------------------------------------------------------
    # Target resolution (at fire time, so late-built peers are seen)
    # ------------------------------------------------------------------
    def _resolve(self, target: str) -> List[object]:
        # Exempt handles (e.g. the hybrid backend's background facade,
        # whose faults are modelled through the fluid engine) are only
        # reachable by exact name, never by wildcard/class targets.
        peers = {
            name: h for name, h in self.scenario.peers.items()
            if not getattr(h, "chaos_exempt", False)
        }
        if target == "*":
            return list(peers.values())
        if target == "wired":
            return [h for h in peers.values() if not h.wireless]
        if target == "wireless":
            return [h for h in peers.values() if h.wireless]
        if target == "mobile":
            return [h for h in peers.values() if h.mobility is not None]
        handle = self.scenario.peers.get(target)
        return [handle] if handle is not None else []

    # ------------------------------------------------------------------
    # Firing
    # ------------------------------------------------------------------
    def _fire(self, event: FaultEvent) -> None:
        if isinstance(event, PeerCrash):
            self._fire_peer_crash(event)
        elif isinstance(event, TrackerOutage):
            self._fire_tracker_outage(event)
        elif isinstance(event, LinkBlackout):
            self._fire_link_blackout(event)
        elif isinstance(event, LinkDegradation):
            self._fire_link_degradation(event)
        elif isinstance(event, CorruptionBurst):
            self._fire_corruption_burst(event)
        else:  # pragma: no cover - schedule validates kinds
            raise TypeError(f"unhandled fault event {event!r}")

    def _record(self, kind: str, target: str, **fields: object) -> None:
        self.faults_injected += 1
        self.log.append((self.sim.now, kind, target))
        if self.recovery is not None:
            self.recovery.note_fault(kind, target)
        metrics = self.sim.metrics
        metrics.counter("chaos.faults").add()
        metrics.counter(f"chaos.{kind}").add()
        if self.sim.trace.enabled:
            self.sim.trace.event("chaos", kind, target=target, **fields)

    def _skip(self, kind: str, target: str, reason: str) -> None:
        self.faults_skipped += 1
        self.sim.metrics.counter("chaos.skipped").add()
        if self.sim.trace.enabled:
            self.sim.trace.event(
                "chaos", "skipped", fault=kind, target=target, reason=reason
            )

    # -- peer crash / churn --------------------------------------------
    def _fire_peer_crash(self, event: PeerCrash) -> None:
        for handle in self._resolve(event.target):
            self._crash_peer(handle, event.downtime)

    def _fire_churn_crash(self, event: PeerChurn, pick: float) -> None:
        candidates = [
            h for h in self._resolve(event.target)
            if not self._down.get(h.name) and h.host.ip is not None
        ]
        if not candidates:
            self._skip("peer_churn", event.target, "no_live_candidate")
            return
        victim = candidates[int(pick * len(candidates)) % len(candidates)]
        self._crash_peer(victim, event.downtime, kind="peer_churn")

    def _crash_peer(self, handle, downtime: Optional[float], kind: str = "peer_crash") -> None:
        if self._down.get(handle.name):
            self._skip(kind, handle.name, "already_down")
            return
        if handle.host.ip is None:
            self._skip(kind, handle.name, "mid_handoff")
            return
        self._down[handle.name] = True
        self._pause_mobility(handle)
        handle.client.stop(announce=False)  # a crash sends no goodbye
        disconnect_host(handle.host, self.scenario.internet, self.scenario.alloc)
        self._record(kind, handle.name, downtime=downtime)
        if downtime is not None:
            self.sim.schedule(downtime, self._rejoin_peer, handle)

    def _rejoin_peer(self, handle) -> None:
        reconnect_host(handle.host, self.scenario.internet, self.scenario.alloc)
        handle.client.start()
        self._down.pop(handle.name, None)
        self._resume_mobility(handle)
        if self.sim.trace.enabled:
            self.sim.trace.event("chaos", "peer_rejoin", target=handle.name)

    # -- link blackout (radio dead, process alive) ---------------------
    def _fire_link_blackout(self, event: LinkBlackout) -> None:
        for handle in self._resolve(event.target):
            if self._down.get(handle.name):
                self._skip(event.kind, handle.name, "already_down")
                continue
            if handle.host.ip is None:
                self._skip(event.kind, handle.name, "mid_handoff")
                continue
            self._down[handle.name] = True
            self._pause_mobility(handle)
            disconnect_host(handle.host, self.scenario.internet, self.scenario.alloc)
            self._record(event.kind, handle.name, duration=event.duration)
            self.sim.schedule(event.duration, self._end_blackout, handle)

    def _end_blackout(self, handle) -> None:
        reconnect_host(handle.host, self.scenario.internet, self.scenario.alloc)
        self._down.pop(handle.name, None)
        self._resume_mobility(handle)
        if self.sim.trace.enabled:
            self.sim.trace.event("chaos", "blackout_end", target=handle.name)

    def _pause_mobility(self, handle) -> None:
        mobility = getattr(handle, "mobility", None)
        if mobility is not None and mobility._running:
            mobility.stop()
            self._paused_mobility[handle.name] = mobility

    def _resume_mobility(self, handle) -> None:
        mobility = self._paused_mobility.pop(handle.name, None)
        if mobility is not None:
            mobility.start()

    # -- tracker outage ------------------------------------------------
    def _fire_tracker_outage(self, event: TrackerOutage) -> None:
        if self._tracker_down:
            self._skip(event.kind, "tracker", "already_down")
            return
        self._tracker_down = True
        tracker = self.scenario.tracker
        if event.mode == "refuse":
            tracker.set_serving(False)
            self.sim.schedule(event.duration, self._end_tracker_refuse)
        else:
            host = self.scenario.tracker_host
            old_ip = disconnect_host(host, self.scenario.internet, self.scenario.alloc)
            self.sim.schedule(event.duration, self._end_tracker_blackout, old_ip)
        self._record(event.kind, "tracker", mode=event.mode, duration=event.duration)

    def _end_tracker_refuse(self) -> None:
        self.scenario.tracker.set_serving(True)
        self._tracker_down = False
        if self.sim.trace.enabled:
            self.sim.trace.event("chaos", "tracker_restored", mode="refuse")

    def _end_tracker_blackout(self, old_ip: Optional[str]) -> None:
        # Come back at the *original* address: that is what every
        # torrent's metainfo points at.
        reconnect_host(
            self.scenario.tracker_host,
            self.scenario.internet,
            self.scenario.alloc,
            ip=old_ip,
        )
        self._tracker_down = False
        if self.sim.trace.enabled:
            self.sim.trace.event("chaos", "tracker_restored", mode="blackout")

    # -- link degradation ----------------------------------------------
    def _fire_link_degradation(self, event: LinkDegradation) -> None:
        for handle in self._resolve(event.target):
            if handle.wireless:
                handle.channel.apply_degradation(
                    rate_factor=event.rate_factor,
                    ber=event.ber,
                    extra_delay=event.extra_delay,
                )
                restore: Callable[[], None] = handle.channel.clear_degradation
            else:
                link = handle.host.interface.link
                if link is None or not hasattr(link, "apply_degradation"):
                    self._skip(event.kind, handle.name, "no_link")
                    continue
                link.apply_degradation(
                    rate_factor=event.rate_factor, extra_delay=event.extra_delay
                )
                restore = link.clear_degradation
            self._record(
                event.kind, handle.name,
                rate_factor=event.rate_factor, duration=event.duration,
            )
            self.sim.schedule(event.duration, restore)

    # -- handoff storm -------------------------------------------------
    def _fire_handoff(self, event: HandoffStorm) -> None:
        for handle in self._resolve(event.target):
            if self._down.get(handle.name):
                self._skip(event.kind, handle.name, "already_down")
                continue
            mobility = handle.mobility
            if mobility is not None:
                if mobility.trigger_handoff(downtime=event.downtime):
                    self._record(event.kind, handle.name, downtime=event.downtime)
                else:
                    self._skip(event.kind, handle.name, "mobility_busy")
                continue
            # No controller: apply the same down/up sequence directly.
            if handle.host.ip is None:
                self._skip(event.kind, handle.name, "mid_handoff")
                continue
            self._down[handle.name] = True
            disconnect_host(handle.host, self.scenario.internet, self.scenario.alloc)
            self._record(event.kind, handle.name, downtime=event.downtime)
            self.sim.schedule(event.downtime, self._end_manual_handoff, handle)

    def _end_manual_handoff(self, handle) -> None:
        reconnect_host(handle.host, self.scenario.internet, self.scenario.alloc)
        self._down.pop(handle.name, None)

    # -- corruption burst ----------------------------------------------
    def _fire_corruption_burst(self, event: CorruptionBurst) -> None:
        for handle in self._resolve(event.target):
            manager = handle.client.manager
            if manager.complete:
                self._skip(event.kind, handle.name, "already_complete")
                continue
            previous = manager.corrupt_probability
            manager.set_corrupt_probability(event.probability)
            self._record(
                event.kind, handle.name,
                probability=event.probability, duration=event.duration,
            )
            self.sim.schedule(
                event.duration, manager.set_corrupt_probability, previous
            )
