"""MTTR accounting: how long after each fault goodput actually recovers.

Fault *counts* say nothing about how much a swarm suffered — a crash the
swarm shrugs off in two seconds and one that stalls it for two minutes
are both "one fault".  The :class:`RecoveryTracker` closes that gap with
the classic mean-time-to-recovery measurement: it samples the swarm's
aggregate goodput on a fixed cadence (read-only — it never touches the
peers, so arming it cannot perturb results), snapshots the pre-fault
goodput level when each fault fires, and records the elapsed time until
the aggregate rate re-crosses that level as that fault's MTTR.

Every recovery lands in the ``chaos.recovery_seconds`` metrics histogram
and (when tracing) a ``("chaos", "recovered")`` event, so run reports
can show per-fault recovery times next to the fault log.  Faults whose
goodput never re-crosses the pre-fault level within the run are left in
:attr:`RecoveryTracker.open_faults` — censored, not silently dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..sim.timers import PeriodicTask


@dataclass
class Recovery:
    """One fault's completed recovery measurement."""

    fault_time: float
    kind: str
    target: str
    baseline: float
    recovered_at: float

    @property
    def mttr(self) -> float:
        return self.recovered_at - self.fault_time


@dataclass
class OpenFault:
    """A fired fault whose goodput has not yet re-crossed its baseline."""

    fault_time: float
    kind: str
    target: str
    baseline: float


class RecoveryTracker:
    """Samples aggregate goodput and measures per-fault recovery time.

    ``scenario`` is duck-typed like the :class:`ChaosController`'s:
    anything with ``sim`` and ``peers`` (name -> handle with a
    ``client``) works.  Peers without a ``downloaded`` counter (e.g. the
    hybrid backend's background facade) contribute nothing.
    """

    def __init__(self, scenario, interval: float = 1.0) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.scenario = scenario
        self.sim = scenario.sim
        self.interval = interval
        self.recoveries: List[Recovery] = []
        self.open_faults: List[OpenFault] = []
        self.samples = 0
        self._last_time: Optional[float] = None
        self._last_bytes = 0.0
        self._rate = 0.0
        self._task = PeriodicTask(self.sim, interval, self._tick)
        self._running = False

    # ------------------------------------------------------------------
    def start(self) -> "RecoveryTracker":
        if not self._running:
            self._running = True
            # Sample immediately so the first fault has a baseline.
            self._task.start(first_delay=0.0)
        return self

    def stop(self) -> None:
        if self._running:
            self._running = False
            self._task.stop()

    # ------------------------------------------------------------------
    def _total_bytes(self) -> float:
        total = 0.0
        for handle in self.scenario.peers.values():
            counter = getattr(handle.client, "downloaded", None)
            if counter is not None:
                total += counter.total
        return total

    def _tick(self) -> None:
        now = self.sim.now
        total = self._total_bytes()
        if self._last_time is not None and now > self._last_time:
            self._rate = (total - self._last_bytes) / (now - self._last_time)
        self._last_time = now
        self._last_bytes = total
        self.samples += 1
        if self.open_faults:
            self._check_recoveries()

    def _check_recoveries(self) -> None:
        still_open: List[OpenFault] = []
        for fault in self.open_faults:
            if self._rate >= fault.baseline:
                self._close(fault)
            else:
                still_open.append(fault)
        self.open_faults = still_open

    def _close(self, fault: OpenFault) -> None:
        recovery = Recovery(
            fault_time=fault.fault_time,
            kind=fault.kind,
            target=fault.target,
            baseline=fault.baseline,
            recovered_at=self.sim.now,
        )
        self.recoveries.append(recovery)
        metrics = self.sim.metrics
        metrics.counter("chaos.recoveries").add()
        metrics.histogram("chaos.recovery_seconds").observe(recovery.mttr)
        if self.sim.trace.enabled:
            self.sim.trace.event(
                "chaos", "recovered",
                fault=fault.kind, target=fault.target,
                baseline=fault.baseline, mttr=recovery.mttr,
            )

    # ------------------------------------------------------------------
    def note_fault(self, kind: str, target: str) -> None:
        """Register a fired fault; called by the controller's recorder.

        The baseline is the goodput rate over the most recent sampling
        interval *before* the fault's effects land — faults fire from
        simulator callbacks, so at call time the current rate estimate is
        still pre-fault.
        """
        self.open_faults.append(
            OpenFault(
                fault_time=self.sim.now,
                kind=kind,
                target=target,
                baseline=self._rate,
            )
        )

    # ------------------------------------------------------------------
    def mean_mttr(self) -> Optional[float]:
        """Mean recovery time over completed recoveries (None if none)."""
        if not self.recoveries:
            return None
        return sum(r.mttr for r in self.recoveries) / len(self.recoveries)

    def summary(self) -> dict:
        return {
            "recoveries": len(self.recoveries),
            "censored": len(self.open_faults),
            "mean_mttr": self.mean_mttr(),
            "max_mttr": max((r.mttr for r in self.recoveries), default=None),
        }
