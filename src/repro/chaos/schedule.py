"""Typed fault events and the declarative :class:`ChaosSchedule`.

A schedule is plain data: a tuple of typed fault events, each pinned to
absolute simulated time.  Everything is JSON-serialisable
(:meth:`ChaosSchedule.to_jsonable` / :meth:`ChaosSchedule.from_jsonable`)
so a schedule can ride inside scenario parameters, key the result cache,
and ship to runner worker processes unchanged.

Targets are resolved **at fire time** by the
:class:`~repro.chaos.controller.ChaosController`, so a schedule can be
attached before the topology's peers exist.  A target is either a peer
name or one of the selector classes ``"*"`` (every peer), ``"wired"``,
``"wireless"``, or ``"mobile"`` (peers with a mobility controller).

The only stochastic event is :class:`PeerChurn`, whose individual
crash/rejoin times are drawn at arm time from the simulation's seeded
``chaos.churn`` stream — a run is still a pure function of its seed.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Type

TARGET_CLASSES = ("*", "wired", "wireless", "mobile")


@dataclass(frozen=True)
class FaultEvent:
    """Base class: every fault starts at an absolute simulated time."""

    start: float

    kind = "fault"

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"{type(self).__name__}.start must be >= 0")


@dataclass(frozen=True)
class PeerCrash(FaultEvent):
    """A peer process dies (client stopped, host unrouted) at ``start``;
    with a ``downtime`` it rejoins at a fresh address, otherwise never."""

    target: str = "*"
    downtime: Optional[float] = None

    kind = "peer_crash"


@dataclass(frozen=True)
class PeerChurn(FaultEvent):
    """Poisson crash/rejoin churn against ``target`` peers.

    Over ``[start, start + duration]`` crash events arrive at ``rate``
    per minute (per matching peer); each crashed peer rejoins after
    ``downtime`` seconds.  Arrival times are drawn at arm time from the
    sim's seeded ``chaos.churn`` stream.
    """

    duration: float = 60.0
    rate_per_min: float = 1.0
    downtime: float = 10.0
    target: str = "*"

    kind = "peer_churn"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.duration < 0 or self.rate_per_min < 0 or self.downtime < 0:
            raise ValueError("peer_churn durations and rate must be >= 0")


@dataclass(frozen=True)
class TrackerOutage(FaultEvent):
    """The tracker goes dark for ``duration`` seconds.

    ``mode="blackout"`` (default) disconnects the tracker *host* — SYNs
    toward it strand, exactly like the failure-injection tests' manual
    ``disconnect_host`` — and brings it back at its original address.
    ``mode="refuse"`` keeps the host routable but answers every announce
    with a tracker error (a dead web server on a live box).
    """

    duration: float = 30.0
    mode: str = "blackout"

    kind = "tracker_outage"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.duration <= 0:
            raise ValueError("tracker_outage duration must be positive")
        if self.mode not in ("blackout", "refuse"):
            raise ValueError(f"unknown tracker_outage mode {self.mode!r}")


@dataclass(frozen=True)
class LinkBlackout(FaultEvent):
    """Pure connectivity loss: the target's interface goes down at
    ``start`` and comes back (at a fresh address) after ``duration``.
    The client application keeps running throughout — this is a dead
    radio, not a dead process."""

    duration: float = 10.0
    target: str = "wireless"

    kind = "link_blackout"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.duration <= 0:
            raise ValueError("link_blackout duration must be positive")


@dataclass(frozen=True)
class LinkDegradation(FaultEvent):
    """Degraded — not dead — connectivity for ``duration`` seconds:
    capacity scaled by ``rate_factor``, wireless BER replaced by ``ber``
    (ignored on wired links), propagation delay inflated by
    ``extra_delay``.  Presets compose several of these back-to-back into
    ramps."""

    duration: float = 30.0
    target: str = "wireless"
    rate_factor: float = 0.5
    ber: Optional[float] = None
    extra_delay: float = 0.0

    kind = "link_degradation"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.duration <= 0:
            raise ValueError("link_degradation duration must be positive")
        if self.rate_factor <= 0:
            raise ValueError("rate_factor must be positive")
        if self.ber is not None and not 0.0 <= self.ber < 1.0:
            raise ValueError("ber must be in [0, 1)")
        if self.extra_delay < 0:
            raise ValueError("extra_delay must be >= 0")


@dataclass(frozen=True)
class HandoffStorm(FaultEvent):
    """``count`` forced IP handoffs against ``target``, ``spacing``
    seconds apart, each with ``downtime`` seconds of interface-down.
    Peers with a :class:`~repro.net.mobility.MobilityController` are
    handed off through it (their own schedule resumes afterwards);
    peers without one get the same disconnect/reconnect sequence
    applied directly."""

    target: str = "wireless"
    count: int = 3
    spacing: float = 20.0
    downtime: float = 1.0

    kind = "handoff_storm"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.count < 1:
            raise ValueError("handoff_storm count must be >= 1")
        if self.spacing <= 0 or self.downtime < 0:
            raise ValueError("handoff_storm spacing/downtime invalid")


@dataclass(frozen=True)
class CorruptionBurst(FaultEvent):
    """For ``duration`` seconds every piece the target verifies is
    corrupted with ``probability`` (then re-downloaded); the pre-fault
    probability is restored afterwards."""

    duration: float = 30.0
    target: str = "*"
    probability: float = 0.2

    kind = "corruption_burst"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.duration <= 0:
            raise ValueError("corruption_burst duration must be positive")
        if not 0.0 <= self.probability < 1.0:
            raise ValueError("probability must be in [0, 1)")


EVENT_TYPES: Dict[str, Type[FaultEvent]] = {
    cls.kind: cls
    for cls in (
        PeerCrash,
        PeerChurn,
        TrackerOutage,
        LinkBlackout,
        LinkDegradation,
        HandoffStorm,
        CorruptionBurst,
    )
}


@dataclass(frozen=True)
class ChaosSchedule:
    """An ordered, immutable set of fault events for one run."""

    events: Tuple[FaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=lambda e: (e.start, e.kind)))
        object.__setattr__(self, "events", ordered)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __add__(self, other: "ChaosSchedule") -> "ChaosSchedule":
        return ChaosSchedule(self.events + other.events)

    @property
    def empty(self) -> bool:
        return not self.events

    # ------------------------------------------------------------------
    # Serialisation (cache keys, CLI, worker payloads)
    # ------------------------------------------------------------------
    def to_jsonable(self) -> List[Dict[str, object]]:
        """Plain-data form: one ``{"kind": ..., **fields}`` dict per event."""
        out: List[Dict[str, object]] = []
        for event in self.events:
            record: Dict[str, object] = {"kind": event.kind}
            record.update(asdict(event))
            out.append(record)
        return out

    @classmethod
    def from_jsonable(cls, data: Iterable[Dict[str, object]]) -> "ChaosSchedule":
        """Rebuild a schedule from :meth:`to_jsonable` output."""
        events = []
        for record in data:
            fields = dict(record)
            kind = fields.pop("kind", None)
            event_type = EVENT_TYPES.get(str(kind))
            if event_type is None:
                raise ValueError(f"unknown fault event kind {kind!r}")
            events.append(event_type(**fields))  # type: ignore[arg-type]
        return cls(tuple(events))
