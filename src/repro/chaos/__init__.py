"""repro.chaos — deterministic, schedule-driven fault injection.

The robustness analogue of :mod:`repro.audit`: where auditing asserts
that invariants *hold*, chaos deliberately breaks the environment —
peer crashes and Poisson churn, tracker outages, link blackouts and
quality ramps, forced IP-handoff storms, piece-corruption bursts — and
lets the protocols prove they degrade gracefully.  Every fault fires at
a schedule-fixed simulated time, with any randomness drawn from the
simulation's seeded RNG streams, so a chaos run is exactly as
reproducible (and cacheable) as a clean one.

Two ways to use it, mirroring :mod:`repro.audit`:

Explicitly, on one scenario::

    from repro.chaos import preset_schedule

    swarm = SwarmScenario(seed=7)
    ...build peers...
    swarm.add_chaos(preset_schedule("mixed", intensity=1.0, horizon=300.0))
    swarm.start_all()
    swarm.run(until=300.0)

Globally, for code that builds its scenarios internally — the pattern
the CLI's ``--chaos`` flag and the :class:`~repro.runner.Runner` use::

    from repro import chaos

    chaos.install("blackout", intensity=2.0)
    try:
        run_scenario(...)        # every new SwarmScenario gets the schedule
    finally:
        chaos.uninstall()

or equivalently ``with chaos.unleashed("blackout", intensity=2.0): ...``.
Chaos is **off by default** and costs one ``is None`` check per scenario
constructed when off.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from .controller import ChaosController
from .presets import PRESET_NAMES, PRESETS, preset_schedule
from .recovery import OpenFault, Recovery, RecoveryTracker
from .schedule import (
    ChaosSchedule,
    CorruptionBurst,
    FaultEvent,
    HandoffStorm,
    LinkBlackout,
    LinkDegradation,
    PeerChurn,
    PeerCrash,
    TrackerOutage,
)

__all__ = [
    "ChaosController",
    "ChaosSchedule",
    "CorruptionBurst",
    "FaultEvent",
    "HandoffStorm",
    "LinkBlackout",
    "LinkDegradation",
    "OpenFault",
    "PRESET_NAMES",
    "PRESETS",
    "PeerChurn",
    "PeerCrash",
    "Recovery",
    "RecoveryTracker",
    "TrackerOutage",
    "apply_defaults",
    "controllers",
    "install",
    "installed",
    "preset_schedule",
    "uninstall",
    "unleashed",
]


# ----------------------------------------------------------------------
# Global defaults: every new SwarmScenario gets the installed schedule.
# ----------------------------------------------------------------------
_default_options: Optional[Dict[str, object]] = None
_controllers: List[ChaosController] = []


def install(
    preset: str = "mixed", intensity: float = 1.0, horizon: float = 300.0
) -> None:
    """Inject the preset into every *new* scenario until :func:`uninstall`.

    Each :class:`~repro.bittorrent.swarm.SwarmScenario` built while
    installed gets its **own** armed :class:`ChaosController` carrying
    ``preset_schedule(preset, intensity, horizon)``.  Already-built
    scenarios are unaffected.  The preset name is validated eagerly.
    """
    global _default_options
    # Validate up front so a typo fails at install time, not mid-run.
    preset_schedule(preset, intensity, horizon)
    _default_options = {
        "preset": preset,
        "intensity": intensity,
        "horizon": horizon,
    }
    _controllers.clear()


def uninstall() -> None:
    """Stop injecting into new scenarios (armed controllers keep going).

    The created-controller list survives until the next :func:`install`,
    so ``with unleashed(...) as controllers:`` blocks can inspect fault
    logs after the context exits.
    """
    global _default_options
    _default_options = None


def installed() -> bool:
    """True when new scenarios get chaos injected."""
    return _default_options is not None


def options() -> Optional[Dict[str, object]]:
    """The installed ``{preset, intensity, horizon}``, or None."""
    return dict(_default_options) if _default_options is not None else None


def controllers() -> List[ChaosController]:
    """Controllers created for scenarios built since :func:`install`."""
    return list(_controllers)


def apply_defaults(scenario) -> Optional[ChaosController]:
    """Scenario hook: attach + arm a controller when installed.

    Called by ``SwarmScenario.__init__``; the schedule is regenerated
    per scenario from the installed options so each run draws its own
    seeded churn arrivals.
    """
    if _default_options is None:
        return None
    schedule = preset_schedule(
        str(_default_options["preset"]),
        float(_default_options["intensity"]),   # type: ignore[arg-type]
        float(_default_options["horizon"]),     # type: ignore[arg-type]
    )
    controller = ChaosController(scenario, schedule).arm()
    _controllers.append(controller)
    return controller


@contextmanager
def unleashed(
    preset: str = "mixed", intensity: float = 1.0, horizon: float = 300.0
) -> Iterator[List[ChaosController]]:
    """Inject chaos into every scenario created inside the block.

    Yields the (live) list of created controllers so callers can inspect
    ``controller.log`` / ``controller.faults_injected`` afterwards.
    """
    install(preset, intensity=intensity, horizon=horizon)
    try:
        yield _controllers
    finally:
        uninstall()
