"""Byte-stream bookkeeping for one direction of a TCP connection.

:class:`SendStream` assigns application messages byte ranges in the outgoing
stream and can (re)build the message attachments for any segment range —
retransmissions recompute them, so delivery is idempotent.

:class:`ReceiveStream` reassembles arbitrary (possibly overlapping,
out-of-order) byte ranges, advances the cumulative acknowledgment point, and
releases application messages in stream order.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, bisect_right
from typing import Any, Dict, List, Optional, Tuple


class SendStream:
    """Outgoing stream state: una / nxt / end pointers plus message ranges."""

    def __init__(self, initial_seq: int) -> None:
        self.una = initial_seq  # oldest unacknowledged byte
        self.nxt = initial_seq  # next byte to transmit
        self.end = initial_seq  # end of data written by the application
        # (end_seq, message) sorted by end_seq; pruned as data is acked.
        self._message_ends: List[Tuple[int, Any]] = []

    # ------------------------------------------------------------------
    # Application side
    # ------------------------------------------------------------------
    def write_message(self, message: Any, length: int) -> Tuple[int, int]:
        """Append a message of ``length`` stream bytes; returns its range."""
        if length <= 0:
            raise ValueError("message length must be positive")
        start = self.end
        self.end += length
        self._message_ends.append((self.end, message))
        return start, self.end

    @property
    def unsent_bytes(self) -> int:
        return self.end - self.nxt

    @property
    def flight_size(self) -> int:
        return self.nxt - self.una

    @property
    def buffered_bytes(self) -> int:
        """Bytes written but not yet acknowledged (flight + unsent)."""
        return self.end - self.una

    # ------------------------------------------------------------------
    # Transmission side
    # ------------------------------------------------------------------
    def messages_in(self, start: int, end: int) -> Tuple[Tuple[int, Any], ...]:
        """Messages whose final byte lies in ``(start, end]``.

        A message attaches to a segment iff the segment carries the
        message's last byte; ranges are ``[seq, seq + len)`` so the message
        ending at ``e`` rides any segment with ``start < e <= end``.
        """
        lo = bisect_right(self._message_ends, (start, _MAX_OBJ))
        hi = bisect_right(self._message_ends, (end, _MAX_OBJ))
        return tuple(self._message_ends[lo:hi])

    def ack_to(self, ack: int) -> int:
        """Process a cumulative ACK; returns bytes newly acknowledged.

        ``ack`` may exceed ``nxt`` when ``nxt`` was rewound for go-back-N
        retransmission and the receiver already held later bytes; the
        pointers snap forward in that case.
        """
        if ack <= self.una:
            return 0
        if ack > self.end:
            raise ValueError(f"ack {ack} beyond stream end {self.end}")
        acked = ack - self.una
        self.una = ack
        if self.nxt < ack:
            self.nxt = ack
        lo = bisect_right(self._message_ends, (ack, _MAX_OBJ))
        if lo:
            del self._message_ends[:lo]
        return acked


class _MaxObj:
    """Sorts after every other object (sentinel for bisect on tuples)."""

    def __lt__(self, other: object) -> bool:
        return False

    def __gt__(self, other: object) -> bool:
        return True


_MAX_OBJ = _MaxObj()


class ReceiveStream:
    """Incoming stream reassembly and in-order message delivery."""

    def __init__(self, initial_seq: int) -> None:
        self.rcv_nxt = initial_seq
        # Sorted, disjoint out-of-order byte ranges strictly above rcv_nxt.
        self._segments: List[Tuple[int, int]] = []
        # Pending message objects keyed by their end sequence number.
        self._pending: Dict[int, Any] = {}
        self._pending_heap: List[int] = []
        self.bytes_delivered = 0
        self.duplicate_bytes = 0
        self._last_insert_point: Optional[int] = None

    # ------------------------------------------------------------------
    def add(self, seq: int, length: int, messages: Tuple[Tuple[int, Any], ...] = ()) -> bool:
        """Insert a received byte range; returns True if rcv_nxt advanced."""
        for end_seq, message in messages:
            if end_seq > self.rcv_nxt and end_seq not in self._pending:
                self._pending[end_seq] = message
                heapq.heappush(self._pending_heap, end_seq)
        if length <= 0:
            return False
        start, end = seq, seq + length
        rcv_nxt = self.rcv_nxt
        if end <= rcv_nxt:
            self.duplicate_bytes += length
            return False
        if start < rcv_nxt:
            start = rcv_nxt
        if start == rcv_nxt and not self._segments:
            # In-order arrival with no reassembly gap — the overwhelmingly
            # common case: advance directly, skipping the merge machinery.
            self.bytes_delivered += end - rcv_nxt
            self.rcv_nxt = end
            self._last_insert_point = start
            return True
        self._insert(start, end)
        before = rcv_nxt
        self._advance()
        return self.rcv_nxt > before

    def pop_deliverable(self) -> List[Any]:
        """Messages whose final byte is now below rcv_nxt, in stream order."""
        out: List[Any] = []
        heap = self._pending_heap
        while heap and heap[0] <= self.rcv_nxt:
            end_seq = heapq.heappop(heap)
            message = self._pending.pop(end_seq, None)
            if message is not None:
                out.append(message)
        return out

    def sack_ranges(self, limit: int = 3) -> Tuple[Tuple[int, int], ...]:
        """Out-of-order ranges for SACK options, most recent first.

        Per RFC 2018 the first block must contain the most recently
        received segment, so the sender keeps learning fresh reassembly
        state from every DUPACK; remaining slots cycle through the other
        ranges lowest-first.
        """
        if not self._segments:
            return ()
        ordered: List[Tuple[int, int]] = []
        recent = self._last_insert_point
        if recent is not None:
            for s, e in self._segments:
                if s <= recent < e:
                    ordered.append((s, e))
                    break
        for rng in self._segments:
            if len(ordered) >= limit:
                break
            if rng not in ordered:
                ordered.append(rng)
        return tuple(ordered[:limit])

    @property
    def out_of_order_bytes(self) -> int:
        return sum(e - s for s, e in self._segments)

    @property
    def has_gap(self) -> bool:
        return bool(self._segments)

    # ------------------------------------------------------------------
    def _insert(self, start: int, end: int) -> None:
        """Merge ``[start, end)`` into the sorted disjoint range list."""
        segments = self._segments
        idx = bisect_left(segments, (start, start))
        # Absorb a predecessor that overlaps or abuts the new range.
        if idx > 0 and segments[idx - 1][1] >= start:
            idx -= 1
        merge_to = idx
        new_start, new_end = start, end
        absorbed = 0
        while merge_to < len(segments) and segments[merge_to][0] <= new_end:
            seg_start, seg_end = segments[merge_to]
            absorbed += seg_end - seg_start
            new_start = min(new_start, seg_start)
            new_end = max(new_end, seg_end)
            merge_to += 1
        covered_growth = (new_end - new_start) - absorbed
        if covered_growth < end - start:
            self.duplicate_bytes += (end - start) - covered_growth
        segments[idx:merge_to] = [(new_start, new_end)]
        self._last_insert_point = start

    def _advance(self) -> None:
        """Move rcv_nxt through any now-contiguous leading range."""
        segments = self._segments
        while segments and segments[0][0] <= self.rcv_nxt:
            start, end = segments.pop(0)
            if end > self.rcv_nxt:
                self.bytes_delivered += end - self.rcv_nxt
                self.rcv_nxt = end
