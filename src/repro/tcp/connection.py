"""The bi-directional TCP connection.

This is a faithful-enough TCP for the paper's purposes: both directions of
one connection carry bulk data simultaneously ("true bi-directional mode",
§3.2), with the exact acknowledgment rules the paper's analysis rests on:

* every segment except the initial SYN carries a valid cumulative ACK, so
  ACKs are **piggybacked** on reverse-path data whenever reverse data is
  flowing (and pure 40-byte ACKs otherwise, after a delayed-ACK window);
* duplicate ACKs are **never piggybacked** — on an out-of-order arrival the
  receiver emits an immediate pure ACK, and the sender counts only pure
  ACKs as duplicates;
* NewReno congestion control with fast retransmit/recovery and RTO backoff.

Applications exchange *messages* (objects exposing ``wire_length``); the
stream machinery in :mod:`repro.tcp.streams` maps them onto sequence space
and re-delivers them in order on the far side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from ..net.host import Host
from ..net.packet import Packet
from ..sim import Simulator, Timer
from .congestion import NewRenoCongestionControl
from .rtt import RTTEstimator
from .segment import ACK, DEFAULT_MSS, FIN, RST, SYN, TCPSegment, pure_ack
from .streams import ReceiveStream, SendStream

# Connection states (simplified TCP state machine).
CLOSED = "closed"
SYN_SENT = "syn_sent"
SYN_RCVD = "syn_rcvd"
ESTABLISHED = "established"
FIN_WAIT = "fin_wait"
CLOSE_WAIT = "close_wait"
LAST_ACK = "last_ack"
CLOSING = "closing"


@dataclass
class TCPConfig:
    """Tunables shared by every connection on a stack."""

    mss: int = DEFAULT_MSS
    rwnd: int = 262_144
    initial_rto: float = 1.0
    min_rto: float = 0.2
    max_rto: float = 60.0
    delack_timeout: float = 0.1
    delack_segments: int = 2
    max_consecutive_timeouts: int = 7
    max_syn_retries: int = 5
    initial_cwnd_segments: int = 2
    track_cwnd: bool = False
    sack: bool = False
    """Enable SACK-lite (RFC 2018-style options on pure ACKs plus a sender
    scoreboard): hole-targeted retransmission during fast recovery instead
    of plain NewReno.  Off by default — the paper's era stacks negotiated
    SACK, but the baseline figures are calibrated on NewReno."""


@dataclass
class ConnectionStats:
    """Per-connection counters used by tests and experiments."""

    segments_sent: int = 0
    segments_received: int = 0
    payload_bytes_sent: int = 0
    payload_bytes_acked: int = 0
    payload_bytes_delivered: int = 0
    pure_acks_sent: int = 0
    dupacks_sent: int = 0
    dupacks_received: int = 0
    retransmissions: int = 0
    timeouts: int = 0
    fast_retransmits: int = 0
    piggybacked_acks: int = 0
    cwnd_history: List[Tuple[float, int]] = field(default_factory=list)


class TCPConnection:
    """One TCP connection endpoint (socket-like API).

    Application callbacks:

    ``on_established()``
        handshake completed.
    ``on_message(message)``
        an application message arrived, in stream order.
    ``on_close(reason)``
        connection finished; ``reason`` is ``"closed"`` for a graceful
        shutdown, else an error string ("timeout", "reset", "aborted").
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        local_ip: str,
        local_port: int,
        remote_ip: str,
        remote_port: int,
        config: Optional[TCPConfig] = None,
        unregister: Optional[Callable[["TCPConnection"], None]] = None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.local_ip = local_ip
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.config = config or TCPConfig()
        self._unregister = unregister

        self.state = CLOSED
        self.snd = SendStream(1)  # SYN consumes sequence number 0
        self.rcv: Optional[ReceiveStream] = None
        self.cc = NewRenoCongestionControl(
            mss=self.config.mss,
            initial_cwnd_segments=self.config.initial_cwnd_segments,
        )
        self.rtt = RTTEstimator(
            initial_rto=self.config.initial_rto,
            min_rto=self.config.min_rto,
            max_rto=self.config.max_rto,
        )
        self.stats = ConnectionStats()

        self._rto_timer = Timer(sim, self._on_rto)
        self._delack_timer = Timer(sim, self._on_delack)
        self._dupacks = 0
        self._peer_rwnd = self.config.rwnd
        self._last_ack_sent = 0
        self._syn_retries = 0
        self._consecutive_timeouts = 0
        self._timed_end: Optional[int] = None
        self._timed_at = 0.0
        self._timed_valid = False
        self._max_sent = 1  # highest sequence ever transmitted (Karn's rule)
        self._fin_pending = False
        self._fin_sent = False
        self._local_fin_seq: Optional[int] = None
        self._remote_fin_seq: Optional[int] = None
        self._finished = False
        self._sack_scoreboard: List[Tuple[int, int]] = []
        # hole start -> dupack count when (re)sent; a hole may be resent
        # after 4 further dupacks (its retransmission was likely lost too)
        self._holes_retransmitted: dict = {}

        # Application callbacks.
        self.on_established: Optional[Callable[[], None]] = None
        self.on_message: Optional[Callable[[Any], None]] = None
        self.on_close: Optional[Callable[[str], None]] = None

        audit = sim.audit
        if audit is not None:
            audit.register_connection(self)

    @property
    def _trace_label(self) -> str:
        """Stable connection label for structured trace events."""
        return (
            f"{self.local_ip}:{self.local_port}->"
            f"{self.remote_ip}:{self.remote_port}"
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def established(self) -> bool:
        return self.state in (ESTABLISHED, CLOSE_WAIT)

    @property
    def closed(self) -> bool:
        return self.state == CLOSED and self._finished

    @property
    def send_buffer_bytes(self) -> int:
        """Bytes written by the application but not yet acknowledged."""
        return self.snd.buffered_bytes

    @property
    def key(self) -> Tuple[int, str, int]:
        return (self.local_port, self.remote_ip, self.remote_port)

    def connect(self) -> None:
        """Active open: transmit SYN and await SYN-ACK."""
        if self.state != CLOSED:
            raise RuntimeError(f"connect() in state {self.state}")
        self.state = SYN_SENT
        self._send_syn()

    def open_passive(self, syn: TCPSegment) -> None:
        """Passive open from a listener: process the peer's SYN."""
        if self.state != CLOSED:
            raise RuntimeError(f"open_passive() in state {self.state}")
        self.state = SYN_RCVD
        self.rcv = ReceiveStream(syn.seq + 1)
        self._last_ack_sent = syn.seq + 1
        self._peer_rwnd = syn.rwnd
        self._send_segment(
            TCPSegment(
                self.local_port, self.remote_port, 0, self.rcv.rcv_nxt,
                SYN | ACK, 0, (), self.config.rwnd,
            )
        )
        self._rto_timer.start(self.rtt.rto)

    def send_message(self, message: Any) -> None:
        """Queue an application message for in-order delivery to the peer."""
        length = int(getattr(message, "wire_length"))
        if self._fin_pending or self._fin_sent:
            raise RuntimeError("cannot send after close()")
        self.snd.write_message(message, length)
        if self.established:
            self._try_output()

    def close(self) -> None:
        """Graceful close: FIN after all queued data is transmitted."""
        if self.state in (CLOSED,) or self._fin_pending or self._fin_sent:
            return
        self._fin_pending = True
        # During the handshake the FIN is deferred: establishment calls
        # _try_output(), which drains queued data and then emits the FIN.
        if self.established:
            self._try_output()

    def abort(self, reason: str = "aborted") -> None:
        """Hard close: best-effort RST to the peer, immediate teardown."""
        if self._finished:
            return
        if self.state not in (CLOSED,):
            ack = self.rcv.rcv_nxt if self.rcv is not None else 0
            self._send_segment(
                TCPSegment(
                    self.local_port, self.remote_port, self.snd.nxt, ack,
                    RST | ACK, 0, (), self.config.rwnd,
                ),
                count=False,
            )
        self._finish(reason)

    # ------------------------------------------------------------------
    # Segment reception (called by the stack demux)
    # ------------------------------------------------------------------
    def receive_segment(self, segment: TCPSegment) -> None:
        if self._finished:
            return
        self.stats.segments_received += 1
        flags = segment.flags

        if flags & RST:
            self._finish("reset")
            return

        if self.state == SYN_SENT:
            self._receive_in_syn_sent(segment)
            return
        if self.state == SYN_RCVD:
            if flags & SYN:  # retransmitted SYN: re-ack it
                self._send_pure_ack()
                return
            if flags & ACK and segment.ack is not None and segment.ack >= 1:
                self._become_established()
            # fall through: the ACK may carry data

        if self.rcv is None:
            return

        self._process_ack(segment)
        self._process_data(segment)

    def _receive_in_syn_sent(self, segment: TCPSegment) -> None:
        if not (segment.has(SYN) and segment.has(ACK)):
            return
        if segment.ack != 1:
            self.abort("bad_handshake")
            return
        self.rcv = ReceiveStream(segment.seq + 1)
        self._last_ack_sent = self.rcv.rcv_nxt
        self._peer_rwnd = segment.rwnd
        self._rto_timer.cancel()
        self._syn_retries = 0
        self._become_established()
        # Third handshake step: pure ACK (piggybacked onto data if any).
        if self._try_output() == 0:
            self._send_pure_ack()

    def _become_established(self) -> None:
        if self.state in (SYN_SENT, SYN_RCVD):
            self.state = ESTABLISHED
            self._rto_timer.cancel()
            if self.sim.trace.enabled:
                self.sim.trace.event("tcp", "established", conn=self._trace_label)
            if self.on_established is not None:
                self.on_established()
            self._try_output()

    # ------------------------------------------------------------------
    # ACK-side processing
    # ------------------------------------------------------------------
    def _process_ack(self, segment: TCPSegment) -> None:
        if not segment.flags & ACK or segment.ack is None:
            return
        self._peer_rwnd = segment.rwnd
        ack = segment.ack
        if ack > self._max_sent + (1 if self._fin_sent else 0):
            return  # acks data we never sent; ignore

        if self.config.sack and segment.sack_blocks:
            self._sack_update(segment.sack_blocks)

        if ack > self.snd.una:
            acked = self._ack_advance(ack)
            self._holes_retransmitted.clear()
            self._sack_prune()
            self._dupacks = 0
            self._consecutive_timeouts = 0
            if self._timed_end is not None and ack >= self._timed_end:
                if self._timed_valid:
                    self.rtt.sample(self.sim._now - self._timed_at)
                self._timed_end = None
            was_recovery = self.cc.in_recovery
            retransmit = self.cc.on_new_ack(acked, self.snd.nxt, ack)
            if was_recovery and not self.cc.in_recovery and self.sim.trace.enabled:
                self.sim.trace.event(
                    "tcp", "recovery_exit", conn=self._trace_label,
                    cwnd=self.cc.cwnd, ssthresh=self.cc.ssthresh,
                )
            self.stats.payload_bytes_acked += acked
            if retransmit:
                self._retransmit_head()
            if self._flight_size() > 0:
                self._rto_timer.start(self.rtt.rto)
            else:
                self._rto_timer.cancel()
                self.rtt.reset_backoff()
            self._maybe_finish_close(ack)
            self._try_output()
        elif (
            ack == self.snd.una
            and (flight_before := self._flight_size()) > 0
            and segment.is_pure_ack
        ):
            self._dupacks += 1
            self.stats.dupacks_received += 1
            if self.cc.on_dupack(self._dupacks, flight_before, self.snd.nxt):
                self.stats.fast_retransmits += 1
                if self.sim.trace.enabled:
                    self.sim.trace.event(
                        "tcp", "fast_retransmit", conn=self._trace_label,
                        ack=ack, cwnd=self.cc.cwnd, ssthresh=self.cc.ssthresh,
                    )
                self._retransmit_head()
            elif (
                self.config.sack
                and self.cc.in_recovery
                and self._sack_scoreboard
            ):
                self._retransmit_next_hole()
            self._try_output()  # window may have inflated

    def _ack_advance(self, ack: int) -> int:
        """Advance snd.una to ``ack``, accounting for SYN/FIN numbers."""
        data_ack = ack
        if self._local_fin_seq is not None and ack > self._local_fin_seq:
            data_ack = self._local_fin_seq
        acked = self.snd.ack_to(min(data_ack, self.snd.end))
        if self._local_fin_seq is not None and ack > self._local_fin_seq:
            self.snd.una = ack  # FIN's sequence number acknowledged
        return acked

    def _flight_size(self) -> int:
        flight = self.snd.flight_size
        if self._fin_sent and self._local_fin_seq is not None and self.snd.una <= self._local_fin_seq:
            flight += 1
        return flight

    def _maybe_finish_close(self, ack: int) -> None:
        if (
            self._fin_sent
            and self._local_fin_seq is not None
            and ack > self._local_fin_seq
        ):
            if self.state == FIN_WAIT:
                if self._remote_fin_seq is not None:
                    self._finish("closed")
            elif self.state in (LAST_ACK, CLOSING):
                self._finish("closed")

    # ------------------------------------------------------------------
    # Data-side processing
    # ------------------------------------------------------------------
    def _process_data(self, segment: TCPSegment) -> None:
        if self.rcv is None or self._finished:
            return
        has_payload = segment.payload_len > 0
        fin = segment.flags & FIN
        if not has_payload and not fin:
            return

        if fin and self._remote_fin_seq is None:
            self._remote_fin_seq = segment.seq + segment.payload_len

        advanced = False
        if has_payload:
            advanced = self.rcv.add(segment.seq, segment.payload_len, segment.messages)
            if advanced:
                delivered = self.rcv.pop_deliverable()
                self.stats.payload_bytes_delivered = self.rcv.bytes_delivered
                for message in delivered:
                    if self.on_message is not None:
                        self.on_message(message)
                if self._finished:
                    return

        fin_consumed = False
        if self._remote_fin_seq is not None and self.rcv.rcv_nxt == self._remote_fin_seq and not self.rcv.has_gap:
            self.rcv.rcv_nxt += 1
            fin_consumed = True

        if fin_consumed:
            self._on_remote_fin()
            self._send_pure_ack()
            return

        if has_payload and not advanced:
            # Out-of-order or duplicate: immediate DUPACK, always pure
            # (never piggybacked on data — the rule §3.2 analyzes).
            self.stats.dupacks_sent += 1
            self._send_pure_ack()
            return

        if advanced:
            self._ack_policy()

    def _ack_policy(self) -> None:
        """Acknowledge received data: piggyback, delay, or send pure."""
        assert self.rcv is not None
        sent = self._try_output()
        if sent > 0:
            return  # ACK rode out on a data segment
        pending = self.rcv.rcv_nxt - self._last_ack_sent
        if pending >= self.config.delack_segments * self.config.mss:
            self._send_pure_ack()
        elif not self._delack_timer.armed:
            self._delack_timer.start(self.config.delack_timeout)

    def _on_delack(self) -> None:
        if self.rcv is not None and self.rcv.rcv_nxt > self._last_ack_sent:
            self._send_pure_ack()

    def _on_remote_fin(self) -> None:
        if self.state == ESTABLISHED:
            self.state = CLOSE_WAIT
        elif self.state == FIN_WAIT:
            fin_acked = (
                self._local_fin_seq is not None and self.snd.una > self._local_fin_seq
            )
            if fin_acked:
                self._finish("closed")
            else:
                self.state = CLOSING

    # ------------------------------------------------------------------
    # Output path
    # ------------------------------------------------------------------
    def _try_output(self) -> int:
        """Send as much new data as the window allows; returns segments sent."""
        if (
            self.state not in (ESTABLISHED, CLOSE_WAIT, FIN_WAIT, CLOSING, LAST_ACK)
            or self.rcv is None
        ):
            return 0
        sent = 0
        snd = self.snd
        config = self.config
        window = min(self.cc.cwnd, self._peer_rwnd)
        # Once our FIN is out nothing new may follow it, but data *before*
        # the FIN may still be (re)transmitted — e.g. go-back-N after RTO.
        limit = snd.end
        if self._fin_sent and self._local_fin_seq is not None:
            limit = self._local_fin_seq
        while snd.nxt < limit:
            budget = window - (snd.nxt - snd.una)  # flight_size, inlined
            if budget <= 0:
                break
            take = min(config.mss, limit - snd.nxt, budget)
            start = snd.nxt
            end = start + take
            messages = snd.messages_in(start, end)
            segment = TCPSegment(
                self.local_port, self.remote_port, start, self.rcv.rcv_nxt,
                ACK, take, messages, config.rwnd,
            )
            snd.nxt = end
            # Karn's rule: only time segments that are not retransmissions
            # (go-back-N after an RTO resends below _max_sent).
            if self._timed_end is None and start >= self._max_sent:
                self._timed_end = end
                self._timed_at = self.sim._now
                self._timed_valid = True
            if end > self._max_sent:
                self._max_sent = end
            self._send_segment(segment)
            self.stats.payload_bytes_sent += take
            if sent == 0 and take > 0:
                self.stats.piggybacked_acks += 1
            if not self._rto_timer.armed:
                self._rto_timer.start(self.rtt.rto)
            sent += 1
        if (
            self._fin_pending
            and not self._fin_sent
            and self.snd.unsent_bytes == 0
            and self.state in (ESTABLISHED, CLOSE_WAIT)
        ):
            self._send_fin()
        if self.config.track_cwnd:
            self.stats.cwnd_history.append((self.sim.now, self.cc.cwnd))
        return sent

    def _send_fin(self) -> None:
        assert self.rcv is not None
        self._fin_sent = True
        self._local_fin_seq = self.snd.nxt
        segment = TCPSegment(
            self.local_port, self.remote_port, self.snd.nxt, self.rcv.rcv_nxt,
            FIN | ACK, 0, (), self.config.rwnd,
        )
        self._send_segment(segment)
        self.state = LAST_ACK if self.state == CLOSE_WAIT else FIN_WAIT
        if not self._rto_timer.armed:
            self._rto_timer.start(self.rtt.rto)

    def _send_syn(self) -> None:
        # The one packet with no ACK flag (initial SYN).
        segment = TCPSegment(
            self.local_port, self.remote_port, 0, None, SYN, 0, (), self.config.rwnd
        )
        self._send_segment(segment)
        self._rto_timer.start(self.rtt.rto)

    def _send_pure_ack(self) -> None:
        assert self.rcv is not None
        self.stats.pure_acks_sent += 1
        sack_blocks: Tuple[Tuple[int, int], ...] = ()
        if self.config.sack and self.rcv.has_gap:
            sack_blocks = self.rcv.sack_ranges(3)
        self._send_segment(
            TCPSegment(
                self.local_port, self.remote_port, self.snd.nxt,
                self.rcv.rcv_nxt, ACK, 0, (), self.config.rwnd,
                sack_blocks=sack_blocks,
            )
        )

    def _send_segment(self, segment: TCPSegment, count: bool = True) -> None:
        if count:
            self.stats.segments_sent += 1
        ack = segment.ack
        if segment.flags & ACK and ack is not None:
            if ack > self._last_ack_sent:
                self._last_ack_sent = ack
            self._delack_timer.cancel()
        packet = Packet(self.local_ip, self.remote_ip, segment, created_at=self.sim._now)
        self.host.send(packet)

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def _on_rto(self) -> None:
        if self._finished:
            return
        if self.state == SYN_SENT:
            self._syn_retries += 1
            if self._syn_retries > self.config.max_syn_retries:
                self._finish("timeout")
                return
            self.rtt.backoff()
            self._send_syn()
            return
        if self.state == SYN_RCVD:
            self._syn_retries += 1
            if self._syn_retries > self.config.max_syn_retries:
                self._finish("timeout")
                return
            self.rtt.backoff()
            assert self.rcv is not None
            self._send_segment(
                TCPSegment(
                    self.local_port, self.remote_port, 0, self.rcv.rcv_nxt,
                    SYN | ACK, 0, (), self.config.rwnd,
                )
            )
            self._rto_timer.start(self.rtt.rto)
            return

        if self._flight_size() == 0:
            return
        self._consecutive_timeouts += 1
        self.stats.timeouts += 1
        if self._consecutive_timeouts > self.config.max_consecutive_timeouts:
            self._finish("timeout")
            return
        if self.sim.trace.enabled:
            self.sim.trace.event(
                "tcp", "rto", conn=self._trace_label,
                consecutive=self._consecutive_timeouts, rto=self.rtt.rto,
                flight=self._flight_size(), cwnd=self.cc.cwnd,
            )
        self.cc.on_timeout(self._flight_size())
        self.rtt.backoff()
        self._dupacks = 0
        self._timed_end = None
        self._sack_scoreboard.clear()
        self._holes_retransmitted.clear()
        if (
            self._fin_sent
            and self._local_fin_seq is not None
            and self.snd.una >= self._local_fin_seq
        ):
            # Only the FIN is outstanding.
            self._retransmit_head()
        else:
            # Go-back-N: rewind snd_nxt and let slow start resend the
            # whole unacknowledged window (classic post-RTO behaviour).
            self.stats.retransmissions += 1
            self.snd.nxt = self.snd.una
            self._try_output()
        self._rto_timer.start(self.rtt.rto)

    # ------------------------------------------------------------------
    # SACK-lite scoreboard
    # ------------------------------------------------------------------
    def _sack_update(self, blocks: Tuple[Tuple[int, int], ...]) -> None:
        """Merge reported received ranges into the sender scoreboard."""
        for start, end in blocks:
            if end <= self.snd.una or end <= start:
                continue
            self._sack_insert(max(start, self.snd.una), end)

    def _sack_insert(self, start: int, end: int) -> None:
        board = self._sack_scoreboard
        merged: List[Tuple[int, int]] = []
        placed = False
        for s, e in board:
            if e < start or s > end:
                merged.append((s, e))
            else:
                start = min(start, s)
                end = max(end, e)
        merged.append((start, end))
        merged.sort()
        self._sack_scoreboard = merged

    def _sack_prune(self) -> None:
        self._sack_scoreboard = [
            (s, e) for s, e in self._sack_scoreboard if e > self.snd.una
        ]

    def _sack_covered(self, seq: int) -> Optional[int]:
        """If ``seq`` lies in a SACKed range, return that range's end."""
        for s, e in self._sack_scoreboard:
            if s <= seq < e:
                return e
        return None

    def _loss_ceiling(self) -> int:
        """Sequence below which un-SACKed data is considered lost.

        Data is inferred lost only when SACKed data exists *above* it
        (RFC 3517's intuition); anything above the highest SACKed range is
        merely un-acknowledged, not missing.
        """
        if not self._sack_scoreboard:
            return self.snd.una
        return self._sack_scoreboard[-1][0]

    def _first_hole(self) -> Optional[Tuple[int, int]]:
        """The lowest unacknowledged, un-SACKed range, capped at one MSS.

        The duplicate ACKs that brought us here already witness the loss of
        the first un-SACKed segment, so no loss-inference ceiling applies
        (if ``snd_una`` itself is SACK-covered — lost cumulative ACKs —
        the target is the first byte after the covered prefix, never the
        already-received head)."""
        start = self.snd.una
        while True:
            covered_end = self._sack_covered(start)
            if covered_end is None:
                break
            start = covered_end
        if start >= self.snd.nxt:
            return None
        end = start + self.config.mss
        for s, _e in self._sack_scoreboard:
            if start < s < end:
                end = s
                break
        end = min(end, self.snd.nxt)
        if end <= start:
            return None
        return start, end

    def _retransmit_next_hole(self) -> None:
        """During SACK recovery, resend the next inferred-lost hole."""
        ceiling = self._loss_ceiling()
        hole = None
        start = self.snd.una
        while start < ceiling and start < self.snd.nxt:
            covered_end = self._sack_covered(start)
            if covered_end is not None:
                start = covered_end
                continue
            sent_at = self._holes_retransmitted.get(start)
            if sent_at is None or self._dupacks - sent_at >= 4:
                hole = start
                break
            start += self.config.mss
        if hole is None:
            return
        end = hole + self.config.mss
        for s, _e in self._sack_scoreboard:
            if hole < s < end:
                end = s
                break
        end = min(end, self.snd.nxt)
        if end <= hole:
            return
        self._holes_retransmitted[hole] = self._dupacks
        self.stats.retransmissions += 1
        assert self.rcv is not None
        messages = self.snd.messages_in(hole, end)
        segment = TCPSegment(
            self.local_port, self.remote_port, hole, self.rcv.rcv_nxt,
            ACK, end - hole, messages, self.config.rwnd,
        )
        if self._timed_end is not None and self._timed_end > hole:
            self._timed_valid = False
        self._send_segment(segment)
        # Give the retransmission a full RTO to be acknowledged before the
        # (stale) timer can fire mid-recovery.
        self._rto_timer.start(self.rtt.rto)

    def _retransmit_head(self) -> None:
        """Retransmit the segment at snd.una (data or FIN)."""
        assert self.rcv is not None
        self.stats.retransmissions += 1
        start = self.snd.una
        if (
            self._fin_sent
            and self._local_fin_seq is not None
            and start >= self._local_fin_seq
        ):
            segment = TCPSegment(
                self.local_port, self.remote_port, self._local_fin_seq,
                self.rcv.rcv_nxt, FIN | ACK, 0, (), self.config.rwnd,
            )
        else:
            end = min(start + self.config.mss, self.snd.nxt)
            if self.config.sack:
                hole = self._first_hole()
                if hole is not None:
                    start, end = hole
                    self._holes_retransmitted[start] = self._dupacks
            if end <= start:
                return
            messages = self.snd.messages_in(start, end)
            segment = TCPSegment(
                self.local_port, self.remote_port, start, self.rcv.rcv_nxt,
                ACK, end - start, messages, self.config.rwnd,
            )
        # Karn's rule: a retransmission covering the timed range poisons it.
        if self._timed_end is not None and self._timed_end > start:
            self._timed_valid = False
        self._send_segment(segment)
        # Restart the retransmission timer: without this, a timer armed at
        # the last new ACK can expire moments after a fast retransmit and
        # needlessly collapse an almost-complete recovery.
        self._rto_timer.start(self.rtt.rto)

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def _finish(self, reason: str) -> None:
        if self._finished:
            return
        self._finished = True
        self.state = CLOSED
        if self.sim.trace.enabled:
            self.sim.trace.event(
                "tcp", "close", conn=self._trace_label, reason=reason,
                retransmissions=self.stats.retransmissions,
                timeouts=self.stats.timeouts,
            )
        self._rto_timer.cancel()
        self._delack_timer.cancel()
        if self._unregister is not None:
            self._unregister(self)
        if self.on_close is not None:
            self.on_close(reason)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TCPConnection({self.local_ip}:{self.local_port} -> "
            f"{self.remote_ip}:{self.remote_port}, {self.state})"
        )
