"""NewReno congestion control.

Implements the sender-side window dynamics the paper's measurements rest on:
slow start, congestion avoidance, fast retransmit on the third duplicate
ACK, fast recovery with window inflation, partial-ACK retransmission
(NewReno, RFC 3782 — standard in deployed stacks of the paper's era), and
multiplicative backoff on timeout.

All quantities are in bytes.  The class is a pure state machine: the
connection tells it what happened; it answers with what the window is.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

SLOW_START = "slow_start"
CONGESTION_AVOIDANCE = "congestion_avoidance"
FAST_RECOVERY = "fast_recovery"


class NewRenoCongestionControl:
    """Congestion window state machine for one connection direction."""

    def __init__(
        self,
        mss: int = 1460,
        initial_cwnd_segments: int = 2,
        initial_ssthresh: int = 65535,
        min_cwnd_segments: int = 1,
    ) -> None:
        if mss <= 0:
            raise ValueError("mss must be positive")
        self.mss = mss
        self.cwnd = initial_cwnd_segments * mss
        self.ssthresh = initial_ssthresh
        self.min_cwnd = min_cwnd_segments * mss
        self.state = SLOW_START
        self.recover: Optional[int] = None
        self.fast_retransmits = 0
        self.timeouts = 0

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def on_new_ack(self, acked_bytes: int, snd_nxt: int, ack: int) -> bool:
        """A cumulative ACK advanced ``snd_una`` by ``acked_bytes``.

        Returns True if the sender should retransmit the segment at the new
        ``snd_una`` (NewReno partial ACK during fast recovery).
        """
        if self.state == FAST_RECOVERY:
            assert self.recover is not None
            if ack >= self.recover:
                # Full acknowledgment: recovery complete, deflate.
                self.cwnd = self.ssthresh
                self.state = (
                    SLOW_START if self.cwnd < self.ssthresh else CONGESTION_AVOIDANCE
                )
                self.recover = None
                return False
            # Partial ACK: another segment was lost in the same window.
            # Retransmit it, deflate by the acked amount, stay in recovery.
            self.cwnd = max(self.min_cwnd, self.cwnd - acked_bytes + self.mss)
            return True

        if self.cwnd < self.ssthresh:
            self.state = SLOW_START
            self.cwnd += self.mss
        else:
            self.state = CONGESTION_AVOIDANCE
            self.cwnd += max(1, self.mss * self.mss // self.cwnd)
        return False

    def on_dupack(self, count: int, flight_size: int, snd_nxt: int) -> bool:
        """A duplicate ACK arrived (``count`` consecutive so far).

        Returns True when the sender must fast-retransmit (third dupack).
        """
        if self.state == FAST_RECOVERY:
            # Window inflation: each further dupack signals a departure.
            self.cwnd += self.mss
            return False
        if count == 3:
            self.ssthresh = max(flight_size // 2, 2 * self.mss)
            self.cwnd = self.ssthresh + 3 * self.mss
            self.state = FAST_RECOVERY
            self.recover = snd_nxt
            self.fast_retransmits += 1
            return True
        return False

    def on_timeout(self, flight_size: int) -> None:
        """Retransmission timer expired: collapse to one segment."""
        self.ssthresh = max(flight_size // 2, 2 * self.mss)
        self.cwnd = self.min_cwnd
        self.state = SLOW_START
        self.recover = None
        self.timeouts += 1

    def on_idle_restart(self) -> None:
        """Sender was idle longer than an RTO: restart from slow start
        (RFC 2581 §4.1) without changing ssthresh."""
        self.cwnd = min(self.cwnd, 2 * self.mss)
        self.state = SLOW_START

    # ------------------------------------------------------------------
    @property
    def in_recovery(self) -> bool:
        return self.state == FAST_RECOVERY


class CwndTracker:
    """Optional history of (time, cwnd) for experiments that plot windows."""

    def __init__(self) -> None:
        self.samples: List[Tuple[float, int]] = []

    def record(self, time: float, cwnd: int) -> None:
        self.samples.append((time, cwnd))
