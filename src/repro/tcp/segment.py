"""TCP segments.

Segments model the real header fields the paper's analysis depends on:

* sequence/ack numbers (cumulative ACKs),
* the ACK flag — set on **every** packet except the initial SYN, per the
  TCP specification the paper cites (§3.2 footnote 2),
* payload length, which with the 20-byte TCP + 20-byte IP headers gives the
  wire sizes the bit-error model acts on (a pure ACK is 40 bytes on the
  wire; an MSS data segment with a piggybacked ACK is 1500).

Payload bytes are not materialized.  Applications send *messages* (objects
with a ``wire_length``); the sender assigns each message a byte range in the
stream and attaches the message object to any segment that covers the
message's final byte, so the receiver can deliver whole messages in stream
order without simulating byte buffers.
"""

from __future__ import annotations

from typing import Optional, Tuple

TCP_HEADER_BYTES = 20
DEFAULT_MSS = 1460
"""Maximum segment size for a 1500-byte MTU path."""

SYN = 0x1
ACK = 0x2
FIN = 0x4
RST = 0x8

_FLAG_NAMES = {SYN: "SYN", ACK: "ACK", FIN: "FIN", RST: "RST"}


class TCPSegment:
    """One TCP segment.

    ``messages`` is a tuple of ``(end_seq, message)`` pairs for application
    messages whose last stream byte falls inside this segment's range.
    """

    __slots__ = (
        "src_port",
        "dst_port",
        "seq",
        "ack",
        "flags",
        "payload_len",
        "messages",
        "rwnd",
        "sack_blocks",
    )

    def __init__(
        self,
        src_port: int,
        dst_port: int,
        seq: int,
        ack: Optional[int],
        flags: int,
        payload_len: int = 0,
        messages: Tuple[Tuple[int, object], ...] = (),
        rwnd: int = 262144,
        sack_blocks: Tuple[Tuple[int, int], ...] = (),
    ) -> None:
        if payload_len < 0:
            raise ValueError("payload_len must be non-negative")
        if flags & ACK and ack is None:
            raise ValueError("ACK flag requires an ack number")
        if len(sack_blocks) > 4:
            raise ValueError("at most 4 SACK blocks fit in the options space")
        self.src_port = src_port
        self.dst_port = dst_port
        self.seq = seq
        self.ack = ack
        self.flags = flags
        self.payload_len = payload_len
        self.messages = messages
        self.rwnd = rwnd
        self.sack_blocks = sack_blocks

    # ------------------------------------------------------------------
    @property
    def wire_size(self) -> int:
        """Bytes on the wire at the transport layer (header + payload).

        SACK blocks cost real option bytes (2 + 8 per block, RFC 2018),
        which matters to the wireless bit-error model."""
        options = (2 + 8 * len(self.sack_blocks)) if self.sack_blocks else 0
        return TCP_HEADER_BYTES + options + self.payload_len

    @property
    def seq_span(self) -> int:
        """Sequence numbers consumed: payload plus one for SYN/FIN."""
        span = self.payload_len
        if self.flags & SYN:
            span += 1
        if self.flags & FIN:
            span += 1
        return span

    @property
    def end_seq(self) -> int:
        return self.seq + self.seq_span

    def has(self, flag: int) -> bool:
        return bool(self.flags & flag)

    @property
    def is_pure_ack(self) -> bool:
        """True for a data-less ACK (no payload, no SYN/FIN/RST).

        SACK options do not change pure-ACK status: a DUPACK carrying SACK
        blocks is still a pure ACK for dupack counting."""
        return (
            self.flags == ACK
            and self.payload_len == 0
        )

    def flag_names(self) -> str:
        names = [name for bit, name in _FLAG_NAMES.items() if self.flags & bit]
        return "|".join(names) if names else "-"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TCPSegment({self.src_port}->{self.dst_port} {self.flag_names()} "
            f"seq={self.seq} ack={self.ack} len={self.payload_len})"
        )


def pure_ack(
    src_port: int, dst_port: int, seq: int, ack: int, rwnd: int = 262144
) -> TCPSegment:
    """Build a 40-byte-on-the-wire pure acknowledgment segment."""
    return TCPSegment(src_port, dst_port, seq, ack, ACK, 0, (), rwnd)
