"""Round-trip-time estimation and retransmission timeout.

Standard Jacobson/Karels smoothing (RFC 6298) with Karn's rule: samples are
never taken from retransmitted segments, and the RTO backs off exponentially
on successive timeouts.
"""

from __future__ import annotations

from typing import Optional


class RTTEstimator:
    """SRTT/RTTVAR smoothing with exponential timeout backoff."""

    ALPHA = 1.0 / 8.0
    BETA = 1.0 / 4.0
    K = 4.0

    def __init__(
        self,
        initial_rto: float = 1.0,
        min_rto: float = 0.2,
        max_rto: float = 60.0,
        clock_granularity: float = 0.01,
    ) -> None:
        if not 0 < min_rto <= initial_rto <= max_rto:
            raise ValueError("need 0 < min_rto <= initial_rto <= max_rto")
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.granularity = clock_granularity
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self._rto = initial_rto
        self._backoff = 1.0
        self.samples = 0

    @property
    def rto(self) -> float:
        """Current retransmission timeout including backoff, clamped."""
        return min(self.max_rto, max(self.min_rto, self._rto * self._backoff))

    def sample(self, rtt: float) -> None:
        """Fold in a new RTT measurement (seconds) and clear any backoff."""
        if rtt < 0:
            raise ValueError("rtt must be non-negative")
        self.samples += 1
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            assert self.rttvar is not None
            self.rttvar = (1 - self.BETA) * self.rttvar + self.BETA * abs(self.srtt - rtt)
            self.srtt = (1 - self.ALPHA) * self.srtt + self.ALPHA * rtt
        self._rto = self.srtt + max(self.granularity, self.K * self.rttvar)
        self._backoff = 1.0

    def backoff(self) -> None:
        """Double the timeout after an expiry (Karn), capped at max_rto.

        The cap keeps ``_rto * _backoff`` from overshooting ``max_rto``,
        but it must never push the multiplier below 1: when ``_rto``
        already exceeds ``max_rto`` the ratio is < 1, and using it
        verbatim would *shrink* the effective timeout after an expiry.
        ``rto`` clamps to ``max_rto`` either way; the floor keeps the
        backoff monotone.
        """
        self._backoff = min(
            self._backoff * 2.0, max(1.0, self.max_rto / max(self._rto, 1e-9))
        )

    def reset_backoff(self) -> None:
        self._backoff = 1.0
