"""TCP: bi-directional byte-stream transport with NewReno congestion control."""

from .congestion import (
    CONGESTION_AVOIDANCE,
    FAST_RECOVERY,
    SLOW_START,
    NewRenoCongestionControl,
)
from .connection import (
    CLOSE_WAIT,
    CLOSED,
    ESTABLISHED,
    FIN_WAIT,
    SYN_RCVD,
    SYN_SENT,
    ConnectionStats,
    TCPConfig,
    TCPConnection,
)
from .rtt import RTTEstimator
from .segment import (
    ACK,
    DEFAULT_MSS,
    FIN,
    RST,
    SYN,
    TCP_HEADER_BYTES,
    TCPSegment,
    pure_ack,
)
from .stack import TCPStack
from .streams import ReceiveStream, SendStream

__all__ = [
    "NewRenoCongestionControl",
    "SLOW_START",
    "CONGESTION_AVOIDANCE",
    "FAST_RECOVERY",
    "TCPConfig",
    "TCPConnection",
    "ConnectionStats",
    "CLOSED",
    "SYN_SENT",
    "SYN_RCVD",
    "ESTABLISHED",
    "FIN_WAIT",
    "CLOSE_WAIT",
    "RTTEstimator",
    "TCPSegment",
    "pure_ack",
    "TCP_HEADER_BYTES",
    "DEFAULT_MSS",
    "SYN",
    "ACK",
    "FIN",
    "RST",
    "TCPStack",
    "SendStream",
    "ReceiveStream",
]
