"""Per-host TCP stack: port demultiplexing, listeners, connection factory.

The stack registers itself as the host's transport handler.  Incoming
packets are demuxed on ``(local_port, remote_ip, remote_port)``; SYNs for a
listening port create passive connections and hand them to the listener's
accept callback *before* the handshake completes, so the application can
install its callbacks in time.

Mobility interaction: a connection is bound to the local IP it was created
with.  After a handoff the host sources packets from its new address, so
segments of old connections go out with a stale source and the replies are
unroutable — old connections starve and die by RTO, exactly the stranding
behaviour the paper measures at fixed peers (§3.5).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..net.host import Host
from ..net.packet import Packet
from ..sim import Simulator
from .connection import TCPConfig, TCPConnection
from .segment import ACK, RST, SYN, TCPSegment

AcceptCallback = Callable[[TCPConnection], None]

EPHEMERAL_BASE = 49152


class TCPStack:
    """Transport layer for one host."""

    def __init__(self, sim: Simulator, host: Host, config: Optional[TCPConfig] = None) -> None:
        self.sim = sim
        self.host = host
        self.config = config or TCPConfig()
        self._connections: Dict[Tuple[int, str, int], TCPConnection] = {}
        self._listeners: Dict[int, AcceptCallback] = {}
        self._next_ephemeral = EPHEMERAL_BASE
        self.rst_sent = 0
        self.segments_dropped = 0
        host.transport = self

    # ------------------------------------------------------------------
    # Application API
    # ------------------------------------------------------------------
    def listen(self, port: int, on_accept: AcceptCallback) -> None:
        """Accept incoming connections on ``port``.

        ``on_accept(conn)`` fires when a SYN arrives, before the handshake
        completes; install ``on_established`` / ``on_message`` there.
        """
        if port in self._listeners:
            raise ValueError(f"port {port} already listening")
        self._listeners[port] = on_accept

    def unlisten(self, port: int) -> None:
        self._listeners.pop(port, None)

    def connect(
        self,
        remote_ip: str,
        remote_port: int,
        local_port: Optional[int] = None,
    ) -> TCPConnection:
        """Active-open a connection from this host's current address."""
        local_ip = self.host.ip
        if local_ip is None:
            raise RuntimeError(f"host {self.host.name} has no address (down)")
        if local_port is None:
            local_port = self._allocate_port(remote_ip, remote_port)
        key = (local_port, remote_ip, remote_port)
        if key in self._connections:
            raise ValueError(f"connection {key} already exists")
        conn = TCPConnection(
            self.sim, self.host, local_ip, local_port, remote_ip, remote_port,
            config=self.config, unregister=self._unregister,
        )
        self._connections[key] = conn
        conn.connect()
        return conn

    def abort_all(self, reason: str = "aborted") -> int:
        """Hard-close every connection (e.g. application shutdown)."""
        conns = list(self._connections.values())
        for conn in conns:
            conn.abort(reason)
        return len(conns)

    @property
    def connections(self) -> List[TCPConnection]:
        return list(self._connections.values())

    def connection_count(self) -> int:
        return len(self._connections)

    # ------------------------------------------------------------------
    # Host transport-handler API
    # ------------------------------------------------------------------
    def receive(self, packet: Packet) -> None:
        segment = packet.payload
        if not isinstance(segment, TCPSegment):
            self.segments_dropped += 1
            return
        key = (segment.dst_port, packet.src, segment.src_port)
        conn = self._connections.get(key)
        if conn is not None:
            conn.receive_segment(segment)
            return
        if segment.has(SYN) and not segment.has(ACK):
            on_accept = self._listeners.get(segment.dst_port)
            if on_accept is not None:
                self._accept(packet, segment, on_accept)
                return
        self._reject(packet, segment)

    # ------------------------------------------------------------------
    def _accept(self, packet: Packet, syn: TCPSegment, on_accept: AcceptCallback) -> None:
        local_ip = self.host.ip
        if local_ip is None:
            return
        conn = TCPConnection(
            self.sim, self.host, local_ip, syn.dst_port, packet.src, syn.src_port,
            config=self.config, unregister=self._unregister,
        )
        self._connections[conn.key] = conn
        on_accept(conn)
        conn.open_passive(syn)

    def _reject(self, packet: Packet, segment: TCPSegment) -> None:
        """No matching connection: answer with RST (unless it was a RST)."""
        self.segments_dropped += 1
        if segment.has(RST) or self.host.ip is None:
            return
        self.rst_sent += 1
        rst = TCPSegment(
            segment.dst_port, segment.src_port,
            segment.ack if segment.ack is not None else 0,
            segment.end_seq, RST | ACK, 0, (), 0,
        )
        self.host.send(Packet(self.host.ip, packet.src, rst, created_at=self.sim.now))

    def _allocate_port(self, remote_ip: str, remote_port: int) -> int:
        for _ in range(65536 - EPHEMERAL_BASE):
            port = self._next_ephemeral
            self._next_ephemeral += 1
            if self._next_ephemeral >= 65536:
                self._next_ephemeral = EPHEMERAL_BASE
            if (port, remote_ip, remote_port) not in self._connections:
                return port
        raise RuntimeError("ephemeral port space exhausted")

    def _unregister(self, conn: TCPConnection) -> None:
        existing = self._connections.get(conn.key)
        if existing is conn:
            del self._connections[conn.key]
