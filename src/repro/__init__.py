"""repro — reproduction of *On the Impact of Mobile Hosts in Peer-to-Peer
Data Networks* (Zhuang et al., ICDCS 2008).

A packet-level discrete-event simulation stack:

* :mod:`repro.sim` — event kernel, timers, RNG streams, probes
* :mod:`repro.net` — hosts, wired links, shared wireless channel with BER,
  Internet core, Netfilter hooks, mobility (IP renumbering)
* :mod:`repro.tcp` — bi-directional TCP with NewReno congestion control
* :mod:`repro.bittorrent` — full BitTorrent: tracker, peer wire protocol,
  tit-for-tat choking, rarest-first selection, client
* :mod:`repro.wp2p` — the paper's contribution: the wP2P mobile client
  (age-based manipulation, incentive-aware operations, mobility-aware
  operations)
* :mod:`repro.media` — in-order playability model
* :mod:`repro.experiments` — one module per figure of the paper

Quickstart::

    from repro.bittorrent.swarm import SwarmScenario
    from repro.wp2p import WP2PClient

    scenario = SwarmScenario(seed=1, file_size=2 << 20)
    scenario.add_wired_peer("seed", complete=True)
    scenario.add_wireless_peer("mobile", ber=1e-5, client_factory=WP2PClient)
    scenario.start_all()
    scenario.run_until_complete(["mobile"], timeout=600)
"""

__version__ = "1.0.0"

from . import bittorrent, media, net, sim, tcp, wp2p

__all__ = ["bittorrent", "media", "net", "sim", "tcp", "wp2p", "__version__"]
