"""The Internet core: a latency cloud routing packets between access links.

The paper's testbed (Figure 10) places each client behind a wireless
emulator, with all peers meeting "in the Internet".  We model the core as
over-provisioned — packets only queue at access links — with a configurable
one-way core delay.  Routing is by destination address; packets addressed to
a released address (a handed-off mobile host) are unroutable and dropped,
which is what strands a fixed peer's TCP connections when its mobile
correspondent moves.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol

from ..sim import Simulator
from .packet import DropRecord, Packet


class Attachment(Protocol):
    """What the core needs from an access link: downstream delivery."""

    def deliver_from_core(self, packet: Packet) -> None: ...


class Internet:
    """Address-keyed routing between access links with fixed core delay."""

    def __init__(self, sim: Simulator, core_delay: float = 0.02) -> None:
        if core_delay < 0:
            raise ValueError("core_delay must be non-negative")
        self.sim = sim
        self.core_delay = core_delay
        self._routes: Dict[str, Attachment] = {}
        self.unroutable: List[DropRecord] = []
        self.packets_forwarded = 0

    # ------------------------------------------------------------------
    # Route management (called on attach / IP change)
    # ------------------------------------------------------------------
    def register(self, ip: str, attachment: Attachment) -> None:
        """Bind ``ip`` to an access link.  Re-binding an address is an error
        (two live hosts may not share one)."""
        existing = self._routes.get(ip)
        if existing is not None and existing is not attachment:
            raise ValueError(f"address {ip} already routed")
        self._routes[ip] = attachment

    def unregister(self, ip: str) -> None:
        """Remove the route for ``ip`` (idempotent)."""
        self._routes.pop(ip, None)

    def has_route(self, ip: str) -> bool:
        return ip in self._routes

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------
    def forward(self, packet: Packet) -> None:
        """Route a packet arriving from an access link toward its target."""
        attachment = self._routes.get(packet.dst)
        if attachment is None:
            self.unroutable.append(
                DropRecord(self.sim.now, "core", "unroutable", packet.size_bytes)
            )
            return
        packet.hops += 1
        self.packets_forwarded += 1
        if self.core_delay > 0:
            # Hot path (once per forwarded packet): schedule through
            # sim._push directly to skip the schedule() wrapper frame.
            sim = self.sim
            sim._push(sim._now + self.core_delay, attachment.deliver_from_core, (packet,))
        else:
            attachment.deliver_from_core(packet)

    def route_owner(self, ip: str) -> Optional[Attachment]:
        return self._routes.get(ip)
