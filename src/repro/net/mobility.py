"""Mobility: periodic IP renumbering and disconnection windows.

The paper emulates mobility "by changing the IP addresses of the clients
using the ifup/ifdown commands" — a handoff is a short interface-down window
followed by coming back up with a *new* address.  That single mechanism
produces every mobility pathology the paper studies: stranded TCP
connections at fixed peers, peer-ID regeneration (incentive loss), and
unreachability of the mobile host acting as server.

:class:`MobilityController` drives the schedule; hosts and applications react
through the host's ``on_ip_change`` listeners.
"""

from __future__ import annotations

from typing import List, Optional

from ..sim import Simulator
from .addressing import AddressAllocator
from .internet import Attachment, Internet
from .host import Host


class MobilityController:
    """Periodically hands a host off to a new IP address.

    Parameters
    ----------
    interval:
        Seconds between successive handoffs ("mobility rate" in the paper's
        figures: e.g. every 0.5 / 1 / 1.5 / 2 minutes).
    downtime:
        Interface-down window during each handoff (ifdown -> ifup latency
        plus DHCP).  Defaults to one second.
    jitter:
        Uniform +/- jitter applied to each interval so multiple mobile
        hosts do not hand off in lockstep.
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        internet: Internet,
        allocator: AddressAllocator,
        interval: float,
        downtime: float = 1.0,
        jitter: float = 0.0,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        if downtime < 0:
            raise ValueError("downtime must be non-negative")
        if jitter < 0 or jitter >= interval:
            raise ValueError("jitter must be in [0, interval)")
        self.sim = sim
        self.host = host
        self.internet = internet
        self.allocator = allocator
        self.interval = interval
        self.downtime = downtime
        self.jitter = jitter
        self._rng = sim.rng.stream(f"mobility.{host.name}")
        self._running = False
        self._event = None
        self._reconnect_event = None
        self.handoffs = 0
        self.history: List[float] = []

    # ------------------------------------------------------------------
    def start(self) -> "MobilityController":
        """Begin the handoff schedule (first handoff one interval from now)."""
        if self._running:
            return self
        self._running = True
        self._schedule_next()
        return self

    def stop(self) -> None:
        """Halt the schedule, including an in-flight handoff.

        Both the next-handoff timer and a pending ``_reconnect`` are
        cancelled: a controller stopped mid-handoff must never fire a
        stale reconnect and re-attach a host the scenario (or a chaos
        fault) has already torn down.  A host stopped mid-handoff
        therefore stays down until someone reconnects it explicitly.
        """
        self._running = False
        if self._event is not None:
            self.sim.cancel(self._event)
            self._event = None
        if self._reconnect_event is not None:
            self.sim.cancel(self._reconnect_event)
            self._reconnect_event = None

    @property
    def in_handoff(self) -> bool:
        """True while the interface is down awaiting its reconnect."""
        return self._reconnect_event is not None

    def trigger_handoff(self, downtime: Optional[float] = None) -> bool:
        """Force an immediate out-of-schedule handoff (chaos storms).

        Returns False (and does nothing) when the controller is stopped
        or already mid-handoff.  The regular schedule resumes after the
        forced reconnect.
        """
        if not self._running or self._reconnect_event is not None:
            return False
        if self._event is not None:
            self.sim.cancel(self._event)
            self._event = None
        self._do_handoff(self.downtime if downtime is None else downtime)
        return True

    def _schedule_next(self) -> None:
        delay = self.interval
        if self.jitter > 0:
            delay += self._rng.uniform(-self.jitter, self.jitter)
        self._event = self.sim.schedule(delay, self._handoff)

    def _handoff(self) -> None:
        self._event = None
        if not self._running:
            return
        self._do_handoff(self.downtime)

    def _do_handoff(self, downtime: float) -> None:
        self.handoffs += 1
        self.history.append(self.sim.now)
        disconnect_host(self.host, self.internet, self.allocator)
        self._reconnect_event = self.sim.schedule(downtime, self._reconnect)

    def _reconnect(self) -> None:
        self._reconnect_event = None
        if not self._running:
            return
        reconnect_host(self.host, self.internet, self.allocator)
        self._schedule_next()


def disconnect_host(host: Host, internet: Internet, allocator: AddressAllocator) -> Optional[str]:
    """Take a host off the network: unroute and release its address.

    Returns the released address (or None if the host was already down).
    The access link keeps its core attachment so the same link serves the
    new address after :func:`reconnect_host`.
    """
    old = host.ip
    if old is not None:
        internet.unregister(old)
        allocator.release(old)
    link = host.interface.link
    host.take_down()
    if link is not None:
        link.host_detached()
    return old


def reconnect_host(
    host: Host,
    internet: Internet,
    allocator: AddressAllocator,
    ip: Optional[str] = None,
) -> str:
    """Bring a host back up at ``ip`` (freshly allocated by default)."""
    link = host.interface.link
    if link is None:
        raise RuntimeError(f"host {host.name} has no access link")
    if ip is not None:
        allocator.reclaim(ip)
        new_ip = ip
    else:
        new_ip = allocator.allocate()
    internet.register(new_ip, _as_attachment(link))
    host.bring_up(new_ip)
    return new_ip


def _as_attachment(link: object) -> Attachment:
    if not hasattr(link, "deliver_from_core"):
        raise TypeError(f"{link!r} is not a core attachment")
    return link  # type: ignore[return-value]
