"""Netfilter-style packet hook chains.

The paper implements wP2P's Age-based Manipulation "with the assistance of
[the] Netfilter utility" — a module that inspects every packet the mobile
host transmits and may rewrite, duplicate, or drop it.  This module provides
that extension point: an ordered chain of filters on a host's egress and
ingress paths.

A filter is a callable ``filter(packet) -> verdict`` where the verdict is:

* ``None`` — pass the packet through unchanged;
* a list of packets — replace the packet with that list, in order
  (an empty list drops it; ``[extra, packet]`` injects ``extra`` ahead).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from .packet import Packet

FilterVerdict = Optional[Sequence[Packet]]
PacketFilter = Callable[[Packet], FilterVerdict]

EGRESS = "egress"
INGRESS = "ingress"


class HookChain:
    """An ordered chain of packet filters for one direction."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._filters: List[PacketFilter] = []

    def register(self, pkt_filter: PacketFilter) -> None:
        """Append a filter to the chain (runs after existing filters)."""
        self._filters.append(pkt_filter)

    def unregister(self, pkt_filter: PacketFilter) -> None:
        """Remove a filter; raises ValueError if absent."""
        self._filters.remove(pkt_filter)

    def apply(self, packet: Packet) -> List[Packet]:
        """Run ``packet`` through the chain; returns the surviving packets.

        Packets a filter injects are themselves subject to the *remaining*
        filters in the chain, matching how a packet traverses successive
        Netfilter hooks.
        """
        stream: List[Packet] = [packet]
        for pkt_filter in self._filters:
            next_stream: List[Packet] = []
            for pkt in stream:
                verdict = pkt_filter(pkt)
                if verdict is None:
                    next_stream.append(pkt)
                else:
                    next_stream.extend(verdict)
            stream = next_stream
            if not stream:
                break
        return stream

    def __len__(self) -> int:
        return len(self._filters)


class Netfilter:
    """Per-host egress + ingress hook chains."""

    def __init__(self) -> None:
        self.egress = HookChain(EGRESS)
        self.ingress = HookChain(INGRESS)

    def chain(self, direction: str) -> HookChain:
        if direction == EGRESS:
            return self.egress
        if direction == INGRESS:
            return self.ingress
        raise ValueError(f"unknown direction {direction!r}")
