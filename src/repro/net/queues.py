"""Drop-tail packet queues.

Every transmitting element (wired link direction, wireless channel end) owns
one.  Overflow drops are recorded with timestamps because the paper's
Figure 2(b, c) plots buffer-drop events against packets in flight.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

from .packet import DropRecord, Packet


class DropTailQueue:
    """A FIFO packet queue bounded in packets (and optionally bytes)."""

    __slots__ = (
        "name", "capacity_packets", "capacity_bytes", "_queue", "_bytes",
        "drops", "enqueued", "dequeued", "bytes_enqueued", "bytes_dequeued",
        "cleared", "cleared_bytes", "on_drop",
    )

    def __init__(
        self,
        name: str,
        capacity_packets: int = 100,
        capacity_bytes: Optional[int] = None,
    ) -> None:
        if capacity_packets <= 0:
            raise ValueError("capacity_packets must be positive")
        self.name = name
        self.capacity_packets = capacity_packets
        self.capacity_bytes = capacity_bytes
        self._queue: Deque[Packet] = deque()
        self._bytes = 0
        self.drops: List[DropRecord] = []
        self.enqueued = 0
        self.dequeued = 0
        self.bytes_enqueued = 0
        self.bytes_dequeued = 0
        self.cleared = 0
        self.cleared_bytes = 0
        self.on_drop: Optional[Callable[[Packet, DropRecord], None]] = None

    def enqueue(self, packet: Packet, now: float) -> bool:
        """Append ``packet``; returns False (and records a drop) on overflow."""
        size = packet.size_bytes
        overflows = len(self._queue) >= self.capacity_packets or (
            self.capacity_bytes is not None
            and self._bytes + size > self.capacity_bytes
        )
        if overflows:
            record = DropRecord(now, self.name, "buffer_overflow", size)
            self.drops.append(record)
            if self.on_drop is not None:
                self.on_drop(packet, record)
            return False
        self._queue.append(packet)
        self._bytes += size
        self.enqueued += 1
        self.bytes_enqueued += size
        return True

    def dequeue(self) -> Optional[Packet]:
        """Pop the head packet, or None when empty."""
        if not self._queue:
            return None
        packet = self._queue.popleft()
        size = packet.size_bytes
        self._bytes -= size
        self.dequeued += 1
        self.bytes_dequeued += size
        return packet

    def peek(self) -> Optional[Packet]:
        return self._queue[0] if self._queue else None

    def packets(self) -> List[Packet]:
        """The queued packets, head first (inspection only)."""
        return list(self._queue)

    def clear(self) -> int:
        """Discard all queued packets (interface down); returns count."""
        count = len(self._queue)
        self.cleared += count
        self.cleared_bytes += self._bytes
        self._queue.clear()
        self._bytes = 0
        return count

    @property
    def depth_packets(self) -> int:
        return len(self._queue)

    @property
    def depth_bytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)
