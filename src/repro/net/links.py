"""Wired access links.

A :class:`WiredAccessLink` joins one host to the Internet core with
independent uplink/downlink capacities — the paper's fixed peers sit on
asymmetric residential links ("Comcast Cable ... 4 Mbps downloading rate and
384 Kbps upload rate").  Each direction is a store-and-forward transmitter
fed by a drop-tail queue; because the directions are independent, uploads
never contend with downloads, which is precisely the property the shared
wireless channel lacks (Figure 3(a) vs 3(b)).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim import Simulator
from .internet import Internet
from .host import Host
from .packet import Packet
from .queues import DropTailQueue


class _Direction:
    """One store-and-forward pipe: queue -> transmitter -> delivery."""

    __slots__ = (
        "sim", "rate", "prop_delay", "queue", "deliver", "_busy",
        "bytes_sent", "packets_sent",
    )

    def __init__(
        self,
        sim: Simulator,
        name: str,
        rate_bytes_per_s: float,
        prop_delay: float,
        queue_packets: int,
        deliver: Callable[[Packet], None],
    ) -> None:
        if rate_bytes_per_s <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.rate = rate_bytes_per_s
        self.prop_delay = prop_delay
        self.queue = DropTailQueue(name, capacity_packets=queue_packets)
        self.deliver = deliver
        self._busy = False
        self.bytes_sent = 0
        self.packets_sent = 0
        audit = sim.audit
        if audit is not None:
            audit.register_direction(self)

    def send(self, packet: Packet) -> None:
        if self.queue.enqueue(packet, self.sim._now) and not self._busy:
            self._serve()

    def set_rate(self, rate_bytes_per_s: float) -> None:
        if rate_bytes_per_s <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate_bytes_per_s

    def set_prop_delay(self, prop_delay: float) -> None:
        if prop_delay < 0:
            raise ValueError("prop_delay must be non-negative")
        self.prop_delay = prop_delay

    # _serve/_tx_done fire once per packet per direction; they schedule
    # through sim._push directly to skip the schedule() wrapper frame
    # (delays here are non-negative by construction).
    def _serve(self) -> None:
        # Inlined self.queue.dequeue() — one call frame per packet saved.
        q = self.queue
        fifo = q._queue
        if not fifo:
            self._busy = False
            return
        packet = fifo.popleft()
        size = packet.size_bytes
        q._bytes -= size
        q.dequeued += 1
        q.bytes_dequeued += size
        self._busy = True
        sim = self.sim
        sim._push(sim._now + size / self.rate, self._tx_done, (packet,))

    def _tx_done(self, packet: Packet) -> None:
        self.bytes_sent += packet.size_bytes
        self.packets_sent += 1
        sim = self.sim
        sim._push(sim._now + self.prop_delay, self.deliver, (packet,))
        self._serve()


class WiredAccessLink:
    """Full-duplex access link: host <-> Internet core."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        internet: Internet,
        down_rate: float = 500_000.0,
        up_rate: float = 48_000.0,
        prop_delay: float = 0.002,
        queue_packets: int = 100,
    ) -> None:
        """Rates are in bytes/second.  Defaults approximate the paper's
        4 Mbps / 384 Kbps cable profile."""
        self.sim = sim
        self.host = host
        self.internet = internet
        self.uplink = _Direction(
            sim, f"{host.name}.uplink", up_rate, prop_delay, queue_packets, internet.forward
        )
        self.downlink = _Direction(
            sim,
            f"{host.name}.downlink",
            down_rate,
            prop_delay,
            queue_packets,
            host.interface.receive,
        )
        host.interface.attach(self)
        self._baseline = None

    # ------------------------------------------------------------------
    # Fault hooks (repro.chaos)
    # ------------------------------------------------------------------
    def apply_degradation(
        self, rate_factor: float = 1.0, extra_delay: float = 0.0
    ) -> None:
        """Degrade both directions: rates scaled by ``rate_factor``,
        propagation delay inflated by ``extra_delay`` seconds.

        The pre-fault configuration is snapshotted on the first call and
        restored by :meth:`clear_degradation`; overlapping degradations
        therefore do not compound — the last applied one wins.
        """
        if rate_factor <= 0:
            raise ValueError("rate_factor must be positive")
        if extra_delay < 0:
            raise ValueError("extra_delay must be non-negative")
        if self._baseline is None:
            self._baseline = (
                self.uplink.rate, self.downlink.rate,
                self.uplink.prop_delay, self.downlink.prop_delay,
            )
        up_rate, down_rate, up_delay, down_delay = self._baseline
        self.uplink.set_rate(up_rate * rate_factor)
        self.downlink.set_rate(down_rate * rate_factor)
        self.uplink.set_prop_delay(up_delay + extra_delay)
        self.downlink.set_prop_delay(down_delay + extra_delay)

    def clear_degradation(self) -> None:
        """Restore the pre-fault rates and delays (no-op when clean)."""
        if self._baseline is None:
            return
        up_rate, down_rate, up_delay, down_delay = self._baseline
        self.uplink.set_rate(up_rate)
        self.downlink.set_rate(down_rate)
        self.uplink.set_prop_delay(up_delay)
        self.downlink.set_prop_delay(down_delay)
        self._baseline = None

    # Host-side API ------------------------------------------------------
    def send_from_host(self, packet: Packet) -> None:
        self.uplink.send(packet)

    def host_detached(self) -> None:
        self.uplink.queue.clear()
        self.downlink.queue.clear()

    # Core-side API ------------------------------------------------------
    def deliver_from_core(self, packet: Packet) -> None:
        self.downlink.send(packet)


def attach_wired_host(
    sim: Simulator,
    host: Host,
    internet: Internet,
    ip: str,
    down_rate: float = 500_000.0,
    up_rate: float = 48_000.0,
    prop_delay: float = 0.002,
    queue_packets: int = 100,
) -> WiredAccessLink:
    """Wire a host to the core and bring it up at ``ip`` in one call."""
    link = WiredAccessLink(
        sim,
        host,
        internet,
        down_rate=down_rate,
        up_rate=up_rate,
        prop_delay=prop_delay,
        queue_packets=queue_packets,
    )
    internet.register(ip, link)
    host.bring_up(ip)
    return link
