"""Packet tracing: a tcpdump-style recorder built on Netfilter hooks.

Attach a :class:`PacketTrace` to any host to capture its ingress/egress
traffic without altering it.  Traces answer the questions that come up when
debugging protocol behaviour in this library ("did the DUPACKs go out
pure?", "what fraction of ACKs were piggybacked?") and power assertions in
tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..sim import Simulator
from .host import Host
from .netfilter import EGRESS, INGRESS
from .packet import Packet


@dataclass(frozen=True)
class TraceRecord:
    """One captured packet."""

    time: float
    direction: str  # "egress" | "ingress"
    src: str
    dst: str
    size_bytes: int
    summary: str

    def __str__(self) -> str:
        arrow = "->" if self.direction == EGRESS else "<-"
        return (
            f"{self.time:10.4f} {arrow} {self.src} > {self.dst} "
            f"{self.size_bytes:5d}B  {self.summary}"
        )


def _describe(packet: Packet) -> str:
    payload = packet.payload
    describe = getattr(payload, "flag_names", None)
    if describe is not None:  # a TCP segment
        parts = [payload.flag_names()]
        parts.append(f"seq={payload.seq}")
        if payload.ack is not None:
            parts.append(f"ack={payload.ack}")
        if payload.payload_len:
            parts.append(f"len={payload.payload_len}")
        if getattr(payload, "sack_blocks", ()):
            parts.append(f"sack={list(payload.sack_blocks)}")
        return " ".join(parts)
    return type(payload).__name__


class PacketTrace:
    """Capture a host's traffic through its Netfilter hooks."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        directions: tuple = (EGRESS, INGRESS),
        keep: Optional[Callable[[Packet], bool]] = None,
        max_records: int = 100_000,
    ) -> None:
        self.sim = sim
        self.host = host
        self.records: List[TraceRecord] = []
        self.dropped_records = 0
        self._keep = keep
        self._max = max_records
        self._filters = []
        for direction in directions:
            pkt_filter = self._make_filter(direction)
            host.netfilter.chain(direction).register(pkt_filter)
            self._filters.append((direction, pkt_filter))
        self._detached = False

    def _make_filter(self, direction: str):
        def tap(packet: Packet):
            if self._keep is None or self._keep(packet):
                if len(self.records) < self._max:
                    self.records.append(
                        TraceRecord(
                            time=self.sim.now,
                            direction=direction,
                            src=packet.src,
                            dst=packet.dst,
                            size_bytes=packet.size_bytes,
                            summary=_describe(packet),
                        )
                    )
                else:
                    self.dropped_records += 1
            return None  # observe only, never modify

        return tap

    def detach(self) -> None:
        """Stop capturing (idempotent)."""
        if self._detached:
            return
        self._detached = True
        for direction, pkt_filter in self._filters:
            self.host.netfilter.chain(direction).unregister(pkt_filter)

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------
    def egress(self) -> List[TraceRecord]:
        return [r for r in self.records if r.direction == EGRESS]

    def ingress(self) -> List[TraceRecord]:
        return [r for r in self.records if r.direction == INGRESS]

    def matching(self, needle: str) -> List[TraceRecord]:
        """Records whose summary contains ``needle``."""
        return [r for r in self.records if needle in r.summary]

    def bytes_by_direction(self) -> dict:
        out = {EGRESS: 0, INGRESS: 0}
        for record in self.records:
            out[record.direction] += record.size_bytes
        return out

    def dump(self, limit: int = 50) -> str:
        """A printable, tcpdump-flavoured listing of the first records."""
        lines = [str(r) for r in self.records[:limit]]
        if len(self.records) > limit:
            lines.append(f"... {len(self.records) - limit} more records")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.records)
