"""IPv4-style addressing and address allocation.

Addresses are plain dotted-quad strings; :class:`AddressAllocator` hands out
fresh ones.  Mobility is modelled exactly as the paper describes ("the IP
addresses of the clients are changed ... using ifup/ifdown"): a host releases
its address and acquires a new one, so any state keyed by the old address —
routes, TCP 4-tuples, tracker entries — goes stale.
"""

from __future__ import annotations

from typing import Iterator, Set


def make_address(network: int, host: int) -> str:
    """Format a dotted-quad address from a 16-bit network and host index."""
    if not 0 <= network <= 0xFFFF:
        raise ValueError("network must fit in 16 bits")
    if not 1 <= host <= 0xFFFE:
        raise ValueError("host must be in [1, 65534]")
    return f"10.{network >> 8 & 0xFF}.{network & 0xFF}.{host & 0xFF}" if host <= 0xFE else (
        f"172.{network & 0x7F}.{host >> 8 & 0xFF}.{host & 0xFF}"
    )


class AddressAllocator:
    """Hands out unique addresses and tracks live assignments.

    A released address is never re-issued within a run; that mirrors DHCP
    pools large enough that a handing-off host practically never gets its
    old address back (which is what breaks peer identity in the paper).
    """

    def __init__(self, prefix: str = "10.0") -> None:
        self._prefix = prefix
        self._counter = 0
        self._live: Set[str] = set()

    def allocate(self) -> str:
        """Return a fresh, never-before-issued address."""
        self._counter += 1
        third = (self._counter >> 8) & 0xFF
        fourth = self._counter & 0xFF
        if self._counter > 0xFFFF:
            raise RuntimeError("address pool exhausted")
        addr = f"{self._prefix}.{third}.{fourth}"
        self._live.add(addr)
        return addr

    def release(self, address: str) -> None:
        """Mark ``address`` as no longer live (idempotent)."""
        self._live.discard(address)

    def reclaim(self, address: str) -> None:
        """Re-mark a previously issued address as live (idempotent).

        For hosts restored at a pinned address — e.g. a tracker coming
        back at its published IP — as opposed to a handing-off client,
        which must go through :meth:`allocate`.
        """
        self._live.add(address)

    def is_live(self, address: str) -> bool:
        return address in self._live

    @property
    def live_addresses(self) -> Set[str]:
        return set(self._live)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._live))
