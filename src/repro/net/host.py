"""Hosts and network interfaces.

A :class:`Host` owns one interface, a Netfilter hook pair, and a transport
protocol handler (the TCP stack registers itself).  Mobility is expressed as
interface state: ``take_down()`` / ``bring_up(new_ip)``, with listeners
notified of address changes — exactly the signal the paper's wP2P client
watches to trigger identity retention and role reversal.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Protocol

from ..sim import Simulator
from .netfilter import Netfilter
from .packet import DropRecord, Packet


class TransportHandler(Protocol):
    """What a host expects from its transport layer."""

    def receive(self, packet: Packet) -> None: ...


class AccessLink(Protocol):
    """What a host's interface expects from its access link."""

    def send_from_host(self, packet: Packet) -> None: ...

    def host_detached(self) -> None: ...


IPChangeListener = Callable[[Optional[str], Optional[str]], Any]
"""Called with ``(old_ip, new_ip)``; either may be None (down / first up)."""


class Interface:
    """A single network interface: address, up/down state, access link."""

    def __init__(self, host: "Host", name: str = "wlan0") -> None:
        self.host = host
        self.name = name
        self.ip: Optional[str] = None
        self.up = False
        self.link: Optional[AccessLink] = None
        self.tx_dropped = 0

    def attach(self, link: AccessLink) -> None:
        self.link = link

    def transmit(self, packet: Packet) -> None:
        """Hand a packet to the access link; drops silently when down."""
        if not self.up or self.link is None:
            self.tx_dropped += 1
            return
        self.link.send_from_host(packet)

    def receive(self, packet: Packet) -> None:
        """Called by the access link when a packet arrives for this host."""
        if not self.up:
            return
        self.host.deliver(packet)


class Host:
    """A network endpoint: interface + Netfilter + transport handler."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.interface = Interface(self)
        self.netfilter = Netfilter()
        self.transport: Optional[TransportHandler] = None
        self.drops: List[DropRecord] = []
        self._ip_listeners: List[IPChangeListener] = []

    # ------------------------------------------------------------------
    # Addressing / lifecycle
    # ------------------------------------------------------------------
    @property
    def ip(self) -> Optional[str]:
        return self.interface.ip if self.interface.up else None

    def bring_up(self, ip: str) -> None:
        """Bring the interface up with ``ip`` and notify listeners."""
        old = self.interface.ip if self.interface.up else None
        self.interface.ip = ip
        self.interface.up = True
        if old != ip:
            self._notify(old, ip)

    def take_down(self) -> Optional[str]:
        """Take the interface down; returns the address it held, if any."""
        old = self.ip
        self.interface.up = False
        self.interface.ip = None
        if old is not None:
            self._notify(old, None)
        return old

    def on_ip_change(self, listener: IPChangeListener) -> None:
        """Register for ``(old_ip, new_ip)`` notifications."""
        self._ip_listeners.append(listener)

    def _notify(self, old: Optional[str], new: Optional[str]) -> None:
        for listener in list(self._ip_listeners):
            listener(old, new)

    # ------------------------------------------------------------------
    # Packet path
    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> None:
        """Transmit ``packet`` through egress filters and the interface."""
        interface = self.interface
        if not interface.up or interface.ip is None:  # self.ip, inlined
            self.drops.append(
                DropRecord(self.sim.now, self.name, "interface_down", packet.size_bytes)
            )
            return
        egress = self.netfilter.egress
        if not egress._filters:  # empty chain: skip the stream machinery
            interface.transmit(packet)
            return
        for out in egress.apply(packet):
            interface.transmit(out)

    def deliver(self, packet: Packet) -> None:
        """Run ingress filters and hand survivors to the transport layer."""
        if self.transport is None:
            self.drops.append(
                DropRecord(self.sim.now, self.name, "no_transport", packet.size_bytes)
            )
            return
        ingress = self.netfilter.ingress
        if not ingress._filters:  # empty chain: skip the stream machinery
            self.transport.receive(packet)
            return
        for pkt in ingress.apply(packet):
            self.transport.receive(pkt)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Host({self.name!r}, ip={self.ip!r})"
