"""The shared half-duplex wireless channel (WLAN access link).

This is the library's stand-in for the paper's "ns-2 based wireless
emulators": one 802.11-style cell joining a mobile host to the Internet
through an access point.  Three properties drive every wireless effect the
paper measures, and all three are modelled explicitly:

* **Shared medium** — uplink and downlink transmissions serialize on one
  channel, so uploads steal airtime from downloads (Figure 3(b)'s peak).
* **Random bit errors** — each transmission is lost with probability
  ``1 - (1 - BER)^(8 * size)``; long packets (data with piggybacked ACKs)
  die more often than 40-byte pure ACKs (§3.2).
* **Finite buffers** — the access point's downlink queue is drop-tail, so
  congestion shows up as timestamped buffer drops (Figure 2(b, c)).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from ..sim import Simulator, TimeSeries
from .internet import Internet
from .host import Host
from .packet import DropRecord, Packet, loss_probability
from .queues import DropTailQueue

UPLINK = "up"
DOWNLINK = "down"

MAC_OVERHEAD_BYTES = 34
"""Per-frame MAC/PHY overhead added to airtime (header + preamble equiv)."""


class WirelessChannel:
    """One wireless cell: station <-> AP <-> Internet core.

    Parameters
    ----------
    rate:
        Channel capacity in bytes/second (shared by both directions).
    ber:
        Bit error rate applied independently per transmitted frame.
    prop_delay:
        Air propagation delay (effectively zero indoors; kept configurable).
    ap_queue_packets / station_queue_packets:
        Drop-tail buffer sizes at the access point (downlink) and the
        station (uplink).
    mac_efficiency:
        Fraction of the nominal rate usable for frames, folding in
        contention/backoff overheads (0 < eff <= 1).
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        internet: Internet,
        rate: float = 100_000.0,
        ber: float = 0.0,
        prop_delay: float = 0.0005,
        ap_queue_packets: int = 50,
        station_queue_packets: int = 50,
        mac_efficiency: float = 1.0,
        name: Optional[str] = None,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if not 0.0 <= ber < 1.0:
            raise ValueError("ber must be in [0, 1)")
        if not 0.0 < mac_efficiency <= 1.0:
            raise ValueError("mac_efficiency must be in (0, 1]")
        self.sim = sim
        self.host = host
        self.internet = internet
        self.rate = rate
        self.ber = ber
        self.prop_delay = prop_delay
        self.mac_efficiency = mac_efficiency
        self.name = name or f"wlan.{host.name}"
        self._rng = sim.rng.stream(f"{self.name}.loss")

        self.uplink_queue = DropTailQueue(
            f"{self.name}.station", capacity_packets=station_queue_packets
        )
        self.downlink_queue = DropTailQueue(
            f"{self.name}.ap", capacity_packets=ap_queue_packets
        )
        self._busy = False
        # FIFO-by-arrival arbitration state: each direction keeps a deque
        # of monotonically increasing arrival ticket numbers, in lockstep
        # with its packet queue (enqueue appends, dequeue pops, flush
        # clears).  Comparing the two head tickets picks the head-of-line
        # frame that has waited longest — no per-packet dict churn.
        self._arrival_seq = 0
        self._up_order: Deque[int] = deque()
        self._down_order: Deque[int] = deque()
        self._tx_denom = rate * mac_efficiency
        self._baseline: Optional[Tuple[float, float, float]] = None

        # Instrumentation -------------------------------------------------
        self.client_tx_series = TimeSeries(f"{self.name}.client_tx")
        self.loss_records: List[DropRecord] = []
        self.bytes_up = 0
        self.bytes_down = 0
        self.frames_up = 0
        self.frames_down = 0
        self.frames_lost = 0
        self.airtime_busy = 0.0

        audit = sim.audit
        if audit is not None:
            audit.register_channel(self)
        host.interface.attach(self)

    # ------------------------------------------------------------------
    # Dynamic reconfiguration (the emulator knobs)
    # ------------------------------------------------------------------
    def set_ber(self, ber: float) -> None:
        if not 0.0 <= ber < 1.0:
            raise ValueError("ber must be in [0, 1)")
        self.ber = ber

    def set_rate(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate
        self._tx_denom = rate * self.mac_efficiency

    # ------------------------------------------------------------------
    # Fault hooks (repro.chaos)
    # ------------------------------------------------------------------
    def apply_degradation(
        self,
        rate_factor: float = 1.0,
        ber: Optional[float] = None,
        extra_delay: float = 0.0,
    ) -> None:
        """Degrade the cell: capacity scaled by ``rate_factor``, bit error
        rate replaced by ``ber`` (when given), propagation delay inflated
        by ``extra_delay`` seconds.

        The pre-fault configuration is snapshotted on the first call and
        restored by :meth:`clear_degradation`; overlapping degradations
        do not compound — the last applied one wins.  Frames already in
        the air finish at the rate they started with.
        """
        if rate_factor <= 0:
            raise ValueError("rate_factor must be positive")
        if extra_delay < 0:
            raise ValueError("extra_delay must be non-negative")
        if self._baseline is None:
            self._baseline = (self.rate, self.ber, self.prop_delay)
        base_rate, base_ber, base_delay = self._baseline
        self.set_rate(base_rate * rate_factor)
        self.set_ber(base_ber if ber is None else ber)
        self.prop_delay = base_delay + extra_delay

    def clear_degradation(self) -> None:
        """Restore the pre-fault rate/BER/delay (no-op when clean)."""
        if self._baseline is None:
            return
        self.rate, self.ber, self.prop_delay = self._baseline
        self._tx_denom = self.rate * self.mac_efficiency
        self._baseline = None

    # ------------------------------------------------------------------
    # Host-side API (station transmits)
    # ------------------------------------------------------------------
    def send_from_host(self, packet: Packet) -> None:
        if self.uplink_queue.enqueue(packet, self.sim._now):
            self._arrival_seq += 1
            self._up_order.append(self._arrival_seq)
            if not self._busy:
                self._serve()
        # overflow drops are recorded by the queue itself

    def host_detached(self) -> None:
        """Interface went down: flush both buffers (frames in the air at the
        old address will be unroutable at the core anyway).

        The arrival tickets of the flushed packets go with them — the
        order deques mirror the queues entry-for-entry, so a flush that
        left tickets behind would skew arbitration for every later frame."""
        self.uplink_queue.clear()
        self.downlink_queue.clear()
        self._up_order.clear()
        self._down_order.clear()

    # ------------------------------------------------------------------
    # Core-side API (AP transmits)
    # ------------------------------------------------------------------
    def deliver_from_core(self, packet: Packet) -> None:
        if self.downlink_queue.enqueue(packet, self.sim._now):
            self._arrival_seq += 1
            self._down_order.append(self._arrival_seq)
            if not self._busy:
                self._serve()

    # ------------------------------------------------------------------
    # The shared medium
    # ------------------------------------------------------------------
    def _serve(self) -> None:
        """FIFO-by-arrival arbitration across the two directions.

        Approximates CSMA fairness: whichever end's head-of-line frame
        has waited longest (the smaller arrival ticket) transmits next.
        """
        up_order = self._up_order
        down_order = self._down_order
        if up_order:
            if down_order and down_order[0] < up_order[0]:
                down_order.popleft()
                queue, direction = self.downlink_queue, DOWNLINK
            else:
                up_order.popleft()
                queue, direction = self.uplink_queue, UPLINK
        elif down_order:
            down_order.popleft()
            queue, direction = self.downlink_queue, DOWNLINK
        else:
            self._busy = False
            return
        # Inlined queue.dequeue() — the ticket deques guarantee the queue
        # is non-empty here.
        fifo = queue._queue
        packet = fifo.popleft()
        size = packet.size_bytes
        queue._bytes -= size
        queue.dequeued += 1
        queue.bytes_dequeued += size
        self._busy = True
        tx_time = (size + MAC_OVERHEAD_BYTES) / self._tx_denom
        self.airtime_busy += tx_time
        sim = self.sim
        sim._push(sim._now + tx_time, self._tx_done, (packet, direction))

    def _tx_done(self, packet: Packet, direction: str) -> None:
        lost = self._rng.random() < loss_probability(self.ber, packet.size_bytes)
        if direction == UPLINK:
            self.frames_up += 1
            self.client_tx_series.record(self.sim._now, packet.size_bytes)
        else:
            self.frames_down += 1
        if lost:
            self.frames_lost += 1
            self.loss_records.append(
                DropRecord(self.sim.now, self.name, f"bit_error_{direction}", packet.size_bytes)
            )
        else:
            sim = self.sim
            if direction == UPLINK:
                self.bytes_up += packet.size_bytes
                sim._push(sim._now + self.prop_delay, self.internet.forward, (packet,))
            else:
                self.bytes_down += packet.size_bytes
                sim._push(sim._now + self.prop_delay, self.host.interface.receive, (packet,))
        self._serve()

    # ------------------------------------------------------------------
    # Instrumentation helpers
    # ------------------------------------------------------------------
    @property
    def buffer_drops(self) -> List[DropRecord]:
        """All drop-tail overflow events on this cell (AP + station)."""
        return sorted(
            self.downlink_queue.drops + self.uplink_queue.drops, key=lambda d: d.time
        )


def attach_wireless_host(
    sim: Simulator,
    host: Host,
    internet: Internet,
    ip: str,
    rate: float = 100_000.0,
    ber: float = 0.0,
    **kwargs: object,
) -> WirelessChannel:
    """Create a cell for ``host``, route ``ip`` to it, and bring it up."""
    channel = WirelessChannel(sim, host, internet, rate=rate, ber=ber, **kwargs)  # type: ignore[arg-type]
    internet.register(ip, channel)
    host.bring_up(ip)
    return channel
