"""The network-layer packet.

A :class:`Packet` carries one transport payload (a TCP segment in this
library).  Sizes matter here: the wireless bit-error model converts a bit
error rate into a per-packet loss probability that grows with packet length,
which is the root cause of the paper's piggybacked-ACK pathology (§3.2).
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

IP_HEADER_BYTES = 20
"""IPv4 header, no options."""

_packet_ids = itertools.count(1)


class Packet:
    """An IP packet: addressing plus a transport payload.

    The payload must expose ``wire_size`` (transport header + data bytes).
    """

    __slots__ = (
        "src", "dst", "payload", "packet_id", "created_at", "hops", "size_bytes"
    )

    def __init__(self, src: str, dst: str, payload: Any, created_at: float = 0.0) -> None:
        self.src = src
        self.dst = dst
        self.payload = payload
        self.packet_id = next(_packet_ids)
        self.created_at = created_at
        self.hops = 0
        # Total on-the-wire size: IP header plus transport payload.
        # Precomputed — payloads are immutable once wrapped, and size is
        # read on every enqueue/serve/loss-draw along the path.
        self.size_bytes = IP_HEADER_BYTES + int(payload.wire_size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(#{self.packet_id} {self.src} -> {self.dst}, "
            f"{self.size_bytes}B, {self.payload!r})"
        )


def loss_probability(ber: float, size_bytes: int) -> float:
    """Per-packet loss probability for a given bit error rate and length.

    ``PER = 1 - (1 - BER)^(8 * size)`` — the standard independent-bit-error
    model.  Longer packets are likelier to be corrupted, which is why ACKs
    piggybacked on data packets are lost more often than 40-byte pure ACKs.
    """
    if ber <= 0.0:
        return 0.0
    if ber >= 1.0:
        return 1.0
    return 1.0 - (1.0 - ber) ** (8 * size_bytes)


class DropRecord:
    """A recorded packet drop: where, when, and why."""

    __slots__ = ("time", "location", "reason", "size_bytes")

    def __init__(self, time: float, location: str, reason: str, size_bytes: int) -> None:
        self.time = time
        self.location = location
        self.reason = reason
        self.size_bytes = size_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DropRecord(t={self.time:.4f}, {self.location}, {self.reason})"


def unwrap(payload: Any) -> Optional[Any]:
    """Return the payload itself; extension point for tunnelled payloads."""
    return payload
