"""Network substrate: packets, hosts, links, wireless cells, mobility."""

from .addressing import AddressAllocator, make_address
from .host import Host, Interface
from .internet import Internet
from .links import WiredAccessLink, attach_wired_host
from .mobility import MobilityController, disconnect_host, reconnect_host
from .netfilter import EGRESS, INGRESS, HookChain, Netfilter, PacketFilter
from .packet import IP_HEADER_BYTES, DropRecord, Packet, loss_probability
from .queues import DropTailQueue
from .trace import PacketTrace, TraceRecord
from .wireless import MAC_OVERHEAD_BYTES, WirelessChannel, attach_wireless_host

__all__ = [
    "AddressAllocator",
    "make_address",
    "Host",
    "Interface",
    "Internet",
    "WiredAccessLink",
    "attach_wired_host",
    "MobilityController",
    "disconnect_host",
    "reconnect_host",
    "EGRESS",
    "INGRESS",
    "HookChain",
    "Netfilter",
    "PacketFilter",
    "IP_HEADER_BYTES",
    "DropRecord",
    "Packet",
    "loss_probability",
    "DropTailQueue",
    "PacketTrace",
    "TraceRecord",
    "MAC_OVERHEAD_BYTES",
    "WirelessChannel",
    "attach_wireless_host",
]
