"""Markdown run reports from structured event logs.

Takes the JSONL emitted by :class:`repro.obs.tracing.JSONLSink` (or any
list of event dicts) and renders the run as a human-readable Markdown
document: a headline summary, a per-layer breakdown of event counts and
time spans, timeline excerpts, and — when a
:class:`~repro.obs.metrics.MetricsRegistry` or its snapshot is supplied —
per-layer metric tables.

This is the reading half of the observability layer: instrument a run
(``python -m repro.experiments fig8a --trace run.jsonl`` or
:func:`repro.obs.tracing.capture`), then::

    python scripts/run_report.py run.jsonl -o run.md

Events are plain dicts ``{"t", "layer", "event", **fields}``; unknown
fields are rendered verbatim, so new instrumentation shows up in reports
without touching this module.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

TraceRecord = Mapping[str, object]

#: Rendering order for the library's layers; unknown layers sort after.
LAYER_ORDER = (
    "sim", "net", "tcp", "bittorrent", "wp2p", "app",
    "strategy", "coding", "chaos", "scale",
)


def _layer_key(layer: str) -> tuple:
    try:
        return (LAYER_ORDER.index(layer), layer)
    except ValueError:
        return (len(LAYER_ORDER), layer)


def _fmt_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _fmt_event_line(record: TraceRecord) -> str:
    """One timeline line: time, layer, event name, then the fields."""
    t = record.get("t", 0.0)
    fields = ", ".join(
        f"{key}={_fmt_value(value)}"
        for key, value in record.items()
        if key not in ("t", "layer", "event")
    )
    base = f"{float(t):10.4f}  {record.get('layer', '?'):<10} {record.get('event', '?')}"
    return f"{base}  {fields}" if fields else base


def group_by_layer(events: Sequence[TraceRecord]) -> Dict[str, List[TraceRecord]]:
    """Events bucketed by their ``layer`` field, in render order."""
    buckets: Dict[str, List[TraceRecord]] = {}
    for record in events:
        buckets.setdefault(str(record.get("layer", "?")), []).append(record)
    return {layer: buckets[layer] for layer in sorted(buckets, key=_layer_key)}


def event_counts(events: Sequence[TraceRecord]) -> Dict[str, Dict[str, int]]:
    """``{layer: {event_name: count}}`` over the whole log."""
    out: Dict[str, Dict[str, int]] = {}
    for layer, records in group_by_layer(events).items():
        counts: Dict[str, int] = {}
        for record in records:
            name = str(record.get("event", "?"))
            counts[name] = counts.get(name, 0) + 1
        out[layer] = counts
    return out


def _metrics_rows(metrics) -> List[tuple]:
    """Normalize a MetricsRegistry / snapshot dict into (name, detail) rows."""
    if metrics is None:
        return []
    if hasattr(metrics, "rows"):  # a MetricsRegistry
        return [(name, kind, snap) for name, kind, snap in metrics.rows()]
    # a snapshot() dict: {name: {field: value}}
    return [(name, "", snap) for name, snap in sorted(metrics.items())]


def render_report(
    events: Sequence[TraceRecord],
    metrics=None,
    title: str = "Run report",
    excerpt: int = 12,
) -> str:
    """Render an event log (and optional metrics) as Markdown.

    Parameters
    ----------
    events:
        Trace records, e.g. from :func:`repro.obs.tracing.read_jsonl`.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` (or its
        ``snapshot()`` dict) to render as per-layer metric tables.
    title:
        The report's H1.
    excerpt:
        How many events to show at the head and tail of each layer's
        timeline excerpt.
    """
    lines: List[str] = [f"# {title}", ""]

    if not events:
        lines.append("_No events recorded._")
        return "\n".join(lines) + "\n"

    times = [float(r.get("t", 0.0)) for r in events]
    start, end = min(times), max(times)
    by_layer = group_by_layer(events)
    lines += [
        f"- **Events:** {len(events)}",
        f"- **Simulated time span:** {start:.4f}s – {end:.4f}s "
        f"({end - start:.4f}s)",
        f"- **Layers:** {', '.join(by_layer)}",
        "",
    ]

    # ------------------------------------------------------------------
    # Per-layer event-count tables
    # ------------------------------------------------------------------
    lines += ["## Events by layer", ""]
    counts = event_counts(events)
    for layer, per_event in counts.items():
        records = by_layer[layer]
        layer_times = [float(r.get("t", 0.0)) for r in records]
        lines += [
            f"### `{layer}` — {len(records)} events",
            "",
            "| event | count | first (s) | last (s) |",
            "|---|---:|---:|---:|",
        ]
        for name in sorted(per_event):
            evs = [r for r in records if r.get("event") == name]
            ts = [float(r.get("t", 0.0)) for r in evs]
            lines.append(
                f"| `{name}` | {per_event[name]} | {min(ts):.4f} | {max(ts):.4f} |"
            )
        lines += [
            "",
            f"_Span: {min(layer_times):.4f}s – {max(layer_times):.4f}s_",
            "",
        ]

    # ------------------------------------------------------------------
    # Metric tables (optional)
    # ------------------------------------------------------------------
    rows = _metrics_rows(metrics)
    if rows:
        lines += ["## Metrics", ""]
        lines += ["| metric | kind | snapshot |", "|---|---|---|"]
        for name, kind, snap in rows:
            detail = ", ".join(
                f"{key}={_fmt_value(value)}" for key, value in snap.items()
            )
            lines.append(f"| `{name}` | {kind} | {detail} |")
        lines.append("")

    # ------------------------------------------------------------------
    # Fault recovery (MTTR) — present when chaos ran with tracing on
    # ------------------------------------------------------------------
    recovered = [
        r for r in events
        if r.get("layer") == "chaos" and r.get("event") == "recovered"
    ]
    if recovered:
        mttrs = [float(r.get("mttr", 0.0)) for r in recovered]
        lines += [
            "## Fault recovery (MTTR)",
            "",
            f"- **Recovered faults:** {len(recovered)}",
            f"- **Mean MTTR:** {sum(mttrs) / len(mttrs):.4f}s",
            f"- **Max MTTR:** {max(mttrs):.4f}s",
            "",
            "| recovered at (s) | fault | target | baseline (B/s) | MTTR (s) |",
            "|---:|---|---|---:|---:|",
        ]
        for r in recovered:
            lines.append(
                f"| {float(r.get('t', 0.0)):.4f} | `{r.get('fault', '?')}` "
                f"| `{r.get('target', '?')}` "
                f"| {_fmt_value(r.get('baseline', 0.0))} "
                f"| {float(r.get('mttr', 0.0)):.4f} |"
            )
        lines.append("")

    # ------------------------------------------------------------------
    # Timeline excerpts
    # ------------------------------------------------------------------
    lines += ["## Timeline excerpts", ""]
    for layer, records in by_layer.items():
        lines += [f"### `{layer}`", "", "```"]
        if len(records) <= 2 * excerpt:
            lines += [_fmt_event_line(r) for r in records]
        else:
            lines += [_fmt_event_line(r) for r in records[:excerpt]]
            lines.append(f"... {len(records) - 2 * excerpt} events elided ...")
            lines += [_fmt_event_line(r) for r in records[-excerpt:]]
        lines += ["```", ""]

    return "\n".join(lines) + "\n"


def report_from_jsonl(
    path: str,
    metrics=None,
    title: Optional[str] = None,
    excerpt: int = 12,
) -> str:
    """Load a JSONL event log and render it (see :func:`render_report`)."""
    from ..obs.tracing import read_jsonl

    events = read_jsonl(path)
    return render_report(
        events, metrics=metrics, title=title or f"Run report — {path}",
        excerpt=excerpt,
    )
