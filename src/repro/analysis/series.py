"""Result containers: series and experiment results.

Every experiment returns an :class:`ExperimentResult` holding one or more
:class:`Series` — the same rows/curves the paper plots — plus the paper's
qualitative expectation, so benches can print a side-by-side and tests can
assert the *shape* (who wins, where the peak/crossover is) rather than
absolute numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class Series:
    """One labelled curve: paired x/y values.

    ``y_err`` optionally carries the per-point spread across seeds (the
    95% CI half-width the runner computes); when present, tables render
    each value as ``mean ± err``.
    """

    label: str
    x: List[float]
    y: List[float]
    y_err: Optional[List[float]] = None

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError("x and y must have the same length")
        if self.y_err is not None and len(self.y_err) != len(self.y):
            raise ValueError("y_err must have the same length as y")

    def __len__(self) -> int:
        return len(self.x)

    def y_at(self, x_value: float) -> float:
        """y for an exact x (raises KeyError if absent)."""
        for xv, yv in zip(self.x, self.y):
            if xv == x_value:
                return yv
        raise KeyError(f"x={x_value!r} not in series {self.label!r}")

    def err_at(self, x_value: float) -> Optional[float]:
        """Spread at an exact x, or ``None`` when no spread is recorded."""
        if self.y_err is None:
            return None
        for xv, err in zip(self.x, self.y_err):
            if xv == x_value:
                return err
        raise KeyError(f"x={x_value!r} not in series {self.label!r}")

    @property
    def peak_x(self) -> float:
        """x of the maximum y."""
        if not self.x:
            raise ValueError("empty series")
        best = max(range(len(self.y)), key=lambda i: self.y[i])
        return self.x[best]

    def mean_y(self) -> float:
        return sum(self.y) / len(self.y) if self.y else 0.0


@dataclass
class ExperimentResult:
    """A reproduced figure: measured series plus paper context."""

    figure: str
    title: str
    x_label: str
    y_label: str
    series: List[Series] = field(default_factory=list)
    paper_expectation: str = ""
    notes: str = ""
    parameters: Dict[str, object] = field(default_factory=dict)

    def get(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"no series labelled {label!r} in {self.figure}")

    def labels(self) -> List[str]:
        return [s.label for s in self.series]

    # ------------------------------------------------------------------
    def table(self, float_fmt: str = "{:.2f}") -> str:
        """Render the result as an aligned text table (one row per x)."""
        header = [self.x_label] + [s.label for s in self.series]
        xs: List[float] = []
        for s in self.series:
            for xv in s.x:
                if xv not in xs:
                    xs.append(xv)
        rows: List[List[str]] = []
        for xv in xs:
            row = [_fmt_x(xv)]
            for s in self.series:
                try:
                    cell = float_fmt.format(s.y_at(xv))
                    err = s.err_at(xv)
                except KeyError:
                    row.append("-")
                    continue
                if err is not None and err > 0:
                    cell += " ±" + float_fmt.format(err)
                row.append(cell)
            rows.append(row)
        widths = [
            max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
            for i in range(len(header))
        ]
        lines = [
            f"== {self.figure}: {self.title} ==",
            "  ".join(h.ljust(widths[i]) for i, h in enumerate(header)),
            "  ".join("-" * w for w in widths),
        ]
        for row in rows:
            lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
        if self.paper_expectation:
            lines.append(f"paper: {self.paper_expectation}")
        if self.notes:
            lines.append(f"notes: {self.notes}")
        return "\n".join(lines)


def _fmt_x(x: float) -> str:
    if isinstance(x, float) and x == int(x) and abs(x) < 1e9:
        return str(int(x))
    if isinstance(x, float) and 0 < abs(x) < 1e-3:
        return f"{x:.1e}"
    return str(x)


def average_runs(run_values: Sequence[Sequence[float]]) -> List[float]:
    """Element-wise mean across runs (all runs must be the same length)."""
    runs = [list(r) for r in run_values]
    if not runs:
        return []
    length = len(runs[0])
    if any(len(r) != length for r in runs):
        raise ValueError("runs have differing lengths")
    return [sum(r[i] for r in runs) / len(runs) for i in range(length)]
