"""Result containers and reporting for experiments."""

from .report import ascii_chart, campaign_report, compare_first_last
from .runreport import (
    event_counts,
    group_by_layer,
    render_report,
    report_from_jsonl,
)
from .stats import (
    Summary,
    clearly_greater,
    describe,
    relative_gain,
    summarize,
    t_critical_95,
)
from .series import ExperimentResult, Series, average_runs

__all__ = [
    "ExperimentResult",
    "Series",
    "average_runs",
    "ascii_chart",
    "campaign_report",
    "compare_first_last",
    "event_counts",
    "group_by_layer",
    "render_report",
    "report_from_jsonl",
    "Summary",
    "clearly_greater",
    "describe",
    "relative_gain",
    "summarize",
    "t_critical_95",
]
