"""Result containers and reporting for experiments."""

from .report import ascii_chart, campaign_report, compare_first_last
from .stats import Summary, clearly_greater, relative_gain, summarize, t_critical_95
from .series import ExperimentResult, Series, average_runs

__all__ = [
    "ExperimentResult",
    "Series",
    "average_runs",
    "ascii_chart",
    "campaign_report",
    "compare_first_last",
    "Summary",
    "clearly_greater",
    "relative_gain",
    "summarize",
    "t_critical_95",
]
