"""Multi-run statistics: means, confidence intervals, comparison tests.

The paper reports 5/10/20-run averages; these helpers let experiments and
benchmarks report the same along with dispersion, and let tests assert
"A beats B" with an explicit margin rather than on a single noisy run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

# Two-sided t critical values at 95% for small samples (df 1..30).
_T95 = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
]


def t_critical_95(df: int) -> float:
    """Two-sided 95% t critical value (normal approximation beyond df=30)."""
    if df < 1:
        raise ValueError("df must be >= 1")
    if df <= len(_T95):
        return _T95[df - 1]
    return 1.96


@dataclass(frozen=True)
class Summary:
    """Sample summary: mean, standard deviation, 95% CI half-width."""

    n: int
    mean: float
    stdev: float
    ci95: float

    @property
    def stderr(self) -> float:
        """Standard error of the mean (0.0 for a single observation)."""
        return self.stdev / math.sqrt(self.n) if self.n > 1 else 0.0

    @property
    def low(self) -> float:
        return self.mean - self.ci95

    @property
    def high(self) -> float:
        return self.mean + self.ci95

    def __str__(self) -> str:
        return f"{self.mean:.2f} ± {self.ci95:.2f} (n={self.n})"


def summarize(values: Sequence[float]) -> Summary:
    """Mean / stdev / 95% confidence half-width of a sample."""
    vals = list(values)
    if not vals:
        raise ValueError("cannot summarize an empty sample")
    n = len(vals)
    mean = sum(vals) / n
    if n == 1:
        return Summary(1, mean, 0.0, 0.0)
    var = sum((v - mean) ** 2 for v in vals) / (n - 1)
    stdev = math.sqrt(var)
    ci95 = t_critical_95(n - 1) * stdev / math.sqrt(n)
    return Summary(n, mean, stdev, ci95)


def describe(values: Sequence[float]) -> dict:
    """``{"n", "mean", "stderr", "ci95"}`` for a sample.

    The runner's seed-spread aggregation helper: scenarios report the
    mean *and* its dispersion across seeds, and result tables render the
    95% half-width next to each mean.
    """
    summary = summarize(values)
    return {
        "n": summary.n,
        "mean": summary.mean,
        "stderr": summary.stderr,
        "ci95": summary.ci95,
    }


def clearly_greater(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when sample ``a``'s 95% interval lies entirely above ``b``'s.

    A deliberately conservative comparison for benchmark assertions: if it
    returns True, the win is not a seed artifact.
    """
    sa, sb = summarize(a), summarize(b)
    return sa.low > sb.high


def relative_gain(a: Sequence[float], b: Sequence[float]) -> float:
    """Mean(a) / mean(b) - 1, i.e. how much better a is than b."""
    sb = summarize(b)
    if sb.mean == 0:
        return float("inf") if summarize(a).mean > 0 else 0.0
    return summarize(a).mean / sb.mean - 1.0
