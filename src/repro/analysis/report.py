"""Text rendering of experiment results: ASCII charts and campaign reports.

Benchmarks and the CLI print these so a terminal user can eyeball the
*shape* of each reproduced figure — which is exactly what the reproduction
must preserve — without leaving the console.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .series import ExperimentResult, Series

MARKERS = "*o+x#@%&"


def ascii_chart(
    result: ExperimentResult,
    width: int = 64,
    height: int = 16,
) -> str:
    """Render the result's series as a shared-axes ASCII scatter chart."""
    series = [s for s in result.series if len(s) > 0]
    if not series:
        return f"== {result.figure} == (no data)"
    xs = [x for s in series for x in s.x]
    ys = [y for s in series for y in s.y]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    y_min = min(y_min, 0.0)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, s in enumerate(series):
        marker = MARKERS[index % len(MARKERS)]
        for x, y in zip(s.x, s.y):
            col = int((x - x_min) / x_span * (width - 1))
            row = height - 1 - int((y - y_min) / y_span * (height - 1))
            cell = grid[row][col]
            grid[row][col] = marker if cell in (" ", marker) else "?"

    lines = [f"== {result.figure}: {result.title} =="]
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{y_max:10.1f} |"
        elif row_index == height - 1:
            label = f"{y_min:10.1f} |"
        else:
            label = " " * 10 + " |"
        lines.append(label + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(" " * 12 + f"{_fmt(x_min)}".ljust(width - 8) + f"{_fmt(x_max)}")
    legend = "   ".join(
        f"{MARKERS[i % len(MARKERS)]} {s.label}" for i, s in enumerate(series)
    )
    lines.append(f"   [{result.x_label} -> {result.y_label}]  {legend}")
    return "\n".join(lines)


def _fmt(value: float) -> str:
    if value and abs(value) < 1e-3:
        return f"{value:.1e}"
    if value == int(value):
        return str(int(value))
    return f"{value:.2f}"


def campaign_report(results: Sequence[ExperimentResult], charts: bool = False) -> str:
    """A multi-figure report: tables (and optionally charts) per result."""
    parts: List[str] = []
    for result in results:
        parts.append(result.table())
        if charts:
            parts.append(ascii_chart(result))
        parts.append("")
    return "\n".join(parts)


def compare_first_last(series: Series) -> float:
    """Relative change from the first to the last point (shape helper)."""
    if not series.y or series.y[0] == 0:
        return 0.0
    return (series.y[-1] - series.y[0]) / abs(series.y[0])
