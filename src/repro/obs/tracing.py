"""Structured event tracing: the cross-layer bus and its sinks.

Every simulator owns a :class:`TraceBus` (``sim.trace``).  Instrumented
code emits *structured events* — a layer, a name, and free-form fields —
instead of log lines::

    trace = self.sim.trace
    if trace.enabled:
        trace.event("tcp", "fast_retransmit", conn=label, cwnd=cwnd)

The ``enabled`` guard is the whole overhead story: a disabled bus costs
one attribute load and one boolean test per call site, so tracing can be
compiled into every hot path (TCP retransmissions, choker rounds, AM
filters) and still leave production runs unmeasurably slower.  Events
are plain dicts ``{"t": <sim time>, "layer": ..., "event": ..., **fields}``
delivered to pluggable sinks:

* :class:`RingBufferSink` — bounded in-memory capture for tests and
  interactive debugging;
* :class:`JSONLSink` — one JSON object per line, the interchange format
  :mod:`repro.analysis.runreport` and ``scripts/run_report.py`` consume;
* :class:`NullSink` — swallow events (keeps a bus "enabled" for
  overhead measurements without retaining anything).

Experiments construct their simulators internally, so sinks can also be
installed *globally*: :func:`install` (or the :func:`capture` context
manager) registers defaults that every subsequently created
:class:`~repro.sim.kernel.Simulator` picks up — that is how
``python -m repro.experiments fig8a --trace run.jsonl`` traces a whole
figure reproduction without threading a sink through every call.
"""

from __future__ import annotations

import json
from collections import deque
from contextlib import contextmanager
from typing import Callable, Deque, Dict, Iterator, List, Optional, Sequence

Clock = Callable[[], float]
TraceRecord = Dict[str, object]


class TraceSink:
    """Base class for event consumers attached to a :class:`TraceBus`."""

    def write(self, record: TraceRecord) -> None:
        """Consume one event record (a plain dict)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources; further writes are undefined."""


class NullSink(TraceSink):
    """Accepts and discards every event (for overhead measurement)."""

    def write(self, record: TraceRecord) -> None:
        pass


class RingBufferSink(TraceSink):
    """Keeps the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 10_000) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._records: Deque[TraceRecord] = deque(maxlen=capacity)
        self.total_written = 0

    def write(self, record: TraceRecord) -> None:
        self._records.append(record)
        self.total_written += 1

    @property
    def records(self) -> List[TraceRecord]:
        """The retained events, oldest first."""
        return list(self._records)

    def by_layer(self, layer: str) -> List[TraceRecord]:
        """Retained events from one layer."""
        return [r for r in self._records if r.get("layer") == layer]

    def matching(self, event: str) -> List[TraceRecord]:
        """Retained events with the given event name."""
        return [r for r in self._records if r.get("event") == event]

    def clear(self) -> None:
        """Drop all retained events (the total counter is kept)."""
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)


class JSONLSink(TraceSink):
    """Appends one JSON object per event to a file.

    The file is opened lazily on the first event and must be
    :meth:`close`\\ d (or the sink used via :func:`capture`) to guarantee
    a flush.  Records round-trip through :func:`read_jsonl`.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._file = None
        self.records_written = 0

    def write(self, record: TraceRecord) -> None:
        if self._file is None:
            self._file = open(self.path, "w", encoding="utf-8")
        self._file.write(json.dumps(record, default=str))
        self._file.write("\n")
        self.records_written += 1

    def flush(self) -> None:
        """Flush buffered records to disk."""
        if self._file is not None:
            self._file.flush()

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


def read_jsonl(path: str) -> List[TraceRecord]:
    """Load an event log written by :class:`JSONLSink`.

    Raises :class:`ValueError` naming the offending line number if the
    file contains a line that is not a JSON object.
    """
    records: List[TraceRecord] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError as exc:
                raise ValueError(f"line {lineno}: {exc}") from exc
    return records


def _noop_event(layer: str, name: str, **fields: object) -> None:
    """Stand-in for :meth:`TraceBus._emit` while no sink is attached."""
    return None


class TraceBus:
    """Per-simulator event bus: timestamping, layer filtering, fan-out.

    ``enabled`` is ``True`` exactly when at least one sink is attached;
    instrumented code checks it before building event fields so a bus
    with no consumers costs nothing beyond the check itself.

    ``event`` is a *precomputed no-op guard*: while the bus is disabled
    it is a module-level no-op function, swapped for the real
    :meth:`_emit` when the first sink attaches.  Unguarded call sites
    therefore never reach the enabled/layer checks at all — a disabled
    bus performs zero sink calls and zero record allocations (pinned by
    a regression test).  Hot paths should still prefer the
    ``if bus.enabled:`` guard so keyword arguments are never built.
    """

    __slots__ = (
        "enabled", "event", "events_emitted", "_clock", "_sinks", "_layers"
    )

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self._clock = clock or (lambda: 0.0)
        self._sinks: List[TraceSink] = []
        self._layers: Optional[frozenset] = None
        self.enabled = False
        self.event = _noop_event
        self.events_emitted = 0

    # ------------------------------------------------------------------
    # Sink management
    # ------------------------------------------------------------------
    def attach(
        self, sink: TraceSink, layers: Optional[Sequence[str]] = None
    ) -> TraceSink:
        """Attach ``sink`` (and optionally restrict the bus to ``layers``).

        Layer restrictions are bus-wide: the union of all ``layers``
        arguments ever passed; ``layers=None`` means "everything" and
        clears any restriction.  Returns the sink for chaining.
        """
        self._sinks.append(sink)
        if layers is None:
            self._layers = None
        elif self._layers is not None or len(self._sinks) == 1:
            existing = self._layers or frozenset()
            self._layers = existing | frozenset(layers)
        self.enabled = True
        self.event = self._emit
        return sink

    def detach(self, sink: TraceSink) -> None:
        """Remove ``sink``; disables the bus when no sinks remain."""
        if sink in self._sinks:
            self._sinks.remove(sink)
        if not self._sinks:
            self.enabled = False
            self.event = _noop_event
            self._layers = None

    @property
    def sinks(self) -> List[TraceSink]:
        """The currently attached sinks."""
        return list(self._sinks)

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def _emit(self, layer: str, name: str, **fields: object) -> None:
        """Emit one structured event to every attached sink.

        Bound to ``self.event`` while at least one sink is attached; a
        disabled bus routes ``event`` to a module-level no-op instead.
        """
        if not self.enabled:
            return
        if self._layers is not None and layer not in self._layers:
            return
        record: TraceRecord = {"t": self._clock(), "layer": layer, "event": name}
        record.update(fields)
        self.events_emitted += 1
        for sink in self._sinks:
            sink.write(record)


# ----------------------------------------------------------------------
# Global defaults: sinks every new Simulator picks up at construction.
# ----------------------------------------------------------------------
_default_sinks: List[TraceSink] = []
_default_layers: Optional[Sequence[str]] = None


def install(*sinks: TraceSink, layers: Optional[Sequence[str]] = None) -> None:
    """Register ``sinks`` as defaults for every *new* simulator.

    Experiments build their simulators internally; installing a default
    sink is how external tooling (the ``--trace`` CLI flag, run scripts)
    observes them.  Already-created simulators are unaffected.
    """
    global _default_layers
    _default_sinks.extend(sinks)
    _default_layers = list(layers) if layers is not None else None


def uninstall() -> None:
    """Clear all default sinks (attached buses keep theirs)."""
    global _default_layers
    _default_sinks.clear()
    _default_layers = None


def installed() -> bool:
    """True when at least one default sink is registered."""
    return bool(_default_sinks)


def apply_defaults(bus: TraceBus) -> None:
    """Attach the installed default sinks to ``bus`` (kernel hook)."""
    for sink in _default_sinks:
        bus.attach(sink, layers=_default_layers)


@contextmanager
def capture(
    path: Optional[str] = None,
    ring: Optional[int] = None,
    layers: Optional[Sequence[str]] = None,
) -> Iterator[List[TraceSink]]:
    """Trace every simulator created inside the block.

    >>> with capture(path="run.jsonl") as sinks:     # doctest: +SKIP
    ...     fig8a(runs=1)
    ...
    >>> events = read_jsonl("run.jsonl")             # doctest: +SKIP

    Yields the created sinks (a :class:`JSONLSink` when ``path`` is
    given, a :class:`RingBufferSink` when ``ring`` is); on exit the
    defaults are uninstalled and file sinks closed.
    """
    sinks: List[TraceSink] = []
    if path is not None:
        sinks.append(JSONLSink(path))
    if ring is not None:
        sinks.append(RingBufferSink(ring))
    if not sinks:
        sinks.append(RingBufferSink())
    install(*sinks, layers=layers)
    try:
        yield sinks
    finally:
        uninstall()
        for sink in sinks:
            sink.close()
