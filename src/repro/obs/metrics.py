"""Metric primitives and the :class:`MetricsRegistry`.

This module is the measurement half of the observability layer
(:mod:`repro.obs`).  It owns every metric type used across the library:

* :class:`Counter` — monotonically increasing totals, optionally with a
  ``(time, total)`` history for cumulative curves (Figure 3(c), 8(b));
* :class:`Gauge` — a last-value instrument for quantities that move both
  ways (congestion windows, queue depths, LIHD upload caps);
* :class:`Histogram` — value distributions with percentile queries
  (handler costs, piece completion times);
* :class:`EwmaRateMeter` — an exponentially-weighted moving-average rate
  estimator whose memory decays with a time constant ``tau``;
* :class:`WindowRateMeter` — the sliding-window byte-rate estimator real
  BitTorrent clients use for tit-for-tat ranking;
* :class:`TimeSeries` — append-only ``(time, value)`` samples.

All instruments are clock-agnostic: they take a ``clock`` callable
(usually ``lambda: sim.now``) instead of importing the simulation kernel,
so :mod:`repro.sim.probes` can shim over them without an import cycle and
unit tests can drive them with plain floats.

:class:`MetricsRegistry` is the get-or-create front door: one registry
per :class:`~repro.sim.kernel.Simulator` (``sim.metrics``) names every
instrument of a run, and :mod:`repro.analysis.runreport` renders its
snapshot into per-layer report tables.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from collections import deque
from typing import Callable, Deque, Dict, Iterable, Iterator, List, Optional, Tuple

Clock = Callable[[], float]


def _zero_clock() -> float:
    return 0.0


class Metric:
    """Base class for all instruments: a name plus a time source."""

    kind = "metric"

    def __init__(self, name: str = "", clock: Optional[Clock] = None) -> None:
        self.name = name
        self._clock = clock or _zero_clock

    @property
    def now(self) -> float:
        """Current time according to the metric's clock."""
        return self._clock()

    def snapshot(self) -> Dict[str, float]:
        """A JSON-friendly summary of the metric's current state."""
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing counter with optional history.

    With ``record_history=True`` every :meth:`add` appends
    ``(time, total)``, which lets experiments reconstruct cumulative
    curves (e.g. Figure 3(c)'s downloaded size vs time) and
    :meth:`value_at` answer "how much by time t?" queries.
    """

    kind = "counter"

    def __init__(
        self,
        name: str = "",
        clock: Optional[Clock] = None,
        record_history: bool = False,
    ) -> None:
        super().__init__(name, clock)
        self.total = 0.0
        self.history: List[Tuple[float, float]] = []
        self._record = record_history

    def add(self, amount: float = 1.0) -> None:
        """Increase the counter by ``amount`` (default 1)."""
        self.total += amount
        if self._record:
            self.history.append((self._clock(), self.total))

    def value_at(self, time: float) -> float:
        """Cumulative value at ``time`` (requires history recording)."""
        if not self._record:
            raise ValueError(f"counter {self.name!r} does not record history")
        idx = bisect_right(self.history, (time, float("inf")))
        return self.history[idx - 1][1] if idx else 0.0

    def reset(self) -> None:
        """Zero the counter and clear its history."""
        self.total = 0.0
        self.history.clear()

    def snapshot(self) -> Dict[str, float]:
        return {"total": self.total}


class Gauge(Metric):
    """A last-value instrument for quantities that rise *and* fall."""

    kind = "gauge"

    def __init__(
        self,
        name: str = "",
        clock: Optional[Clock] = None,
        record_history: bool = False,
    ) -> None:
        super().__init__(name, clock)
        self.value = 0.0
        self.updates = 0
        self.history: List[Tuple[float, float]] = []
        self._record = record_history

    def set(self, value: float) -> None:
        """Record the instrument's new current value."""
        self.value = value
        self.updates += 1
        if self._record:
            self.history.append((self._clock(), value))

    def inc(self, amount: float = 1.0) -> None:
        """Shift the gauge up by ``amount``."""
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        """Shift the gauge down by ``amount``."""
        self.set(self.value - amount)

    def snapshot(self) -> Dict[str, float]:
        return {"value": self.value, "updates": self.updates}


class Histogram(Metric):
    """A value distribution with percentile queries.

    Observations are kept exactly (this is a simulator — runs are short
    and deterministic), sorted lazily on the first percentile query after
    new data arrives.
    """

    kind = "histogram"

    def __init__(self, name: str = "", clock: Optional[Clock] = None) -> None:
        super().__init__(name, clock)
        self._values: List[float] = []
        self._sorted = True
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._values.append(value)
        self.sum += value
        self._sorted = False

    @property
    def count(self) -> int:
        """Number of observations recorded."""
        return len(self._values)

    @property
    def mean(self) -> float:
        """Arithmetic mean; 0.0 with no observations."""
        return self.sum / len(self._values) if self._values else 0.0

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._values.sort()
            self._sorted = True

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0–100), linearly interpolated.

        Raises :class:`ValueError` for an empty histogram or ``p``
        outside [0, 100].
        """
        if not self._values:
            raise ValueError(f"histogram {self.name!r} is empty")
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        self._ensure_sorted()
        values = self._values
        if len(values) == 1:
            return values[0]
        rank = (p / 100.0) * (len(values) - 1)
        lo = int(math.floor(rank))
        hi = int(math.ceil(rank))
        if lo == hi:
            return values[lo]
        frac = rank - lo
        return values[lo] * (1.0 - frac) + values[hi] * frac

    @property
    def min(self) -> float:
        """Smallest observation (ValueError when empty)."""
        return self.percentile(0.0)

    @property
    def max(self) -> float:
        """Largest observation (ValueError when empty)."""
        return self.percentile(100.0)

    def snapshot(self) -> Dict[str, float]:
        if not self._values:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "max": self.max,
        }


class EwmaRateMeter(Metric):
    """Exponentially-weighted moving-average rate estimator.

    The estimate's memory decays with time constant ``tau`` seconds: an
    instantaneous rate observed ``tau`` seconds ago contributes a factor
    ``1/e`` of what a fresh one does, and an idle meter decays toward
    zero instead of holding its last reading forever (the failure mode of
    naive sample-pair estimators).  BitTorrent-style rolling averages
    with a hard cutoff are :class:`WindowRateMeter`; this meter is the
    smooth variant used for report-friendly rates.
    """

    kind = "ewma"

    def __init__(
        self,
        name: str = "",
        clock: Optional[Clock] = None,
        tau: float = 10.0,
    ) -> None:
        if tau <= 0:
            raise ValueError("tau must be positive")
        super().__init__(name, clock)
        self.tau = tau
        self.total = 0.0
        self._rate = 0.0
        self._last: Optional[float] = None

    def add(self, amount: float) -> None:
        """Record ``amount`` units transferred now."""
        now = self._clock()
        self.total += amount
        if self._last is None:
            self._last = now
            # First sample: no elapsed interval to rate over yet.
            return
        dt = now - self._last
        self._last = now
        if dt <= 0:
            # Same-instant burst: fold into the estimate via a tiny dt so
            # coincident events still register.
            dt = 1e-9
        instantaneous = amount / dt
        weight = 1.0 - math.exp(-dt / self.tau)
        self._rate += weight * (instantaneous - self._rate)

    def rate(self) -> float:
        """Current decayed rate estimate, units/second."""
        if self._last is None:
            return 0.0
        idle = self._clock() - self._last
        if idle <= 0:
            return self._rate
        return self._rate * math.exp(-idle / self.tau)

    def snapshot(self) -> Dict[str, float]:
        return {"rate": self.rate(), "total": self.total}


class WindowRateMeter(Metric):
    """Sliding-window rate estimator (units/second).

    Mirrors the 20-second rolling average real BitTorrent clients use for
    tit-for-tat rate ranking; the window is configurable.  Young meters
    (observed for less than a full window) divide by the observed span so
    early readings are not artificially deflated.
    """

    kind = "window_rate"

    def __init__(
        self,
        name: str = "",
        clock: Optional[Clock] = None,
        window: float = 20.0,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        super().__init__(name, clock)
        self.window = window
        self._samples: Deque[Tuple[float, float]] = deque()
        self._window_bytes = 0.0
        self.total_bytes = 0.0

    def add(self, nbytes: float) -> None:
        """Record ``nbytes`` transferred now."""
        now = self._clock()
        self._samples.append((now, nbytes))
        self._window_bytes += nbytes
        self.total_bytes += nbytes
        self._expire(now)

    def rate(self) -> float:
        """Current rate over the sliding window, in units/second."""
        now = self._clock()
        self._expire(now)
        if not self._samples:
            return 0.0
        span = max(now - self._samples[0][0], 1e-9)
        if span < self.window:
            return self._window_bytes / min(max(span, 1e-9), self.window)
        return self._window_bytes / self.window

    def _expire(self, now: float) -> None:
        cutoff = now - self.window
        samples = self._samples
        while samples and samples[0][0] < cutoff:
            _, nbytes = samples.popleft()
            self._window_bytes -= nbytes
        if not samples:
            self._window_bytes = 0.0

    def snapshot(self) -> Dict[str, float]:
        return {"rate": self.rate(), "total": self.total_bytes}


class TimeSeries:
    """An append-only series of ``(time, value)`` samples."""

    kind = "series"

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, time: float, value: float) -> None:
        """Append one sample; times must be non-decreasing."""
        if self.times and time < self.times[-1]:
            raise ValueError("samples must be recorded in time order")
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return iter(zip(self.times, self.values))

    def last(self) -> Optional[Tuple[float, float]]:
        """The newest ``(time, value)`` sample, or ``None`` when empty."""
        if not self.times:
            return None
        return self.times[-1], self.values[-1]

    def window(self, start: float, end: float) -> "TimeSeries":
        """Samples with ``start <= time < end`` as a new series."""
        lo = bisect_left(self.times, start)
        hi = bisect_left(self.times, end)
        out = TimeSeries(self.name)
        out.times = self.times[lo:hi]
        out.values = self.values[lo:hi]
        return out

    def bucketed_counts(
        self, bucket: float, start: float = 0.0, end: Optional[float] = None
    ) -> List[Tuple[float, int]]:
        """Histogram of sample *counts* per time bucket.

        Used for "number of packets per interval" plots (Figure 2(b, c)).
        """
        if bucket <= 0:
            raise ValueError("bucket must be positive")
        if end is None:
            end = self.times[-1] if self.times else start
        counts: List[Tuple[float, int]] = []
        t = start
        while t < end or (t == start and start == end):
            lo = bisect_left(self.times, t)
            hi = bisect_left(self.times, t + bucket)
            counts.append((t, hi - lo))
            t += bucket
            if t >= end:
                break
        return counts

    def snapshot(self) -> Dict[str, float]:
        last = self.last()
        return {"count": len(self), "last": last[1] if last else 0.0}


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; 0.0 for an empty iterable."""
    vals = list(values)
    return sum(vals) / len(vals) if vals else 0.0


class MetricsRegistry:
    """Get-or-create factory and index for a run's instruments.

    One registry hangs off every :class:`~repro.sim.kernel.Simulator` as
    ``sim.metrics``, sharing the simulator's virtual clock.  Components
    ask it for instruments by name; asking twice with the same name
    returns the *same* object, so producers and report code never need to
    hand references around:

    >>> reg = MetricsRegistry()
    >>> reg.counter("tcp.retransmissions").add()
    >>> reg.counter("tcp.retransmissions").total
    1.0

    Names are free-form but the convention is ``layer.metric`` (e.g.
    ``bittorrent.pieces_completed``) because
    :func:`repro.analysis.runreport.render_report` groups report tables
    by the dotted prefix.
    """

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self._clock = clock or _zero_clock
        self._metrics: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Factories (get-or-create)
    # ------------------------------------------------------------------
    def _get(self, name: str, kind: type, factory: Callable[[], object]):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    # Each factory checks the registry dict before falling back to
    # ``_get``: the get-or-create front door sits on per-event hot paths,
    # and the common "already registered" case must not pay a closure
    # allocation and a second dispatch per call.  Subclass instances (and
    # the mismatched-kind error) take the ``_get`` slow path.

    def counter(self, name: str, record_history: bool = False) -> Counter:
        """The counter called ``name``, created on first use."""
        metric = self._metrics.get(name)
        if metric is not None and metric.__class__ is Counter:
            return metric
        return self._get(
            name, Counter, lambda: Counter(name, self._clock, record_history)
        )

    def gauge(self, name: str, record_history: bool = False) -> Gauge:
        """The gauge called ``name``, created on first use."""
        metric = self._metrics.get(name)
        if metric is not None and metric.__class__ is Gauge:
            return metric
        return self._get(
            name, Gauge, lambda: Gauge(name, self._clock, record_history)
        )

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name``, created on first use."""
        metric = self._metrics.get(name)
        if metric is not None and metric.__class__ is Histogram:
            return metric
        return self._get(name, Histogram, lambda: Histogram(name, self._clock))

    def ewma(self, name: str, tau: float = 10.0) -> EwmaRateMeter:
        """The EWMA rate meter called ``name``, created on first use."""
        metric = self._metrics.get(name)
        if metric is not None and metric.__class__ is EwmaRateMeter:
            return metric
        return self._get(
            name, EwmaRateMeter, lambda: EwmaRateMeter(name, self._clock, tau)
        )

    def window_rate(self, name: str, window: float = 20.0) -> WindowRateMeter:
        """The sliding-window rate meter called ``name``."""
        metric = self._metrics.get(name)
        if metric is not None and metric.__class__ is WindowRateMeter:
            return metric
        return self._get(
            name,
            WindowRateMeter,
            lambda: WindowRateMeter(name, self._clock, window),
        )

    def series(self, name: str) -> TimeSeries:
        """The time series called ``name``, created on first use."""
        metric = self._metrics.get(name)
        if metric is not None and metric.__class__ is TimeSeries:
            return metric
        return self._get(name, TimeSeries, lambda: TimeSeries(name))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> List[str]:
        """All registered metric names, sorted."""
        return sorted(self._metrics)

    def get(self, name: str):
        """The instrument called ``name``, or ``None``."""
        return self._metrics.get(name)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """``{name: metric.snapshot()}`` for every instrument, sorted."""
        return {
            name: self._metrics[name].snapshot() for name in sorted(self._metrics)
        }

    def rows(self) -> List[Tuple[str, str, Dict[str, float]]]:
        """``(name, kind, snapshot)`` rows for report rendering."""
        return [
            (name, self._metrics[name].kind, self._metrics[name].snapshot())
            for name in sorted(self._metrics)
        ]
