"""Unified observability: metrics, structured tracing, and profiling.

This package is the single instrumentation spine of the library.  Three
concerns, one home:

* **Metrics** (:mod:`repro.obs.metrics`) — counters, gauges, histograms,
  and rate meters behind a get-or-create :class:`MetricsRegistry`.  The
  legacy probes in :mod:`repro.sim.probes` are thin compatibility shims
  over these classes.
* **Tracing** (:mod:`repro.obs.tracing`) — a structured cross-layer
  event bus (``sim.trace.event(layer, name, **fields)``) with pluggable
  sinks (ring buffer, JSONL file, null).  Wired into the sim kernel, TCP
  congestion/retransmit paths, the BitTorrent choker and piece manager,
  and all three wP2P components, so one JSONL log correlates, e.g., a
  burst of TCP timeouts with the choke round and AM state flip around it.
* **Profiling** (:mod:`repro.obs.profiling`) — per-event kernel timing:
  events/second, wall-clock per sim-second, top handler costs.

Everything is off by default and costs a boolean check when off.  Typical
use::

    from repro.obs import tracing

    with tracing.capture(path="fig8a.jsonl"):
        fig8a(runs=1)

then render the log with ``python scripts/run_report.py fig8a.jsonl``.
"""

from .metrics import (
    Counter,
    EwmaRateMeter,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
    TimeSeries,
    WindowRateMeter,
    mean,
)
from .profiling import HandlerStats, KernelProfiler
from .tracing import (
    JSONLSink,
    NullSink,
    RingBufferSink,
    TraceBus,
    TraceSink,
    capture,
    install,
    read_jsonl,
    uninstall,
)

__all__ = [
    "Counter",
    "EwmaRateMeter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "TimeSeries",
    "WindowRateMeter",
    "mean",
    "HandlerStats",
    "KernelProfiler",
    "JSONLSink",
    "NullSink",
    "RingBufferSink",
    "TraceBus",
    "TraceSink",
    "capture",
    "install",
    "read_jsonl",
    "uninstall",
]
