"""Lightweight kernel profiling: where does the wall clock go?

The ROADMAP's north star is hardware-speed simulation, and perf work is
guesswork without a cheap answer to three questions:

* how many events does the kernel process per wall-clock second?
* how much wall time does one simulated second cost?
* which event handlers dominate?

:class:`KernelProfiler` answers all three.  It is armed per simulator via
:meth:`~repro.sim.kernel.Simulator.enable_profiling`; while armed, the
kernel times every callback dispatch and feeds it here.  Unarmed (the
default) the kernel pays a single ``is None`` test per event, which keeps
the tier-1 benchmarks inside their regression budget.

>>> sim = Simulator()                      # doctest: +SKIP
>>> prof = sim.enable_profiling()          # doctest: +SKIP
>>> sim.run(until=60.0)                    # doctest: +SKIP
>>> print(prof.format_report())            # doctest: +SKIP
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple


def _callback_label(callback: Callable) -> str:
    """A stable, aggregatable name for an event callback.

    Bound methods aggregate per class (``TCPConnection._on_rto``), plain
    functions per qualified name — instance identity would fragment the
    table into one row per object.
    """
    self_obj = getattr(callback, "__self__", None)
    qualname = getattr(callback, "__qualname__", None)
    if qualname is None:
        return repr(callback)
    if self_obj is not None:
        return f"{type(self_obj).__name__}.{callback.__name__}"
    return qualname


class HandlerStats:
    """Aggregated cost of one handler label."""

    __slots__ = ("label", "calls", "total_s", "max_s")

    def __init__(self, label: str) -> None:
        self.label = label
        self.calls = 0
        self.total_s = 0.0
        self.max_s = 0.0

    @property
    def mean_s(self) -> float:
        """Mean wall-clock seconds per call."""
        return self.total_s / self.calls if self.calls else 0.0


class KernelProfiler:
    """Collects per-event timing from an armed simulation kernel.

    The kernel calls :meth:`record` once per dispatched event and
    :meth:`note_run` once per :meth:`~repro.sim.kernel.Simulator.run`
    call; everything else is derived at report time.
    """

    def __init__(self, wall_clock: Callable[[], float] = time.perf_counter) -> None:
        self.wall_clock = wall_clock
        self.events = 0
        self.busy_s = 0.0  # wall time inside event callbacks
        self.run_wall_s = 0.0  # wall time inside run() overall
        self.sim_seconds = 0.0  # simulated time covered by profiled runs
        self.runs = 0
        self._handlers: Dict[str, HandlerStats] = {}

    # ------------------------------------------------------------------
    # Kernel-facing hooks
    # ------------------------------------------------------------------
    def record(self, callback: Callable, elapsed_s: float) -> None:
        """One event dispatched: ``callback`` ran for ``elapsed_s``."""
        self.events += 1
        self.busy_s += elapsed_s
        label = _callback_label(callback)
        stats = self._handlers.get(label)
        if stats is None:
            stats = HandlerStats(label)
            self._handlers[label] = stats
        stats.calls += 1
        stats.total_s += elapsed_s
        if elapsed_s > stats.max_s:
            stats.max_s = elapsed_s

    def note_run(self, sim_elapsed: float, wall_elapsed: float) -> None:
        """One ``run()`` finished, covering ``sim_elapsed`` sim-seconds."""
        self.runs += 1
        self.sim_seconds += max(0.0, sim_elapsed)
        self.run_wall_s += max(0.0, wall_elapsed)

    # ------------------------------------------------------------------
    # Derived figures
    # ------------------------------------------------------------------
    @property
    def events_per_second(self) -> float:
        """Events dispatched per wall-clock second spent in ``run()``."""
        return self.events / self.run_wall_s if self.run_wall_s > 0 else 0.0

    @property
    def wall_per_sim_second(self) -> float:
        """Wall-clock seconds needed per simulated second (lower = faster)."""
        return self.run_wall_s / self.sim_seconds if self.sim_seconds > 0 else 0.0

    def top_handlers(self, limit: int = 10) -> List[HandlerStats]:
        """The costliest handler labels by total wall time."""
        ranked = sorted(
            self._handlers.values(), key=lambda h: h.total_s, reverse=True
        )
        return ranked[:limit]

    def snapshot(self) -> Dict[str, float]:
        """JSON-friendly headline numbers."""
        return {
            "events": self.events,
            "runs": self.runs,
            "run_wall_s": self.run_wall_s,
            "busy_s": self.busy_s,
            "sim_seconds": self.sim_seconds,
            "events_per_second": self.events_per_second,
            "wall_per_sim_second": self.wall_per_sim_second,
        }

    def format_report(self, limit: int = 10) -> str:
        """A plain-text profile summary with the top-handler table."""
        lines = [
            "== kernel profile ==",
            f"events processed : {self.events}",
            f"wall in run()    : {self.run_wall_s:.3f}s "
            f"({self.busy_s:.3f}s inside handlers)",
            f"events/sec       : {self.events_per_second:,.0f}",
            f"wall per sim-sec : {self.wall_per_sim_second * 1000:.3f} ms",
            "",
            f"{'handler':<44} {'calls':>8} {'total ms':>10} {'mean us':>9}",
        ]
        for stats in self.top_handlers(limit):
            lines.append(
                f"{stats.label:<44} {stats.calls:>8} "
                f"{stats.total_s * 1000:>10.2f} {stats.mean_s * 1e6:>9.1f}"
            )
        return "\n".join(lines)
