"""The discrete-event simulation kernel.

:class:`Simulator` owns the virtual clock, the event queue, and the named
random streams for a run.  Components never read wall-clock time or the
global ``random`` module; they hold a reference to their simulator and use
``sim.now``, ``sim.schedule`` and ``sim.rng``.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Optional

from ..audit import apply_defaults as _audit_defaults
from ..obs import tracing as _tracing
from ..obs.metrics import MetricsRegistry
from ..obs.profiling import KernelProfiler
from .events import Event, make_event_queue
from .randomness import RngRegistry


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, etc.)."""


class Simulator:
    """A single simulation run: clock + event queue + random streams.

    Observability hangs directly off the kernel so every component that
    holds a simulator reference can reach it: ``sim.trace`` is the
    structured event bus (:class:`~repro.obs.tracing.TraceBus`, disabled
    until a sink is attached — globally installed default sinks are
    picked up here at construction), ``sim.metrics`` is the run's
    :class:`~repro.obs.metrics.MetricsRegistry` sharing the virtual
    clock, and :meth:`enable_profiling` arms per-event kernel timing.

    Parameters
    ----------
    seed:
        Master seed for all named random streams (see
        :class:`~repro.sim.randomness.RngRegistry`).
    queue:
        Event queue implementation: ``"calendar"`` (default) or
        ``"heap"``.  Both pop in the identical ``(time, seq)`` order, so
        results are bit-identical either way; ``None`` defers to the
        ``REPRO_EVENT_QUEUE`` environment variable.  See
        :mod:`repro.sim.events`.
    """

    def __init__(self, seed: int = 0, queue: Optional[str] = None) -> None:
        self._queue = make_event_queue(queue)
        # Bound-method cache: schedule()/call_soon() run ~1M times per
        # packet-level figure, so skip the two attribute loads per call.
        self._push = self._queue.push
        self._now = 0.0
        self.rng = RngRegistry(seed)
        self._running = False
        self._stopped = False
        self.events_processed = 0
        self.trace = _tracing.TraceBus(clock=lambda: self._now)
        _tracing.apply_defaults(self.trace)
        self.metrics = MetricsRegistry(clock=lambda: self._now)
        self._profiler: Optional[KernelProfiler] = None
        # Invariant auditing (repro.audit): None unless an Auditor is
        # attached — components and the event loop pay one `is None`
        # test when off.  Globally installed audit defaults attach here.
        self.audit = None
        _audit_defaults(self)

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay!r} seconds in the past")
        return self._push(self._now + delay, callback, args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r}, current time is {self._now!r}"
            )
        return self._push(time, callback, args)

    def call_soon(self, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at the current instant.

        It fires after all already-queued events for this instant; useful for
        breaking re-entrancy (e.g. delivering application callbacks outside a
        packet-processing call chain).
        """
        return self._push(self._now, callback, args)

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a scheduled event.  ``None`` and spent events are no-ops."""
        if event is not None:
            self._queue.cancel(event)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the queue drains, ``until`` is reached, or stop().

        Returns the simulated time at which the run stopped.  If ``until``
        is given, the clock is advanced to exactly ``until`` even when the
        queue drains early, so back-to-back ``run`` calls compose.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly")
        self._running = True
        self._stopped = False
        processed = 0
        profiler = self._profiler
        auditor = self.audit
        trace = self.trace
        if trace.enabled:
            trace.event(
                "sim", "run_begin", until=until, pending=len(self._queue)
            )
        run_started_wall = perf_counter() if profiler is not None else 0.0
        run_started_sim = self._now
        pop_due = self._queue.pop_due
        try:
            if auditor is None and profiler is None and max_events is None:
                # Fast path: the common unobserved bulk run.  One queue
                # call per event, no per-event feature checks.
                while True:
                    event = pop_due(until)
                    if event is None:
                        break
                    self._now = event.time
                    event.callback(*event.args)
                    processed += 1
                    if self._stopped:
                        break
            else:
                while True:
                    event = pop_due(until)
                    if event is None:
                        break
                    if auditor is not None:
                        auditor.before_event(event.time)
                    self._now = event.time
                    if profiler is not None:
                        started = perf_counter()
                        event.callback(*event.args)
                        profiler.record(event.callback, perf_counter() - started)
                    else:
                        event.callback(*event.args)
                    processed += 1
                    if self._stopped:
                        break
                    if max_events is not None and processed >= max_events:
                        break
        finally:
            self._running = False
            self.events_processed += processed
        if until is not None and not self._stopped and self._now < until:
            self._now = until
        if auditor is not None:
            auditor.on_run_end()
        if profiler is not None:
            profiler.note_run(
                self._now - run_started_sim,
                perf_counter() - run_started_wall,
            )
        if trace.enabled:
            trace.event(
                "sim",
                "run_end",
                processed=processed,
                now=self._now,
                stopped=self._stopped,
            )
        return self._now

    def stop(self) -> None:
        """Stop the current :meth:`run` after the in-flight event returns."""
        self._stopped = True
        if self.trace.enabled:
            self.trace.event("sim", "stop")

    @property
    def pending_events(self) -> int:
        """Number of live events still queued."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Profiling
    # ------------------------------------------------------------------
    def enable_profiling(self) -> KernelProfiler:
        """Arm per-event kernel timing; returns the (reused) profiler.

        While armed, every event dispatch is wall-clock timed and
        aggregated per handler (see
        :class:`~repro.obs.profiling.KernelProfiler`).  Unarmed runs pay
        only an ``is None`` check per event.
        """
        if self._profiler is None:
            self._profiler = KernelProfiler()
        return self._profiler

    def disable_profiling(self) -> None:
        """Disarm profiling (collected statistics are discarded)."""
        self._profiler = None

    @property
    def profiler(self) -> Optional[KernelProfiler]:
        """The armed profiler, or ``None``."""
        return self._profiler
