"""The discrete-event simulation kernel.

:class:`Simulator` owns the virtual clock, the event queue, and the named
random streams for a run.  Components never read wall-clock time or the
global ``random`` module; they hold a reference to their simulator and use
``sim.now``, ``sim.schedule`` and ``sim.rng``.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .events import Event, EventQueue
from .randomness import RngRegistry


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, etc.)."""


class Simulator:
    """A single simulation run: clock + event queue + random streams.

    Parameters
    ----------
    seed:
        Master seed for all named random streams (see
        :class:`~repro.sim.randomness.RngRegistry`).
    """

    def __init__(self, seed: int = 0) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self.rng = RngRegistry(seed)
        self._running = False
        self._stopped = False
        self.events_processed = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay!r} seconds in the past")
        return self._queue.push(self._now + delay, callback, args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r}, current time is {self._now!r}"
            )
        return self._queue.push(time, callback, args)

    def call_soon(self, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at the current instant.

        It fires after all already-queued events for this instant; useful for
        breaking re-entrancy (e.g. delivering application callbacks outside a
        packet-processing call chain).
        """
        return self._queue.push(self._now, callback, args)

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a scheduled event.  ``None`` and spent events are no-ops."""
        if event is not None:
            self._queue.cancel(event)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the queue drains, ``until`` is reached, or stop().

        Returns the simulated time at which the run stopped.  If ``until``
        is given, the clock is advanced to exactly ``until`` even when the
        queue drains early, so back-to-back ``run`` calls compose.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly")
        self._running = True
        self._stopped = False
        processed = 0
        try:
            while self._queue:
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                event = self._queue.pop()
                if event is None:
                    break
                self._now = event.time
                event.callback(*event.args)
                self.events_processed += 1
                processed += 1
                if self._stopped:
                    break
                if max_events is not None and processed >= max_events:
                    break
        finally:
            self._running = False
        if until is not None and not self._stopped and self._now < until:
            self._now = until
        return self._now

    def stop(self) -> None:
        """Stop the current :meth:`run` after the in-flight event returns."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of live events still queued."""
        return len(self._queue)
