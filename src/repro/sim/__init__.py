"""Discrete-event simulation kernel: clock, events, timers, RNG, probes."""

from .events import Event, EventQueue
from .kernel import SimulationError, Simulator
from .probes import Counter, RateMeter, TimeSeries, mean
from .randomness import RngRegistry, derive_seed
from .timers import PeriodicTask, Timer

__all__ = [
    "Event",
    "EventQueue",
    "SimulationError",
    "Simulator",
    "Counter",
    "RateMeter",
    "TimeSeries",
    "mean",
    "RngRegistry",
    "derive_seed",
    "PeriodicTask",
    "Timer",
]
