"""Restartable timers and periodic tasks built on the kernel.

TCP retransmission timers, BitTorrent choker rounds, tracker re-announces and
mobility schedules all need "restart / cancel / fire periodically" semantics;
these helpers encapsulate the event-handle bookkeeping so protocol code stays
readable.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .events import Event
from .kernel import Simulator


class Timer:
    """A one-shot timer that can be (re)started and cancelled.

    The callback is invoked with no arguments when the timer expires.
    Restarting an armed timer cancels the previous deadline.
    """

    __slots__ = ("_sim", "_callback", "_event")

    def __init__(self, sim: Simulator, callback: Callable[[], Any]) -> None:
        self._sim = sim
        self._callback = callback
        self._event: Optional[Event] = None

    def start(self, delay: float) -> None:
        """Arm (or re-arm) the timer to fire ``delay`` seconds from now."""
        self.cancel()
        self._event = self._sim.schedule(delay, self._fire)

    def cancel(self) -> None:
        """Disarm the timer if armed."""
        if self._event is not None:
            self._sim.cancel(self._event)
            self._event = None

    @property
    def armed(self) -> bool:
        return self._event is not None and self._event.alive

    @property
    def expires_at(self) -> Optional[float]:
        """Absolute expiry time, or None when disarmed."""
        if self._event is not None and self._event.alive:
            return self._event.time
        return None

    def _fire(self) -> None:
        self._event = None
        self._callback()


class PeriodicTask:
    """Invoke a callback every ``interval`` seconds until stopped.

    The first invocation happens after ``first_delay`` (default: one full
    interval).  The callback may call :meth:`stop` to end the series or
    :meth:`set_interval` to change cadence from the next tick on.
    """

    __slots__ = ("_sim", "_interval", "_callback", "_event", "_running")

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[], Any],
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self._sim = sim
        self._interval = interval
        self._callback = callback
        self._event: Optional[Event] = None
        self._running = False

    def start(self, first_delay: Optional[float] = None) -> "PeriodicTask":
        """Begin ticking; returns self for chaining."""
        if self._running:
            return self
        self._running = True
        delay = self._interval if first_delay is None else first_delay
        self._event = self._sim.schedule(delay, self._tick)
        return self

    def stop(self) -> None:
        """Stop ticking.  Safe to call from within the callback."""
        self._running = False
        if self._event is not None:
            self._sim.cancel(self._event)
            self._event = None

    def set_interval(self, interval: float) -> None:
        """Change the cadence, effective from the next scheduling."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        self._interval = interval

    @property
    def running(self) -> bool:
        return self._running

    @property
    def interval(self) -> float:
        return self._interval

    def _tick(self) -> None:
        self._event = None
        if not self._running:
            return
        self._callback()
        if self._running:
            self._event = self._sim.schedule(self._interval, self._tick)
