"""Measurement probes: counters, time series, and rate meters.

Every figure in the paper is a plot of a measured quantity — throughput,
downloaded bytes over time, packets in flight per second, playable fraction.
These probes are the instrumentation layer: protocol code records raw
observations, experiment code reads them back as series.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import deque
from typing import Deque, Iterable, List, Optional, Tuple

from .kernel import Simulator


class Counter:
    """A monotonically increasing named counter with optional history.

    With ``record_history=True`` every increment appends ``(time, total)``,
    which lets experiments reconstruct cumulative curves (e.g. Figure 3(c)'s
    downloaded size vs time).
    """

    def __init__(self, sim: Simulator, name: str, record_history: bool = False) -> None:
        self._sim = sim
        self.name = name
        self.total = 0.0
        self.history: List[Tuple[float, float]] = []
        self._record = record_history

    def add(self, amount: float = 1.0) -> None:
        self.total += amount
        if self._record:
            self.history.append((self._sim.now, self.total))

    def value_at(self, time: float) -> float:
        """Cumulative value at ``time`` (requires history recording)."""
        if not self._record:
            raise ValueError(f"counter {self.name!r} does not record history")
        idx = bisect_right(self.history, (time, float("inf")))
        return self.history[idx - 1][1] if idx else 0.0

    def reset(self) -> None:
        self.total = 0.0
        self.history.clear()


class TimeSeries:
    """An append-only series of ``(time, value)`` samples."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError("samples must be recorded in time order")
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterable[Tuple[float, float]]:
        return iter(zip(self.times, self.values))

    def last(self) -> Optional[Tuple[float, float]]:
        if not self.times:
            return None
        return self.times[-1], self.values[-1]

    def window(self, start: float, end: float) -> "TimeSeries":
        """Samples with ``start <= time < end`` as a new series."""
        lo = bisect_left(self.times, start)
        hi = bisect_left(self.times, end)
        out = TimeSeries(self.name)
        out.times = self.times[lo:hi]
        out.values = self.values[lo:hi]
        return out

    def bucketed_counts(self, bucket: float, start: float = 0.0, end: Optional[float] = None) -> List[Tuple[float, int]]:
        """Histogram of sample *counts* per time bucket.

        Used for "number of packets per interval" plots (Figure 2(b, c)).
        """
        if bucket <= 0:
            raise ValueError("bucket must be positive")
        if end is None:
            end = self.times[-1] if self.times else start
        counts: List[Tuple[float, int]] = []
        t = start
        while t < end or (t == start and start == end):
            lo = bisect_left(self.times, t)
            hi = bisect_left(self.times, t + bucket)
            counts.append((t, hi - lo))
            t += bucket
            if t >= end:
                break
        return counts


class RateMeter:
    """Sliding-window byte-rate estimator (bytes/second).

    Mirrors the 20-second rolling average real BitTorrent clients use for
    tit-for-tat rate ranking; the window is configurable.
    """

    def __init__(self, sim: Simulator, window: float = 20.0) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self._sim = sim
        self.window = window
        self._samples: Deque[Tuple[float, float]] = deque()
        self._window_bytes = 0.0
        self.total_bytes = 0.0

    def add(self, nbytes: float) -> None:
        """Record ``nbytes`` transferred now."""
        now = self._sim.now
        self._samples.append((now, nbytes))
        self._window_bytes += nbytes
        self.total_bytes += nbytes
        self._expire(now)

    def rate(self) -> float:
        """Current rate over the sliding window, in bytes/second."""
        now = self._sim.now
        self._expire(now)
        if not self._samples:
            return 0.0
        span = max(now - self._samples[0][0], 1e-9)
        # Young meters (observed for less than a window) divide by the
        # observed span so early readings are not artificially deflated.
        return self._window_bytes / min(max(span, 1e-9), self.window) if span < self.window else self._window_bytes / self.window

    def _expire(self, now: float) -> None:
        cutoff = now - self.window
        samples = self._samples
        while samples and samples[0][0] < cutoff:
            _, nbytes = samples.popleft()
            self._window_bytes -= nbytes
        if not samples:
            self._window_bytes = 0.0


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; 0.0 for an empty iterable."""
    vals = list(values)
    return sum(vals) / len(vals) if vals else 0.0
