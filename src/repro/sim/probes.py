"""Measurement probes: counters, time series, and rate meters.

Every figure in the paper is a plot of a measured quantity — throughput,
downloaded bytes over time, packets in flight per second, playable fraction.

These classes are now thin compatibility shims over the unified
observability layer in :mod:`repro.obs.metrics`: the implementations live
there (clock-agnostic, registry-aware), while this module preserves the
original simulator-first constructor signatures that protocol and
experiment code were written against.  New code should prefer
``sim.metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) directly.
"""

from __future__ import annotations

from ..obs import metrics as _metrics
from .kernel import Simulator

# Re-exported untouched: these never needed a simulator reference.
TimeSeries = _metrics.TimeSeries
mean = _metrics.mean


class Counter(_metrics.Counter):
    """A monotonically increasing named counter with optional history.

    With ``record_history=True`` every increment appends ``(time, total)``,
    which lets experiments reconstruct cumulative curves (e.g. Figure 3(c)'s
    downloaded size vs time).  Shim over
    :class:`repro.obs.metrics.Counter` bound to ``sim.now``.
    """

    def __init__(self, sim: Simulator, name: str, record_history: bool = False) -> None:
        super().__init__(name, clock=lambda: sim.now, record_history=record_history)
        self._sim = sim


class RateMeter(_metrics.WindowRateMeter):
    """Sliding-window byte-rate estimator (bytes/second).

    Mirrors the 20-second rolling average real BitTorrent clients use for
    tit-for-tat rate ranking; the window is configurable.  Shim over
    :class:`repro.obs.metrics.WindowRateMeter` bound to ``sim.now``.
    """

    def __init__(self, sim: Simulator, window: float = 20.0) -> None:
        super().__init__(clock=lambda: sim.now, window=window)
        self._sim = sim
