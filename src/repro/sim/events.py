"""Event primitives for the discrete-event simulation kernel.

The kernel is callback-based: an :class:`Event` couples a firing time with a
zero-argument callable (arguments are bound at scheduling time).  Events are
totally ordered by ``(time, sequence)`` so that two events scheduled for the
same instant fire in scheduling order, which keeps runs deterministic.

Two queue implementations share that contract (see
``docs/PERFORMANCE.md`` for the campaign that introduced the split):

* :class:`CalendarEventQueue` — the default.  A Brown-style calendar
  queue: time is cut into fixed-``width`` buckets laid out modulo a
  "year" of ``nbuckets`` slots, so push and pop are O(1) amortised
  instead of O(log n).  Each bucket is a small binary heap of
  ``(time, seq, event)`` tuples, which keeps every comparison on the
  C fast path (the old single heap spent most of its time in a Python
  ``Event.__lt__``).  Bucket count and width adapt to the live event
  population.
* :class:`HeapEventQueue` — the classic single binary heap, kept as a
  fallback and as the ordering oracle for the calendar queue's
  property tests.

Both implementations pop events in exactly the same ``(time, seq)``
order, so a simulation is bit-identical under either; select with the
``queue=`` argument to :class:`~repro.sim.kernel.Simulator` or the
``REPRO_EVENT_QUEUE`` environment variable (``calendar`` | ``heap``).

Cancellation is lazy: cancelling marks the event dead and the queue
discards it when it reaches a bucket head (both queues compact when
dead entries pile up), keeping push O(1)/O(log n) and cancellation O(1).
"""

from __future__ import annotations

import os
from heapq import heapify, heappop, heappush
from typing import Any, Callable, List, Optional, Tuple


class Event:
    """A scheduled callback.

    Instances are created by the kernel; user code receives them as handles
    that can be cancelled via :meth:`cancel` or :meth:`Simulator.cancel`.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple = (),
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so it will not fire.

        Safe to call multiple times and after the event has fired (a no-op
        in that case).
        """
        self.cancelled = True
        # Drop references so cancelled events pinned in the queue do not keep
        # large object graphs (packets, connections) alive.
        self.callback = _noop
        self.args = ()

    @property
    def alive(self) -> bool:
        """True until the event fires or is cancelled."""
        return not self.cancelled

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, seq={self.seq}, {state})"


def _noop(*_args: Any) -> None:
    return None


#: ``Event.__new__`` cached for the queue push hot paths, which build
#: events by direct attribute stores instead of an ``__init__`` call.
_new_event = Event.__new__


# One queue entry: ``(time, seq, event)``.  ``seq`` is unique, so tuple
# comparison never falls through to the event itself — every heap
# comparison is a C-level float/int compare.
_Entry = Tuple[float, int, Event]


def _day_of(time: float, width: float) -> int:
    """The canonical calendar day of ``time``: the unique ``k`` with
    ``k * width <= time < (k + 1) * width`` under float arithmetic.

    ``int(time / width)`` alone is not canonical: the division can round
    across a bucket boundary in either direction (e.g. ``4.1 / 0.005``),
    leaving an event that fails its own day's window test — which would
    let the calendar walk skip past a live event.  See the window checks
    in :class:`CalendarEventQueue`.
    """
    k = int(time / width)
    if time < k * width:
        k -= 1
    else:
        while time >= (k + 1) * width:
            k += 1
    return k


class HeapEventQueue:
    """A cancellable priority queue over one binary heap.

    The reference implementation: simple, O(log n) per operation, and
    the ordering oracle the calendar queue is property-tested against.
    """

    kind = "heap"

    __slots__ = ("_heap", "_seq", "_live", "_dead")

    def __init__(self) -> None:
        self._heap: List[_Entry] = []
        self._seq = 0
        self._live = 0
        self._dead = 0

    def push(self, time: float, callback: Callable[..., Any], args: tuple = ()) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time``."""
        seq = self._seq
        self._seq = seq + 1
        # Build the Event without the __init__ frame (push runs ~1M times
        # per packet-level figure; attribute stores are all it does).
        event = _new_event(Event)
        event.time = time
        event.seq = seq
        event.callback = callback
        event.args = args
        event.cancelled = False
        heappush(self._heap, (time, seq, event))
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously pushed event (idempotent)."""
        if not event.cancelled:
            event.cancel()
            self._live -= 1
            dead = self._dead = self._dead + 1
            if dead > 512 and dead > self._live:
                self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (order preserving)."""
        self._heap = [entry for entry in self._heap if not entry[2].cancelled]
        heapify(self._heap)
        self._dead = 0

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or None if empty."""
        heap = self._heap
        while heap:
            entry = heappop(heap)
            event = entry[2]
            if not event.cancelled:
                self._live -= 1
                return event
            self._dead -= 1
        return None

    def pop_due(self, until: Optional[float]) -> Optional[Event]:
        """Pop the earliest live event with ``time <= until`` (or any when
        ``until`` is None); returns None without popping otherwise."""
        heap = self._heap
        while heap:
            head = heap[0]
            if head[2].cancelled:
                heappop(heap)
                self._dead -= 1
                continue
            if until is not None and head[0] > until:
                return None
            heappop(heap)
            self._live -= 1
            return head[2]
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the earliest live event, or None."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heappop(heap)
            self._dead -= 1
        return heap[0][0] if heap else None

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0


class CalendarEventQueue:
    """A Brown-style calendar queue: O(1) amortised push and pop.

    Time is divided into buckets of fixed ``width`` seconds arranged in a
    circular "year" of ``nbuckets`` slots: an event at time ``t`` lives in
    absolute day ``k = int(t / width)``, bucket ``k % nbuckets``.  The
    queue walks the calendar day by day (``_k``), popping events from the
    current bucket while they fall inside the day's window
    ``[k*width, (k+1)*width)``; events from a later year sit in the same
    bucket but fail the window test and wait their turn.

    Tie-breaking contract: each bucket is a binary heap of
    ``(time, seq, event)`` tuples, so same-time events pop in scheduling
    (``seq``) order — the identical total order as
    :class:`HeapEventQueue`, which makes the two implementations freely
    interchangeable without perturbing a single simulation result.

    Adaptivity: when the live population outgrows ``2 * nbuckets`` the
    calendar doubles its buckets and re-derives ``width`` from the mean
    gap between soon-to-fire events (shrinking likewise at
    ``nbuckets // 2``), so densely and sparsely loaded phases of a run
    both keep roughly O(1) access.  Pushes *behind* the current day
    (possible after ``run(until=...)`` parked the walk beyond them)
    rewind the walk, preserving order.  A full lap without a due event
    falls back to a direct min search that teleports the walk to the
    next populated day, so widely spaced timers cannot stall the queue.
    """

    kind = "calendar"

    __slots__ = (
        "_buckets", "_nbuckets", "_width", "_k", "_seq",
        "_live", "_dead", "_grow_at", "_shrink_at", "_cur", "_top",
        "_pd_lo", "_pd_hi", "_pd_k", "_pd_bucket",
    )

    _MIN_BUCKETS = 16
    _MIN_WIDTH = 1e-9

    def __init__(self, width: float = 0.005) -> None:
        self._nbuckets = self._MIN_BUCKETS
        self._buckets: List[List[_Entry]] = [[] for _ in range(self._nbuckets)]
        self._width = max(float(width), self._MIN_WIDTH)
        self._k = 0  # absolute day the walk is on
        # Cached view of the walk position so the pop fast path touches
        # only two attributes: the current day's bucket and the end of
        # its window.  Invariant: _cur is _buckets[_k % _nbuckets] and
        # _top == (_k + 1) * _width.
        self._cur: List[_Entry] = self._buckets[0]
        self._top = self._width
        self._seq = 0
        self._live = 0
        self._dead = 0
        # One-entry push cache: consecutive pushes cluster around `now`,
        # so remember the last day's window/bucket and skip the division
        # when the next push lands in the same day.  Invalidated by
        # _resize (width and bucket layout change).
        self._pd_lo = 0.0
        self._pd_hi = 0.0
        self._pd_k = 0
        self._pd_bucket = self._buckets[0]
        self._set_thresholds()

    def _set_thresholds(self) -> None:
        self._grow_at = 2 * self._nbuckets
        self._shrink_at = self._nbuckets // 2 if self._nbuckets > self._MIN_BUCKETS else -1

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def push(self, time: float, callback: Callable[..., Any], args: tuple = ()) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time``."""
        seq = self._seq
        self._seq = seq + 1
        # Build the Event without the __init__ frame (see HeapEventQueue).
        event = _new_event(Event)
        event.time = time
        event.seq = seq
        event.callback = callback
        event.args = args
        event.cancelled = False
        if self._pd_lo <= time < self._pd_hi:
            # Push cache hit: same day as the previous push.
            k = self._pd_k
            bucket = self._pd_bucket
        else:
            width = self._width
            # Canonical day (see _day_of, inlined here — push is the
            # hottest call in the simulator): k*width <= time < (k+1)*width.
            k = int(time / width)
            if time < k * width:
                k -= 1
            else:
                while time >= (k + 1) * width:
                    k += 1
            bucket = self._buckets[k % self._nbuckets]
            self._pd_lo = k * width
            self._pd_hi = (k + 1) * width
            self._pd_k = k
            self._pd_bucket = bucket
        if k < self._k or self._live == 0:
            # Behind the walk (run(until=...) parked us past this day, or
            # the calendar drained): rewind so the scan cannot skip it.
            self._k = k
            self._cur = bucket
            self._top = self._pd_hi  # == (k + 1) * width
        heappush(bucket, (time, seq, event))
        self._live += 1
        if self._live > self._grow_at:
            self._resize(self._nbuckets * 2)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously pushed event (idempotent)."""
        if not event.cancelled:
            event.cancel()
            self._live -= 1
            dead = self._dead = self._dead + 1
            if dead > 512 and dead > self._live:
                self._resize(self._nbuckets)

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or None if empty."""
        return self.pop_due(None)

    def pop_due(self, until: Optional[float]) -> Optional[Event]:
        """Pop the earliest live event with ``time <= until`` (or any when
        ``until`` is None); returns None without popping otherwise."""
        if self._live == 0:
            return None
        # Fast path: the next event is the head of the current day's
        # bucket and falls inside the day's window.
        bucket = self._cur
        while bucket:
            head = bucket[0]
            if head[2].cancelled:
                heappop(bucket)
                self._dead -= 1
                continue
            if head[0] < self._top:
                if until is not None and head[0] > until:
                    return None
                heappop(bucket)
                live = self._live = self._live - 1
                if live < self._shrink_at:
                    self._resize(max(self._nbuckets // 2, self._MIN_BUCKETS))
                return head[2]
            break
        # Slow path: advance the walk to the next populated day.
        entry = self._advance()
        if entry is None:
            return None
        if until is not None and entry[0] > until:
            return None
        heappop(self._cur)
        live = self._live = self._live - 1
        if live < self._shrink_at:
            self._resize(max(self._nbuckets // 2, self._MIN_BUCKETS))
        return entry[2]

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the earliest live event, or None."""
        if self._live == 0:
            return None
        bucket = self._cur
        while bucket:
            head = bucket[0]
            if head[2].cancelled:
                heappop(bucket)
                self._dead -= 1
                continue
            if head[0] < self._top:
                return head[0]
            break
        entry = self._advance()
        return entry[0] if entry is not None else None

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    # ------------------------------------------------------------------
    # The calendar walk
    # ------------------------------------------------------------------
    def _advance(self) -> Optional[_Entry]:
        """Advance the walk past the current (exhausted) day to the next
        live event; positions ``_k``/``_cur``/``_top`` on its day and
        returns its entry without popping.  The caller has already ruled
        out the current day, so the scan starts at ``_k + 1``."""
        buckets = self._buckets
        nbuckets = self._nbuckets
        width = self._width
        k = self._k + 1
        dead = self._dead
        for _ in range(nbuckets - 1):
            bucket = buckets[k % nbuckets]
            while bucket:
                head = bucket[0]
                if head[2].cancelled:
                    heappop(bucket)
                    dead -= 1
                    continue
                if head[0] < (k + 1) * width:
                    self._k = k
                    self._cur = bucket
                    self._top = (k + 1) * width
                    self._dead = dead
                    return head
                break
            k += 1
        self._dead = dead
        return self._direct_search()

    def _direct_search(self) -> Optional[_Entry]:
        """A full lap found nothing due this year: scan every bucket head
        for the global minimum and teleport the walk to its day."""
        best: Optional[_Entry] = None
        best_bucket: Optional[List[_Entry]] = None
        for bucket in self._buckets:
            while bucket and bucket[0][2].cancelled:
                heappop(bucket)
                self._dead -= 1
            if bucket:
                head = bucket[0]
                if best is None or head < best:
                    best = head
                    best_bucket = bucket
        if best is None:
            return None
        self._k = _day_of(best[0], self._width)
        self._cur = best_bucket
        self._top = (self._k + 1) * self._width
        return best

    # ------------------------------------------------------------------
    # Adaptive resizing
    # ------------------------------------------------------------------
    def _resize(self, nbuckets: int) -> None:
        """Rebuild with ``nbuckets`` buckets and a freshly estimated width
        (also drops cancelled entries).  Order is untouched: membership
        and the (time, seq) total order are properties of the entries."""
        entries = [
            entry
            for bucket in self._buckets
            for entry in bucket
            if not entry[2].cancelled
        ]
        entries.sort()
        self._width = self._estimate_width(entries)
        self._nbuckets = nbuckets
        self._buckets = [[] for _ in range(nbuckets)]
        width = self._width
        for entry in entries:
            bucket = self._buckets[_day_of(entry[0], width) % nbuckets]
            bucket.append(entry)
        for bucket in self._buckets:
            heapify(bucket)
        self._dead = 0
        self._live = len(entries)
        self._k = _day_of(entries[0][0], width) if entries else 0
        self._cur = self._buckets[self._k % nbuckets]
        self._top = (self._k + 1) * width
        # The push cache points at the old layout: force a miss.
        self._pd_lo = 0.0
        self._pd_hi = 0.0
        self._pd_bucket = self._cur
        self._set_thresholds()

    def _estimate_width(self, sorted_entries: List[_Entry]) -> float:
        """Bucket width = 4x the mean gap between soon-to-fire events.

        Sampling the head of the queue (the next ~256 events) matches the
        region the walk is about to traverse; far-future timers would
        otherwise inflate the estimate and pile everything into one day.
        """
        sample = sorted_entries[:256]
        if len(sample) < 2:
            return self._width
        gaps = [
            b[0] - a[0]
            for a, b in zip(sample, sample[1:])
            if b[0] > a[0]
        ]
        if not gaps:
            return self._width
        return max(4.0 * sum(gaps) / len(gaps), self._MIN_WIDTH)


#: The default queue implementation (see module docstring).
EventQueue = CalendarEventQueue

_QUEUE_KINDS = {
    "calendar": CalendarEventQueue,
    "heap": HeapEventQueue,
}


def make_event_queue(kind: Optional[str] = None):
    """Build an event queue: ``kind`` is ``"calendar"`` (default) or
    ``"heap"``; ``None`` defers to ``REPRO_EVENT_QUEUE`` then the default."""
    if kind is None:
        kind = os.environ.get("REPRO_EVENT_QUEUE") or "calendar"
    try:
        return _QUEUE_KINDS[kind]()
    except KeyError:
        raise ValueError(
            f"unknown event queue kind {kind!r} "
            f"(expected one of {sorted(_QUEUE_KINDS)})"
        ) from None
