"""Event primitives for the discrete-event simulation kernel.

The kernel is callback-based: an :class:`Event` couples a firing time with a
zero-argument callable (arguments are bound at scheduling time).  Events are
totally ordered by ``(time, sequence)`` so that two events scheduled for the
same instant fire in scheduling order, which keeps runs deterministic.

Cancellation is lazy: cancelling marks the event dead and the queue discards
it when it reaches the head.  This keeps :meth:`EventQueue.push` and
cancellation O(log n) and O(1) respectively.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback.

    Instances are created by the kernel; user code receives them as handles
    that can be cancelled via :meth:`cancel` or :meth:`Simulator.cancel`.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple = (),
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so it will not fire.

        Safe to call multiple times and after the event has fired (a no-op
        in that case).
        """
        self.cancelled = True
        # Drop references so cancelled events pinned in the heap do not keep
        # large object graphs (packets, connections) alive.
        self.callback = _noop
        self.args = ()

    @property
    def alive(self) -> bool:
        """True until the event fires or is cancelled."""
        return not self.cancelled

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, seq={self.seq}, {state})"


def _noop(*_args: Any) -> None:
    return None


class EventQueue:
    """A cancellable priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def push(self, time: float, callback: Callable[..., Any], args: tuple = ()) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time``."""
        event = Event(time, next(self._counter), callback, args)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously pushed event (idempotent)."""
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or None if empty."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)
            if not event.cancelled:
                self._live -= 1
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the earliest live event, or None."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        return heap[0].time if heap else None

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0
