"""Deterministic, named random streams.

Every stochastic component (wireless loss, choker tie-breaks, piece
selection, mobility jitter, ...) draws from its *own* named stream derived
from the simulation master seed.  This gives two properties experiments rely
on:

* **Reproducibility** — a run is a pure function of its seed.
* **Variance isolation** — changing how one component consumes randomness
  does not perturb every other component's draws, so A/B comparisons
  (default client vs wP2P) see the same environment noise.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a stable substream seed from a master seed and a label."""
    return (master_seed * 0x9E3779B1 + zlib.crc32(name.encode("utf-8"))) & 0xFFFFFFFF


class RngRegistry:
    """A factory of named :class:`random.Random` streams under one seed."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The same name always maps to the same stream object, so components
        can call ``registry.stream("wireless.loss")`` repeatedly.
        """
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.master_seed, name))
            self._streams[name] = rng
        return rng

    def reseed(self, master_seed: int) -> None:
        """Reset the registry under a new master seed, dropping all streams."""
        self.master_seed = master_seed
        self._streams.clear()

    def __contains__(self, name: str) -> bool:
        return name in self._streams
