"""Chaos sweep — graceful degradation under scheduled faults (``figx_chaos``).

Not a figure from the paper: a robustness experiment the paper's story
implies.  A small swarm (wired seed, wired leeches, one mobile wireless
leech) downloads while a :mod:`repro.chaos` preset injects faults —
churn among the fixed peers, a tracker outage, wireless degradation,
and forced IP-handoff storms against the mobile host — at increasing
intensity.  Two variants run on the same seeds:

* **default** — a deployed-client baseline: every IP change tears the
  task down, waits ``task_restart_delay``, and rejoins under a fresh
  peer ID (forfeiting all tit-for-tat credit, §3.4);
* **wp2p** — identity retention + role reversal, the wP2P mechanisms
  that make exactly these disruptions cheap (§5.2.4).

Expectation: the mobile leech's completion time rises (goodput falls)
monotonically with chaos intensity for both variants, and wP2P
outperforms the baseline wherever the intensity is nonzero — graceful
versus brittle degradation of the same protocol stack.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..analysis import ExperimentResult, Series
from ..bittorrent import ClientConfig
from ..bittorrent.swarm import SwarmScenario
from ..chaos import preset_schedule
from ..runner import Scenario, collect, run_scenario, scenario
from ..wp2p import WP2PClient
from .fig9_wp2p import rr_only_config

CHAOS_INTENSITIES: Sequence[float] = (0.0, 1.0, 2.0)


def chaos_run(
    seed: int,
    preset: str,
    intensity: float,
    duration: float,
    wp2p: bool,
    horizon: float = 210.0,
    file_size: int = 2048 * 1024,
    piece_length: int = 32_768,
) -> Dict[str, float]:
    """One cell: mobile-leech completion time + goodput under one preset.

    ``horizon`` is the window the preset lays its faults over; it is
    deliberately shorter than ``duration`` (the completion timeout) so a
    faulted run still has quiet time to recover and finish rather than
    being censored at the deadline.
    """
    sc = SwarmScenario(
        seed=seed,
        file_size=file_size,
        piece_length=piece_length,
        tracker_interval=60.0,
    )
    sc.add_wired_peer("seed0", complete=True, down_rate=1_000_000, up_rate=400_000)
    for i in range(2):
        sc.add_wired_peer(f"f{i}", down_rate=500_000, up_rate=96_000)
    if wp2p:
        mobile = sc.add_wireless_peer(
            "mob0", rate=30_000,
            config=rr_only_config(), client_factory=WP2PClient,
        )
    else:
        mobile = sc.add_wireless_peer(
            "mob0", rate=30_000,
            config=ClientConfig(task_restart_delay=15.0),
        )
    sc.add_mobility(mobile, interval=90.0, downtime=1.0)
    # An ambient runner-level preset (--chaos) takes precedence; the
    # sweep's own schedule applies otherwise.
    if sc.chaos is None:
        sc.add_chaos(preset_schedule(preset, intensity, horizon=horizon))
    sc.start_all()
    sc.run_until_complete(names=["mob0"], timeout=duration)
    client = mobile.client
    completion = (
        client.completion_time if client.completion_time is not None else duration
    )
    return {
        "completion": completion,
        "goodput": client.manager.bytes_completed / max(completion, 1e-9),
        "faults": float(sc.chaos.faults_injected if sc.chaos is not None else 0),
    }


@scenario
class FigXChaos(Scenario):
    """Completion time vs chaos intensity, wP2P against the default client."""

    name = "figx_chaos"
    description = (
        "Chaos sweep: wP2P vs default completion time/goodput as scheduled "
        "fault intensity rises"
    )
    defaults = {
        "preset": "mixed",
        "intensities": list(CHAOS_INTENSITIES),
        "runs": 2,
        "duration": 420.0,
        "horizon": 210.0,
        "file_size_kib": 2048,
        "piece_length": 32_768,
        "base_seed": 1100,
    }

    def cells(self, p):
        for variant in ("default", "wp2p"):
            for intensity in p["intensities"]:
                for r in range(p["runs"]):
                    yield (variant, intensity), p["base_seed"] + r

    def run_cell(self, key, seed, p):
        variant, intensity = key
        return chaos_run(
            seed,
            preset=p["preset"],
            intensity=intensity,
            duration=p["duration"],
            wp2p=(variant == "wp2p"),
            horizon=p["horizon"],
            file_size=p["file_size_kib"] * 1024,
            piece_length=p["piece_length"],
        )

    def assemble(self, p, values, failures):
        runs = p["runs"]

        def sweep(variant: str, field: str) -> List[float]:
            out: List[float] = []
            for intensity in p["intensities"]:
                vals = collect(values, (variant, intensity))
                out.append(sum(v[field] for v in vals) / max(len(vals), 1))
            return out

        mean_faults = {
            variant: sweep(variant, "faults") for variant in ("default", "wp2p")
        }
        return ExperimentResult(
            figure="Chaos sweep",
            title="Mobile-leech completion time vs fault intensity "
                  f"({p['preset']} preset)",
            x_label="Chaos intensity",
            y_label="Completion time (s)",
            series=[
                Series("Default P2P", list(p["intensities"]), sweep("default", "completion")),
                Series("wP2P", list(p["intensities"]), sweep("wp2p", "completion")),
            ],
            paper_expectation=(
                "completion time degrades monotonically with fault intensity "
                "for both variants; wP2P (identity retention + role reversal) "
                "stays ahead of the default client at every nonzero intensity"
            ),
            notes="goodput (B/s) default: "
                  + ", ".join(f"{g:.0f}" for g in sweep("default", "goodput"))
                  + " | wp2p: "
                  + ", ".join(f"{g:.0f}" for g in sweep("wp2p", "goodput")),
            parameters={
                "preset": p["preset"],
                "intensities": list(p["intensities"]),
                "runs": runs,
                "duration_s": p["duration"],
                "file_size_kib": p["file_size_kib"],
                "mean_faults": mean_faults,
            },
        )


def figx_chaos(
    preset: str = "mixed",
    intensities: Sequence[float] = CHAOS_INTENSITIES,
    runs: int = 2,
    duration: float = 420.0,
    base_seed: int = 1100,
) -> ExperimentResult:
    """Chaos sweep: wP2P vs default under scheduled fault intensity."""
    return run_scenario("figx_chaos", {
        "preset": preset, "intensities": list(intensities), "runs": runs,
        "duration": duration, "base_seed": base_seed,
    })
