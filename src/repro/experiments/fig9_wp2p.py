"""Figure 9 — wP2P evaluation: mobility-aware fetching and role reversal
(§5.2.3–5.2.4).

* ``fig9ab``: playable %% vs downloaded %% — wP2P's mobility-aware
  fetching (pr = downloaded fraction) against default rarest-first, for
  the paper's 20-piece (5 MB) and 400-piece (100 MB) files.
* ``fig9c``: uploading throughput of two mobile seeds as their IP-change
  interval shrinks — role reversal (immediate re-initiation toward
  remembered peers) against the default client's task re-initiation.

Both figures are registered scenarios (``fig9ab``, ``fig9c``); the
functions of the same name remain as serial front doors.
"""

from __future__ import annotations

from typing import List, Sequence

from ..analysis import ExperimentResult, Series
from ..bittorrent import ClientConfig, RarestFirstSelector
from ..bittorrent.swarm import SwarmScenario
from ..media import average_curves
from ..runner import Scenario, collect, run_scenario, scenario
from ..wp2p import WP2PClient, WP2PConfig
from .fig4_mobility import GRID, playability_run


def mf_only_config(**overrides) -> WP2PConfig:
    """wP2P with only mobility-aware fetching active (isolates §5.2.3)."""
    cfg = WP2PConfig(
        am_enabled=False,
        mobility_aware_fetching=True,
        identity_retention=False,
        role_reversal=False,
    )
    for key, value in overrides.items():
        setattr(cfg, key, value)
    return cfg


def rr_only_config(**overrides) -> WP2PConfig:
    """wP2P with role reversal + identity retention (isolates §5.2.4)."""
    cfg = WP2PConfig(
        am_enabled=False,
        mobility_aware_fetching=False,
        identity_retention=True,
        role_reversal=True,
    )
    for key, value in overrides.items():
        setattr(cfg, key, value)
    return cfg


def _mf_factory(sim, host, torrent, **kwargs):
    kwargs.setdefault("config", mf_only_config())
    return WP2PClient(sim, host, torrent, **kwargs)


@scenario
class Fig9AB(Scenario):
    """Mobility-aware fetching vs rarest-first playability (Figure 9(a, b))."""

    name = "fig9ab"
    description = (
        "Figure 9(a, b): mobility-aware fetching vs rarest-first playability"
    )
    defaults = {
        "num_pieces": 20,
        "runs": 10,
        "base_seed": 950,
        "grid": GRID,
    }

    def cells(self, p):
        for variant in ("default", "wp2p"):
            for r in range(p["runs"]):
                yield (variant,), p["base_seed"] + r

    def run_cell(self, key, seed, p):
        if key[0] == "wp2p":
            curve = playability_run(seed, p["num_pieces"], client_factory=_mf_factory)
        else:
            curve = playability_run(
                seed, p["num_pieces"], selector=RarestFirstSelector()
            )
        return [[d, play] for d, play in curve]

    def assemble(self, p, values, failures):
        num_pieces = p["num_pieces"]

        def averaged(variant: str):
            curves = [
                [(d, play) for d, play in curve]
                for curve in collect(values, (variant,))
            ]
            return average_curves(curves, p["grid"])

        default_avg = averaged("default")
        wp2p_avg = averaged("wp2p")
        figure = "Figure 9(a)" if num_pieces == 20 else "Figure 9(b)"
        return ExperimentResult(
            figure=figure,
            title=f"Mobility-aware fetching playability ({num_pieces} pieces)",
            x_label="Downloaded percentage (%)",
            y_label="Playable percentage (%)",
            series=[
                Series("Default P2P", [g for g, _ in default_avg], [p for _, p in default_avg]),
                Series("wP2P", [g for g, _ in wp2p_avg], [p for _, p in wp2p_avg]),
            ],
            paper_expectation=(
                "wP2P keeps a large in-sequence playable prefix throughout "
                "(e.g. ~30% playable at 50% downloaded for 5 MB vs ~5% default)"
            ),
            parameters={"num_pieces": num_pieces, "runs": p["runs"]},
        )


def fig9ab(
    num_pieces: int,
    runs: int = 10,
    base_seed: int = 950,
    grid: Sequence[float] = GRID,
) -> ExperimentResult:
    """Mobility-aware fetching vs rarest-first playability (Figure 9(a, b)).

    ``num_pieces=20`` is the paper's 5 MB file, ``num_pieces=400`` the
    100 MB file; pr equals the downloaded fraction, as in the paper's
    evaluation.
    """
    return run_scenario("fig9ab", {
        "num_pieces": num_pieces, "runs": runs,
        "base_seed": base_seed, "grid": list(grid),
    })


ROLE_REVERSAL_INTERVALS: Sequence[float] = (180.0, 120.0, 60.0)
ROLE_REVERSAL_LABELS = ("Every 6 min", "Every 4 min", "Every 2 min")
"""Paper intervals scaled 2x down; the 6:4:2 ratio is preserved."""


def _fig9c_run(
    seed: int,
    interval: float,
    wp2p: bool,
    duration: float,
) -> float:
    """One run: aggregate upload throughput of the two mobile seeds."""
    sc = SwarmScenario(
        seed=seed,
        file_size=256 * 1024 * 1024,
        piece_length=131_072,
        tracker_interval=60.0,
    )
    leech_cfg = ClientConfig(unchoke_slots=3, choke_interval=5.0)
    for i in range(4):
        sc.add_wired_peer(f"f{i}", down_rate=500_000, up_rate=48_000, config=leech_cfg)
    seeds = []
    for i in range(2):
        if wp2p:
            cfg = rr_only_config(unchoke_slots=3, choke_interval=5.0)
            handle = sc.add_wireless_peer(
                f"m{i}", complete=True, rate=150_000, config=cfg,
                client_factory=WP2PClient,
            )
        else:
            cfg = ClientConfig(
                unchoke_slots=3, choke_interval=5.0, task_restart_delay=15.0
            )
            handle = sc.add_wireless_peer(
                f"m{i}", complete=True, rate=150_000, config=cfg
            )
        seeds.append(handle)
        sc.add_mobility(handle, interval=interval, downtime=2.0, jitter=interval * 0.2)
    sc.start_all()
    sc.run(until=duration)
    uploaded = sum(h.client.uploaded.total for h in seeds)
    return uploaded / duration / 2.0  # per-seed average


@scenario
class Fig9C(Scenario):
    """Role reversal: mobile-seed upload throughput vs mobility rate."""

    name = "fig9c"
    description = "Figure 9(c): role reversal vs task re-initiation under mobility"
    defaults = {
        "intervals": list(ROLE_REVERSAL_INTERVALS),
        "runs": 2,
        "duration": 360.0,
        "base_seed": 980,
    }

    def cells(self, p):
        for variant in ("default", "wp2p"):
            for interval in p["intervals"]:
                for r in range(p["runs"]):
                    yield (variant, interval), p["base_seed"] + r

    def run_cell(self, key, seed, p):
        variant, interval = key
        return _fig9c_run(seed, interval, wp2p=(variant == "wp2p"), duration=p["duration"])

    def assemble(self, p, values, failures):
        runs = p["runs"]

        def sweep(variant: str, label: str) -> Series:
            ys: List[float] = []
            for interval in p["intervals"]:
                vals = collect(values, (variant, interval))
                ys.append(sum(vals) / runs / 1000.0)
            return Series(label, list(range(len(p["intervals"]))), ys)

        return ExperimentResult(
            figure="Figure 9(c)",
            title="Role reversal: mobile seeds' upload throughput under mobility",
            x_label="Mobility rate",
            y_label="Uploading throughput (KB/s)",
            series=[sweep("default", "Default P2P"), sweep("wp2p", "wP2P")],
            paper_expectation=(
                "upload throughput falls with faster mobility for both; wP2P "
                "stays higher, with the advantage growing as disruptions become "
                "more frequent (up to ~50%)"
            ),
            notes="x axis: " + ", ".join(ROLE_REVERSAL_LABELS) + " (2x time-scaled)",
            parameters={
                "intervals_s": list(p["intervals"]),
                "runs": runs,
                "duration_s": p["duration"],
            },
        )


def fig9c(
    intervals: Sequence[float] = ROLE_REVERSAL_INTERVALS,
    runs: int = 2,
    duration: float = 360.0,
    base_seed: int = 980,
) -> ExperimentResult:
    """Role reversal: mobile-seed upload throughput vs mobility rate."""
    return run_scenario("fig9c", {
        "intervals": list(intervals), "runs": runs,
        "duration": duration, "base_seed": base_seed,
    })
