"""Shared experiment machinery.

Raw-TCP topologies and bulk-transfer apps for the transport-level figures
(Figure 2, Figure 8(a) uses BitTorrent), plus multi-run averaging helpers.

Scaling: every experiment accepts its paper parameters but defaults to
scaled-down values chosen so a full bench run finishes in seconds; the
scale factors are recorded in each result's ``parameters``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..net import (
    AddressAllocator,
    Host,
    Internet,
    WirelessChannel,
    attach_wired_host,
    attach_wireless_host,
)
from ..obs.tracing import JSONLSink, TraceSink
from ..sim import Simulator
from ..tcp import TCPConfig, TCPConnection, TCPStack


class Payload:
    """A generic application message for raw-TCP experiments."""

    __slots__ = ("wire_length",)

    def __init__(self, wire_length: int) -> None:
        self.wire_length = wire_length


class BulkSender:
    """Keeps a TCP connection's send buffer topped up (bulk transfer)."""

    def __init__(
        self,
        sim: Simulator,
        conn: TCPConnection,
        chunk: int = 1460,
        window: int = 64 * 1024,
        poll: float = 0.05,
    ) -> None:
        self.sim = sim
        self.conn = conn
        self.chunk = chunk
        self.window = window
        self.poll = poll
        self.running = False
        self.bytes_queued = 0

    def start(self) -> None:
        self.running = True
        self._pump()

    def stop(self) -> None:
        self.running = False

    def _pump(self) -> None:
        if not self.running or self.conn.closed:
            return
        if self.conn.established:
            while self.conn.send_buffer_bytes < self.window:
                self.conn.send_message(Payload(self.chunk))
                self.bytes_queued += self.chunk
        self.sim.schedule(self.poll, self._pump)


class WirelessPairTopology:
    """Fixed wired peer <-> Internet <-> wireless mobile peer.

    The canonical §3.2 setup: one fixed correspondent and one mobile host
    behind an emulated wireless leg.
    """

    def __init__(
        self,
        seed: int = 0,
        rate: float = 100_000.0,
        ber: float = 0.0,
        ap_queue_packets: int = 50,
        core_delay: float = 0.02,
        tcp_config: Optional[TCPConfig] = None,
        trace_path: Optional[str] = None,
    ) -> None:
        self.sim = Simulator(seed=seed)
        # Observability: ``trace_path`` attaches a JSONL sink to this
        # run's event bus, so a single topology can be traced without
        # installing global defaults (render with scripts/run_report.py).
        self.trace_sink: Optional[TraceSink] = None
        if trace_path is not None:
            self.trace_sink = self.sim.trace.attach(JSONLSink(trace_path))
        self.internet = Internet(self.sim, core_delay=core_delay)
        self.alloc = AddressAllocator()
        self.fixed = Host(self.sim, "fixed")
        self.mobile = Host(self.sim, "mobile")
        self.fixed_stack = TCPStack(self.sim, self.fixed, config=tcp_config)
        self.mobile_stack = TCPStack(self.sim, self.mobile, config=tcp_config)
        attach_wired_host(
            self.sim, self.fixed, self.internet, self.alloc.allocate(),
            down_rate=1_000_000, up_rate=1_000_000,
        )
        self.channel: WirelessChannel = attach_wireless_host(
            self.sim, self.mobile, self.internet, self.alloc.allocate(),
            rate=rate, ber=ber, ap_queue_packets=ap_queue_packets,
        )


@dataclass
class TransferStats:
    """Outcome of one raw-TCP transfer run."""

    delivered_down: int  # payload bytes delivered at the mobile host
    delivered_up: int  # payload bytes delivered at the fixed host
    duration: float

    @property
    def down_rate_kbps(self) -> float:
        """Download throughput at the mobile host, KB/s."""
        return self.delivered_down / self.duration / 1000.0


def run_transfer(
    seed: int,
    ber: float,
    bidirectional: bool,
    duration: float = 40.0,
    rate: float = 60_000.0,
    ap_queue_packets: int = 50,
    warmup: float = 2.0,
    trace_path: Optional[str] = None,
) -> TransferStats:
    """One fixed->mobile transfer (optionally with a reverse bulk stream
    on the *same* connection — true bi-directional TCP).

    ``trace_path`` records the run's structured event log as JSONL (see
    :mod:`repro.obs.tracing`)."""
    topo = WirelessPairTopology(
        seed=seed, rate=rate, ber=ber, ap_queue_packets=ap_queue_packets,
        trace_path=trace_path,
    )
    # try/finally so an exception mid-run still flushes and closes the
    # trace sink — a truncated-but-valid JSONL log beats a leaked handle.
    try:
        server_conns: List[TCPConnection] = []
        topo.mobile_stack.listen(6881, server_conns.append)
        conn = topo.fixed_stack.connect(topo.mobile.ip, 6881)
        down_sender = BulkSender(topo.sim, conn)
        topo.sim.schedule(0.1, down_sender.start)
        if bidirectional:
            def start_reverse() -> None:
                if server_conns:
                    BulkSender(topo.sim, server_conns[0]).start()
                else:
                    topo.sim.schedule(0.2, start_reverse)

            topo.sim.schedule(0.3, start_reverse)
        topo.sim.run(until=warmup)
        base_down = server_conns[0].stats.payload_bytes_delivered if server_conns else 0
        base_up = conn.stats.payload_bytes_delivered
        topo.sim.run(until=warmup + duration)
        delivered_down = (
            server_conns[0].stats.payload_bytes_delivered - base_down if server_conns else 0
        )
        delivered_up = conn.stats.payload_bytes_delivered - base_up
    finally:
        if topo.trace_sink is not None:
            topo.trace_sink.close()
    return TransferStats(delivered_down, delivered_up, duration)


def mean_over_seeds(
    fn: Callable[[int], float], runs: int, base_seed: int = 0
) -> float:
    """Average ``fn(seed)`` over ``runs`` distinct seeds."""
    values = [fn(base_seed + i) for i in range(runs)]
    return sum(values) / len(values)


def random_piece_subset(
    rng, num_pieces: int, fraction: float
) -> List[int]:
    """A random subset of piece indices covering ``fraction`` of the file."""
    count = max(1, int(round(num_pieces * fraction)))
    return sorted(rng.sample(range(num_pieces), min(count, num_pieces)))
