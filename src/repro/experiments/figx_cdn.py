"""CDN workload sweep — origin offload vs mobile hosts (``figx_cdn``).

Not a figure from the paper: the paper's single-swarm economics scaled
up to a content catalog.  A :class:`~repro.cdn.scenario.CdnScenario`
serves a Zipf-demanded catalog from a peer population plus an always-on
origin; the sweep raises the population's mobile fraction and measures
**origin offload** — the fraction of delivered bytes the *peers* carry.

The mechanism under test is the paper's, compounded across swarms: a
default mobile peer that hands off restarts every per-asset task under a
fresh peer ID and waits out the tracker interval before the swarms see
it again, so every asset it was seeding falls back onto the origin at
once.  wP2P clients (identity retention + role-reversal reconnect; AM is
per-host netfilter state and stays off in multi-swarm use) come back in
~half a second with their peer memory intact.

Expectation: offload decreases monotonically with the mobile fraction
under default clients, and wP2P recovers at least half of the lost
offload at every nonzero fraction — the CI ``cdn`` gate, asserted on
both backends.

The fluid backend maps the same axes through
:func:`repro.cdn.surrogate.cdn_fluid_cell`: popularity bands become
:class:`~repro.scale.assets.AssetClassParams` classes, mobility becomes
the :meth:`~repro.scale.model.PeerClass.availability` duty cycle, and
the origin carries its proportional share of each band's warm byte
flow.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..analysis import ExperimentResult, Series
from ..cdn import CdnScenario, cdn_fluid_cell
from ..runner import Scenario, collect, run_scenario, scenario

CLIENTS: Sequence[str] = ("default", "wp2p")
MOBILE_FRACTIONS: Sequence[float] = (0.0, 0.4, 0.8)

#: Tolerance for the monotonicity check: offload values are means over a
#: handful of seeded runs, so "decreases" must absorb float noise.
GATE_EPSILON = 1e-6


def cdn_run(
    seed: int,
    client: str,
    mobile_fraction: float,
    p: Dict[str, object],
) -> Dict[str, object]:
    """One packet cell: a full multi-swarm CDN run at one sweep point."""
    if client not in CLIENTS:
        raise ValueError(f"unknown client {client!r} (expected {CLIENTS})")
    sc = CdnScenario(
        seed=seed,
        catalog=p["catalog"],
        demand=p["demand"],
        origin=p["origin"],
        peers=int(p["peers"]),
        mobile_fraction=float(mobile_fraction),
        wp2p=(client == "wp2p"),
        horizon=float(p["duration"]),
        peer_up_rate=float(p["peer_up_rate"]),
        wireless_rate=float(p["wireless_rate"]),
        handoff_interval=float(p["handoff_interval"]),
        handoff_downtime=float(p["handoff_downtime"]),
        tracker_interval=float(p["tracker_interval"]),
    )
    sc.run()
    return sc.results()


def cdn_fluid_run(
    client: str, mobile_fraction: float, p: Dict[str, object]
) -> Dict[str, object]:
    """One fluid cell: the same sweep point through the band surrogate."""
    if client not in CLIENTS:
        raise ValueError(f"unknown client {client!r} (expected {CLIENTS})")
    return cdn_fluid_cell(
        catalog=p["catalog"],
        demand=p["demand"],
        origin=p["origin"],
        peers=int(p["peers"]),
        mobile_fraction=float(mobile_fraction),
        wp2p=(client == "wp2p"),
        horizon=float(p["duration"]),
        peer_up_rate=float(p["peer_up_rate"]),
        wireless_rate=float(p["wireless_rate"]),
        handoff_interval=float(p["handoff_interval"]),
        handoff_downtime=float(p["handoff_downtime"]),
    )


@scenario
class FigXCdn(Scenario):
    """Origin offload & hit latency vs mobile fraction, default vs wP2P."""

    name = "figx_cdn"
    description = (
        "CDN workload sweep: catalog hit latency and origin offload vs "
        "mobile-host fraction, default clients vs wP2P"
    )
    backends = ("packet", "fluid")
    defaults = {
        "clients": list(CLIENTS),
        "mobile_fractions": list(MOBILE_FRACTIONS),
        "runs": 4,
        "peers": 10,
        "catalog": "assets:4,size_kib:256,piece_kib:16",
        "demand": "zipf:0.9@0.15",
        "origin": {
            "policy": "pin_top_k", "k": 1, "capacity": 4,
            "up_rate": 100_000.0,
        },
        "duration": 600.0,
        "peer_up_rate": 50_000.0,
        "wireless_rate": 48_000.0,
        "handoff_interval": 15.0,
        "handoff_downtime": 2.0,
        "tracker_interval": 90.0,
        "base_seed": 1400,
    }

    def cells(self, p):
        for client in p["clients"]:
            for fraction in p["mobile_fractions"]:
                for r in range(p["runs"]):
                    yield (client, fraction), p["base_seed"] + r

    def run_cell(self, key, seed, p):
        client, fraction = key
        return cdn_run(seed, str(client), float(fraction), dict(p))

    def run_cell_fluid(self, key, seed, p):
        client, fraction = key
        return cdn_fluid_run(str(client), float(fraction), dict(p))

    def assemble(self, p, values, failures):
        fractions = [float(f) for f in p["mobile_fractions"]]
        clients = [str(c) for c in p["clients"]]

        def sweep(client: str, field: str) -> List[float]:
            out: List[float] = []
            for fraction in fractions:
                vals = collect(values, (client, fraction))
                out.append(
                    sum(float(v[field]) for v in vals) / max(len(vals), 1)
                )
            return out

        offload = {c: sweep(c, "offload") for c in clients}
        latency = {c: sweep(c, "mean_latency") for c in clients}
        completion = {c: sweep(c, "catalog_completion") for c in clients}

        gate: Dict[str, object] = {}
        if "default" in offload and "wp2p" in offload:
            default_off = offload["default"]
            wp2p_off = offload["wp2p"]
            baseline = default_off[0]
            gaps = [baseline - d for d in default_off]
            recovered = [w - d for w, d in zip(wp2p_off, default_off)]
            monotone = all(
                later <= earlier + GATE_EPSILON
                for earlier, later in zip(default_off, default_off[1:])
            )
            # wP2P must win back >= half the offload mobility cost at
            # every fraction where there is a cost to win back.
            recovers = all(
                rec >= 0.5 * gap - GATE_EPSILON
                for gap, rec in zip(gaps, recovered)
                if gap > GATE_EPSILON
            )
            gate = {
                "mobile_fractions": fractions,
                "default_offload": default_off,
                "wp2p_offload": wp2p_off,
                "gaps": gaps,
                "recovered": recovered,
                "offload_monotone_decreasing": monotone,
                "wp2p_recovers_half_gap": recovers,
            }

        labels = {"default": "Default clients", "wp2p": "wP2P mobile clients"}
        return ExperimentResult(
            figure="CDN sweep",
            title=(
                "Origin offload vs mobile-host fraction "
                f"({p['catalog']}, {p['demand']})"
            ),
            x_label="Mobile-host fraction",
            y_label="Origin offload (peer bytes / delivered bytes)",
            series=[
                Series(labels.get(c, c), fractions, offload[c])
                for c in clients
            ],
            paper_expectation=(
                "origin offload decreases monotonically with the mobile "
                "fraction under default clients (every handoff restarts "
                "every per-asset task and the origin absorbs the seeding "
                "loss across all swarms at once); wP2P identity retention "
                "and role-reversal reconnect recover at least half of the "
                "lost offload at every nonzero fraction"
            ),
            notes="mean hit latency (s) "
                  + " | ".join(
                      f"{c}: "
                      + ", ".join(f"{t:.1f}" for t in latency[c])
                      for c in clients
                  ),
            parameters={
                "clients": clients,
                "mobile_fractions": fractions,
                "runs": p["runs"],
                "duration_s": p["duration"],
                "catalog": p["catalog"],
                "demand": p["demand"],
                "origin": p["origin"],
                "offload": offload,
                "catalog_completion": completion,
                "gate": gate,
            },
        )


def figx_cdn(
    clients: Sequence[str] = CLIENTS,
    mobile_fractions: Sequence[float] = MOBILE_FRACTIONS,
    runs: int = 4,
    duration: float = 600.0,
    base_seed: int = 1400,
) -> ExperimentResult:
    """CDN sweep: origin offload vs mobile fraction, default vs wP2P."""
    return run_scenario("figx_cdn", {
        "clients": list(clients),
        "mobile_fractions": list(mobile_fractions),
        "runs": runs, "duration": duration, "base_seed": base_seed,
    })
