"""Experiment reproductions — one function per figure of the paper.

========  ==========================================  =====================
figure    content                                     function
========  ==========================================  =====================
2(a)      bi- vs uni-TCP throughput over BER          :func:`fig2a`
2(b, c)   wireless-leg packets around congestion      :func:`fig2bc`
3(a)      download vs upload cap, wired               :func:`fig3a`
3(b)      download vs upload cap, wireless            :func:`fig3b`
3(c)      incentives x mobility download progress     :func:`fig3c`
4(a)      server mobility vs fixed-peer throughput    :func:`fig4a`
4(b, c)   rarest-first playability (20/400 pieces)    :func:`fig4bc`
8(a)      AM vs default over BER                      :func:`fig8a`
8(b)      identity retention under mobility           :func:`fig8b`
8(c)      LIHD vs bandwidth                           :func:`fig8c`
9(a, b)   mobility-aware fetching playability         :func:`fig9ab`
9(c)      role reversal upload throughput             :func:`fig9c`
========  ==========================================  =====================

Each returns an :class:`repro.analysis.ExperimentResult` whose ``table()``
prints the same rows/series the paper plots, alongside the paper's
qualitative expectation.
"""

from .base import (
    BulkSender,
    Payload,
    TransferStats,
    WirelessPairTopology,
    mean_over_seeds,
    random_piece_subset,
    run_transfer,
)
from .fig2_bitcp import (
    cluster_drops,
    drop_response_ratio,
    fig2a,
    fig2bc,
    post_congestion_starvation,
)
from .fig3_incentives import fig3a, fig3b, fig3c
from .fig4_mobility import fig4a, fig4bc, playability_run
from .fig8_wp2p import am_only_config, fig8a, fig8b, fig8c, ia_config
from .fig9_wp2p import fig9ab, fig9c, mf_only_config, rr_only_config
from .figx_arena import arena_run, figx_arena
from .figx_cdn import cdn_fluid_run, cdn_run, figx_cdn
from .figx_chaos import chaos_run, figx_chaos
from .figx_erasure import erasure_run, erasure_schedule, figx_erasure
from .figx_hybrid import figx_hybrid, hybrid_cell
from .figx_scale import figx_scale, fluid_cell, packet_cell

__all__ = [
    "BulkSender",
    "Payload",
    "TransferStats",
    "WirelessPairTopology",
    "mean_over_seeds",
    "random_piece_subset",
    "run_transfer",
    "cluster_drops",
    "drop_response_ratio",
    "fig2a",
    "fig2bc",
    "post_congestion_starvation",
    "fig3a",
    "fig3b",
    "fig3c",
    "fig4a",
    "fig4bc",
    "playability_run",
    "am_only_config",
    "ia_config",
    "fig8a",
    "fig8b",
    "fig8c",
    "fig9ab",
    "fig9c",
    "mf_only_config",
    "rr_only_config",
    "arena_run",
    "figx_arena",
    "cdn_fluid_run",
    "cdn_run",
    "figx_cdn",
    "chaos_run",
    "erasure_run",
    "erasure_schedule",
    "figx_chaos",
    "figx_erasure",
    "figx_hybrid",
    "hybrid_cell",
    "figx_scale",
    "fluid_cell",
    "packet_cell",
]
