"""Scale sweep — swarm size × mobile-host fraction (``figx_scale``).

Not a figure from the paper: the paper's mobile-vs-wired findings
(§3.4–§5.2) extended to realistic swarm sizes on the
:mod:`repro.scale` mean-field fluid backend.  A swarm of ``N`` peers —
a fixed block of wired seeds plus wired leechers and a ``mobile_fraction``
of mobile leechers — downloads one file; the mobile leechers either run
the deployed-client **default** policy (every IP change tears the task
down and rejoins under a fresh peer ID) or **wP2P** (identity retention
+ LIHD upload throttling on the shared wireless cell).

The scenario supports both backends: ``fluid`` (the default) integrates
populations and handles 10^2–10^6 peers in milliseconds per cell;
``packet`` builds the real discrete-event swarm and is capped at small
N, where it serves as the cross-validation anchor
(:mod:`repro.scale.validate` runs the systematic comparison).

Expectation: completion time degrades as the mobile-host fraction
rises, wP2P stays ahead of the default client wherever mobile hosts are
present, and both backends agree at small N.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .. import chaos as chaos_mod
from ..analysis import ExperimentResult, Series
from ..bittorrent import ClientConfig
from ..bittorrent.swarm import SwarmScenario
from ..chaos import preset_schedule
from ..runner import Scenario, collect, run_scenario, scenario
from ..scale import FluidParams, FluidSwarm, PeerClass
from ..wp2p import WP2PClient
from .fig9_wp2p import rr_only_config

SWARM_SIZES: Sequence[int] = (100, 1_000, 10_000, 100_000)
MOBILE_FRACTIONS: Sequence[float] = (0.0, 0.2, 0.5)

#: The packet backend builds one real host per peer; beyond this the
#: event-level simulator is the wrong tool (that is what fluid is for).
PACKET_SIZE_CAP = 64


def _fluid_classes(
    size: int,
    mobile_fraction: float,
    wp2p: bool,
    p: Dict[str, object],
) -> List[PeerClass]:
    """The peer-class decomposition of one (size, fraction, variant) cell."""
    seeds = min(size - 1, int(p["seed_count"]))
    mobile = round((size - seeds) * mobile_fraction)
    wired = size - seeds - mobile
    classes = [
        PeerClass(
            "seeds", float(seeds), float(p["seed_up_rate"]), 1_000_000.0,
            seed=True,
        ),
    ]
    if wired > 0:
        classes.append(PeerClass(
            "wired", float(wired), float(p["wired_up_rate"]),
            float(p["wired_down_rate"]),
        ))
    if mobile > 0:
        classes.append(PeerClass(
            "mobile", float(mobile), float(p["mobile_up_rate"]),
            float(p["wireless_rate"]),
            mobile=True, wp2p=wp2p, wireless_shared=True,
            handoff_interval=float(p["handoff_interval"]),
            handoff_downtime=float(p["handoff_downtime"]),
            restart_delay=float(p["restart_delay"]),
            selection="inorder" if wp2p else "rarest",
        ))
    return classes


def fluid_cell(
    size: int,
    mobile_fraction: float,
    wp2p: bool,
    p: Dict[str, object],
) -> Dict[str, object]:
    """One fluid-backend cell: per-class completion/goodput + engine stats."""
    params = FluidParams(
        file_size=int(p["file_size_kib"]) * 1024,
        piece_length=int(p["piece_length"]),
        classes=tuple(_fluid_classes(size, mobile_fraction, wp2p, p)),
        dt=float(p["dt"]),
        max_time=float(p["max_time"]),
    )
    # Mirror the packet path's ambient chaos: the runner's --chaos preset
    # maps onto fluid rate windows (churn, tracker outage, ...).
    schedule = None
    opts = chaos_mod.options()
    if opts is not None:
        schedule = preset_schedule(
            str(opts["preset"]), float(opts["intensity"]), float(opts["horizon"])
        )
    result = FluidSwarm(params, chaos=schedule).run()
    wired = result.classes.get("wired")
    mobile = result.classes.get("mobile")
    playable_mid = None
    if mobile is not None:
        # Playability surrogate at 50% downloaded (streaming readiness).
        playable_mid = next(
            play for down, play in mobile.playability if down >= 50.0
        )
    return {
        "completion": result.leecher_completion_time(),
        "wired_completion": wired.completion_time if wired else None,
        "mobile_completion": mobile.completion_time if mobile else None,
        "wired_goodput": wired.mean_goodput if wired else None,
        "mobile_goodput": mobile.mean_goodput if mobile else None,
        "playable_at_half": playable_mid,
        "steps": result.steps,
        "peak_swarm": result.peak_population,
    }


def packet_cell(
    seed: int,
    size: int,
    mobile_fraction: float,
    wp2p: bool,
    p: Dict[str, object],
) -> Dict[str, object]:
    """One packet-backend cell: the same topology as real hosts."""
    if size > PACKET_SIZE_CAP:
        raise ValueError(
            f"packet backend supports swarm_size <= {PACKET_SIZE_CAP} "
            f"(got {size}); use --backend fluid for large swarms"
        )
    seeds = min(size - 1, int(p["seed_count"]))
    mobile = round((size - seeds) * mobile_fraction)
    wired = size - seeds - mobile
    sc = SwarmScenario(
        seed=seed,
        file_size=int(p["file_size_kib"]) * 1024,
        piece_length=int(p["piece_length"]),
        tracker_interval=60.0,
    )
    for i in range(seeds):
        sc.add_wired_peer(
            f"s{i}", complete=True,
            down_rate=1_000_000, up_rate=float(p["seed_up_rate"]),
        )
    for i in range(wired):
        sc.add_wired_peer(
            f"w{i}", down_rate=float(p["wired_down_rate"]),
            up_rate=float(p["wired_up_rate"]),
        )
    mobiles = []
    for i in range(mobile):
        if wp2p:
            handle = sc.add_wireless_peer(
                f"m{i}", rate=float(p["wireless_rate"]),
                config=rr_only_config(), client_factory=WP2PClient,
            )
        else:
            handle = sc.add_wireless_peer(
                f"m{i}", rate=float(p["wireless_rate"]),
                config=ClientConfig(task_restart_delay=float(p["restart_delay"])),
            )
        sc.add_mobility(
            handle, interval=float(p["handoff_interval"]),
            downtime=float(p["handoff_downtime"]),
        )
        mobiles.append(handle)
    sc.start_all()
    leechers = [n for n, h in sc.peers.items() if not h.client.complete]
    sc.run_until_complete(names=leechers, timeout=float(p["max_time"]))

    def _completion(names: List[str]) -> Optional[float]:
        times = [sc.peers[n].client.completion_time for n in names]
        if any(t is None for t in times):
            return None
        return max(times) if times else None

    def _goodput(names: List[str]) -> Optional[float]:
        rates = []
        for n in names:
            client = sc.peers[n].client
            if client.completion_time:
                rates.append(
                    client.manager.bytes_completed / client.completion_time
                )
        return sum(rates) / len(rates) if rates else None

    wired_names = [f"w{i}" for i in range(wired)]
    mobile_names = [f"m{i}" for i in range(mobile)]
    return {
        "completion": _completion(leechers),
        "wired_completion": _completion(wired_names),
        "mobile_completion": _completion(mobile_names),
        "wired_goodput": _goodput(wired_names),
        "mobile_goodput": _goodput(mobile_names),
        "playable_at_half": None,
        "steps": sc.sim.events_processed,
        "peak_swarm": float(size),
    }


@scenario
class FigXScale(Scenario):
    """Swarm size × mobile fraction sweep, default vs wP2P clients."""

    name = "figx_scale"
    description = (
        "Scale sweep: completion time vs swarm size and mobile-host "
        "fraction, default vs wP2P (fluid backend; packet at small N)"
    )
    backends = ("fluid", "packet")
    defaults = {
        "swarm_sizes": list(SWARM_SIZES),
        "mobile_fractions": list(MOBILE_FRACTIONS),
        "runs": 1,
        # A fixed seed block, not a fraction: larger swarms must
        # self-scale on leecher upload capacity, which is the effect the
        # sweep exists to show.
        "seed_count": 5,
        "seed_up_rate": 96_000.0,
        "wired_up_rate": 48_000.0,
        "wired_down_rate": 500_000.0,
        "mobile_up_rate": 24_000.0,
        "wireless_rate": 100_000.0,
        "handoff_interval": 90.0,
        "handoff_downtime": 1.0,
        "restart_delay": 15.0,
        "file_size_kib": 4096,
        "piece_length": 65_536,
        "dt": 0.25,
        "max_time": 7_200.0,
        "base_seed": 1500,
    }

    def cells(self, p):
        for variant in ("default", "wp2p"):
            for size in p["swarm_sizes"]:
                for fraction in p["mobile_fractions"]:
                    if fraction == 0.0 and variant == "wp2p":
                        # No mobile hosts -> the variants are identical;
                        # keep one baseline cell instead of two copies.
                        continue
                    for r in range(p["runs"]):
                        yield (variant, size, fraction), p["base_seed"] + r

    def run_cell(self, key, seed, p):
        variant, size, fraction = key
        return packet_cell(seed, int(size), float(fraction),
                           wp2p=(variant == "wp2p"), p=dict(p))

    def run_cell_fluid(self, key, seed, p):
        variant, size, fraction = key
        return fluid_cell(int(size), float(fraction),
                          wp2p=(variant == "wp2p"), p=dict(p))

    def assemble(self, p, values, failures):
        sizes = [int(s) for s in p["swarm_sizes"]]
        fractions = [float(f) for f in p["mobile_fractions"]]
        headline = next((f for f in fractions if f > 0.0), fractions[0])
        max_time = float(p["max_time"])

        def mean_completion(variant: str, size: int, fraction: float) -> float:
            lookup = variant if fraction > 0.0 else "default"
            vals = collect(values, (lookup, size, fraction))
            if not vals:
                return max_time
            times = [
                v["completion"] if v["completion"] is not None else max_time
                for v in vals
            ]
            return sum(times) / len(times)

        series = [
            Series(
                f"Default P2P ({headline:.0%} mobile)",
                [float(s) for s in sizes],
                [mean_completion("default", s, headline) for s in sizes],
            ),
            Series(
                f"wP2P ({headline:.0%} mobile)",
                [float(s) for s in sizes],
                [mean_completion("wp2p", s, headline) for s in sizes],
            ),
        ]
        if 0.0 in fractions:
            series.insert(0, Series(
                "All-wired baseline",
                [float(s) for s in sizes],
                [mean_completion("default", s, 0.0) for s in sizes],
            ))

        grid: Dict[str, Dict[str, object]] = {}
        total_steps = 0.0
        peak_swarm = 0.0
        for (variant, size, fraction), seed in sorted(
            values, key=lambda cell: (cell[0][0], cell[0][1], cell[0][2], cell[1])
        ):
            v = values[((variant, size, fraction), seed)]
            grid[f"{variant}/{size}/{fraction:g}"] = {
                "completion": v["completion"],
                "mobile_completion": v["mobile_completion"],
                "mobile_goodput": v["mobile_goodput"],
                "wired_goodput": v["wired_goodput"],
                "playable_at_half": v["playable_at_half"],
            }
            total_steps += float(v["steps"])
            peak_swarm = max(peak_swarm, float(v["peak_swarm"]))

        return ExperimentResult(
            figure="Scale sweep",
            title="Completion time vs swarm size and mobile-host fraction",
            x_label="Swarm size (peers)",
            y_label="Completion time (s)",
            series=series,
            paper_expectation=(
                "completion time rises with the mobile-host fraction at "
                "every swarm size; wP2P (identity retention + LIHD) stays "
                "ahead of the default client wherever mobile hosts are "
                "present, extending the paper's small-testbed findings to "
                "realistic swarm sizes"
            ),
            notes=(
                "mobile fractions swept: "
                + ", ".join(f"{f:g}" for f in fractions)
            ),
            parameters={
                "swarm_sizes": sizes,
                "mobile_fractions": fractions,
                "runs": p["runs"],
                "grid": grid,
                "engine_steps": total_steps,
                "peak_swarm_size": peak_swarm,
            },
        )


def figx_scale(
    swarm_sizes: Sequence[int] = SWARM_SIZES,
    mobile_fractions: Sequence[float] = MOBILE_FRACTIONS,
    runs: int = 1,
    backend: Optional[str] = None,
) -> ExperimentResult:
    """Scale sweep on the fluid backend (or ``backend="packet"`` at small N)."""
    return run_scenario("figx_scale", {
        "swarm_sizes": list(swarm_sizes),
        "mobile_fractions": list(mobile_fractions),
        "runs": runs,
    }, backend=backend)
