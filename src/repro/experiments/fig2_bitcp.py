"""Figure 2 — the impact of bi-directional TCP on a wireless leg (§3.2).

* ``fig2a``: download throughput of the mobile host, bi-directional vs
  uni-directional TCP, swept over bit error rate.  Paper: bi-TCP is below
  uni-TCP everywhere (self-contention at BER 0; piggybacked-ACK losses
  widen the gap as BER grows).

* ``fig2bc``: packets transmitted by the mobile client on the wireless leg
  over time, with buffer-drop (congestion) events.  Paper: after a
  congestion event the packet count falls for uni-directional TCP but
  stays roughly level for bi-directional TCP, because the receiver's pure
  DUPACKs replace the suppressed data packets.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..analysis import ExperimentResult, Series, summarize
from ..runner import Scenario, collect, run_scenario, scenario
from ..sim import mean
from .base import BulkSender, WirelessPairTopology, run_transfer

DEFAULT_BERS: Tuple[float, ...] = (0.0, 5e-6, 1e-5, 1.5e-5, 2e-5)


@scenario
class Fig2A(Scenario):
    """Bi-TCP vs uni-TCP downloading throughput across BER (Figure 2(a))."""

    name = "fig2a"
    description = "Figure 2(a): bi- vs uni-directional TCP throughput over BER"
    defaults = {
        "bers": list(DEFAULT_BERS),
        "runs": 5,
        "duration": 40.0,
        "rate": 60_000.0,
        "base_seed": 100,
    }

    def cells(self, p):
        for mode in ("uni", "bi"):
            for ber in p["bers"]:
                for i in range(p["runs"]):
                    yield (mode, ber), p["base_seed"] + i

    def run_cell(self, key, seed, p):
        mode, ber = key
        return run_transfer(
            seed, ber, bidirectional=(mode == "bi"),
            duration=p["duration"], rate=p["rate"],
        ).down_rate_kbps

    def assemble(self, p, values, failures):
        def sweep(mode: str) -> Series:
            ys: List[float] = []
            errs: List[float] = []
            for ber in p["bers"]:
                vals = collect(values, (mode, ber))
                ys.append(sum(vals) / len(vals))
                errs.append(summarize(vals).ci95)
            label = "Bi-TCP" if mode == "bi" else "Uni-TCP"
            return Series(label, list(p["bers"]), ys, y_err=errs)

        return ExperimentResult(
            figure="Figure 2(a)",
            title="Throughput comparison: bi- vs uni-directional TCP",
            x_label="BER",
            y_label="Downloading throughput (KB/s)",
            series=[sweep("bi"), sweep("uni")],
            paper_expectation=(
                "uni-TCP above bi-TCP at every BER; both decline as BER rises; "
                "the BER=0 gap captures upstream/downstream self-contention"
            ),
            parameters={
                "runs": p["runs"], "duration_s": p["duration"],
                "channel_Bps": p["rate"],
            },
        )


def fig2a(
    bers: Sequence[float] = DEFAULT_BERS,
    runs: int = 5,
    duration: float = 40.0,
    rate: float = 60_000.0,
    base_seed: int = 100,
) -> ExperimentResult:
    """Bi-TCP vs uni-TCP downloading throughput across BER (Figure 2(a))."""
    return run_scenario("fig2a", {
        "bers": list(bers), "runs": runs, "duration": duration,
        "rate": rate, "base_seed": base_seed,
    })


def _packets_and_drops(
    seed: int,
    bidirectional: bool,
    duration: float,
    rate: float,
    ap_queue_packets: int,
    bucket: float,
    core_delay: float,
) -> Tuple[List[Tuple[float, int]], List[float]]:
    """One run: client-transmitted packets per bucket + drop times."""
    topo = WirelessPairTopology(
        seed=seed, rate=rate, ber=0.0, ap_queue_packets=ap_queue_packets,
        core_delay=core_delay,
    )
    server_conns: list = []
    topo.mobile_stack.listen(6881, server_conns.append)
    conn = topo.fixed_stack.connect(topo.mobile.ip, 6881)
    BulkSender(topo.sim, conn).start()
    if bidirectional:
        def start_reverse() -> None:
            if server_conns:
                BulkSender(topo.sim, server_conns[0]).start()
            else:
                topo.sim.schedule(0.2, start_reverse)

        topo.sim.schedule(0.3, start_reverse)
    topo.sim.run(until=duration)
    counts = topo.channel.client_tx_series.bucketed_counts(bucket, 0.0, duration)
    drops = [d.time for d in topo.channel.buffer_drops]
    return counts, drops


@scenario
class Fig2BC(Scenario):
    """Packets on the wireless leg vs time, uni (2b) and bi (2c)."""

    name = "fig2bc"
    description = (
        "Figure 2(b, c): client packets on the wireless leg around congestion"
    )
    defaults = {
        "duration": 20.0,
        "rate": 60_000.0,
        "ap_queue_packets": 6,
        "bucket": 0.25,
        "seed": 7,
        "core_delay": 0.1,
    }

    def cells(self, p):
        yield ("uni",), p["seed"]
        yield ("bi",), p["seed"]

    def run_cell(self, key, seed, p):
        counts, drops = _packets_and_drops(
            seed, key[0] == "bi", p["duration"], p["rate"],
            p["ap_queue_packets"], p["bucket"], p["core_delay"],
        )
        return {"counts": [[t, c] for t, c in counts], "drops": drops}

    def assemble(self, p, values, failures):
        uni = collect(values, ("uni",))[0]
        bi = collect(values, ("bi",))[0]
        return ExperimentResult(
            figure="Figure 2(b, c)",
            title="Client packets on the wireless leg around congestion events",
            x_label="Time (s)",
            y_label="Packets sent from client per bucket",
            series=[
                Series("Uni-directional", [t for t, _ in uni["counts"]],
                       [float(c) for _, c in uni["counts"]]),
                Series("Bi-directional", [t for t, _ in bi["counts"]],
                       [float(c) for _, c in bi["counts"]]),
            ],
            paper_expectation=(
                "after a buffer drop, the uni-directional client's packet count "
                "decreases (fewer data -> fewer ACKs); the bi-directional "
                "client's stays approximately level (pure DUPACKs offset the "
                "halved data stream)"
            ),
            parameters={
                "uni_drop_times": uni["drops"],
                "bi_drop_times": bi["drops"],
                "ap_queue_packets": p["ap_queue_packets"],
                "bucket_s": p["bucket"],
            },
        )


def fig2bc(
    duration: float = 20.0,
    rate: float = 60_000.0,
    ap_queue_packets: int = 6,
    bucket: float = 0.25,
    seed: int = 7,
    core_delay: float = 0.1,
) -> ExperimentResult:
    """Packets on the wireless leg vs time, uni (2b) and bi (2c).

    The access-point queue is kept *smaller* than the path's
    bandwidth-delay product, so halving the window after a buffer drop
    genuinely starves the wireless leg (the regime the paper plots).
    """
    return run_scenario("fig2bc", {
        "duration": duration, "rate": rate, "ap_queue_packets": ap_queue_packets,
        "bucket": bucket, "seed": seed, "core_delay": core_delay,
    })


def cluster_drops(drop_times: Sequence[float], min_gap: float = 1.0) -> List[float]:
    """First drop of each congestion burst (droptail drops arrive in bursts)."""
    events: List[float] = []
    for t in sorted(drop_times):
        if not events or t - events[-1] >= min_gap:
            events.append(t)
    return events


def drop_response_ratio(
    counts: Series,
    drop_times: Sequence[float],
    window: float = 1.0,
    skip: float = 0.4,
) -> Optional[float]:
    """Mean(packets in the window after a congestion event) / mean(before),
    averaged over events.  < 1 means the wireless-leg load fell after
    congestion (the uni-directional behaviour); ~1 means it did not (bi).

    ``skip`` excludes the loss-recovery RTTs right after the drop, where
    the DUPACK burst transiently inflates both cases.  The first
    congestion event is excluded: it terminates the initial slow-start
    overshoot, where the packet count is still ramping either way.
    """
    if not counts.x:
        return None
    end = counts.x[-1]
    ratios: List[float] = []
    events = cluster_drops(drop_times, min_gap=skip + window)[1:]
    for drop in events:
        if drop - window < 0 or drop + skip + window > end:
            continue  # need full windows on both sides
        before = [
            y for x, y in zip(counts.x, counts.y) if drop - window <= x < drop
        ]
        after = [
            y
            for x, y in zip(counts.x, counts.y)
            if drop + skip < x <= drop + skip + window
        ]
        if before and after and mean(before) > 0:
            ratios.append(mean(after) / mean(before))
    return mean(ratios) if ratios else None


def post_congestion_starvation(
    counts: Series,
    drop_times: Sequence[float],
    before_window: float = 2.0,
    after_skip: float = 0.5,
    after_window: float = 2.0,
    threshold: float = 0.5,
) -> Optional[float]:
    """Fraction of congestion episodes after which the wireless leg starved.

    An episode "starves" when the minimum per-bucket packet count in the
    window after the event falls to ``threshold`` of the pre-event mean.
    Uni-directional TCP starves after nearly every event (cwnd halving
    empties the leg); bi-directional TCP does not — the receiver's pure
    DUPACKs keep the packet count level, the paper's §3.2 observation.
    The first episode (end of initial slow start) is excluded.
    """
    if not counts.x:
        return None
    end = counts.x[-1]
    outcomes: List[bool] = []
    for drop in cluster_drops(drop_times, min_gap=after_skip + after_window)[1:]:
        if drop - before_window < 0 or drop + after_skip + after_window > end:
            continue
        before = [
            y for x, y in zip(counts.x, counts.y) if drop - before_window <= x < drop
        ]
        after = [
            y
            for x, y in zip(counts.x, counts.y)
            if drop + after_skip < x <= drop + after_skip + after_window
        ]
        if before and after and mean(before) > 0:
            outcomes.append(min(after) <= threshold * mean(before))
    if not outcomes:
        return None
    return sum(outcomes) / len(outcomes)
