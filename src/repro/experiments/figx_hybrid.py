"""Hybrid sweep — focal mobile fraction × background size (``figx_hybrid``).

Not a figure from the paper: the paper's per-client questions (§3.4
default-client restarts vs §5 wP2P identity retention) re-asked *inside*
swarms only the fluid tier can represent.  A handful of packet-level
focal leechers — full TCP, choker, mobility, wP2P machinery — download
through the :mod:`repro.scale.hybrid` coupling facade from a mean-field
background of 10^3..10^5 peers, sweeping the fraction of focal hosts
that are mobile and the background size, for the default client vs
wP2P.

Expectation: focal completion time rises with the focal mobile
fraction (handoffs + restart penalty are packet-level effects), wP2P
stays ahead of the default client wherever focal mobiles are present,
and the background size moves completion only through the fluid
utilization trajectory — the per-client mechanisms keep operating
unchanged at every scale, which is exactly what the hybrid backend
exists to show.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .. import chaos as chaos_mod
from ..analysis import ExperimentResult, Series
from ..chaos import preset_schedule
from ..runner import Scenario, collect, run_scenario, scenario
from ..scale import HybridSpec, run_hybrid

BACKGROUND_SIZES: Sequence[int] = (1_000, 10_000, 100_000)
FOCAL_MOBILE_FRACTIONS: Sequence[float] = (0.0, 0.5, 1.0)


def hybrid_cell(
    seed: int,
    background_size: int,
    focal_mobile_fraction: float,
    wp2p: bool,
    p: Dict[str, object],
) -> Dict[str, object]:
    """One hybrid cell: focal packet hosts inside a fluid background."""
    focal = int(p["focal_hosts"])
    mobile = round(focal * focal_mobile_fraction)
    wired = focal - mobile
    seeds = float(background_size) * float(p["background_seed_fraction"])
    spec = HybridSpec(
        focal_seeds=0,
        focal_wired=wired,
        focal_mobile=mobile,
        wp2p=wp2p,
        background_seeds=seeds,
        background_wired=float(background_size) - seeds,
        file_size=int(p["file_size_kib"]) * 1024,
        piece_length=int(p["piece_length"]),
        seed_up_rate=float(p["seed_up_rate"]),
        wired_up_rate=float(p["wired_up_rate"]),
        wired_down_rate=float(p["wired_down_rate"]),
        mobile_up_rate=float(p["mobile_up_rate"]),
        wireless_rate=float(p["wireless_rate"]),
        handoff_interval=(
            float(p["handoff_interval"]) if mobile > 0 else None
        ),
        handoff_downtime=float(p["handoff_downtime"]),
        restart_delay=float(p["restart_delay"]),
        coupling_interval=float(p["coupling_interval"]),
        max_time=float(p["max_time"]),
    )
    # The packet side picks the ambient --chaos preset up on its own
    # (the scenario builder arms it against the focal peers); mapping
    # the same schedule through chaosmap strikes the background classes.
    schedule = None
    opts = chaos_mod.options()
    if opts is not None:
        schedule = preset_schedule(
            str(opts["preset"]), float(opts["intensity"]), float(opts["horizon"])
        )
    result = run_hybrid(spec, seed=seed, chaos=schedule)

    def _mean(names: List[str], attr: str) -> Optional[float]:
        vals = []
        for name in names:
            fr = result.focal[name]
            value = getattr(fr, attr)
            if attr == "completion_time" and value is None:
                value = spec.max_time
            vals.append(value)
        return sum(vals) / len(vals) if vals else None

    wired_names = [f"w{i}" for i in range(wired)]
    mobile_names = [f"m{i}" for i in range(mobile)]
    return {
        "completion": result.focal_completion_time(),
        "wired_completion": _mean(wired_names, "completion_time"),
        "mobile_completion": _mean(mobile_names, "completion_time"),
        "wired_goodput": _mean(wired_names, "mean_goodput"),
        "mobile_goodput": _mean(mobile_names, "mean_goodput"),
        "utilization_mean": result.utilization_mean,
        "couplings": result.couplings,
        "steps": result.packet_events + result.fluid_steps,
        "peak_swarm": float(background_size) + float(focal),
    }


@scenario
class FigXHybrid(Scenario):
    """Focal mobile fraction × background size, default vs wP2P clients."""

    name = "figx_hybrid"
    description = (
        "Hybrid sweep: packet-level focal hosts inside a 10^3..10^5-peer "
        "fluid background, focal mobile fraction x background size, "
        "default vs wP2P"
    )
    backends = ("hybrid",)
    defaults = {
        "background_sizes": list(BACKGROUND_SIZES),
        "focal_mobile_fractions": list(FOCAL_MOBILE_FRACTIONS),
        "focal_hosts": 4,
        "runs": 1,
        "background_seed_fraction": 0.2,
        "seed_up_rate": 64_000.0,
        "wired_up_rate": 32_000.0,
        "wired_down_rate": 400_000.0,
        "mobile_up_rate": 16_000.0,
        "wireless_rate": 80_000.0,
        "handoff_interval": 40.0,
        "handoff_downtime": 1.0,
        "restart_delay": 15.0,
        "file_size_kib": 1024,
        "piece_length": 65_536,
        "coupling_interval": 2.0,
        "max_time": 3_600.0,
        "base_seed": 1700,
    }

    def cells(self, p):
        for variant in ("default", "wp2p"):
            for size in p["background_sizes"]:
                for fraction in p["focal_mobile_fractions"]:
                    if fraction == 0.0 and variant == "wp2p":
                        # No focal mobiles -> the variants are identical;
                        # keep one baseline cell instead of two copies.
                        continue
                    for r in range(p["runs"]):
                        yield (variant, size, fraction), p["base_seed"] + r

    def run_cell_hybrid(self, key, seed, p):
        variant, size, fraction = key
        return hybrid_cell(seed, int(size), float(fraction),
                           wp2p=(variant == "wp2p"), p=dict(p))

    def assemble(self, p, values, failures):
        sizes = [int(s) for s in p["background_sizes"]]
        fractions = [float(f) for f in p["focal_mobile_fractions"]]
        headline = next((f for f in fractions if f > 0.0), fractions[0])
        max_time = float(p["max_time"])

        def mean_completion(variant: str, size: int, fraction: float) -> float:
            lookup = variant if fraction > 0.0 else "default"
            vals = collect(values, (lookup, size, fraction))
            if not vals:
                return max_time
            times = [
                v["completion"] if v["completion"] is not None else max_time
                for v in vals
            ]
            return sum(times) / len(times)

        series = [
            Series(
                f"Default P2P ({headline:.0%} focal mobile)",
                [float(s) for s in sizes],
                [mean_completion("default", s, headline) for s in sizes],
            ),
            Series(
                f"wP2P ({headline:.0%} focal mobile)",
                [float(s) for s in sizes],
                [mean_completion("wp2p", s, headline) for s in sizes],
            ),
        ]
        if 0.0 in fractions:
            series.insert(0, Series(
                "All-wired focal baseline",
                [float(s) for s in sizes],
                [mean_completion("default", s, 0.0) for s in sizes],
            ))

        grid: Dict[str, Dict[str, object]] = {}
        total_steps = 0.0
        peak_swarm = 0.0
        for (variant, size, fraction), seed in sorted(
            values, key=lambda cell: (cell[0][0], cell[0][1], cell[0][2], cell[1])
        ):
            v = values[((variant, size, fraction), seed)]
            grid[f"{variant}/{size}/{fraction:g}"] = {
                "completion": v["completion"],
                "mobile_completion": v["mobile_completion"],
                "wired_completion": v["wired_completion"],
                "mobile_goodput": v["mobile_goodput"],
                "wired_goodput": v["wired_goodput"],
                "utilization_mean": v["utilization_mean"],
            }
            total_steps += float(v["steps"])
            peak_swarm = max(peak_swarm, float(v["peak_swarm"]))

        return ExperimentResult(
            figure="Hybrid sweep",
            title=("Focal completion time vs background size and focal "
                   "mobile fraction"),
            x_label="Background swarm size (peers)",
            y_label="Focal completion time (s)",
            series=series,
            paper_expectation=(
                "focal completion time rises with the focal mobile "
                "fraction at every background size; wP2P focal hosts stay "
                "ahead of default-client ones wherever focal mobiles are "
                "present — the paper's per-client mechanisms keep working "
                "unchanged inside swarms only the fluid tier can represent"
            ),
            notes=(
                "focal mobile fractions swept: "
                + ", ".join(f"{f:g}" for f in fractions)
            ),
            parameters={
                "background_sizes": sizes,
                "focal_mobile_fractions": fractions,
                "focal_hosts": p["focal_hosts"],
                "runs": p["runs"],
                "grid": grid,
                "engine_steps": total_steps,
                "peak_swarm_size": peak_swarm,
            },
        )


def figx_hybrid(
    background_sizes: Sequence[int] = BACKGROUND_SIZES,
    focal_mobile_fractions: Sequence[float] = FOCAL_MOBILE_FRACTIONS,
    focal_hosts: int = 4,
    runs: int = 1,
) -> ExperimentResult:
    """Hybrid sweep (always on the hybrid backend)."""
    return run_scenario("figx_hybrid", {
        "background_sizes": list(background_sizes),
        "focal_mobile_fractions": list(focal_mobile_fractions),
        "focal_hosts": focal_hosts,
        "runs": runs,
    })
