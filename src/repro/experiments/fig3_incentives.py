"""Figure 3 — uploads-based incentives meet the wireless channel (§3.3–3.4).

* ``fig3a`` (wired): the measured peer's download rate is an increasing
  function of its upload-rate cap — tit-for-tat reciprocation, and wired
  up/down links don't share capacity.
* ``fig3b`` (wireless): the same sweep behind a shared half-duplex cell
  rises to a peak and then *falls* — uploads steal airtime from downloads.
* ``fig3c``: downloaded size vs time for {mobility, none} × {uploading,
  none}.  Without mobility, uploading buys a clearly better download rate;
  with mobility (periodic IP change, task re-init, fresh peer ID) the
  incentive mechanism is neutralised and both mobility curves sit low and
  close together.

Each figure is a registered :class:`~repro.runner.registry.Scenario`
whose cells are single seeded swarm simulations, so the runner can
parallelise and cache them; the ``fig3a``/``fig3b``/``fig3c`` functions
are the serial front doors.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..analysis import ExperimentResult, Series, average_runs, summarize
from ..bittorrent import ClientConfig
from ..bittorrent.swarm import SwarmScenario
from ..runner import Scenario, collect, run_scenario, scenario
from .base import random_piece_subset

UPLOAD_FRACTIONS: Tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


def _incentive_swarm(
    seed: int,
    wireless: bool,
    upload_limit: Optional[float],
    duration: float,
    channel_rate: float,
    n_remote: int = 6,
    file_mb: float = 4.0,
) -> float:
    """One run: the measured peer's mean download rate (bytes/s).

    The swarm has no seed: every peer (including the measured one) starts
    with a random half of the pieces, so reciprocation — and therefore the
    upload cap — governs how fast the measured peer is served.
    """
    file_size = int(file_mb * 1024 * 1024)
    sc = SwarmScenario(seed=seed, file_size=file_size, piece_length=65_536)
    n_pieces = sc.torrent.num_pieces
    rng = random.Random(seed * 977 + 13)
    # Remote leeches compete hard for each other's single ranked unchoke
    # slot, so the measured peer's reciprocation rate decides how well it
    # is served — the tit-for-tat lever the sweep exercises.
    remote_config = ClientConfig(unchoke_slots=1, optimistic_every=3, choke_interval=5.0)
    for i in range(n_remote):
        # Heterogeneous uplinks: as the measured peer's cap grows it
        # out-reciprocates progressively more competitors, so the
        # tit-for-tat benefit rises gradually rather than as a step.
        sc.add_wired_peer(
            f"r{i}",
            initial_pieces=random_piece_subset(rng, n_pieces, 0.5),
            config=remote_config,
            up_rate=10_000.0 + 10_000.0 * i,
            down_rate=500_000,
        )
    # Wireless: serve many peers so the actual upload tracks the swept cap
    # (airtime contention is the effect under test).  Wired: fewer slots so
    # the per-slot rate is competitive (reciprocation is the effect).
    measured_config = ClientConfig(
        unchoke_slots=4 if wireless else 2,
        choke_interval=5.0,
        upload_limit=upload_limit,
    )
    mine = random_piece_subset(rng, n_pieces, 0.5)
    if wireless:
        x = sc.add_wireless_peer(
            "x", rate=channel_rate, initial_pieces=mine, config=measured_config,
            ap_queue_packets=20,
        )
    else:
        x = sc.add_wired_peer(
            "x",
            initial_pieces=mine,
            config=measured_config,
            down_rate=500_000,
            up_rate=48_000,
        )
    sc.start_all()
    warmup = 10.0
    sc.run(until=warmup)
    base = x.client.downloaded.total
    sc.run(until=warmup + duration)
    return (x.client.downloaded.total - base) / duration


class _UploadSweepScenario(Scenario):
    """Shared machinery for the fig3a/fig3b upload-cap sweeps."""

    wireless = False
    figure = ""
    title = ""
    x_label = ""
    paper_expectation = ""

    def cells(self, p):
        for frac in p["fractions"]:
            for r in range(p["runs"]):
                yield (frac,), p["base_seed"] + r

    def run_cell(self, key, seed, p):
        (frac,) = key
        return _incentive_swarm(
            seed,
            self.wireless,
            upload_limit=frac * p["reference_rate"],
            duration=p["duration"],
            channel_rate=p["channel_rate"],
        )

    def assemble(self, p, values, failures):
        label = "Wireless" if self.wireless else "Wired"
        ys: List[float] = []
        errs: List[float] = []
        for frac in p["fractions"]:
            vals = collect(values, (frac,))
            ys.append(sum(vals) / len(vals) / 1000.0)  # KB/s
            errs.append(summarize([v / 1000.0 for v in vals]).ci95)
        series = Series(label, [100 * f for f in p["fractions"]], ys, y_err=errs)
        parameters = {"runs": p["runs"], "duration_s": p["duration"]}
        if self.wireless:
            parameters["channel_Bps"] = p["channel_rate"]
        return ExperimentResult(
            figure=self.figure,
            title=self.title,
            x_label=self.x_label,
            y_label="Download throughput (KB/s)",
            series=[series],
            paper_expectation=self.paper_expectation,
            parameters=parameters,
        )


@scenario
class Fig3A(_UploadSweepScenario):
    """Download rate vs upload cap on a wired (cable) access link."""

    name = "fig3a"
    description = "Figure 3(a): download vs upload cap on a wired access link"
    wireless = False
    figure = "Figure 3(a)"
    title = "Impact of upload cap on downloads: wired"
    x_label = "Upload limit (% of uplink capacity)"
    paper_expectation = "download rate is an increasing function of the upload cap"
    defaults = {
        "fractions": list(UPLOAD_FRACTIONS),
        "runs": 3,
        "duration": 60.0,
        "base_seed": 300,
        "reference_rate": 48_000.0,  # 384 Kbps cable uplink
        "channel_rate": 0.0,
    }


@scenario
class Fig3B(_UploadSweepScenario):
    """Download rate vs upload cap behind a shared wireless channel."""

    name = "fig3b"
    description = "Figure 3(b): download vs upload cap behind a shared wireless cell"
    wireless = True
    figure = "Figure 3(b)"
    title = "Impact of upload cap on downloads: wireless"
    x_label = "Upload limit (% of channel capacity)"
    paper_expectation = (
        "rises with the cap initially, peaks well below the wired case's "
        "80–90%, then falls as uploads contend for the shared channel"
    )
    defaults = {
        "fractions": list(UPLOAD_FRACTIONS),
        "runs": 3,
        "duration": 60.0,
        "base_seed": 400,
        "reference_rate": 100_000.0,
        "channel_rate": 100_000.0,
    }


def fig3a(
    fractions: Sequence[float] = UPLOAD_FRACTIONS,
    runs: int = 3,
    duration: float = 60.0,
    base_seed: int = 300,
) -> ExperimentResult:
    """Download rate vs upload cap on a wired (cable) access link."""
    return run_scenario("fig3a", {
        "fractions": list(fractions), "runs": runs,
        "duration": duration, "base_seed": base_seed,
    })


def fig3b(
    fractions: Sequence[float] = UPLOAD_FRACTIONS,
    runs: int = 3,
    duration: float = 60.0,
    channel_rate: float = 100_000.0,
    base_seed: int = 400,
) -> ExperimentResult:
    """Download rate vs upload cap behind a shared wireless channel."""
    return run_scenario("fig3b", {
        "fractions": list(fractions), "runs": runs, "duration": duration,
        "base_seed": base_seed, "reference_rate": channel_rate,
        "channel_rate": channel_rate,
    })


FIG3C_CASES: Tuple[Tuple[str, bool, float], ...] = (
    ("No mobility, uploading", False, 60_000.0),
    ("No mobility, no uploading", False, 0.0),
    ("Mobility, uploading", True, 60_000.0),
    ("Mobility, no uploading", True, 0.0),
)


@scenario
class Fig3C(Scenario):
    """Downloaded size vs time: {mobility, none} x {uploading, none}."""

    name = "fig3c"
    description = (
        "Figure 3(c): download progress under incentives x mobility"
    )
    defaults = {
        "duration": 420.0,
        "handoff_interval": 60.0,
        "sample_step": 20.0,
        "runs": 2,
        "base_seed": 500,
        "file_mb": 32.0,
    }

    @staticmethod
    def _grid(p) -> List[float]:
        return [
            p["sample_step"] * i
            for i in range(int(p["duration"] / p["sample_step"]) + 1)
        ]

    def cells(self, p):
        for label, _, _ in FIG3C_CASES:
            for r in range(p["runs"]):
                yield (label,), p["base_seed"] + r

    def run_cell(self, key, seed, p):
        (label,) = key
        mobile, upload_limit = next(
            (m, u) for case_label, m, u in FIG3C_CASES if case_label == label
        )
        return _fig3c_run(
            seed, mobile, upload_limit, p["duration"], self._grid(p),
            p["handoff_interval"], p["file_mb"],
        )

    def assemble(self, p, values, failures):
        grid = self._grid(p)
        series: List[Series] = []
        for label, _, _ in FIG3C_CASES:
            curves = collect(values, (label,))
            series.append(Series(label, grid, average_runs(curves)))
        return ExperimentResult(
            figure="Figure 3(c)",
            title="Impact of incentives and mobility on download progress",
            x_label="Time (s)",
            y_label="Downloaded size (MB)",
            series=series,
            paper_expectation=(
                "without mobility, uploading clearly beats not uploading; with "
                "mobility both curves drop below the no-mobility ones and the "
                "upload advantage becomes marginal (incentives neutralised)"
            ),
            parameters={
                "runs": p["runs"],
                "duration_s": p["duration"],
                "handoff_interval_s": p["handoff_interval"],
                "file_mb": p["file_mb"],
            },
        )


def fig3c(
    duration: float = 420.0,
    handoff_interval: float = 60.0,
    sample_step: float = 20.0,
    runs: int = 2,
    base_seed: int = 500,
    file_mb: float = 32.0,
) -> ExperimentResult:
    """Downloaded size vs time: {mobility, none} x {uploading, none}.

    Scaled stand-in for the paper's 100 MB download over 40 minutes with
    IP changes every minute; ratios (handoff interval vs choker rounds vs
    tracker interval) are preserved.
    """
    # "Uploading" is capped at the competitors' class of rate (60 KB/s):
    # the effect under test is reciprocation, not the §3.3 self-contention
    # of an unbounded upload on the mobile host's own channel.
    return run_scenario("fig3c", {
        "duration": duration, "handoff_interval": handoff_interval,
        "sample_step": sample_step, "runs": runs,
        "base_seed": base_seed, "file_mb": file_mb,
    })


def _fig3c_run(
    seed: int,
    mobile: bool,
    upload_limit: Optional[float],
    duration: float,
    grid: Sequence[float],
    handoff_interval: float,
    file_mb: float,
) -> List[float]:
    file_size = int(file_mb * 1024 * 1024)
    sc = SwarmScenario(
        seed=seed, file_size=file_size, piece_length=131_072, tracker_interval=60.0
    )
    # A *slow* seed drip-feeds pieces into the swarm, so nearly everything
    # the measured peer needs lives at competing leeches — and leeches
    # serve by tit-for-tat, which is exactly the lever under test.  (Seeds
    # rank receivers by their download speed, not reciprocation, so a fat
    # seed would mask the incentive effect.)
    competitor_cfg = ClientConfig(
        unchoke_slots=2, optimistic_every=5, choke_interval=5.0
    )
    # The seed spreads its capacity across many slots so that no peer's
    # total is dominated by seed service (seeds rank receivers by speed,
    # not reciprocity, and would otherwise mask the tit-for-tat signal).
    seed_cfg = ClientConfig(unchoke_slots=5, optimistic_every=5, choke_interval=5.0)
    sc.add_wired_peer("seed0", complete=True, up_rate=60_000, config=seed_cfg)
    for i in range(10):
        sc.add_wired_peer(f"c{i}", up_rate=60_000, config=competitor_cfg)
    x_cfg = ClientConfig(
        unchoke_slots=2, choke_interval=5.0, upload_limit=upload_limit,
        task_restart_delay=2.0,
    )
    # Fast 802.11g-class cell: at BitTorrent rates the mobile host's own
    # uploads do not materially contend with its downloads (that effect is
    # Figure 3(b)'s subject); here the levers are incentives and mobility.
    x = sc.add_wireless_peer("x", rate=400_000, config=x_cfg)
    if mobile:
        sc.add_mobility(x, interval=handoff_interval, downtime=1.0)
    sc.start_all()
    sc.run(until=duration)
    counter = x.client.downloaded
    return [counter.value_at(t) / (1024 * 1024) for t in grid]
